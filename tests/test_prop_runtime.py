"""Property-based tests over the full runtime: for arbitrary competing
load scripts, the system must preserve its core invariants — rows
always tile the loop space, array contents survive any number of
redistributions, and all ranks agree on the distribution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SPEED = 1e8
N_ROWS = 48
N_CYCLES = 40


def make_cluster(n):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=SPEED),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
    ))


def program(ctx, row_work):
    A = ctx.register_dense("A", (N_ROWS, 4))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
    ctx.add_array_access(1, "A", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        A.row(g)[:] = g

    def work_of(s, e):
        return np.full(e - s + 1, row_work)

    for _t in range(N_CYCLES):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()

    result = {"bounds": ctx.my_bounds(), "ok": True}
    if ctx.participating():
        s, e = ctx.my_bounds()
        for g in range(s, e + 1):
            if not np.all(A.row(g) == g):
                result["ok"] = False
    return result


@st.composite
def load_scripts(draw):
    n_events = draw(st.integers(0, 4))
    triggers = []
    live = {}  # node -> count running
    for _ in range(n_events):
        node = draw(st.integers(0, 3))
        cycle = draw(st.integers(1, N_CYCLES - 5))
        if live.get(node, 0) > 0 and draw(st.booleans()):
            triggers.append(CycleTrigger(cycle=cycle, node=node,
                                         action="stop", count=1))
            live[node] -= 1
        else:
            count = draw(st.integers(1, 3))
            triggers.append(CycleTrigger(cycle=cycle, node=node,
                                         action="start", count=count))
            live[node] = live.get(node, 0) + count
    return LoadScript(cycle_triggers=sorted(triggers, key=lambda t: t.cycle))


@given(
    script=load_scripts(),
    n_nodes=st.integers(2, 4),
    removal=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_runtime_invariants_under_arbitrary_load(script, n_nodes, removal):
    cluster = make_cluster(n_nodes)
    # clamp trigger nodes into this cluster (the strategy draws 0..3)
    script = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=t.cycle, node=t.node % n_nodes,
                     action=t.action, count=t.count)
        for t in script.cycle_triggers
    ])
    cluster.install_load_script(script)
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3,
        allow_removal=removal, daemon_interval=0.002,
    ))
    results = job.launch(program, args=(SPEED * 1e-3 / N_ROWS * n_nodes,))

    # 1. the owned ranges of participating ranks tile the loop space
    owned = [out["bounds"] for out in results if out["bounds"][1] >= out["bounds"][0]]
    owned.sort()
    total = sum(e - s + 1 for s, e in owned)
    assert total == N_ROWS
    for (s1, e1), (s2, e2) in zip(owned, owned[1:]):
        assert s2 == e1 + 1  # contiguous, no overlap

    # 2. every row still carries its stamped value
    assert all(out["ok"] for out in results)

    # 3. events are well-formed
    for ev in job.events:
        assert ev.kind in ("redistribute", "drop", "logical_drop", "rejoin")
        if ev.kind == "redistribute":
            shares = np.asarray(ev.detail["shares"])
            assert shares.sum() == np.float64(1.0) or abs(shares.sum() - 1) < 1e-9
            assert np.all(shares >= 0)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_simulation_determinism_same_seed(seed):
    """Two identical runs produce bit-identical timing and events."""
    def run():
        cluster = Cluster(ClusterSpec(
            n_nodes=3,
            node=NodeSpec(speed=SPEED),
            network=NetworkSpec(latency=75e-6, bandwidth=12.5e6),
            seed=seed,
        ))
        cluster.install_load_script(LoadScript(cycle_triggers=[
            CycleTrigger(cycle=5, node=1, action="start"),
        ]))
        job = DynMPIJob(cluster, RuntimeSpec(
            grace_period=2, post_redist_period=3, allow_removal=False,
            daemon_interval=0.002,
        ))
        job.launch(program, args=(SPEED * 1e-3 / N_ROWS * 3,))
        return cluster.sim.now, [(ev.kind, ev.cycle) for ev in job.events]

    t1, ev1 = run()
    t2, ev2 = run()
    assert t1 == t2
    assert ev1 == ev2
