"""Edge-case tests for the applications: tiny per-rank ranges (the
SOR overlap's boundary logic), more ranks than work, empty bounds
during collectives, and model-mode/real-mode agreement."""

import numpy as np
import pytest

from repro.apps import (
    CGConfig,
    JacobiConfig,
    ParticleConfig,
    SORConfig,
    cg_program,
    jacobi_program,
    particle_program,
    run_program,
    sor_program,
)
from repro.apps import sor as sor_mod
from repro.apps import jacobi as jacobi_mod
from repro.apps.reference import jacobi_reference, particle_reference, sor_reference
from repro.apps import initial_counts
from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.simcluster import Cluster, CycleTrigger, LoadScript


def make_cluster(n):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
    ))


def test_sor_two_rows_per_rank_overlap_branch():
    """With <= 2 rows per rank the overlap split cannot run; the
    fallback branch must still be numerically exact."""
    cfg = SORConfig(n=8, iters=4, materialized=True, collect=True)
    res = run_program(make_cluster(4), sor_program, cfg, adaptive=False)
    expected = sor_reference(sor_mod.initial_grid(cfg), cfg.iters, cfg.omega)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


def test_sor_single_row_per_rank():
    cfg = SORConfig(n=6, iters=3, materialized=True, collect=True)
    res = run_program(make_cluster(6), sor_program, cfg, adaptive=False)
    expected = sor_reference(sor_mod.initial_grid(cfg), cfg.iters, cfg.omega)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


def test_jacobi_single_node_no_comm():
    cfg = JacobiConfig(n=12, iters=5, materialized=True, collect=True)
    res = run_program(make_cluster(1), jacobi_program, cfg, adaptive=False)
    expected = jacobi_reference(jacobi_mod.initial_grid(cfg), cfg.iters)
    assert np.allclose(res.per_rank[0]["grid"], expected, atol=1e-12)


def test_jacobi_more_ranks_than_comfortable():
    """8 ranks over 16 rows: 2 rows each, halos everywhere."""
    cfg = JacobiConfig(n=16, iters=4, materialized=True, collect=True)
    res = run_program(make_cluster(8), jacobi_program, cfg, adaptive=False)
    expected = jacobi_reference(jacobi_mod.initial_grid(cfg), cfg.iters)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


def test_cg_virtual_vector_mode_matches_exact_cycle_count():
    """exact_math=False runs the same communication schedule (cycles,
    events) as exact math, just without the arithmetic."""
    cfgA = CGConfig(n=64, iters=8, exact_math=True)
    cfgB = CGConfig(n=64, iters=8, exact_math=False)
    resA = run_program(make_cluster(4), cg_program, cfgA, adaptive=False)
    resB = run_program(make_cluster(4), cg_program, cfgB, adaptive=False)
    assert resA.per_rank[0]["cycles"] == resB.per_rank[0]["cycles"]
    # same message count: the schedule is identical
    assert resA.job.cluster.network.n_messages == \
        resB.job.cluster.network.n_messages


def test_particle_grid_thinner_than_ranks():
    cfg = ParticleConfig(rows=6, cols=4, steps=5, collect=True)
    res = run_program(make_cluster(3), particle_program, cfg, adaptive=False)
    expected = particle_reference(initial_counts(cfg), cfg.steps, cfg.seed)
    for out in res.per_rank:
        assert np.array_equal(out["grid"], expected)


def test_particle_fig7_initialization():
    cfg = ParticleConfig(rows=32, cols=4, part_top=10.0, n_nodes_hint=4)
    counts = initial_counts(cfg)
    hot = cfg.rows // (2 * cfg.n_nodes_hint)
    assert np.all(counts[:hot] == 10.0)
    assert np.all(counts[hot:] == 1.5)


def test_particle_hot_rows_initialization():
    cfg = ParticleConfig(rows=10, cols=4, base_density=2.0,
                         hot_rows=3, hot_factor=2.0)
    counts = initial_counts(cfg)
    assert np.all(counts[:3] == 4.0)
    assert np.all(counts[3:] == 2.0)


def test_apps_run_under_removal_policy():
    """An app surviving an actual drop mid-run still computes the
    exact reference result (active ranks take over the rows)."""
    cfg = ParticleConfig(rows=24, cols=6, steps=30, collect=True)
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=1, action="start", count=8)
    ]))
    res = run_program(
        cluster, particle_program, cfg,
        spec=RuntimeSpec(grace_period=2, post_redist_period=3,
                         allow_removal=True, drop_margin=1e-9,
                         daemon_interval=0.002),
        adaptive=True,
    )
    assert any(ev.kind == "drop" for ev in res.events)
    expected = particle_reference(initial_counts(cfg), cfg.steps, cfg.seed)
    for out in res.per_rank:
        if "grid" in out:
            assert np.array_equal(out["grid"], expected)
