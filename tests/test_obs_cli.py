"""CLI tests for ``python -m repro.obs``: export determinism, the
schema-validation gate, summarize/diff output and error exit codes."""

import json

import pytest

from repro.obs.__main__ import main

# small but still adaptive: the grid is big enough that the forced
# removal scenario redistributes before the run ends
ARGS = ["--nodes", "3", "--grid", "96", "--iters", "24"]


@pytest.fixture(scope="module")
def chrome_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "trace.json"
    assert main(["export", *ARGS, "--out", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def jsonl_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    assert main(["export", *ARGS, "--format", "jsonl",
                 "--out", str(path)]) == 0
    return path


def test_export_is_byte_deterministic(chrome_path, tmp_path):
    again = tmp_path / "again.json"
    assert main(["export", *ARGS, "--out", str(again)]) == 0
    assert again.read_bytes() == chrome_path.read_bytes()


def test_export_to_stdout(capsys):
    assert main(["export", "--nodes", "2", "--grid", "64",
                 "--iters", "8"]) == 0
    out = capsys.readouterr().out
    trace = json.loads(out)
    assert trace["traceEvents"]


def test_validate_accepts_the_export(chrome_path, capsys):
    assert main(["validate", str(chrome_path)]) == 0
    assert "valid Chrome trace" in capsys.readouterr().out


def test_validate_rejects_bad_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [
        {"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
    ]}))
    assert main(["validate", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().err
    assert main(["validate", str(tmp_path / "missing.json")]) == 1


def test_summarize_text_and_json(chrome_path, jsonl_path, capsys):
    assert main(["summarize", str(chrome_path)]) == 0
    out = capsys.readouterr().out
    assert "cost attribution" in out
    for phase in ("compute", "comm", "redist"):
        assert phase in out

    assert main(["summarize", str(jsonl_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["wall"] > 0
    assert set(report["per_rank"]) == {"0", "1", "2"}
    # the jsonl meta line carried metrics into the summary
    assert report["metrics"]["counters"]


def test_summarize_unreadable_exits_2(tmp_path, capsys):
    assert main(["summarize", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_diff_self_is_zero(chrome_path, capsys):
    assert main(["diff", str(chrome_path), str(chrome_path),
                 "--json"]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff["wall"]["delta"] == 0
    assert all(row["delta"] == 0 for row in diff["phases"].values())


def test_diff_formats_deltas(chrome_path, jsonl_path, capsys):
    # chrome vs jsonl of the same run: still identical attributions
    assert main(["diff", str(chrome_path), str(jsonl_path)]) == 0
    out = capsys.readouterr().out
    assert "per-phase deltas" in out
    assert "+0.0%" in out


def test_diff_unreadable_exits_2(chrome_path, tmp_path, capsys):
    assert main(["diff", str(chrome_path),
                 str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err
