"""One-sided RMA tests: op semantics, atomicity, lock epochs (FIFO,
exclusion, shared batching), passive-target costing, dynscope spans,
the dynsan epoch checker (DYN1111/1112/1113), and dead-rank cleanup."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.errors import MPIError, RankFailedError, SanitizerError
from repro.mpi import Window, make_comm
from repro.simcluster import Cluster, Sleep


def make_cluster(n=3, **kw):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e6),
        network=NetworkSpec(latency=1e-4, bandwidth=1e8,
                            cpu_per_byte=0.001, cpu_per_msg=10.0),
        **kw,
    ))


def run_ranks(cluster, programs, *, tolerate=None):
    """Spawn ``programs[rank](ep, win.origin(rank))`` and run to
    completion; returns (per-rank results, win)."""
    comm = make_comm(cluster)
    win = Window(comm, 8, name="t")
    procs = []
    for rank, prog in enumerate(programs):
        if prog is None:
            continue
        ep = comm.endpoint(rank)
        node = cluster.nodes[comm.node_of(rank)]
        proc = cluster.sim.spawn(prog(ep, win.origin(rank)),
                                 name=f"r{rank}", node=node)
        comm.watch_rank(rank, proc)
        procs.append(proc)
    cluster.sim.run_all(procs, tolerate=tolerate or (lambda p: False))
    if cluster.sanitizer is not None:
        cluster.sanitizer.finalize()
    return [p.result for p in procs], win


# ----------------------------------------------------------------------
# op semantics
# ----------------------------------------------------------------------

def test_put_get_accumulate_fetchop_cas():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.lock(0)
        yield from h.put(0, 2, [5, 6, 7])
        got = yield from h.get(0, 2, count=3)
        assert np.array_equal(got, [5, 6, 7])
        yield from h.accumulate(0, 2, [1, 1, 1])
        assert (yield from h.get(0, 2)) == 6
        old = yield from h.fetch_and_op(0, 0, 10)
        assert old == 0
        old = yield from h.fetch_and_op(0, 0, 10)
        assert old == 10
        # CAS succeeds on match, fails (and reports) on mismatch
        old = yield from h.compare_and_swap(0, 1, 0, 99)
        assert old == 0
        old = yield from h.compare_and_swap(0, 1, 0, 7)
        assert old == 99
        yield from h.unlock(0)
        return True

    def target(ep, h):
        return True
        yield  # pragma: no cover — make it a generator

    results, win = run_ranks(cluster, [target, origin])
    assert results == [True, True]
    assert int(win.local(0)[0]) == 20
    assert int(win.local(0)[1]) == 99
    assert list(win.local(0)[2:5]) == [6, 7, 8]


def test_ops_cost_simulated_time_and_target_stays_passive():
    cluster = make_cluster(2)

    def origin(ep, h):
        yield from h.lock(0)
        for _ in range(5):
            yield from h.fetch_and_op(0, 0, 1)
        yield from h.unlock(0)

    # the target's program finishes immediately: one-sided ops need
    # only its NIC, not its process
    def target(ep, h):
        return "done"
        yield  # pragma: no cover

    _, win = run_ranks(cluster, [target, origin])
    assert int(win.local(0)[0]) == 5
    assert cluster.sim.now > 0.0
    # a target CPU that never computes: only the origin node was charged
    assert cluster.nodes[0].cpu.busy_time == 0.0
    assert cluster.nodes[1].cpu.busy_time > 0.0


def test_fetch_and_op_claims_are_disjoint():
    """The farm's core invariant: concurrent fetch_and_op claims under
    shared locks partition the counter range with no gaps or overlap."""
    cluster = make_cluster(5, sanitize=True)
    claims = {}

    def worker(rank):
        def prog(ep, h):
            yield from h.lock(0, shared=True)
            mine = []
            while True:
                start = yield from h.fetch_and_op(0, 0, 3)
                if start >= 30:
                    break
                mine.append(start)
            yield from h.unlock(0)
            claims[rank] = mine
        return prog

    def master(ep, h):
        yield Sleep(0.05)

    run_ranks(cluster, [master] + [worker(r) for r in range(1, 5)])
    starts = sorted(s for mine in claims.values() for s in mine)
    assert starts == list(range(0, 30, 3))


def test_slot_bounds_and_bad_ranks():
    cluster = make_cluster(2)

    def origin(ep, h):
        yield from h.lock(0)
        with pytest.raises(MPIError, match="outside"):
            yield from h.put(0, 7, [1, 2])
        with pytest.raises(MPIError, match="invalid rank"):
            yield from h.get(5, 0)
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    run_ranks(cluster, [idle, origin])


# ----------------------------------------------------------------------
# lock epochs
# ----------------------------------------------------------------------

def test_exclusive_lock_serializes_epochs():
    cluster = make_cluster(3, sanitize=True)
    order = []

    def contender(rank, hold):
        def prog(ep, h):
            if rank == 2:
                yield Sleep(1e-3)  # rank 1 asks first: FIFO grant order
            yield from h.lock(0)
            order.append(("acq", rank, cluster.sim.now))
            yield Sleep(hold)
            old = yield from h.fetch_and_op(0, 0, 1)
            order.append(("op", rank, old))
            yield from h.unlock(0)
        return prog

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    run_ranks(cluster, [idle, contender(1, 0.02), contender(2, 0.0)])
    kinds = [(k, r) for k, r, _ in order]
    assert kinds == [("acq", 1), ("op", 1), ("acq", 2), ("op", 2)]
    # rank 2's epoch could not begin until rank 1 released
    acq2 = next(t for k, r, t in order if k == "acq" and r == 2)
    assert acq2 >= 0.02


def test_shared_locks_coexist_exclusive_waits():
    cluster = make_cluster(4, sanitize=True)
    times = {}

    def reader(rank):
        def prog(ep, h):
            yield from h.lock(0, shared=True)
            times[rank] = cluster.sim.now
            yield Sleep(0.01)
            yield from h.get(0, 0)
            yield from h.unlock(0)
        return prog

    def writer(ep, h):
        yield Sleep(1e-3)  # let both readers in first
        yield from h.lock(0)
        times["writer"] = cluster.sim.now
        yield from h.put(0, 0, 1)
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    run_ranks(cluster, [idle, reader(1), reader(2), writer])
    # both shared epochs overlapped; the exclusive one waited them out
    assert abs(times[1] - times[2]) < 5e-3
    assert times["writer"] >= max(times[1], times[2]) + 0.01


# ----------------------------------------------------------------------
# dynsan epoch extension
# ----------------------------------------------------------------------

def test_sanitizer_flags_op_outside_epoch():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.fetch_and_op(0, 0, 1)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    with pytest.raises(SanitizerError, match="DYN1112"):
        run_ranks(cluster, [idle, origin])


def test_sanitizer_flags_unpaired_unlock():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    with pytest.raises(SanitizerError, match="DYN1111"):
        run_ranks(cluster, [idle, origin])


def test_sanitizer_flags_conflicting_lock_acquisition():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.lock(0)
        yield from h.lock(0)  # same origin, same target, epoch open

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    with pytest.raises(SanitizerError, match="DYN1113"):
        run_ranks(cluster, [idle, origin])


def test_sanitizer_finalize_reports_unclosed_epoch():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.lock(0)
        yield from h.put(0, 0, 1)  # never unlocked

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    with pytest.raises(SanitizerError, match="DYN1111"):
        run_ranks(cluster, [idle, origin])


def test_sanitizer_clean_run_is_silent():
    cluster = make_cluster(2, sanitize=True)

    def origin(ep, h):
        yield from h.lock(0, shared=True)
        yield from h.fetch_and_op(0, 0, 1)
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    run_ranks(cluster, [idle, origin])  # no raise


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------

def test_rma_spans_and_counters_recorded():
    cluster = make_cluster(2, observe=True)

    def origin(ep, h):
        yield from h.lock(0)
        yield from h.put(0, 0, [1, 2])
        yield from h.get(0, 0, count=2)
        yield from h.fetch_and_op(0, 2, 4)
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    run_ranks(cluster, [idle, origin])
    names = [e.name for e in cluster.obs.events if e.cat == "rma"]
    assert "rma.lock" in names
    assert "rma.put" in names
    assert "rma.get" in names
    assert "rma.fetch_and_op" in names
    assert "rma.unlock" in names
    reg = cluster.obs.rank_registry(1)
    assert reg.counter_total("rma.ops") == 3
    assert reg.counter_total("rma.bytes") > 0


# ----------------------------------------------------------------------
# resilience
# ----------------------------------------------------------------------

def _spawn_with_kill(cluster, programs, kill_rank, kill_at):
    """Spawn like :func:`run_ranks` but kill ``kill_rank``'s process at
    simulated time ``kill_at``; tolerates only that death."""
    comm = make_comm(cluster)
    win = Window(comm, 8, name="t")
    procs = []
    for rank, prog in enumerate(programs):
        ep = comm.endpoint(rank)
        node = cluster.nodes[comm.node_of(rank)]
        proc = cluster.sim.spawn(prog(ep, win.origin(rank)),
                                 name=f"r{rank}", node=node)
        comm.watch_rank(rank, proc)
        procs.append(proc)
    victim = procs[kill_rank]
    cluster.sim.schedule(kill_at, lambda: cluster.sim.kill(victim))
    cluster.sim.run_all(procs, tolerate=lambda p: p is victim)
    if cluster.sanitizer is not None:
        cluster.sanitizer.finalize()
    return [p.result for p in procs], win


def test_dead_holder_releases_lock_to_fifo_waiter():
    cluster = make_cluster(3, sanitize=True)
    acquired = []

    def doomed(ep, h):
        yield from h.lock(0)
        yield Sleep(10.0)  # holds the lock until killed at t=0.01
        yield from h.unlock(0)

    def waiter(ep, h):
        yield Sleep(1e-3)  # queue strictly behind the doomed holder
        yield from h.lock(0)
        acquired.append(cluster.sim.now)
        yield from h.fetch_and_op(0, 0, 1)
        yield from h.unlock(0)

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    _, win = _spawn_with_kill(cluster, [idle, doomed, waiter],
                              kill_rank=1, kill_at=0.01)
    assert acquired and acquired[0] >= 0.01
    assert int(win.local(0)[0]) == 1


def test_rma_op_on_dead_target_raises():
    cluster = make_cluster(3, sanitize=True)

    def doomed(ep, h):
        yield Sleep(10.0)  # killed at t=0.001

    def origin(ep, h):
        yield Sleep(0.01)  # let the target die first
        with pytest.raises(RankFailedError):
            yield from h.lock(1)
        return "survived"

    def idle(ep, h):
        return None
        yield  # pragma: no cover

    results, _ = _spawn_with_kill(cluster, [idle, doomed, origin],
                                  kill_rank=1, kill_at=1e-3)
    assert "survived" in results
