"""Unit tests for repro.resilience.failures: the FailureScript trigger
machinery (the failure-side mirror of LoadScript) and each fault kind's
effect on the cluster, independent of the Dyn-MPI runtime."""

import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.errors import ConfigError, SimulationError
from repro.resilience import (
    CycleFault,
    FailureScript,
    InjectedFault,
    TimeFault,
    node_crash,
)
from repro.simcluster import Cluster, ProcState, Sleep


def make_cluster(n=3):
    return Cluster(ClusterSpec(n_nodes=n, node=NodeSpec(speed=1e8)))


def spin(duration=1000.0):
    yield Sleep(duration)


# ---------------------------------------------------------------------------
# trigger validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"action": "explode"},
    {"action": "slowdown", "count": 0},
    {"action": "slowdown", "duration": -1.0},
    {"action": "partition", "peers": (-1,)},
    {"action": "partition", "peers": ("n2",)},
])
def test_bad_fault_parameters(kw):
    with pytest.raises(ConfigError):
        TimeFault(time=1.0, node=0, **kw)
    with pytest.raises(ConfigError):
        CycleFault(cycle=1, node=0, **kw)


def test_negative_trigger_points():
    with pytest.raises(ConfigError):
        TimeFault(time=-0.1, node=0, action="crash")
    with pytest.raises(ConfigError):
        CycleFault(cycle=-1, node=0, action="crash")


def test_node_crash_needs_exactly_one_trigger():
    with pytest.raises(ConfigError):
        node_crash(1)
    with pytest.raises(ConfigError):
        node_crash(1, at_cycle=5, at_time=1.0)
    assert node_crash(1, at_cycle=5).cycle_faults[0].cycle == 5
    assert node_crash(1, at_time=2.0).time_faults[0].time == 2.0


def test_uninstalled_script_cannot_fire():
    script = FailureScript(cycle_faults=[
        CycleFault(cycle=0, node=0, action="crash")])
    with pytest.raises(ConfigError):
        script.on_cycle(0)


def test_cycle_fault_fires_once():
    cluster = make_cluster()
    script = FailureScript(cycle_faults=[
        CycleFault(cycle=3, node=1, action="slowdown", count=2)])
    cluster.install_failure_script(script)
    cluster.notify_cycle(3)
    cluster.notify_cycle(3)  # duplicate notification must not re-fire
    assert len(cluster.nodes[1].background) == 2


# ---------------------------------------------------------------------------
# crash
# ---------------------------------------------------------------------------

def test_crash_marks_board_and_stops_competing():
    cluster = make_cluster()
    cluster.nodes[2].start_competing()
    cluster.install_failure_script(node_crash(2, at_cycle=5))
    cluster.notify_cycle(5)
    board = cluster.failure_board
    assert board.crashed(2) and board.failed(2)
    assert not board.killed(2)
    assert board.failed_nodes() == [2]
    assert board.crash_time(2) == cluster.sim.now
    # a dead node runs nothing
    assert len(cluster.nodes[2].background) == 0
    assert any(label == "fault:crash@n2"
               for _t, label in cluster.recorder.events)


def test_time_triggered_crash():
    cluster = make_cluster()
    cluster.install_failure_script(node_crash(1, at_time=2.5))
    p = cluster.sim.spawn(spin(5.0), name="clock")
    cluster.sim.run_all([p])
    assert cluster.failure_board.crashed(1)
    assert cluster.failure_board.crash_time(1) == pytest.approx(2.5)


# ---------------------------------------------------------------------------
# slowdown
# ---------------------------------------------------------------------------

def test_slowdown_is_transient():
    cluster = make_cluster()
    script = FailureScript(time_faults=[
        TimeFault(time=1.0, node=0, action="slowdown", count=3, duration=2.0)])
    cluster.install_failure_script(script)
    seen = []
    cluster.sim.schedule(1.5, lambda: seen.append(len(cluster.nodes[0].background)))
    cluster.sim.schedule(4.0, lambda: seen.append(len(cluster.nodes[0].background)))
    p = cluster.sim.spawn(spin(5.0), name="clock")
    cluster.sim.run_all([p])
    assert seen == [3, 0]


def test_slowdown_without_duration_persists():
    cluster = make_cluster()
    script = FailureScript(time_faults=[
        TimeFault(time=1.0, node=0, action="slowdown", count=2)])
    cluster.install_failure_script(script)
    p = cluster.sim.spawn(spin(5.0), name="clock")
    cluster.sim.run_all([p])
    assert len(cluster.nodes[0].background) == 2


# ---------------------------------------------------------------------------
# kill / inject
# ---------------------------------------------------------------------------

def test_kill_requires_registered_app_procs():
    cluster = make_cluster()
    cluster.install_failure_script(FailureScript(cycle_faults=[
        CycleFault(cycle=0, node=1, action="kill")]))
    with pytest.raises(SimulationError):
        cluster.notify_cycle(0)


def test_kill_terminates_registered_proc():
    cluster = make_cluster()
    victim = cluster.sim.spawn(spin(), name="victim", node=cluster.nodes[1])
    cluster.register_app_proc(1, victim)
    cluster.install_failure_script(FailureScript(time_faults=[
        TimeFault(time=1.0, node=1, action="kill")]))
    clock = cluster.sim.spawn(spin(2.0), name="clock")
    cluster.sim.run_all([clock])
    assert victim.state == ProcState.FAILED
    assert "killed" in str(victim.error)
    assert cluster.failure_board.killed(1) and cluster.failure_board.failed(1)


def test_inject_delivers_catchable_fault():
    cluster = make_cluster()
    log = []

    def victim_prog():
        try:
            yield Sleep(1000.0)
        except InjectedFault:
            log.append("caught")

    victim = cluster.sim.spawn(victim_prog(), name="victim",
                               node=cluster.nodes[0])
    cluster.register_app_proc(0, victim)
    cluster.install_failure_script(FailureScript(time_faults=[
        TimeFault(time=1.0, node=0, action="inject")]))
    clock = cluster.sim.spawn(spin(2.0), name="clock")
    cluster.sim.run_all([clock, victim])
    assert log == ["caught"]
    assert victim.state == ProcState.DONE


# ---------------------------------------------------------------------------
# partition / heal
# ---------------------------------------------------------------------------

def test_partition_holds_and_heal_retransmits():
    cluster = make_cluster(4)
    net = cluster.network
    script = FailureScript(time_faults=[
        TimeFault(time=1.0, node=0, action="partition", peers=(1,)),
        TimeFault(time=3.0, node=0, action="heal"),
    ])
    cluster.install_failure_script(script)
    delivered = []
    # sent while partitioned: {0,1} vs {2,3}
    cluster.sim.schedule(
        2.0, lambda: net.transmit(0, 2, 1000, lambda: delivered.append(("x", cluster.sim.now))))
    cluster.sim.schedule(
        2.0, lambda: net.transmit(0, 1, 1000, lambda: delivered.append(("i", cluster.sim.now))))
    probe = []
    cluster.sim.schedule(2.5, lambda: probe.append((net.partitioned, net.n_held)))
    clock = cluster.sim.spawn(spin(5.0), name="clock")
    cluster.sim.run_all([clock])
    # intra-island traffic flowed; the crossing message waited for heal
    assert probe == [(True, 1)]
    kinds = dict(delivered)
    assert kinds["i"] < 3.0
    assert kinds["x"] >= 3.0
    assert not net.partitioned and net.n_held == 0


def test_partition_validates_island():
    cluster = make_cluster()
    script = FailureScript(time_faults=[
        TimeFault(time=0.5, node=99, action="partition")])
    cluster.install_failure_script(script)
    clock = cluster.sim.spawn(spin(1.0), name="clock")
    with pytest.raises(SimulationError):
        cluster.sim.run_all([clock])
