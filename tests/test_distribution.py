"""Tests for block/cyclic distributions and share-to-block conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    BlockDistribution,
    CyclicDistribution,
    shares_to_blocks,
)
from repro.errors import DistributionError


def test_even_block_distribution():
    d = BlockDistribution.even(10, 3)
    assert d.bounds == ((0, 3), (4, 6), (7, 9))
    assert d.count_of(0) == 4
    assert list(d.rows_of(1)) == [4, 5, 6]
    assert d.owner_of(0) == 0 and d.owner_of(9) == 2


def test_even_with_more_parts_than_rows():
    d = BlockDistribution.even(2, 4)
    assert d.bounds == ((0, 0), (1, 1), None, None)
    assert d.count_of(2) == 0
    assert list(d.rows_of(3)) == []


def test_block_validation():
    with pytest.raises(DistributionError):
        BlockDistribution(10, ((0, 4), (6, 9)))  # gap
    with pytest.raises(DistributionError):
        BlockDistribution(10, ((0, 4), (3, 9)))  # overlap
    with pytest.raises(DistributionError):
        BlockDistribution(10, ((0, 8),))  # incomplete
    with pytest.raises(DistributionError):
        BlockDistribution(10, ((0, 10),))  # out of range
    with pytest.raises(DistributionError):
        BlockDistribution(0, ())


def test_owner_array_matches_owner_of():
    d = BlockDistribution(7, ((0, 2), None, (3, 6)))
    owners = d.owner_array()
    for row in range(7):
        assert owners[row] == d.owner_of(row)


def test_owner_of_out_of_range():
    d = BlockDistribution.even(5, 2)
    with pytest.raises(DistributionError):
        d.owner_of(5)


def test_cyclic_distribution():
    d = CyclicDistribution(10, 3)
    assert list(d.rows_of(0)) == [0, 3, 6, 9]
    assert list(d.rows_of(2)) == [2, 5, 8]
    assert d.count_of(0) == 4 and d.count_of(1) == 3
    assert d.owner_of(7) == 1
    owners = d.owner_array()
    assert all(owners[r] == r % 3 for r in range(10))
    with pytest.raises(DistributionError):
        d.rows_of(3)
    with pytest.raises(DistributionError):
        d.owner_of(-1)


def test_shares_to_blocks_uniform_weights():
    d = shares_to_blocks(100, [0.25, 0.5, 0.25])
    counts = [d.count_of(r) for r in range(3)]
    assert sum(counts) == 100
    assert counts[1] > counts[0] and counts[1] > counts[2]
    assert abs(counts[0] - 25) <= 1 and abs(counts[1] - 50) <= 1


def test_shares_to_blocks_weighted_rows():
    # first half of the rows carries 10x the work: an equal-share split
    # must give the first participant far fewer rows
    weights = np.ones(100)
    weights[:50] = 10.0
    d = shares_to_blocks(100, [0.5, 0.5], row_weights=weights)
    c0, c1 = d.count_of(0), d.count_of(1)
    assert c0 + c1 == 100
    assert c0 < 35  # ~27.5 rows carry half the work
    # work actually carried is near-even
    w0 = weights[list(d.rows_of(0))].sum()
    assert w0 == pytest.approx(weights.sum() / 2, rel=0.05)


def test_shares_to_blocks_zero_share_gets_no_rows():
    d = shares_to_blocks(10, [0.5, 0.0, 0.5])
    assert d.count_of(1) == 0
    assert d.count_of(0) + d.count_of(2) == 10


def test_shares_to_blocks_validation():
    with pytest.raises(DistributionError):
        shares_to_blocks(10, [])
    with pytest.raises(DistributionError):
        shares_to_blocks(10, [-0.5, 1.5])
    with pytest.raises(DistributionError):
        shares_to_blocks(10, [0.0, 0.0])
    with pytest.raises(DistributionError):
        shares_to_blocks(10, [1.0], row_weights=np.ones(5))


def test_paper_cg_distribution_shape():
    """The 4-node CG narrative: shares 2/7,2/7,2/7,1/7 over 14000 rows."""
    d = shares_to_blocks(14000, [2 / 7, 2 / 7, 2 / 7, 1 / 7])
    counts = [d.count_of(r) for r in range(4)]
    assert sum(counts) == 14000
    assert counts[3] == pytest.approx(2000, abs=2)
    for c in counts[:3]:
        assert c == pytest.approx(4000, abs=2)


@given(
    n_rows=st.integers(1, 200),
    shares=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_shares_to_blocks_always_tiles(n_rows, shares):
    if sum(shares) <= 0:
        shares = [s + 0.1 for s in shares]
    d = shares_to_blocks(n_rows, shares)
    assert sum(d.count_of(r) for r in range(d.n_parts)) == n_rows
    owners = d.owner_array()
    # owners non-decreasing (blocks in rank order)
    assert np.all(np.diff(owners) >= 0)


@given(
    n_rows=st.integers(1, 120),
    n_parts=st.integers(1, 10),
)
@settings(max_examples=100, deadline=None)
def test_even_partition_is_balanced(n_rows, n_parts):
    d = BlockDistribution.even(n_rows, n_parts)
    counts = [d.count_of(r) for r in range(n_parts)]
    assert sum(counts) == n_rows
    assert max(counts) - min(counts) <= 1
