"""AST lint tests: each DYN code, suppression, zone scoping, the CLI
gate, and the acceptance check that the real tree is clean."""

import pathlib
import textwrap

from repro.analysis.lint import lint_file, lint_paths, lint_source

SRC_ROOT = pathlib.Path(__file__).parent.parent / "src"


def lint(code, *, zone=False):
    return lint_source(textwrap.dedent(code), deterministic_zone=zone)


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# DYN001 / DYN002: undriven generator endpoint calls
# ----------------------------------------------------------------------

def test_bare_endpoint_send_is_caught():
    findings = lint("""
        def program(ep):
            ep.send(1, tag=0, payload="lost")
            yield from ep.recv(1, tag=1)
    """)
    assert codes(findings) == ["DYN001"]
    assert "ep.send(...)" in findings[0].message
    assert "yield from" in findings[0].message


def test_bare_collective_call_is_caught():
    findings = lint("""
        def program(ep):
            barrier(ep, group)
            yield from bcast(ep, group, None, root=0)
    """)
    assert codes(findings) == ["DYN001"]


def test_yield_instead_of_yield_from_is_caught():
    findings = lint("""
        def program(ep):
            data, _ = yield ep.recv(0, tag=1)
    """)
    assert codes(findings) == ["DYN002"]


def test_driven_calls_are_clean():
    findings = lint("""
        def program(ep):
            yield from ep.send(1, tag=0, payload="ok")
            data, _ = yield from ep.recv(1, tag=1)
            gen = ep.send(1, tag=2, payload="kept")  # assigned, not dropped
            yield from gen
    """)
    assert findings == []


def test_unrelated_methods_named_send_do_not_fire_on_yield():
    # ep.send(...) as a *driven* generator or non-endpooint contexts
    findings = lint("""
        def f(sock):
            return sock.sendall(b"x")
    """)
    assert findings == []


# ----------------------------------------------------------------------
# DYN101: nondeterminism in deterministic zones
# ----------------------------------------------------------------------

def test_wallclock_flagged_only_in_zone():
    code = """
        import time
        def stamp():
            return time.time()
    """
    assert codes(lint(code, zone=True)) == ["DYN101"]
    assert lint(code, zone=False) == []


def test_random_module_flagged_in_zone():
    findings = lint("""
        import random
        def pick(xs):
            return random.choice(xs)
    """, zone=True)
    assert codes(findings) == ["DYN101", "DYN101"]  # import + call


def test_from_random_import_tracked():
    findings = lint("""
        from random import choice
        def pick(xs):
            return choice(xs)
    """, zone=True)
    assert codes(findings) == ["DYN101", "DYN101"]


def test_numpy_global_random_flagged_alias_aware():
    findings = lint("""
        import numpy as np
        def noise(n):
            return np.random.rand(n)
    """, zone=True)
    assert codes(findings) == ["DYN101"]
    assert "numpy.random.rand" in findings[0].message


def test_seeded_generator_allowed_unseeded_flagged():
    ok = lint("""
        import numpy as np
        def rng():
            return np.random.default_rng(1234)
    """, zone=True)
    assert ok == []
    bad = lint("""
        import numpy as np
        def rng():
            return np.random.default_rng()
    """, zone=True)
    assert codes(bad) == ["DYN101"]


def test_zone_detected_from_path(tmp_path):
    zone_dir = tmp_path / "simcluster"
    zone_dir.mkdir()
    f = zone_dir / "mod.py"
    f.write_text("import time\nt = time.time()\n")
    assert codes(lint_file(f)) == ["DYN101"]
    outside = tmp_path / "mod.py"
    outside.write_text("import time\nt = time.time()\n")
    assert lint_file(outside) == []


# ----------------------------------------------------------------------
# DYN201: mutable dataclass defaults
# ----------------------------------------------------------------------

def test_mutable_dataclass_defaults_flagged():
    findings = lint("""
        from dataclasses import dataclass, field
        import numpy as np

        @dataclass
        class Bad:
            xs: list = []
            table: dict = {}
            buf = np.zeros(4)  # un-annotated: not a field, ignored
            arr: object = np.zeros(4)

        @dataclass
        class Good:
            xs: list = field(default_factory=list)
            n: int = 3
    """)
    assert codes(findings) == ["DYN201", "DYN201", "DYN201"]


def test_non_dataclass_defaults_ignored():
    findings = lint("""
        class Plain:
            xs: list = []
    """)
    assert findings == []


# ----------------------------------------------------------------------
# DYN301: ad-hoc fault injection in library code
# ----------------------------------------------------------------------

FAULTY = """
    def excise(sim, proc):
        sim.inject(proc, RuntimeError("zap"))
        sim.kill(proc)
"""


def test_bare_kill_and_inject_flagged_in_library_zone():
    findings = lint_source(textwrap.dedent(FAULTY),
                           fault_injection_zone=True)
    assert codes(findings) == ["DYN301", "DYN301"]
    assert "sim.inject(...)" in findings[0].message
    assert "FailureScript" in findings[0].message
    # outside the zone (tests, examples, benchmarks) it is fine
    assert lint_source(textwrap.dedent(FAULTY)) == []


def test_dyn301_suppressible():
    findings = lint_source(textwrap.dedent("""
        def hard_stop(sim, proc):
            sim.kill(proc)  # dynsan: ok
    """), fault_injection_zone=True)
    assert findings == []


def test_dyn301_zone_detected_from_path(tmp_path):
    lib = tmp_path / "repro" / "core"
    lib.mkdir(parents=True)
    exempt = tmp_path / "repro" / "resilience"
    exempt.mkdir()
    outside = tmp_path / "tests"
    outside.mkdir()
    code = "def f(sim, p):\n    sim.kill(p)\n"
    (lib / "mod.py").write_text(code)
    (exempt / "mod.py").write_text(code)
    (outside / "mod.py").write_text(code)
    assert codes(lint_file(lib / "mod.py")) == ["DYN301"]
    assert lint_file(exempt / "mod.py") == []
    assert lint_file(outside / "mod.py") == []


# ----------------------------------------------------------------------
# DYN401: per-row set arithmetic on data-plane hot paths
# ----------------------------------------------------------------------

ROWY = """
    def owned(b):
        return set(range(b[0], b[1] + 1))

    def ghosts(lo, hi, held):
        return [g for g in range(lo, hi + 1) if g not in held]

    def stale(lo, hi, keep):
        return {g for g in range(lo, hi) if g in keep}
"""


def test_dyn401_flags_row_loops_in_zone():
    findings = lint_source(textwrap.dedent(ROWY), row_membership_zone=True)
    assert codes(findings) == ["DYN401", "DYN401", "DYN401"]
    assert "IntervalSet" in findings[0].message
    # outside core/resilience the same code is fine
    assert lint_source(textwrap.dedent(ROWY)) == []


def test_dyn401_allows_rank_space_and_unfiltered_loops():
    findings = lint_source(textwrap.dedent("""
        def alive(n, dead):
            return set(range(n)) - set(dead)       # rank space: 1-arg range

        def widths(lo, hi):
            return [g * 2 for g in range(lo, hi)]  # no membership filter

        def lazy(lo, hi, held):
            return (g for g in range(lo, hi) if g in held)  # genexp
    """), row_membership_zone=True)
    assert findings == []


def test_dyn401_suppressible():
    findings = lint_source(textwrap.dedent("""
        def owned(b):
            return set(range(b[0], b[1] + 1))  # dynsan: ok
    """), row_membership_zone=True)
    assert findings == []


def test_dyn401_zone_and_reference_exemption(tmp_path):
    code = "def owned(b):\n    return set(range(b[0], b[1] + 1))\n"
    zone = tmp_path / "core"
    zone.mkdir()
    (zone / "mod.py").write_text(code)
    (zone / "reference.py").write_text(code)
    res = tmp_path / "resilience"
    res.mkdir()
    (res / "mod.py").write_text(code)
    outside = tmp_path / "bench"
    outside.mkdir()
    (outside / "mod.py").write_text(code)
    assert codes(lint_file(zone / "mod.py")) == ["DYN401"]
    assert lint_file(zone / "reference.py") == []   # the set oracle
    assert codes(lint_file(res / "mod.py")) == ["DYN401"]
    assert lint_file(outside / "mod.py") == []


# ----------------------------------------------------------------------
# DYN601: ad-hoc instrumentation in library code
# ----------------------------------------------------------------------

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"


def test_dyn601_fixture_findings():
    src = (FIXTURES / "instrumented_module.py").read_text()
    findings = lint_source(src, "instrumented_module.py",
                           instrumentation_zone=True)
    assert codes(findings) == ["DYN601"] * 3
    messages = [f.message for f in findings]
    assert "print" in messages[0]
    assert "time.perf_counter" in messages[1]
    assert "time.time" in messages[2]          # via the from-import alias
    # the same file is clean outside the zone (that is why it may sit
    # under tests/ without tripping the CI lint gate)
    assert lint_source(src, "instrumented_module.py") == []


def test_dyn601_suppressible():
    findings = lint_source(textwrap.dedent("""
        import time
        t0 = time.monotonic()  # dynsan: ok
        print("progress")  # dynsan: ok
    """), instrumentation_zone=True)
    assert findings == []


def test_dyn601_time_family_defers_to_dyn101_in_deterministic_zone():
    code = textwrap.dedent("""
        import time
        def stamp():
            return time.time()
    """)
    both = lint_source(code, deterministic_zone=True,
                       instrumentation_zone=True)
    assert codes(both) == ["DYN101"]  # no double report
    # print stays DYN601 even inside a deterministic zone
    noisy = lint_source("print('hi')\n", deterministic_zone=True,
                        instrumentation_zone=True)
    assert codes(noisy) == ["DYN601"]


def test_dyn601_sleep_and_fstrings_not_flagged():
    findings = lint_source(textwrap.dedent("""
        import time
        def pace():
            time.sleep(0.1)
            return f"n={1 + 1}"
    """), instrumentation_zone=True)
    assert findings == []


def test_dyn601_zone_detected_from_path(tmp_path):
    code = "print('chatty library')\n"
    cases = {
        "repro/core/mod.py": True,
        "repro/apps/jacobi.py": True,
        "repro/obs/recorder.py": False,       # instrumentation home
        "repro/sysmon/timers.py": False,      # instrumentation home
        "repro/analysis/flow/driver.py": False,  # dynflow budget is wallclock
        "repro/obs/__main__.py": False,       # CLI entry point
        "repro/experiments/report.py": False,  # report formatter
        "benchmarks/bench_fig4.py": False,    # not under repro
    }
    for rel, expect in cases.items():
        f = tmp_path / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(code)
        found = codes(lint_file(f))
        assert found == (["DYN601"] if expect else []), rel


# ----------------------------------------------------------------------
# suppression + syntax errors
# ----------------------------------------------------------------------

def test_suppression_comment():
    findings = lint("""
        def program(ep):
            ep.send(1, tag=0, payload="x")  # dynsan: ok
            yield from ep.recv(1, tag=1)
    """)
    assert findings == []


def test_syntax_error_reported_as_dyn000():
    findings = lint_source("def f(:\n", path="broken.py")
    assert codes(findings) == ["DYN000"]


# ----------------------------------------------------------------------
# the gates: real tree is clean; CLI exit codes
# ----------------------------------------------------------------------

def test_src_tree_is_clean():
    findings = lint_paths([SRC_ROOT])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_clean_and_dirty(tmp_path, capsys):
    from repro.analysis.__main__ import main

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "lint: clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "def program(ep):\n"
        "    ep.send(1, tag=0, payload='lost')\n"
        "    yield from ep.recv(1, tag=1)\n"
    )
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DYN001" in out and "dirty.py:2" in out


# ----------------------------------------------------------------------
# DYN801: process-level parallelism outside repro.campaign
# ----------------------------------------------------------------------

def test_dyn801_fixture_findings():
    src = (FIXTURES / "process_module.py").read_text()
    findings = lint_source(src, "process_module.py", process_zone=True)
    assert codes(findings) == ["DYN801"] * 3
    assert "multiprocessing" in findings[0].message
    assert "concurrent.futures" in findings[1].message
    assert "subprocess" in findings[2].message
    # the aliased import on the suppressed line must not be reported,
    # and the whole file is clean outside the zone
    assert lint_source(src, "process_module.py") == []


def test_dyn801_zone_boundaries(tmp_path):
    code = "import multiprocessing\n"
    lib = tmp_path / "repro" / "runtime"
    lib.mkdir(parents=True)
    (lib / "mod.py").write_text(code)
    camp = tmp_path / "repro" / "campaign"
    camp.mkdir()
    (camp / "engine.py").write_text(code)
    outside = tmp_path / "tests"
    outside.mkdir()
    (outside / "mod.py").write_text(code)
    assert codes(lint_file(lib / "mod.py")) == ["DYN801"]
    assert lint_file(camp / "engine.py") == []       # the sanctioned home
    assert lint_file(outside / "mod.py") == []       # tests are free


def test_dyn801_suppression_is_dyncamp_not_dynsan():
    ok = lint_source("import subprocess  # dyncamp: ok\n",
                     process_zone=True)
    assert ok == []
    # dynsan's own marker does not silence a dyncamp-owned rule
    wrong = lint_source("import subprocess  # dynsan: ok\n",
                        process_zone=True)
    assert codes(wrong) == ["DYN801"]


# ----------------------------------------------------------------------
# DYN901: event-queue manipulation outside simcluster/kernel*.py
# ----------------------------------------------------------------------

def test_dyn901_fixture_findings():
    src = (FIXTURES / "bad_dyn901_heapq.py").read_text()
    findings = lint_source(src, "bad_dyn901_heapq.py", kernel_zone=True)
    assert codes(findings) == ["DYN901"] * 4
    assert "heapq" in findings[0].message
    assert "heapq" in findings[1].message
    assert "sim._heap" in findings[2].message
    assert "sim._heap" in findings[3].message
    # the suppressed alias import must not be reported, and the whole
    # file is clean outside the zone
    assert lint_source(src, "bad_dyn901_heapq.py") == []


def test_dyn901_zone_boundaries(tmp_path):
    code = "import heapq\n"
    lib = tmp_path / "repro" / "runtime"
    lib.mkdir(parents=True)
    (lib / "daemon.py").write_text(code)
    home = tmp_path / "repro" / "simcluster"
    home.mkdir()
    (home / "kernel.py").write_text(code)
    (home / "kernel_reference.py").write_text(code)
    (home / "network.py").write_text(code)
    outside = tmp_path / "tests"
    outside.mkdir()
    (outside / "test_kernel.py").write_text(code)
    assert codes(lint_file(lib / "daemon.py")) == ["DYN901"]
    assert lint_file(home / "kernel.py") == []            # the home
    assert lint_file(home / "kernel_reference.py") == []  # also home
    assert codes(lint_file(home / "network.py")) == ["DYN901"]
    assert lint_file(outside / "test_kernel.py") == []    # tests are free


def test_dyn901_heap_attribute_is_caught():
    findings = lint_source(
        "def drain(sim):\n"
        "    while sim._heap:\n"
        "        sim._heap.pop()\n",
        kernel_zone=True,
    )
    assert codes(findings) == ["DYN901"] * 2
    assert "schedule" in findings[0].message


def test_dyn901_suppression_is_dynkern_not_dynsan():
    ok = lint_source("import heapq  # dynkern: ok\n", kernel_zone=True)
    assert ok == []
    # dynsan's own marker does not silence a dynkern-owned rule
    wrong = lint_source("import heapq  # dynsan: ok\n", kernel_zone=True)
    assert codes(wrong) == ["DYN901"]


# ----------------------------------------------------------------------
# DYN1101: farm-protocol access outside repro.farm / repro.mpi.rma
# ----------------------------------------------------------------------

def test_dyn1101_fixture_findings():
    src = (FIXTURES / "bad_dyn1101_farm.py").read_text()
    findings = lint_source(src, "bad_dyn1101_farm.py", farm_zone=True)
    assert codes(findings) == ["DYN1101"] * 3
    assert "211" in findings[0].message
    assert "213" in findings[1].message
    assert "Window" in findings[2].message
    # suppressed lines, out-of-band tags, and the whole file outside
    # the zone are all clean
    assert lint_source(src, "bad_dyn1101_farm.py") == []


def test_dyn1101_zone_boundaries(tmp_path):
    code = "def f(ep):\n    yield from ep.send(0, 212, None)\n"
    lib = tmp_path / "repro" / "apps"
    lib.mkdir(parents=True)
    (lib / "rogue.py").write_text(code)
    farm_home = tmp_path / "repro" / "farm"
    farm_home.mkdir()
    (farm_home / "runtime.py").write_text(code)
    rma_home = tmp_path / "repro" / "mpi"
    rma_home.mkdir()
    (rma_home / "rma.py").write_text(code)
    (rma_home / "comm.py").write_text(code)
    outside = tmp_path / "tests"
    outside.mkdir()
    (outside / "test_farm.py").write_text(code)
    assert codes(lint_file(lib / "rogue.py")) == ["DYN1101"]
    assert lint_file(farm_home / "runtime.py") == []   # the farm home
    assert lint_file(rma_home / "rma.py") == []        # the RMA home
    assert codes(lint_file(rma_home / "comm.py")) == ["DYN1101"]
    assert lint_file(outside / "test_farm.py") == []   # tests are free


def test_dyn1101_window_and_keyword_tags_caught():
    findings = lint_source(
        "def f(comm, ep):\n"
        "    w = Window(comm, 8)\n"
        "    yield from ep.recv(0, tag=215)\n",
        farm_zone=True,
    )
    assert codes(findings) == ["DYN1101"] * 2
    assert "Window" in findings[0].message
    assert "215" in findings[1].message


def test_dyn1101_suppression_is_dynfarm_not_dynsan():
    ok = lint_source("def f(ep):\n"
                     "    yield from ep.send(0, 211, None)  # dynfarm: ok\n",
                     farm_zone=True)
    assert ok == []
    # dynsan's own marker does not silence a dynfarm-owned rule
    wrong = lint_source("def f(ep):\n"
                        "    yield from ep.send(0, 211, None)  # dynsan: ok\n",
                        farm_zone=True)
    assert codes(wrong) == ["DYN1101"]
