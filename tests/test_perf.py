"""dynperf tests: hot-zone inference (path roots, the ``# dynperf:
hot`` directive, heat propagation through loops and ``self.`` calls),
every DYN100x code on its seeded-bad fixture, the acceptance check
that the real tree is clean, suppression + baseline handling, profile
re-ranking, the shared zone registry, and the CLI exit-code/JSON
contract."""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.flow.callgraph import load_registry
from repro.analysis.perf import analyze_perf_paths, run_perf
from repro.analysis.perf.hotzone import (
    HEAT_CAP,
    infer_hot_zone,
    load_profile,
)
from repro.analysis.zones import ZONES, suppress_mark_for

ROOT = pathlib.Path(__file__).parent.parent
SRC = ROOT / "src"
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "perf"
ENV = {"PYTHONPATH": str(SRC)}


def analyze_source(tmp_path, code, name="prog.py"):
    f = tmp_path / name
    f.write_text(textwrap.dedent(code))
    findings, _zone = analyze_perf_paths([f])
    return findings


def zone_of(tmp_path, code, name="prog.py"):
    f = tmp_path / name
    f.write_text(textwrap.dedent(code))
    return load_registry([f]), infer_hot_zone(load_registry([f]))


def codes(findings):
    return sorted(f.code for f in findings)


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=ENV, cwd=ROOT,
    )


# ----------------------------------------------------------------------
# hot-zone inference
# ----------------------------------------------------------------------

def test_directive_marks_root(tmp_path):
    _reg, zone = zone_of(tmp_path, """
        def cold(x):
            return x + 1

        def hot(events):  # dynperf: hot
            return len(events)
    """)
    kinds = {hf.info.qualname: hf.kind for hf in zone.functions.values()}
    assert kinds == {"hot": "directive"}


def test_heat_propagates_with_loop_depth(tmp_path):
    _reg, zone = zone_of(tmp_path, """
        def helper(x):
            return x * 2

        def shallow(x):
            return helper(x)

        def hot(events):  # dynperf: hot
            total = 0
            for ev in events:
                for part in ev:
                    total += helper(part)
            return shallow(total)
    """)
    heats = {hf.info.qualname: hf.heat for hf in zone.functions.values()}
    assert heats["hot"] == 1
    assert heats["helper"] == 3      # called at loop depth 2 from heat 1
    assert heats["shallow"] == 1     # called outside any loop
    via = {hf.info.qualname: hf.via for hf in zone.functions.values()}
    assert via["helper"] == "hot"


def test_heat_caps_and_recursion_terminates(tmp_path):
    _reg, zone = zone_of(tmp_path, """
        def spin(xs):  # dynperf: hot
            for a in xs:
                for b in a:
                    for c in b:
                        for d in c:
                            for e in d:
                                for f in e:
                                    spin(f)
    """)
    heats = {hf.info.qualname: hf.heat for hf in zone.functions.values()}
    assert heats["spin"] == HEAT_CAP


def test_self_method_calls_propagate(tmp_path):
    _reg, zone = zone_of(tmp_path, """
        class Engine:
            def step(self, events):  # dynperf: hot
                for ev in events:
                    self.apply(ev)

            def apply(self, ev):
                return ev

            def unrelated(self):
                return None
    """)
    quals = {hf.info.qualname for hf in zone.functions.values()}
    assert quals == {"Engine.step", "Engine.apply"}
    heats = {hf.info.qualname: hf.heat for hf in zone.functions.values()}
    assert heats["Engine.apply"] == 2


def test_real_tree_roots_present():
    registry = load_registry([SRC / "repro"])
    zone = infer_hot_zone(registry)
    quals = {
        (hf.info.qualname, hf.kind) for hf in zone.functions.values()
    }
    assert ("SimComm._try_match", "match") in quals
    assert ("DynMPI.end_cycle", "cycle") in quals
    assert any(k == "kernel" for _q, k in quals)
    assert any(k == "nic" for _q, k in quals)
    # the per-cycle path reaches the balancer through call edges only
    reached = {
        hf.info.qualname: hf
        for hf in zone.functions.values() if hf.kind == "reached"
    }
    assert "successive_balance" in reached
    assert reached["successive_balance"].via


def test_ranked_profile_rerank():
    registry = load_registry([SRC / "repro" / "mpi"])
    zone = infer_hot_zone(registry)
    static = zone.ranked()
    boosted = zone.ranked({"comm": 9.0})
    assert {hf.info.qualname for hf in static} == {
        hf.info.qualname for hf in boosted
    }
    # every mpi/ function is comm-phase, so a uniform boost keeps the
    # static order — spot-check determinism instead of a reshuffle
    assert [hf.info.qualname for hf in zone.ranked()] == [
        hf.info.qualname for hf in zone.ranked()
    ]


# ----------------------------------------------------------------------
# rules on fixtures
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fixture,code", [
    ("bad_alloc.py", "DYN1001"),
    ("bad_scan.py", "DYN1002"),
    ("bad_nest.py", "DYN1003"),
    ("bad_invariant.py", "DYN1004"),
    ("bad_except.py", "DYN1005"),
    ("bad_dead.py", "DYN1006"),
])
def test_fixture_trips_rule(fixture, code):
    findings, _zone = analyze_perf_paths([FIXTURES / fixture])
    assert code in codes(findings), codes(findings)


def test_fixture_counts_exact():
    findings, _zone = analyze_perf_paths([FIXTURES / "bad_scan.py"])
    assert codes(findings) == ["DYN1002"] * 3


def test_findings_carry_heat_detail():
    findings, _zone = analyze_perf_paths([FIXTURES / "bad_alloc.py"])
    for f in findings:
        assert f.detail["heat"] >= 2
        assert f.detail["zone_kind"] == "directive"


def test_cold_code_never_flagged(tmp_path):
    # same body as bad_alloc, but no directive and no hot path: silent
    findings = analyze_source(tmp_path, """
        def drain(events):
            total = 0
            for ev in events:
                staged = list(ev.payload)
                total += len(staged)
            return total
    """)
    assert findings == []


# ----------------------------------------------------------------------
# acceptance: the real tree is clean
# ----------------------------------------------------------------------

def test_real_tree_clean():
    findings, zone = analyze_perf_paths([SRC / "repro", ROOT / "examples"])
    assert findings == [], [f.render() for f in findings]
    assert len(zone) > 50  # the hot zone is substantial, not degenerate


# ----------------------------------------------------------------------
# suppression, baselines, zone registry
# ----------------------------------------------------------------------

def test_suppress_same_line(tmp_path):
    findings = analyze_source(tmp_path, """
        def hot(events):  # dynperf: hot
            for ev in events:
                staged = list(ev.payload)  # dynperf: ok
                print(staged)
    """)
    assert "DYN1001" not in codes(findings)


def test_suppress_line_above(tmp_path):
    findings = analyze_source(tmp_path, """
        def hot(events):  # dynperf: hot
            for ev in events:
                # snapshot is semantic here  # dynperf: ok
                staged = list(ev.payload)
                print(staged)
    """)
    assert "DYN1001" not in codes(findings)


def test_baseline_roundtrip(tmp_path):
    baseline = tmp_path / "perf-baseline.json"
    rc = run_perf(
        [FIXTURES / "bad_alloc.py"],
        write_baseline=str(baseline), quiet=True,
    )
    assert rc == 1
    data = json.loads(baseline.read_text())
    assert data["tool"] == "dynperf"
    import io

    out = io.StringIO()
    rc = run_perf(
        [FIXTURES / "bad_alloc.py"],
        baseline=str(baseline), stream=out,
    )
    assert rc == 0
    assert "baselined" in out.getvalue()


def test_zone_registry_routes_suppress_marks():
    assert suppress_mark_for("DYN1003") == "dynperf: ok"
    assert suppress_mark_for("DYN101") == "dynsan: ok"   # not a 10xx code
    assert suppress_mark_for("DYN704") == "dynrace: ok"
    assert suppress_mark_for("DYN901") == "dynkern: ok"
    assert ZONES["perf"].owner == "dynperf"


# ----------------------------------------------------------------------
# profile re-ranking
# ----------------------------------------------------------------------

def _write_trace(tmp_path):
    # two spans on rank track 0: 1s of comm, 3s of compute
    trace = tmp_path / "trace.jsonl"
    trace.write_text("\n".join([
        json.dumps({"ph": "X", "ts": 0.0, "dur": 1.0, "cat": "mpi",
                    "pid": 0, "tid": 0, "name": "send"}),
        json.dumps({"ph": "X", "ts": 1.0, "dur": 3.0, "cat": "compute",
                    "pid": 0, "tid": 0, "name": "cycle.compute"}),
    ]) + "\n")
    return trace


def test_load_profile_shares(tmp_path):
    shares = load_profile(_write_trace(tmp_path))
    assert shares == pytest.approx({"comm": 0.25, "compute": 0.75})


def test_profile_attaches_shares_and_reranks(tmp_path):
    comm_hot = tmp_path / "comm.py"
    comm_hot.write_text(textwrap.dedent("""
        def net_drain(events):  # dynperf: hot
            for ev in events:
                staged = list(ev.payload)
                print(staged)
    """))
    shares = {"comm": 0.9, "other": 0.1}
    findings, _zone = analyze_perf_paths([comm_hot], profile=shares)
    assert findings
    # tmp files land in phase "other"; the share is still recorded
    assert all(f.detail["profile_share"] == 0.1 for f in findings)


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------

def test_cli_clean_exit_zero():
    r = _cli("perf", "src/repro", "examples")
    assert r.returncode == 0, r.stdout + r.stderr
    assert "dynperf: clean" in r.stdout


def test_cli_findings_exit_one_and_json():
    r = _cli("perf", "--json", "tests/fixtures/perf")
    assert r.returncode == 1
    payload = json.loads(r.stdout)
    assert payload["tool"] == "dynperf"
    assert payload["count"] == len(payload["findings"]) > 0
    assert payload["hot_functions"] > 0
    keys = [(f["path"], f["line"], f["code"]) for f in payload["findings"]]
    assert keys == sorted(keys)
    # byte determinism: a second run produces identical output
    r2 = _cli("perf", "--json", "tests/fixtures/perf")
    strip = lambda s: "\n".join(
        l for l in s.splitlines() if "elapsed" not in l
    )
    assert strip(r.stdout) == strip(r2.stdout)


def test_cli_bad_profile_exit_two(tmp_path):
    r = _cli("perf", "--profile", "/nonexistent/trace.json", "src/repro")
    assert r.returncode == 2
    assert "cannot load profile" in r.stderr


def test_cli_profile_reports_shares(tmp_path):
    trace = _write_trace(tmp_path)
    r = _cli("perf", "--json", "--profile", str(trace), "src/repro")
    assert r.returncode == 0, r.stderr
    payload = json.loads(r.stdout)
    assert payload["profile"] == {"comm": 0.25, "compute": 0.75}


def test_cli_max_seconds_budget():
    r = _cli("perf", "--max-seconds", "0.000001", "tests/fixtures/perf")
    assert r.returncode == 2
    assert "over the" in r.stderr
