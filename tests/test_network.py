"""Unit tests for the switched-Ethernet network model."""

import pytest

from repro.config import NetworkSpec
from repro.errors import ConfigError, SimulationError
from repro.simcluster import Simulator
from repro.simcluster.network import Network


def make_net(n=4, latency=1e-4, bandwidth=1e6, **kw):
    sim = Simulator()
    net = Network(sim, NetworkSpec(latency=latency, bandwidth=bandwidth, **kw), n)
    return sim, net


def test_uncontended_delivery_time():
    sim, net = make_net()
    got = []
    t = net.transmit(0, 1, 1000, lambda: got.append(sim.now))
    # cut-through: latency + nbytes/bandwidth
    assert t == pytest.approx(1e-4 + 1e-3)
    sim.run()
    assert got == [pytest.approx(t)]


def test_sender_link_serializes_consecutive_sends():
    sim, net = make_net()
    t1 = net.transmit(0, 1, 10_000, lambda: None)
    t2 = net.transmit(0, 2, 10_000, lambda: None)
    # second message cannot start until the first left the NIC
    assert t2 == pytest.approx(t1 + 0.01)
    sim.run()


def test_receiver_link_serializes_concurrent_senders():
    sim, net = make_net()
    t1 = net.transmit(0, 2, 10_000, lambda: None)
    t2 = net.transmit(1, 2, 10_000, lambda: None)
    assert t2 == pytest.approx(t1 + 0.01)
    sim.run()


def test_disjoint_pairs_do_not_contend():
    sim, net = make_net()
    t1 = net.transmit(0, 1, 10_000, lambda: None)
    t2 = net.transmit(2, 3, 10_000, lambda: None)
    assert t1 == pytest.approx(t2)
    sim.run()


def test_local_delivery_is_fast():
    sim, net = make_net()
    t = net.transmit(1, 1, 1_000_000, lambda: None)
    remote = 1e-4 + 1.0  # what a remote 1 MB transfer would cost
    assert t < remote / 10
    sim.run()


def test_zero_byte_message():
    sim, net = make_net()
    t = net.transmit(0, 1, 0, lambda: None)
    assert t == pytest.approx(1e-4)
    sim.run()


def test_counters_accumulate():
    sim, net = make_net()
    net.transmit(0, 1, 100, lambda: None)
    net.transmit(1, 0, 200, lambda: None)
    assert net.n_messages == 2
    assert net.n_bytes == 300
    sim.run()


def test_invalid_endpoints_rejected():
    sim, net = make_net(n=2)
    with pytest.raises(SimulationError):
        net.transmit(0, 5, 10, lambda: None)
    with pytest.raises(SimulationError):
        net.transmit(-1, 0, 10, lambda: None)
    with pytest.raises(SimulationError):
        net.transmit(0, 1, -5, lambda: None)


def test_cpu_cost_formula():
    sim, net = make_net(cpu_per_msg=500.0, cpu_per_byte=0.25)
    assert net.cpu_cost(1000) == pytest.approx(500 + 250)
    assert net.wire_time(1000) == pytest.approx(1e-4 + 1e-3)


def test_spec_validation():
    with pytest.raises(ConfigError):
        NetworkSpec(bandwidth=0)
    with pytest.raises(ConfigError):
        NetworkSpec(latency=-1)
    with pytest.raises(ConfigError):
        NetworkSpec(cpu_per_byte=-0.1)
    with pytest.raises(ConfigError):
        NetworkSpec(eager_threshold=-1)
    with pytest.raises(ConfigError):
        NetworkSpec(recv_mode="psychic")


def test_sender_free_time_reflects_backlog():
    sim, net = make_net()
    net.transmit(0, 1, 10_000, lambda: None)  # occupies out-link 10 ms
    t_free = net.sender_free_time(0, 10_000)
    assert t_free == pytest.approx(0.02)
    sim.run()


# -- dynkern: partitions, heal, and bulk transmit ---------------------------


def test_partition_holds_and_heal_reinjects():
    sim, net = make_net()
    got = []
    net.partition({1})
    t = net.transmit(0, 1, 1000, lambda: got.append(sim.now))
    assert t == float("inf")
    assert net.partitioned and net.n_held == 1
    sim.run()
    assert got == []  # held, not delivered, not dropped
    net.heal()
    assert not net.partitioned and net.n_held == 0
    sim.run()
    assert len(got) == 1


def test_heal_counts_each_message_once():
    # the count-once contract: a message held across a partition was
    # already counted at submission; heal() must not recount it
    sim, net = make_net()
    net.partition({1})
    for _ in range(5):
        net.transmit(0, 1, 100, lambda: None)
    assert (net.n_messages, net.n_bytes) == (5, 500)
    net.heal()
    assert (net.n_messages, net.n_bytes) == (5, 500)
    sim.run()
    assert (net.n_messages, net.n_bytes) == (5, 500)


def test_partition_inside_island_still_flows():
    sim, net = make_net()
    got = []
    net.partition({2, 3})
    net.transmit(2, 3, 100, lambda: got.append("island"))
    net.transmit(0, 1, 100, lambda: got.append("mainland"))
    sim.run()
    assert sorted(got) == ["island", "mainland"]
    assert net.n_held == 0


def test_transmit_many_equals_sequential_transmits():
    # bit-for-bit: the bulk path must produce the same delivery times
    # and counters as the equivalent loop of transmit() calls
    msgs = [(src, dst, 1000 + 137 * i, lambda: None)
            for i, (src, dst) in enumerate(
                (s, d) for s in range(4) for d in range(4))]

    sim_a, net_a = make_net()
    times_a = [net_a.transmit(s, d, nb, cb) for s, d, nb, cb in msgs]

    sim_b, net_b = make_net()
    times_b = net_b.transmit_many(msgs)

    assert times_a == times_b  # exact float equality, no approx
    assert net_a.n_messages == net_b.n_messages
    assert net_a.n_bytes == net_b.n_bytes
    assert net_a._out_free == net_b._out_free
    assert net_a._in_free == net_b._in_free
    sim_a.run()
    sim_b.run()


def test_transmit_many_holds_across_partition():
    sim, net = make_net()
    net.partition({3})
    msgs = [(0, 1, 100, lambda: None), (0, 3, 100, lambda: None),
            (2, 3, 100, lambda: None), (1, 2, 100, lambda: None)]
    times = net.transmit_many(msgs)
    assert times[1] == float("inf") and times[2] == float("inf")
    assert times[0] != float("inf") and times[3] != float("inf")
    assert net.n_held == 2
    assert net.n_messages == 4  # counted at submission, held or not
    net.heal()
    assert net.n_messages == 4
    sim.run()
