"""Property-based tests (hypothesis) for the memory substrate:
pack/unpack round trips, hold/drop invariants, and the
projection-vs-contiguous accounting ordering."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmem import ContiguousArray, MemCostModel, ProjectedArray, SparseMatrix

row_sets = st.sets(st.integers(min_value=0, max_value=39), min_size=1, max_size=40)


@given(rows=row_sets, data=st.data())
@settings(max_examples=60, deadline=None)
def test_dense_pack_unpack_roundtrip(rows, data):
    rows = sorted(rows)
    src = ProjectedArray("src", (40, 3))
    dst = ProjectedArray("dst", (40, 3))
    src.hold(rows)
    values = {}
    for g in rows:
        vec = data.draw(
            st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=3, max_size=3)
        )
        src.row(g)[:] = vec
        values[g] = np.array(vec)
    payload, nbytes = src.pack(rows)
    assert nbytes == len(rows) * src.row_nbytes
    dst.unpack(rows, payload)
    for g in rows:
        assert np.array_equal(dst.row(g), values[g])


@given(held=row_sets, keep=row_sets)
@settings(max_examples=60, deadline=None)
def test_dense_retarget_invariants(held, keep):
    a = ProjectedArray("a", (40, 2))
    a.hold(held)
    a.retarget(keep)
    # exactly the intersection survives
    assert set(a.held_rows()) == held & keep
    # surviving rows never got copied
    assert a.stats.bytes_copied == 0


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 9),            # row
            st.integers(0, 9),            # col
            st.floats(-100, 100, allow_nan=False),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_sparse_matches_dense_reference(ops):
    s = SparseMatrix("s", (10, 10))
    s.hold(range(10))
    ref = np.zeros((10, 10))
    for r, c, v in ops:
        s.set(r, c, v)
        ref[r, c] = v
    for r in range(10):
        for c in range(10):
            assert s.get(r, c) == ref[r, c]
        assert s.row_nnz(r) == np.count_nonzero(ref[r])


@given(rows=st.lists(st.integers(0, 19), min_size=1, max_size=20, unique=True),
       data=st.data())
@settings(max_examples=40, deadline=None)
def test_sparse_pack_unpack_roundtrip(rows, data):
    rows = sorted(rows)
    src = SparseMatrix("src", (20, 15))
    src.hold(rows)
    ref = {}
    for g in rows:
        cols = data.draw(st.sets(st.integers(0, 14), max_size=6))
        items = sorted((c, float(c + g)) for c in cols)
        src.set_row_items(g, [c for c, _ in items], [v for _, v in items])
        ref[g] = items
    payload, _ = src.pack(rows)
    dst = SparseMatrix("dst", (20, 15))
    dst.unpack(rows, payload)
    for g in rows:
        assert sorted(dst.row_items(g)) == ref[g]


@given(
    old_lo=st.integers(0, 60), old_len=st.integers(1, 40),
    new_lo=st.integers(0, 60), new_len=st.integers(1, 40),
)
@settings(max_examples=80, deadline=None)
def test_projection_byte_traffic_never_exceeds_contiguous(old_lo, old_len, new_lo, new_len):
    """Figure 3 as an invariant over *byte* traffic: for any block-range
    change, the projection layout copies nothing and allocates only the
    gained rows, while the contiguous layout reallocates the whole new
    block and copies the overlap.  (The projection layout does pay more
    malloc *calls* — one per row — which is the trade the paper accepts
    because its extended rows are large.)"""
    n, width = 100, 16
    old = set(range(old_lo, min(old_lo + old_len, n)))
    new = set(range(new_lo, min(new_lo + new_len, n)))

    proj = ProjectedArray("p", (n, width), materialized=False)
    proj.hold(old)
    cont = ContiguousArray("c", (n, width), materialized=False)
    cont.resize(min(old), max(old))
    p0, c0 = proj.stats.snapshot(), cont.stats.snapshot()

    proj.retarget(new)
    proj.hold(new)
    cont.resize(min(new), max(new))

    pd, cd = proj.stats.delta(p0), cont.stats.delta(c0)
    assert pd.bytes_copied == 0
    assert pd.bytes_copied <= cd.bytes_copied
    assert pd.bytes_allocated == len(new - old) * proj.row_nbytes
    assert pd.bytes_allocated <= cd.bytes_allocated
