"""Property-based tests (hypothesis) for the memory substrate:
pack/unpack round trips, hold/drop invariants, the
projection-vs-contiguous accounting ordering, and slab storage
bitwise-equal to the retired dict-of-rows layout."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet
from repro.core.reference import RowDictStore
from repro.dmem import ContiguousArray, MemCostModel, ProjectedArray, SparseMatrix

row_sets = st.sets(st.integers(min_value=0, max_value=39), min_size=1, max_size=40)


@given(rows=row_sets, data=st.data())
@settings(max_examples=60, deadline=None)
def test_dense_pack_unpack_roundtrip(rows, data):
    rows = sorted(rows)
    src = ProjectedArray("src", (40, 3))
    dst = ProjectedArray("dst", (40, 3))
    src.hold(rows)
    values = {}
    for g in rows:
        vec = data.draw(
            st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=3, max_size=3)
        )
        src.row(g)[:] = vec
        values[g] = np.array(vec)
    payload, nbytes = src.pack(rows)
    assert nbytes == len(rows) * src.row_nbytes
    dst.unpack(rows, payload)
    for g in rows:
        assert np.array_equal(dst.row(g), values[g])


@given(held=row_sets, keep=row_sets)
@settings(max_examples=60, deadline=None)
def test_dense_retarget_invariants(held, keep):
    a = ProjectedArray("a", (40, 2))
    a.hold(held)
    a.retarget(keep)
    # exactly the intersection survives
    assert set(a.held_rows()) == held & keep
    # surviving rows never got copied
    assert a.stats.bytes_copied == 0


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 9),            # row
            st.integers(0, 9),            # col
            st.floats(-100, 100, allow_nan=False),
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_sparse_matches_dense_reference(ops):
    s = SparseMatrix("s", (10, 10))
    s.hold(range(10))
    ref = np.zeros((10, 10))
    for r, c, v in ops:
        s.set(r, c, v)
        ref[r, c] = v
    for r in range(10):
        for c in range(10):
            assert s.get(r, c) == ref[r, c]
        assert s.row_nnz(r) == np.count_nonzero(ref[r])


@given(rows=st.lists(st.integers(0, 19), min_size=1, max_size=20, unique=True),
       data=st.data())
@settings(max_examples=40, deadline=None)
def test_sparse_pack_unpack_roundtrip(rows, data):
    rows = sorted(rows)
    src = SparseMatrix("src", (20, 15))
    src.hold(rows)
    ref = {}
    for g in rows:
        cols = data.draw(st.sets(st.integers(0, 14), max_size=6))
        items = sorted((c, float(c + g)) for c in cols)
        src.set_row_items(g, [c for c, _ in items], [v for _, v in items])
        ref[g] = items
    payload, _ = src.pack(rows)
    dst = SparseMatrix("dst", (20, 15))
    dst.unpack(rows, payload)
    for g in rows:
        assert sorted(dst.row_items(g)) == ref[g]


@given(
    old_lo=st.integers(0, 60), old_len=st.integers(1, 40),
    new_lo=st.integers(0, 60), new_len=st.integers(1, 40),
)
@settings(max_examples=80, deadline=None)
def test_projection_byte_traffic_never_exceeds_contiguous(old_lo, old_len, new_lo, new_len):
    """Figure 3 as an invariant over *byte* traffic: for any block-range
    change, the projection layout copies nothing and allocates only the
    gained rows, while the contiguous layout reallocates the whole new
    block and copies the overlap.  (The projection layout does pay more
    malloc *calls* — one per row — which is the trade the paper accepts
    because its extended rows are large.)"""
    n, width = 100, 16
    old = set(range(old_lo, min(old_lo + old_len, n)))
    new = set(range(new_lo, min(new_lo + new_len, n)))

    proj = ProjectedArray("p", (n, width), materialized=False)
    proj.hold(old)
    cont = ContiguousArray("c", (n, width), materialized=False)
    cont.resize(min(old), max(old))
    p0, c0 = proj.stats.snapshot(), cont.stats.snapshot()

    proj.retarget(new)
    proj.hold(new)
    cont.resize(min(new), max(new))

    pd, cd = proj.stats.delta(p0), cont.stats.delta(c0)
    assert pd.bytes_copied == 0
    assert pd.bytes_copied <= cd.bytes_copied
    assert pd.bytes_allocated == len(new - old) * proj.row_nbytes
    assert pd.bytes_allocated <= cd.bytes_allocated


# ---------------------------------------------------------------------------
# slab storage vs the retired dict-of-rows layout
# ---------------------------------------------------------------------------
def _assert_bitwise_equal(slab: ProjectedArray, ref: RowDictStore):
    assert sorted(slab.held_rows()) == ref.held_rows()
    for g in ref.held_rows():
        assert slab.row(g).tobytes() == ref.row(g).tobytes(), g


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_slab_matches_rowdict_through_ops(data):
    """Random hold/drop/retarget/pack+unpack sequences leave the
    slab-backed array bitwise identical to the dict-of-rows layout."""
    n = 40
    slab = ProjectedArray("s", (n, 3))
    ref = RowDictStore(n, 3)
    other_slab = ProjectedArray("o", (n, 3))
    other_ref = RowDictStore(n, 3)

    for _ in range(data.draw(st.integers(1, 8))):
        op = data.draw(st.sampled_from(["hold", "drop", "retarget", "xfer"]))
        rows = data.draw(st.sets(st.integers(0, n - 1), max_size=15))
        if op == "hold":
            assert slab.hold(rows) == ref.hold(sorted(rows))
            for g in rows:
                val = data.draw(st.floats(-1e6, 1e6, allow_nan=False))
                slab.row(g)[:] = val
                ref.row(g)[:] = val
        elif op == "drop":
            assert slab.drop(rows) == ref.drop(sorted(rows))
        elif op == "retarget":
            slab.retarget(rows)
            ref.retarget(rows)
        else:
            # pack a held subset into the peer pair: the wire format of
            # an interval pack must reproduce the per-row pack bit for
            # bit (redistribute sends interval payloads, unpack fills
            # the receiver's slabs)
            held = IntervalSet.from_rows(ref.held_rows())
            sub = IntervalSet.from_rows(rows) & held
            pay_slab, nb_slab = slab.pack(sub)
            pay_ref, nb_ref = ref.pack(sub.to_rows())
            assert nb_slab == nb_ref
            assert pay_slab.tobytes() == pay_ref.tobytes()
            other_slab.unpack(sub, pay_slab)
            other_ref.unpack(sub.to_rows(), pay_ref)
            _assert_bitwise_equal(other_slab, other_ref)
        _assert_bitwise_equal(slab, ref)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_slab_matches_rowdict_redistribute_recovery_cycle(data):
    """A full redistribute → crash → checkpoint-restore cycle executed
    side by side on slab-backed and dict-of-rows storage ends bitwise
    identical on every rank."""
    n_ranks, n_rows = 3, 24
    cuts = sorted(data.draw(st.lists(st.integers(0, n_rows), min_size=2,
                                     max_size=2)))
    edges = [0, *cuts, n_rows]
    old_bounds = [
        None if edges[i] == edges[i + 1] else (edges[i], edges[i + 1] - 1)
        for i in range(n_ranks)
    ]
    cuts2 = sorted(data.draw(st.lists(st.integers(0, n_rows), min_size=2,
                                      max_size=2)))
    edges2 = [0, *cuts2, n_rows]
    new_bounds = [
        None if edges2[i] == edges2[i + 1] else (edges2[i], edges2[i + 1] - 1)
        for i in range(n_ranks)
    ]

    slabs = [ProjectedArray(f"s{r}", (n_rows, 2)) for r in range(n_ranks)]
    refs = [RowDictStore(n_rows, 2) for _ in range(n_ranks)]
    for r in range(n_ranks):
        own = IntervalSet.from_bounds(old_bounds[r])
        slabs[r].hold(own)
        refs[r].hold(own.to_rows())
        for g in own:
            slabs[r].row(g)[:] = [g * 1.5, r - 0.25]
            refs[r].row(g)[:] = [g * 1.5, r - 0.25]

    # redistribute: the interval send rule on both layouts
    for src in range(n_ranks):
        src_old = IntervalSet.from_bounds(old_bounds[src])
        for dst in range(n_ranks):
            if dst == src:
                continue
            dst_old = IntervalSet.from_bounds(old_bounds[dst])
            send = (IntervalSet.from_bounds(new_bounds[dst]) - dst_old) & src_old
            if not send:
                continue
            pay_s, _ = slabs[src].pack(send)
            pay_r, _ = refs[src].pack(send.to_rows())
            assert pay_s.tobytes() == pay_r.tobytes()
            slabs[dst].unpack(send, pay_s)
            refs[dst].unpack(send.to_rows(), pay_r)
    for r in range(n_ranks):
        keep = IntervalSet.from_bounds(new_bounds[r])
        slabs[r].retarget(keep)
        refs[r].retarget(keep.to_rows())
        _assert_bitwise_equal(slabs[r], refs[r])

    # crash one rank; its buddy restores it from a whole-slab checkpoint
    victim = data.draw(st.integers(0, n_ranks - 1))
    own = IntervalSet.from_bounds(new_bounds[victim])
    ck_s = slabs[victim].pack(own)[0] if own else None
    ck_r = refs[victim].pack(own.to_rows())[0] if own else None
    slabs[victim].retarget(IntervalSet.empty())
    refs[victim].retarget([])
    if own:
        slabs[victim].unpack(own, ck_s)
        refs[victim].unpack(own.to_rows(), ck_r)
    _assert_bitwise_equal(slabs[victim], refs[victim])
