"""Direct unit tests for the redistribution machinery: the needed-rows
derivation (DRSDs + bounds) and the row mover itself, exercised
without the full runtime."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.core import AccessMode, DRSD, NearestNeighbor, Phase, needed_map
from repro.core.redistribute import RedistReport, redistribute
from repro.dmem import MemCostModel, ProjectedArray, SparseMatrix
from repro.errors import RedistributionError
from repro.mpi import Group, run_spmd
from repro.simcluster import Cluster


def make_cluster(n=3):
    return Cluster(ClusterSpec(
        n_nodes=n, node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8),
    ))


def phases_for(n_rows):
    ph = Phase(1, n_rows, NearestNeighbor(row_nbytes=64))
    ph.add_access(DRSD("A", AccessMode.WRITE))
    ph.add_access(DRSD("B", AccessMode.READ, lo_off=-1, hi_off=1))
    return {1: ph}


# ----------------------------------------------------------------------
# needed_map
# ----------------------------------------------------------------------
def test_needed_map_owned_plus_halo():
    phases = phases_for(12)
    bounds = ((0, 3), (4, 7), (8, 11))
    needed = needed_map(phases, bounds, {"A": 12, "B": 12})
    assert needed[0]["A"] == set(range(0, 4))
    assert needed[0]["B"] == set(range(0, 5))       # +1 ghost below
    assert needed[1]["B"] == set(range(3, 9))       # ghosts both sides
    assert needed[2]["B"] == set(range(7, 12))      # clipped at the top


def test_needed_map_empty_participant():
    phases = phases_for(8)
    bounds = ((0, 7), None)
    needed = needed_map(phases, bounds, {"A": 8, "B": 8})
    assert needed[1]["A"] == set()
    assert needed[1]["B"] == set()


def test_needed_map_unregistered_array_raises():
    phases = phases_for(8)
    with pytest.raises(RedistributionError):
        needed_map(phases, ((0, 7),), {"A": 8})  # B missing


def test_needed_map_multiple_phases_union():
    ph1 = Phase(1, 10, NearestNeighbor(row_nbytes=8))
    ph1.add_access(DRSD("A", AccessMode.READ, lo_off=-2, hi_off=0))
    ph2 = Phase(2, 10, NearestNeighbor(row_nbytes=8))
    ph2.add_access(DRSD("A", AccessMode.READ, lo_off=0, hi_off=2))
    needed = needed_map({1: ph1, 2: ph2}, ((3, 6), (7, 9), (0, 2)), {"A": 10})
    # rank 0 owns 3..6; needs 1..6 from ph1, 3..8 from ph2
    assert needed[0]["A"] == set(range(1, 9))


# ----------------------------------------------------------------------
# redistribute (driven through real simulated ranks)
# ----------------------------------------------------------------------
def run_redistribution(old_bounds, new_bounds, n_rows=12, sparse=False):
    cluster = make_cluster(3)
    group = Group([0, 1, 2])
    phases = phases_for(n_rows)
    reports = {}
    final = {}

    def program(ep):
        me = ep.rank
        A = ProjectedArray("A", (n_rows, 2))
        if sparse:
            B = SparseMatrix("B", (n_rows, n_rows))
        else:
            B = ProjectedArray("B", (n_rows, 2))
        arrays = {"A": A, "B": B}
        needed_old = needed_map(phases, old_bounds, {"A": n_rows, "B": n_rows})
        for name, arr in arrays.items():
            arr.hold(needed_old[me][name])
        # stamp owned rows so provenance is checkable
        b = old_bounds[me]
        if b is not None:
            for g in range(b[0], b[1] + 1):
                if sparse:
                    B.set(g, g % n_rows, float(g))
                else:
                    B.row(g)[:] = g
                A.row(g)[:] = g

        needed_new = needed_map(phases, new_bounds, {"A": n_rows, "B": n_rows})
        report = yield from redistribute(
            ep, group, old_bounds, new_bounds, arrays, needed_new,
            MemCostModel(),
        )
        reports[me] = report
        final[me] = arrays

    run_spmd(cluster, program)
    return reports, final


def test_rows_move_to_new_owners_with_data():
    old = ((0, 3), (4, 7), (8, 11))
    new = ((0, 5), (6, 9), (10, 11))
    reports, final = run_redistribution(old, new)
    # rank 0 gained rows 4,5 (previously rank 1's): values preserved
    A0 = final[0]["A"]
    for g in (4, 5):
        assert A0.holds(g)
        assert np.all(A0.row(g) == g)
    # rank 2 dropped rows 8,9
    A2 = final[2]["A"]
    assert not A2.holds(8) and not A2.holds(9)
    assert reports[1].rows_sent > 0
    assert reports[0].rows_received >= 2


def test_halo_rows_fetched_fresh():
    old = ((0, 3), (4, 7), (8, 11))
    new = ((0, 5), (6, 9), (10, 11))
    _, final = run_redistribution(old, new)
    # rank 1's B needs ghost row 5 (owned by rank 0 now, rank 1 before)
    B1 = final[1]["B"]
    assert B1.holds(5) and B1.holds(10)
    assert np.all(B1.row(10) == 10)  # fetched from old owner rank 2


def test_sparse_rows_travel_with_metadata():
    old = ((0, 3), (4, 7), (8, 11))
    new = ((0, 5), (6, 9), (10, 11))
    _, final = run_redistribution(old, new, sparse=True)
    B0 = final[0]["B"]
    assert B0.row_items(4) == [(4, 4.0)]
    assert B0.row_items(5) == [(5, 5.0)]
    B1 = final[1]["B"]
    assert B1.row_items(8) == [(8, 8.0)]


def test_identity_redistribution_moves_only_ghosts():
    """With unchanged bounds, no *owned* rows move; only the read
    halos are refreshed from their owners (they were never owned by
    the holder, so their copies are treated as stale by design)."""
    bounds = ((0, 3), (4, 7), (8, 11))
    reports, _ = run_redistribution(bounds, bounds)
    for rep in reports.values():
        assert rep.per_array_sent.get("A", 0) == 0  # no halo on A
        assert rep.per_array_sent.get("B", 0) <= 2  # one ghost per side
    assert sum(r.rows_sent for r in reports.values()) == 4  # 4 boundary ghosts


def test_drop_style_redistribution_empties_a_rank():
    old = ((0, 3), (4, 7), (8, 11))
    new = ((0, 5), None, (6, 11))
    reports, final = run_redistribution(old, new)
    assert final[1]["A"].n_held == 0
    assert reports[1].rows_sent >= 4 * 2  # both arrays leave rank 1
    total_held = sum(final[r]["A"].n_held for r in range(3))
    assert total_held == 12


def test_mem_work_charged():
    old = ((0, 3), (4, 7), (8, 11))
    new = ((0, 5), (6, 9), (10, 11))
    reports, _ = run_redistribution(old, new)
    assert all(rep.mem_work >= 0 for rep in reports.values())
    assert any(rep.mem_work > 0 for rep in reports.values())


def test_bounds_length_mismatch_raises():
    cluster = make_cluster(2)
    group = Group([0, 1])
    phases = phases_for(8)

    def program(ep):
        A = ProjectedArray("A", (8, 2))
        B = ProjectedArray("B", (8, 2))
        needed = needed_map(phases, ((0, 3), (4, 7)), {"A": 8, "B": 8})
        with pytest.raises(RedistributionError):
            yield from redistribute(
                ep, group, ((0, 7),), ((0, 3), (4, 7)),
                {"A": A, "B": B}, needed, MemCostModel(),
            )
        yield from ()

    run_spmd(cluster, program)
