"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simcluster import (
    Compute,
    ProcState,
    Simulator,
    Sleep,
    Wait,
    WaitAny,
)
from repro.simcluster.kernel import SimProcess
from repro.simcluster.syscalls import Fork


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 2.0


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    t = sim.schedule(1.0, lambda: fired.append(1))
    t.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_sleep_advances_time():
    sim = Simulator()

    def prog():
        yield Sleep(1.5)
        yield Sleep(0.5)
        return "done"

    p = sim.spawn(prog(), name="sleeper")
    sim.run()
    assert p.state == ProcState.DONE
    assert p.result == "done"
    assert sim.now == pytest.approx(2.0)


def test_process_return_value_captured():
    sim = Simulator()

    def prog():
        yield Sleep(0.1)
        return 42

    p = sim.spawn(prog(), name="p")
    sim.run()
    assert p.result == 42


def test_signal_wait_and_fire():
    sim = Simulator()
    sig = sim.signal("s")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append(value)

    sim.spawn(waiter(), name="w")
    sim.schedule(3.0, lambda: sig.fire("hello"))
    sim.run()
    assert got == ["hello"]
    assert sim.now == pytest.approx(3.0)


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    sig = sim.signal("s")
    sig.fire(7)

    def waiter():
        value = yield Wait(sig)
        return value

    p = sim.spawn(waiter(), name="w")
    sim.run()
    assert p.result == 7


def test_signal_double_fire_raises():
    sim = Simulator()
    sig = sim.signal()
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_wait_any_returns_first_index():
    sim = Simulator()
    s1, s2 = sim.signal("a"), sim.signal("b")

    def waiter():
        idx, value = yield WaitAny([s1, s2])
        return (idx, value)

    p = sim.spawn(waiter(), name="w")
    sim.schedule(2.0, lambda: s2.fire("second"))
    sim.schedule(5.0, lambda: s1.fire("first"))
    sim.run()
    assert p.result == (1, "second")


def test_deadlock_detection_lists_blocked():
    sim = Simulator()
    sig = sim.signal()

    def stuck():
        yield Wait(sig)

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck-proc" in str(exc.value)


def test_daemon_does_not_trigger_deadlock():
    sim = Simulator()
    sig = sim.signal()

    def daemon():
        yield Wait(sig)

    sim.spawn(daemon(), name="d", daemon=True)
    sim.run()  # no DeadlockError


def test_compute_without_node_raises():
    sim = Simulator()

    def prog():
        yield Compute(100.0)

    sim.spawn(prog(), name="nonode")
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_garbage_raises():
    sim = Simulator()

    def prog():
        yield "not a syscall"

    sim.spawn(prog(), name="bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates_and_marks_failed():
    sim = Simulator()

    def prog():
        yield Sleep(1.0)
        raise ValueError("boom")

    p = sim.spawn(prog(), name="crash")
    with pytest.raises(ValueError):
        sim.run()
    assert p.state == ProcState.FAILED
    assert isinstance(p.error, ValueError)


def test_fork_starts_child():
    sim = Simulator()
    log = []

    def child():
        yield Sleep(1.0)
        log.append("child")

    def parent():
        c = yield Fork(SimProcess("c", child()))
        yield Wait(c.done_signal)
        log.append("parent")

    sim.spawn(parent(), name="parent")
    sim.run()
    assert log == ["child", "parent"]


def test_done_signal_fires_with_result():
    sim = Simulator()

    def prog():
        yield Sleep(1.0)
        return "ret"

    def watcher(p):
        value = yield Wait(p.done_signal)
        return value

    p = sim.spawn(prog(), name="p")
    w = sim.spawn(watcher(p), name="w")
    sim.run()
    assert w.result == "ret"


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    t = sim.run(until=5.0)
    assert t == 5.0
    assert fired == []


def test_determinism_same_seed_same_trace():
    def build():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i * 7919) % 13 * 0.1, lambda i=i: order.append(i))
        sim.run()
        return order

    assert build() == build()


# -- dynkern: calendar engine ------------------------------------------------

from repro.simcluster.kernel import make_simulator
from repro.simcluster.kernel_reference import ReferenceSimulator


def test_make_simulator_selects_engine():
    assert make_simulator().engine == "calendar"
    assert make_simulator("calendar").engine == "calendar"
    assert isinstance(make_simulator("reference"), ReferenceSimulator)
    assert make_simulator("reference").engine == "reference"
    with pytest.raises(SimulationError):
        make_simulator("fibonacci")


def test_make_simulator_env_default(monkeypatch):
    monkeypatch.setenv("DYNMPI_KERNEL", "reference")
    assert make_simulator().engine == "reference"
    monkeypatch.setenv("DYNMPI_KERNEL", "calendar")
    assert make_simulator().engine == "calendar"
    # an explicit argument beats the environment
    monkeypatch.setenv("DYNMPI_KERNEL", "reference")
    assert make_simulator("calendar").engine == "calendar"


@pytest.mark.parametrize("engine", ["calendar", "reference"])
def test_zero_delay_fifo_interleaves_with_timed(engine):
    # a timed event landing at the same instant as queued call_soon
    # events must honour the global seq order on both engines
    sim = make_simulator(engine)
    order = []
    sim.schedule(1.0, lambda: order.append("timed"))

    def kickoff():
        sim.call_soon(lambda: order.append("soon"))

    sim.schedule(1.0, lambda: kickoff())
    sim.run()
    assert order == ["timed", "soon"]


def test_call_soon_runs_in_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_soon(lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_cancelled_ready_event_skipped():
    sim = Simulator()
    fired = []
    t = sim.call_soon(lambda: fired.append(1))
    sim.call_soon(lambda: fired.append(2))
    t.cancel()
    sim.run()
    assert fired == [2]


def test_tombstone_compaction_bounds_heap():
    # the leak regression: schedule-and-cancel churn must not grow the
    # heap without bound (the pre-dynkern engine kept every tombstone
    # until its deadline)
    sim = Simulator()
    churn = 50_000
    live = sim.schedule(1e9, lambda: None)  # one live far-future timer

    def pump(remaining):
        if remaining:
            t = sim.schedule(1e6, lambda: None)
            t.cancel()
            sim.schedule(1e-6, lambda: pump(remaining - 1))

    pump(churn)
    sim.run(until=1.0)
    # live timers: the 1e9 sentinel (a drained pump leaves no pending
    # tick).  Compaction keeps tombstones below half the heap + floor.
    assert len(sim._heap) < 200, len(sim._heap)
    live.cancel()


def test_reference_engine_keeps_tombstones():
    # documents the leak the calendar engine fixes (and pins the
    # reference engine to the original behaviour)
    sim = make_simulator("reference")
    for _ in range(1000):
        sim.schedule(1e6, lambda: None).cancel()
    sim.run(until=1.0)
    assert len(sim._heap) == 1000


@pytest.mark.parametrize("engine", ["calendar", "reference"])
def test_engines_agree_on_event_order(engine):
    # a mixed workload of timed events, zero-delay cascades and cancels
    # must produce the identical execution order on both engines
    sim = make_simulator(engine)
    order = []

    def cascade(tag, depth):
        order.append((tag, depth, sim.now))
        if depth:
            sim.call_soon(lambda: cascade(tag, depth - 1))

    handles = []
    for i in range(20):
        delay = (i * 7919) % 13 * 0.1
        handles.append(sim.schedule(delay, lambda i=i: cascade(i, i % 4)))
    for i in (3, 7, 11):
        handles[i].cancel()
    sim.run()
    if engine == "calendar":
        test_engines_agree_on_event_order.got = order
    else:
        assert order == test_engines_agree_on_event_order.got


def test_cluster_spec_kernel_selects_engine():
    from repro.config import ClusterSpec, ConfigError as _CE
    from repro.simcluster import Cluster

    ref = Cluster(ClusterSpec(n_nodes=2, kernel="reference"))
    assert ref.sim.engine == "reference"
    cal = Cluster(ClusterSpec(n_nodes=2))
    assert cal.sim.engine == "calendar"
    with pytest.raises(_CE):
        ClusterSpec(n_nodes=2, kernel="quantum")


def test_kill_mid_compute_cancels_cpu_job():
    """A process killed while its Compute is in flight must have that
    CPU job cancelled: the stale completion used to clobber the
    terminal state back to BLOCKED, resume the closed generator, and
    fire ``done_signal`` a second time."""
    from repro.config import ClusterSpec
    from repro.simcluster import Cluster

    cluster = Cluster(ClusterSpec(n_nodes=1))
    sim = cluster.sim
    node = cluster.nodes[0]

    def victim():
        yield Compute(5e8)  # ~5 simulated seconds; killed at t=1
        return "unreachable"

    def bystander():
        # outlives the victim's would-be completion, so a stale CPU
        # callback would fire while the loop is still running
        yield Sleep(20.0)
        return "ok"

    p = sim.spawn(victim(), name="victim", node=node)
    q = sim.spawn(bystander(), name="bystander", node=node)
    sim.schedule(1.0, lambda: sim.kill(p))
    sim.run_all([p, q], tolerate=lambda pr: pr is p)
    assert p.state == ProcState.FAILED
    assert p.cpu_job is None
    assert q.result == "ok"
    # the node's CPU holds no orphaned work for the dead process
    assert all(job.proc is not p for job in node.cpu.runnable_jobs())
