"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simcluster import (
    Compute,
    ProcState,
    Simulator,
    Sleep,
    Wait,
    WaitAny,
)
from repro.simcluster.kernel import SimProcess
from repro.simcluster.syscalls import Fork


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 2.0


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    t = sim.schedule(1.0, lambda: fired.append(1))
    t.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_sleep_advances_time():
    sim = Simulator()

    def prog():
        yield Sleep(1.5)
        yield Sleep(0.5)
        return "done"

    p = sim.spawn(prog(), name="sleeper")
    sim.run()
    assert p.state == ProcState.DONE
    assert p.result == "done"
    assert sim.now == pytest.approx(2.0)


def test_process_return_value_captured():
    sim = Simulator()

    def prog():
        yield Sleep(0.1)
        return 42

    p = sim.spawn(prog(), name="p")
    sim.run()
    assert p.result == 42


def test_signal_wait_and_fire():
    sim = Simulator()
    sig = sim.signal("s")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append(value)

    sim.spawn(waiter(), name="w")
    sim.schedule(3.0, lambda: sig.fire("hello"))
    sim.run()
    assert got == ["hello"]
    assert sim.now == pytest.approx(3.0)


def test_wait_on_already_fired_signal_resumes_immediately():
    sim = Simulator()
    sig = sim.signal("s")
    sig.fire(7)

    def waiter():
        value = yield Wait(sig)
        return value

    p = sim.spawn(waiter(), name="w")
    sim.run()
    assert p.result == 7


def test_signal_double_fire_raises():
    sim = Simulator()
    sig = sim.signal()
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_wait_any_returns_first_index():
    sim = Simulator()
    s1, s2 = sim.signal("a"), sim.signal("b")

    def waiter():
        idx, value = yield WaitAny([s1, s2])
        return (idx, value)

    p = sim.spawn(waiter(), name="w")
    sim.schedule(2.0, lambda: s2.fire("second"))
    sim.schedule(5.0, lambda: s1.fire("first"))
    sim.run()
    assert p.result == (1, "second")


def test_deadlock_detection_lists_blocked():
    sim = Simulator()
    sig = sim.signal()

    def stuck():
        yield Wait(sig)

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck-proc" in str(exc.value)


def test_daemon_does_not_trigger_deadlock():
    sim = Simulator()
    sig = sim.signal()

    def daemon():
        yield Wait(sig)

    sim.spawn(daemon(), name="d", daemon=True)
    sim.run()  # no DeadlockError


def test_compute_without_node_raises():
    sim = Simulator()

    def prog():
        yield Compute(100.0)

    sim.spawn(prog(), name="nonode")
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_garbage_raises():
    sim = Simulator()

    def prog():
        yield "not a syscall"

    sim.spawn(prog(), name="bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates_and_marks_failed():
    sim = Simulator()

    def prog():
        yield Sleep(1.0)
        raise ValueError("boom")

    p = sim.spawn(prog(), name="crash")
    with pytest.raises(ValueError):
        sim.run()
    assert p.state == ProcState.FAILED
    assert isinstance(p.error, ValueError)


def test_fork_starts_child():
    sim = Simulator()
    log = []

    def child():
        yield Sleep(1.0)
        log.append("child")

    def parent():
        c = yield Fork(SimProcess("c", child()))
        yield Wait(c.done_signal)
        log.append("parent")

    sim.spawn(parent(), name="parent")
    sim.run()
    assert log == ["child", "parent"]


def test_done_signal_fires_with_result():
    sim = Simulator()

    def prog():
        yield Sleep(1.0)
        return "ret"

    def watcher(p):
        value = yield Wait(p.done_signal)
        return value

    p = sim.spawn(prog(), name="p")
    w = sim.spawn(watcher(p), name="w")
    sim.run()
    assert w.result == "ret"


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    t = sim.run(until=5.0)
    assert t == 5.0
    assert fired == []


def test_determinism_same_seed_same_trace():
    def build():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i * 7919) % 13 * 0.1, lambda i=i: order.append(i))
        sim.run()
        return order

    assert build() == build()
