"""Tests for the vector-of-lists SparseMatrix and its iterator API."""

import numpy as np
import pytest

from repro.dmem import SparseMatrix
from repro.dmem.sparse import ELEM_STORE_BYTES, ELEM_WIRE_BYTES, ROW_WIRE_BYTES
from repro.errors import AllocationError


def build(n=6, m=8):
    s = SparseMatrix("s", (n, m))
    s.hold(range(n))
    return s


def test_shape_validation():
    with pytest.raises(AllocationError):
        SparseMatrix("s", (0, 5))
    with pytest.raises(AllocationError):
        SparseMatrix("s", (5, 0))


def test_get_default_zero_and_set():
    s = build()
    assert s.get(0, 3) == 0.0
    s.set(0, 3, 2.5)
    assert s.get(0, 3) == 2.5
    s.set(0, 3, 7.0)  # overwrite in place
    assert s.get(0, 3) == 7.0
    assert s.row_nnz(0) == 1


def test_set_zero_removes_element():
    s = build()
    s.set(1, 2, 4.0)
    s.set(1, 2, 0.0)
    assert s.row_nnz(1) == 0
    assert s.get(1, 2) == 0.0
    # setting an absent element to zero is a no-op
    s.set(1, 5, 0.0)
    assert s.row_nnz(1) == 0


def test_bounds_checking():
    s = build(4, 4)
    with pytest.raises(AllocationError):
        s.get(0, 4)
    with pytest.raises(AllocationError):
        s.set(4, 0, 1.0)
    with pytest.raises(AllocationError):
        s.set_row_items(0, [5], [1.0])
    with pytest.raises(AllocationError):
        s.set_row_items(0, [1, 2], [1.0])  # length mismatch


def test_unheld_row_raises():
    s = SparseMatrix("s", (4, 4))
    s.hold([0])
    with pytest.raises(AllocationError):
        s.get(2, 0)


def test_set_row_items_bulk():
    s = build()
    s.set_row_items(2, [1, 3, 5], [1.0, 3.0, 5.0])
    assert s.row_items(2) == [(1, 1.0), (3, 3.0), (5, 5.0)]
    s.set_row_items(2, [0], [9.0])  # replaces wholesale
    assert s.row_items(2) == [(0, 9.0)]


def test_store_accounting():
    s = build()
    s.set(0, 1, 1.0)
    s.set(0, 2, 2.0)
    assert s.held_nbytes == 2 * ELEM_STORE_BYTES
    s.drop([0])
    assert s.held_nbytes == 0
    assert s.stats.bytes_freed >= 2 * ELEM_STORE_BYTES


def test_pack_unpack_roundtrip():
    src = build()
    src.set_row_items(1, [0, 4], [1.5, 4.5])
    src.set_row_items(3, [2], [-2.0])
    payload, nbytes = src.pack([1, 2, 3])
    assert nbytes == 3 * ROW_WIRE_BYTES + 3 * ELEM_WIRE_BYTES

    dst = SparseMatrix("d", (6, 8))
    dst.unpack([1, 2, 3], payload)
    assert dst.row_items(1) == [(0, 1.5), (4, 4.5)]
    assert dst.row_items(2) == []
    assert dst.row_items(3) == [(2, -2.0)]


def test_unpack_validation():
    s = SparseMatrix("s", (4, 4))
    with pytest.raises(AllocationError):
        s.unpack([0], None)
    payload, _ = build().pack([0, 1])
    with pytest.raises(AllocationError):
        s.unpack([0], payload)  # row_ptr length mismatch


def test_retarget_drops_and_counts_pointer_moves():
    s = build(10, 4)
    for g in range(10):
        s.set(g, 0, float(g))
    s.retarget([2, 3, 4])
    assert s.held_rows() == [2, 3, 4]
    assert s.get(3, 0) == 3.0
    assert s.stats.pointer_moves == 10


def test_iterator_walks_rows_in_order():
    s = build(3, 6)
    s.set_row_items(0, [1, 2], [1.0, 2.0])
    s.set_row_items(2, [5], [5.0])
    it = s.iterator()
    assert it.row == 0
    assert it.has_next()
    assert it.next() == (1, 1.0)
    assert it.next() == (2, 2.0)
    assert not it.has_next()
    assert it.advance_row()
    assert it.row == 1 and not it.has_next()
    assert it.advance_row()
    assert it.next() == (5, 5.0)
    assert not it.advance_row()  # end of matrix
    it.rewind()
    assert it.row == 0 and it.next() == (1, 1.0)


def test_iterator_set_next_updates_value():
    s = build(2, 4)
    s.set_row_items(0, [1], [1.0])
    it = s.iterator()
    it.set_next(9.0)
    assert it.next() == (1, 9.0)
    assert s.get(0, 1) == 9.0
    with pytest.raises(AllocationError):
        it.set_next(1.0)  # exhausted
    with pytest.raises(AllocationError):
        it.next()


def test_iterator_start_row_and_errors():
    s = SparseMatrix("s", (4, 4))
    with pytest.raises(AllocationError):
        s.iterator()  # nothing held
    s.hold([1, 3])
    it = s.iterator(3)
    assert it.row == 3
    with pytest.raises(AllocationError):
        s.iterator(0)  # not held


def test_csr_rows_matches_contents_and_version_tracks_changes():
    s = build(4, 6)
    s.set_row_items(0, [0, 5], [1.0, 2.0])
    s.set_row_items(1, [3], [3.0])
    v0 = s.csr_version
    indptr, cols, vals = s.csr_rows([0, 1, 2])
    assert list(indptr) == [0, 2, 3, 3]
    assert list(cols) == [0, 5, 3]
    assert list(vals) == [1.0, 2.0, 3.0]
    s.set(2, 2, 1.0)
    assert s.csr_version != v0  # snapshot is stale


def test_csr_dot_equivalence():
    """A CSR snapshot must compute the same mat-vec as scipy."""
    import scipy.sparse as sp

    rng = np.random.default_rng(42)
    n = 20
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.3)
    s = SparseMatrix("s", (n, n))
    s.hold(range(n))
    for g in range(n):
        cols = np.nonzero(dense[g])[0]
        s.set_row_items(g, cols, dense[g][cols])
    indptr, cols, vals = s.csr_rows(list(range(n)))
    csr = sp.csr_matrix((vals, cols, indptr), shape=(n, n))
    x = rng.random(n)
    assert np.allclose(csr @ x, dense @ x)


def test_row_wire_nbytes():
    s = build(2, 8)
    s.set_row_items(0, [1, 2, 3], [1, 2, 3])
    assert s.row_wire_nbytes(0) == ROW_WIRE_BYTES + 3 * ELEM_WIRE_BYTES
    assert s.row_wire_nbytes(1) == ROW_WIRE_BYTES
