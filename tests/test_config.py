"""Validation tests for the configuration dataclasses and cluster
presets."""

import pytest

from repro.config import (
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    RuntimeSpec,
    pentium_cluster,
    ultrasparc_cluster,
)
from repro.errors import ConfigError


def test_node_spec_defaults_valid():
    spec = NodeSpec()
    assert spec.speed > 0
    assert spec.quantum == 0.010
    assert spec.discipline == "rr"


@pytest.mark.parametrize("kwargs", [
    {"speed": 0},
    {"speed": -1e8},
    {"quantum": 0},
    {"discipline": "lottery"},
])
def test_node_spec_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        NodeSpec(**kwargs)


def test_cluster_spec_needs_a_node():
    with pytest.raises(ConfigError):
        ClusterSpec(n_nodes=0)
    spec = ClusterSpec(n_nodes=2)
    assert spec.with_nodes(5).n_nodes == 5
    assert spec.with_nodes(5).node == spec.node


@pytest.mark.parametrize("kwargs", [
    {"grace_period": 0},
    {"post_redist_period": 0},
    {"daemon_interval": 0},
    {"distribution": "diagonal"},
    {"drop_mode": "virtual"},
    {"drop_margin": 0},
])
def test_runtime_spec_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        RuntimeSpec(**kwargs)


def test_runtime_spec_paper_defaults():
    spec = RuntimeSpec()
    assert spec.grace_period == 5          # paper Section 4.2
    assert spec.post_redist_period == 10   # paper Section 4.4
    assert spec.daemon_interval == 1.0     # dmpi_ps updates every second
    assert spec.proc_granularity == 0.010  # /PROC granularity
    assert spec.hrtimer_threshold == 0.010
    assert spec.drop_mode == "physical"
    assert spec.allow_removal
    assert not spec.allow_rejoin
    assert not spec.partial_removal


def test_pentium_preset():
    spec = pentium_cluster(8, seed=3)
    assert spec.n_nodes == 8
    assert spec.seed == 3
    assert spec.name == "pentium"
    assert spec.network.bandwidth == pytest.approx(12.5e6)  # 100 Mb/s
    assert spec.network.recv_mode == "blocking"


def test_ultrasparc_preset_polls():
    spec = ultrasparc_cluster(16)
    assert spec.name == "ultrasparc"
    assert spec.network.recv_mode == "polling"
    assert spec.node.speed < pentium_cluster(1).node.speed


def test_specs_are_frozen():
    spec = NodeSpec()
    with pytest.raises(Exception):
        spec.speed = 1.0
