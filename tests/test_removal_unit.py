"""Unit tests for the drop decision logic (paper Section 4.4), and the
partial-removal extension (Section 6 future work)."""

import numpy as np
import pytest

from repro.config import RuntimeSpec
from repro.core.commcost import CommCostModel, NearestNeighbor, NoComm
from repro.core.removal import DropDecision, evaluate_drop
from repro.errors import DistributionError

MODEL = CommCostModel(3e-5, 4e-9, 75e-6, 8e-8, 1e8)
SPEEDS4 = [1e8] * 4


def decide(loads, measured, *, spec=None, total_work=3e7, patterns=None,
           speeds=None):
    return evaluate_drop(
        loads, speeds or SPEEDS4, total_work,
        patterns or [NearestNeighbor(row_nbytes=16384)],
        MODEL, n_rows=1024, measured_max=measured,
        spec=spec or RuntimeSpec(),
    )


def test_drop_when_prediction_beats_measurement():
    # unloaded-only config: 3 nodes at 1e8 -> ~0.10 s/cycle predicted
    d = decide([4, 1, 1, 1], measured=0.50)
    assert d.drop
    assert d.removed == (0,)
    assert d.predicted_time < 0.5
    assert d.keep_shares is not None and len(d.keep_shares) == 3


def test_no_drop_when_measurement_is_fine():
    d = decide([2, 1, 1, 1], measured=0.08)
    assert not d.drop
    # the prediction is still reported for inspection
    assert d.predicted_time > 0


def test_no_drop_without_loaded_nodes():
    d = decide([1, 1, 1, 1], measured=10.0)
    assert not d.drop
    assert d.removed == ()


def test_no_drop_when_everyone_is_loaded():
    d = decide([2, 2, 3, 2], measured=10.0)
    assert not d.drop


def test_removal_disabled_by_spec():
    d = decide([4, 1, 1, 1], measured=10.0,
               spec=RuntimeSpec(allow_removal=False))
    assert not d.drop


def test_drop_margin_semantics():
    """margin multiplies the prediction: > 1 demands a bigger win
    before dropping (conservative), < 1 forces drops (the Figure 6
    forced-drop runs use 1e-9)."""
    base = decide([4, 1, 1, 1], measured=0.50)
    assert base.drop
    strict = decide([4, 1, 1, 1], measured=0.50,
                    spec=RuntimeSpec(drop_margin=10.0))
    assert not strict.drop
    forced = decide([2, 1, 1, 1], measured=1e-6,
                    spec=RuntimeSpec(drop_margin=1e-9))
    assert forced.drop


def test_multiple_loaded_nodes_all_removed():
    d = decide([4, 1, 3, 1], measured=0.50)
    assert d.drop
    assert d.removed == (0, 2)


def test_partial_removal_considers_keeping_some_loaded():
    """With partial removal enabled, a mildly loaded node can be kept
    while the heavily loaded one is dropped — when that configuration
    predicts best."""
    spec = RuntimeSpec(partial_removal=True)
    # node 0: 8-way load (hopeless), node 2: load 2 (useful half node)
    d = decide([8, 1, 2, 1], measured=0.60, spec=spec)
    assert d.drop
    assert 0 in d.removed
    # keeping the half node beats dropping both when compute dominates
    assert d.removed == (0,)


def test_partial_removal_off_by_default_removes_all_loaded():
    d = decide([8, 1, 2, 1], measured=0.60)
    assert d.drop
    assert d.removed == (0, 2)


def test_length_mismatch_raises():
    with pytest.raises(DistributionError):
        evaluate_drop([1, 2], [1e8], 1e7, [NoComm()], MODEL, 100, 1.0,
                      RuntimeSpec())
