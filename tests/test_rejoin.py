"""Tests for node rejoin (paper Section 2.2 / Section 6 future work):
a physically removed node is re-admitted once its competing load
disappears, receiving a fresh share of every registered array."""

import numpy as np
import pytest

from repro.config import (
    ClusterSpec, NetworkSpec, NodeSpec, ResilienceSpec, RuntimeSpec,
)
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SPEED = 1e8
N_ROWS = 64


def make_cluster(n=4):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=SPEED),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))


def program(ctx, n_cycles, row_work, check_data=False):
    A = ctx.register_dense("A", (N_ROWS, 8))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
    ctx.add_array_access(1, "A", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        A.row(g)[:] = g

    def work_of(s, e):
        return np.full(e - s + 1, row_work)

    for _t in range(n_cycles):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()

    if check_data and ctx.participating():
        s, e = ctx.my_bounds()
        for g in range(s, e + 1):
            assert np.all(A.row(g) == g), f"row {g} corrupted"
    return ctx.my_bounds()


def run_scenario(*, allow_rejoin, n_cycles=120, stop_cycle=60):
    cluster = make_cluster(4)
    # heavy load drives the drop; it disappears at stop_cycle
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=2, action="start", count=8),
        CycleTrigger(cycle=stop_cycle, node=2, action="stop", count=8),
    ]))
    spec = RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_mode="physical", allow_rejoin=allow_rejoin,
        daemon_interval=0.01,
    )
    job = DynMPIJob(cluster, spec)
    # tiny per-row work: comm dominates -> the loaded node gets dropped
    results = job.launch(program, args=(n_cycles, SPEED * 0.2e-3 / N_ROWS * 4, True))
    return job, results


def test_drop_then_rejoin_restores_node():
    job, results = run_scenario(allow_rejoin=True)
    kinds = [ev.kind for ev in job.events]
    assert "drop" in kinds
    assert "rejoin" in kinds
    drop_i = kinds.index("drop")
    assert "rejoin" in kinds[drop_i:]
    # after rejoin the node owns rows again
    s2, e2 = results[2]
    assert e2 >= s2
    # all rows tiled across ranks
    total = sum(e - s + 1 for (s, e) in results if e >= s)
    assert total == N_ROWS
    rejoin_ev = next(ev for ev in job.events if ev.kind == "rejoin")
    assert rejoin_ev.detail["rejoined_world"] == [2]


def test_rejoin_preserves_array_contents():
    job, results = run_scenario(allow_rejoin=True)
    # data checks run inside the program (check_data=True); reaching
    # here means every rank's rows still carry their global index
    assert any(ev.kind == "rejoin" for ev in job.events)


def test_no_rejoin_without_flag():
    job, results = run_scenario(allow_rejoin=False)
    kinds = [ev.kind for ev in job.events]
    assert "drop" in kinds
    assert "rejoin" not in kinds
    s2, e2 = results[2]
    assert e2 < s2  # stays removed


def test_rejoin_during_post_redistribution_period():
    """A node may be re-admitted while the survivors are still inside
    the post-redistribution damping window of an unrelated load change;
    the rejoin resets the window rather than fighting it.  Runs with
    checkpointing enabled so the rejoin path of the resilient control
    exchange is the one exercised."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=2, action="start", count=8),
        # a second load change opens a long POST window on the
        # survivor group just before node 2's load clears
        CycleTrigger(cycle=48, node=1, action="start", count=1),
        CycleTrigger(cycle=50, node=2, action="stop", count=8),
    ]))
    spec = RuntimeSpec(
        grace_period=2, post_redist_period=40, allow_removal=True,
        drop_mode="physical", allow_rejoin=True, daemon_interval=0.01,
        resilience=ResilienceSpec(heartbeat_timeout=10.0),
    )
    job = DynMPIJob(cluster, spec)
    results = job.launch(program, args=(140, SPEED * 0.2e-3 / N_ROWS * 4, True))
    kinds = [ev.kind for ev in job.events]
    assert "drop" in kinds and "rejoin" in kinds
    rejoin_ev = next(ev for ev in job.events if ev.kind == "rejoin")
    redists = [ev.cycle for ev in job.events
               if ev.kind == "redistribute" and ev.cycle < rejoin_ev.cycle]
    assert redists, f"no redistribution before the rejoin in {kinds}"
    # the rejoin landed inside the open 40-cycle POST window
    assert 1 <= rejoin_ev.cycle - max(redists) <= 40
    total = sum(e - s + 1 for (s, e) in results if e >= s)
    assert total == N_ROWS


def test_rejoined_node_participates_in_collectives():
    """After rejoin, the next load change redistributes over the full
    group again (the rejoined rank is a first-class member)."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=2, action="start", count=8),
        CycleTrigger(cycle=50, node=2, action="stop", count=8),
        CycleTrigger(cycle=90, node=1, action="start", count=1),
    ]))
    spec = RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_mode="physical", allow_rejoin=True, daemon_interval=0.01,
    )
    job = DynMPIJob(cluster, spec)
    results = job.launch(program, args=(150, SPEED * 0.2e-3 / N_ROWS * 4))
    kinds = [ev.kind for ev in job.events]
    assert "rejoin" in kinds
    rejoin_i = kinds.index("rejoin")
    # a redistribution happens after the rejoin (for the new load on
    # node 1), and it spans 4 shares again
    later = [ev for ev in job.events[rejoin_i + 1:] if ev.kind == "redistribute"]
    assert later, f"no post-rejoin redistribution in {kinds}"
    assert len(later[-1].detail["shares"]) == 4
