"""Edge-case tests for the MPI layer: rendezvous corner cases,
request semantics, wildcard interactions, and tag-space behavior."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.errors import MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, Group, run_spmd
from repro.mpi import collectives as coll
from repro.mpi.datatypes import SUM
from repro.mpi.group import COLL_TAG_BASE
from repro.simcluster import Cluster, Sleep


def make_cluster(n=2, eager=1 << 20):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8,
                            eager_threshold=eager),
    ))


def test_rendezvous_self_send():
    cluster = make_cluster(1, eager=8)

    def program(ep):
        req = ep.isend(0, tag=0, payload=np.arange(64.0))
        data, _ = yield from ep.recv(0, tag=0)
        assert np.array_equal(data, np.arange(64.0))
        yield from req.wait()

    run_spmd(cluster, program)


def test_rendezvous_matched_by_wildcard_recv():
    cluster = make_cluster(2, eager=8)

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=5, payload=np.ones(128))
        else:
            data, st = yield from ep.recv(ANY_SOURCE, ANY_TAG)
            assert st.source == 0 and st.tag == 5
            assert data.shape == (128,)

    run_spmd(cluster, program)


def test_mixed_eager_and_rendezvous_ordering():
    """A small eager message and a large rendezvous message on the
    same (src, tag) must still be received in send order."""
    cluster = make_cluster(2, eager=1024)

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=1, payload=np.full(8, 1.0))      # eager
            yield from ep.send(1, tag=1, payload=np.full(4096, 2.0))   # rendezvous
            yield from ep.send(1, tag=1, payload=np.full(8, 3.0))      # eager
        else:
            yield Sleep(0.01)
            firsts = []
            for _ in range(3):
                data, _ = yield from ep.recv(0, tag=1)
                firsts.append(float(data[0]))
            # rendezvous data lags its RTS, but matching order is FIFO
            assert firsts == [1.0, 2.0, 3.0]

    run_spmd(cluster, program)


def test_request_test_transitions():
    cluster = make_cluster(2)
    states = []

    def program(ep):
        if ep.rank == 0:
            yield Sleep(0.05)
            yield from ep.send(1, tag=0, payload="x")
        else:
            req = ep.irecv(0, tag=0)
            states.append(req.test())   # nothing sent yet
            yield Sleep(0.1)
            states.append(req.test())   # arrived while sleeping
            value = yield from req.wait()
            assert value[0] == "x"

    run_spmd(cluster, program)
    assert states == [False, True]


def test_isend_request_completes_for_eager():
    cluster = make_cluster(2)
    flags = []

    def program(ep):
        if ep.rank == 0:
            req = ep.isend(1, tag=0, payload="hello")
            yield Sleep(0.05)
            flags.append(req.test())
            yield from req.wait()
        else:
            yield Sleep(0.1)
            yield from ep.recv(0, tag=0)

    run_spmd(cluster, program)
    assert flags == [True]


def test_wildcard_recv_fifo_across_sources():
    cluster = make_cluster(3)

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(2, tag=1, payload="a")
        elif ep.rank == 1:
            yield Sleep(0.01)
            yield from ep.send(2, tag=1, payload="b")
        else:
            yield Sleep(0.05)
            v1, _ = yield from ep.recv(ANY_SOURCE, tag=1)
            v2, _ = yield from ep.recv(ANY_SOURCE, tag=1)
            assert (v1, v2) == ("a", "b")  # arrival order

    run_spmd(cluster, program)


def test_group_tags_unique_per_collective_call():
    g = Group([0, 1, 2])
    tags = {g.next_tag(0) for _ in range(50)}
    assert len(tags) == 50
    assert min(tags) >= COLL_TAG_BASE
    # another group's tag space does not collide
    g2 = Group([0, 1, 2])
    assert g2.next_tag(0) not in tags


def test_user_tags_below_collective_space():
    assert 10_000 < COLL_TAG_BASE  # apps using small tags are safe


def test_reduce_non_power_of_two_with_noncommutative_check():
    """The binomial reduce applies the op pairwise; for SUM the result
    is exact regardless of association."""
    n = 5
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        value = float(2 ** group.rel(ep.rank))
        total = yield from coll.reduce(ep, group, value, SUM, root=2)
        if group.rel(ep.rank) == 2:
            assert total == 31.0
        else:
            assert total is None

    run_spmd(cluster, program)


def test_single_member_group_collectives_are_local():
    cluster = make_cluster(1)
    group = Group([0])

    def program(ep):
        v = yield from coll.allreduce(ep, group, 42, SUM)
        assert v == 42
        out = yield from coll.allgather(ep, group, "me")
        assert out == ["me"]
        out = yield from coll.allgather_dissemination(ep, group, "me")
        assert out == ["me"]
        yield from coll.barrier(ep, group)

    run_spmd(cluster, program)
    assert cluster.network.n_messages == 0


@pytest.mark.parametrize("n", [2, 3, 5, 8, 13])
def test_allgather_dissemination_correct(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        out = yield from coll.allgather_dissemination(ep, group, me * me)
        assert out == [r * r for r in range(n)]

    run_spmd(cluster, program)


def test_dissemination_cheaper_than_ring_at_scale():
    def cost(fn, n):
        cluster = make_cluster(n)
        group = Group(list(range(n)))

        def program(ep):
            yield from fn(ep, group, ep.rank)

        run_spmd(cluster, program)
        return cluster.sim.now

    ring = cost(coll.allgather, 16)
    diss = cost(coll.allgather_dissemination, 16)
    assert diss < ring
