"""dyncamp: parameter space, journaled sweeper, engine, aggregation,
and the fuzzer's invariant checkers.

The two acceptance properties from the campaign design are pinned
here: (1) a sweep killed mid-run and restarted skips completed combos
and produces a byte-identical final aggregate, and (2) a combo whose
worker raises is retried a bounded number of times and then
quarantined — visible in the report — instead of wedging the sweep.
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.campaign import (
    Combo,
    Engine,
    ParamSpace,
    ParamSweeper,
    combo_slug,
    expand,
    run_combo,
    safe_run_combo,
)
from repro.campaign.fuzz import (
    SplitMix64,
    fuzz_one,
    fuzz_params,
    load_corpus,
    replay_one,
    run_fuzz,
    run_replay,
)
from repro.campaign.report import render_status, render_summary
from repro.campaign.results import aggregate_results, render_bench_json
from repro.campaign.scenarios import (
    build_scenario,
    parse_failure,
    parse_load,
    resolve_params,
)
from repro.campaign.space import load_space
from repro.errors import ConfigError

TINY = {"size": 16, "cycles": 4}


def tiny_space(name="t", **over):
    params = {"app": ["jacobi", "sor"], "n_nodes": [2, 4], "seed": [0, 1]}
    params.update(over)
    return ParamSpace(params, TINY, name=name)


# ----------------------------------------------------------------------
# space: expansion, slugs, validation
# ----------------------------------------------------------------------

def test_expand_is_deterministic_and_sorted():
    space = tiny_space()
    combos = expand(space)
    assert len(combos) == len(space) == 8
    assert combos == expand(tiny_space())
    # fixed params land in every combo; slug keys are sorted
    first = combos[0]
    assert first.as_dict()["size"] == 16
    assert first.slug == combo_slug(first.as_dict())
    keys = [frag.split("=")[0] for frag in first.slug.split(",")]
    assert keys == sorted(keys)


def test_space_rejects_bad_shapes():
    with pytest.raises(ConfigError):
        ParamSpace({"app": []})                       # empty value list
    with pytest.raises(ConfigError):
        ParamSpace({"app": ["jacobi"]}, {"app": "sor"})  # swept+fixed
    with pytest.raises(ConfigError):
        ParamSpace({"load": ["a b"]})                 # not slug-safe
    with pytest.raises(ConfigError):
        expand(ParamSpace({"seed": [1, 1]}))          # duplicate combo


def test_load_space_round_trip(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps(tiny_space(name="rt").to_json()))
    space = load_space(path)
    assert space.name == "rt"
    assert [c.slug for c in expand(space)] == \
        [c.slug for c in expand(tiny_space(name="rt"))]
    with pytest.raises(ConfigError):
        load_space(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# scenarios: DSL parsing and construction
# ----------------------------------------------------------------------

def test_parse_load_dsl():
    assert parse_load("none") is None
    script = parse_load("n1@c2x3+n0@c3-c6")
    kinds = [(t.node, t.cycle, t.action, t.count)
             for t in script.cycle_triggers]
    assert (1, 2, "start", 3) in kinds
    assert (0, 3, "start", 1) in kinds
    assert (0, 6, "stop", 1) in kinds
    with pytest.raises(ConfigError):
        parse_load("bogus")


def test_parse_failure_dsl():
    assert parse_failure("none") is None
    script = parse_failure("slow:n0@c2x2+crash:n1@c5")
    acts = [(f.node, f.cycle, f.action) for f in script.cycle_faults]
    assert (0, 2, "slowdown") in acts
    assert (1, 5, "crash") in acts
    with pytest.raises(ConfigError):
        parse_failure("melt:n0@c2")          # unknown kind
    with pytest.raises(ConfigError):
        parse_failure("crash:n0@c2-c4")      # faults are point events


def test_resolve_params_validates():
    full = resolve_params({"app": "cg"})
    assert full["n_nodes"] == 4 and full["check"] == 1
    with pytest.raises(ConfigError):
        resolve_params({"app": "fortran"})
    with pytest.raises(ConfigError):
        resolve_params({"typo": 1})
    with pytest.raises(ConfigError):
        resolve_params({"size": 4})


def test_build_scenario_crash_switches_to_resilience_recipe():
    calm = build_scenario({"app": "jacobi", **TINY})
    assert calm.spec.resilience is None and not calm.spec.allow_removal
    crashy = build_scenario(
        {"app": "jacobi", "size": 64, "cycles": 40,
         "failure": "crash:n2@c10"})
    assert crashy.spec.resilience is not None
    assert crashy.spec.allow_removal and crashy.spec.allow_rejoin


# ----------------------------------------------------------------------
# runner: combo execution and the worker boundary
# ----------------------------------------------------------------------

def test_run_combo_all_apps_pass_oracle():
    for app in ("jacobi", "sor", "cg", "particle"):
        row = run_combo({"app": app, "n_nodes": 2, **TINY})
        assert row["checks"]["oracle"] == "ok", app
        assert row["metrics"]["wall_time"] > 0


def test_run_combo_slug_is_declared_params_not_resolved():
    row = run_combo({"app": "jacobi", **TINY})
    assert row["slug"] == combo_slug({"app": "jacobi", **TINY})
    assert "n_nodes" not in row["slug"]      # default stays out of identity


def test_run_combo_is_deterministic():
    params = {"app": "sor", "n_nodes": 4, "load": "n1@c2x2", **TINY}
    a, b = run_combo(dict(params)), run_combo(dict(params))
    assert a == b


def test_safe_run_combo_converts_exceptions_to_error_rows():
    row = safe_run_combo({"app": "boom", **TINY})
    assert row["ok"] is False
    assert "ConfigError" in row["error"]
    assert row["slug"] == combo_slug({"app": "boom", **TINY})


# ----------------------------------------------------------------------
# sweeper: journal replay, claims, retry budget
# ----------------------------------------------------------------------

def test_sweeper_journal_replay_round_trip(tmp_path):
    space = tiny_space()
    with ParamSweeper.create(tmp_path / "c", space) as sw:
        combos = sw.pending()
        sw.claim(combos[0])
        sw.mark_done(combos[0].slug, {"slug": combos[0].slug,
                                      "params": combos[0].as_dict(),
                                      "metrics": {}})
        sw.claim(combos[1])
        sw.mark_error(combos[1].slug, "whoops")
    # fresh instance reconstructs everything from the journal
    with ParamSweeper.open_dir(tmp_path / "c") as sw2:
        assert combos[0].slug in sw2.done
        assert sw2.tries[combos[1].slug] == 1
        assert len(sw2.pending()) == len(combos) - 1


def test_sweeper_stale_claim_counts_as_a_try(tmp_path):
    space = tiny_space()
    with ParamSweeper.create(tmp_path / "c", space) as sw:
        victim = sw.pending()[0]
        sw.claim(victim)   # process "dies" here: no done/error journaled
    with ParamSweeper.open_dir(tmp_path / "c") as sw2:
        assert sw2.tries[victim.slug] == 1
        assert "stale claim" in sw2.errors[victim.slug]
        assert victim.slug in {c.slug for c in sw2.pending()}  # re-queued


def test_sweeper_quarantines_repeat_kill_victims(tmp_path):
    space = tiny_space()
    victim = expand(space)[0]
    for _ in range(2):
        with ParamSweeper.create(tmp_path / "c", space, max_tries=2) as sw:
            sw.claim(victim)  # die mid-combo, twice
    with ParamSweeper.open_dir(tmp_path / "c") as sw:
        assert victim.slug in sw.skipped
        # the quarantine decision itself was journaled durably
        events = [json.loads(line)["event"]
                  for line in (tmp_path / "c" / "journal.jsonl")
                  .read_text().splitlines()]
        assert "skip" in events


def test_sweeper_rejects_mismatched_directory(tmp_path):
    ParamSweeper.create(tmp_path / "c", tiny_space(name="a")).close()
    with pytest.raises(ConfigError):
        ParamSweeper.create(tmp_path / "c", tiny_space(name="b"))
    with pytest.raises(ConfigError):
        ParamSweeper.open_dir(tmp_path / "nope")


# ----------------------------------------------------------------------
# engine: the acceptance properties
# ----------------------------------------------------------------------

def bench_bytes(engine):
    return render_bench_json("campaign", engine.aggregate())


def test_killed_sweep_resumes_without_redoing_work(tmp_path):
    space = tiny_space()
    # reference: uninterrupted sweep
    with ParamSweeper.create(tmp_path / "a", space) as sw:
        ref = Engine(sw, workers=1)
        assert ref.run().complete
        ref_bytes = bench_bytes(ref)

    # interrupted: stop after 3 combos, then resume from a fresh
    # sweeper (models a killed process restarting)
    with ParamSweeper.create(tmp_path / "b", space) as sw:
        Engine(sw, workers=1).run(max_combos=3)
        done_first = set(sw.done)
        assert len(done_first) == 3
    with ParamSweeper.open_dir(tmp_path / "b") as sw2:
        # completed combos are not pending again
        assert done_first == set(sw2.done)
        assert not done_first & {c.slug for c in sw2.pending()}
        eng = Engine(sw2, workers=1)
        assert eng.run().complete
        # result files for the first batch were written exactly once
        assert bench_bytes(eng) == ref_bytes


def test_engine_pool_matches_inline(tmp_path):
    space = tiny_space()
    with ParamSweeper.create(tmp_path / "a", space) as sw:
        inline = Engine(sw, workers=1)
        inline.run()
        inline_bytes = bench_bytes(inline)
    with ParamSweeper.create(tmp_path / "b", space) as sw:
        pooled = Engine(sw, workers=2)
        pooled.run()
        assert bench_bytes(pooled) == inline_bytes


def test_worker_exception_bounded_retry_and_quarantine(tmp_path):
    space = ParamSpace(
        {"app": ["jacobi", "boom"], "seed": [0]}, TINY, name="poison")
    with ParamSweeper.create(tmp_path / "c", space, max_tries=2) as sw:
        eng = Engine(sw, workers=1)
        stats = eng.run()
        assert stats.complete          # the sweep did not wedge
        assert stats.done == 1 and stats.skipped == 1
        (slug, tries, error), = sw.quarantined()
        assert "boom" in slug and tries == 2 and "ConfigError" in error
        # quarantine is visible in the reports
        assert "quarantined" in render_status(sw)
        agg = eng.aggregate()
        assert agg["skipped"] == [slug]
        assert "1 quarantined" in render_summary(agg)


def test_engine_writes_bench_file(tmp_path):
    space = ParamSpace({"app": ["jacobi"]}, TINY, name="one")
    with ParamSweeper.create(tmp_path / "c", space) as sw:
        eng = Engine(sw, workers=1)
        eng.run()
        eng.aggregate(write_to=tmp_path)
    payload = json.loads((tmp_path / "BENCH_campaign.json").read_text())
    assert payload["name"] == "campaign"
    assert payload["data"]["campaign"] == "one"
    assert payload["data"]["n_done"] == 1


# ----------------------------------------------------------------------
# aggregation determinism
# ----------------------------------------------------------------------

def test_aggregate_is_order_independent():
    rows = [
        {"slug": f"app=jacobi,seed={s}",
         "params": {"app": "jacobi", "n_nodes": 2, "seed": s},
         "metrics": {"wall_time": 0.1 * (s + 1), "n_redistributions": s,
                     "n_drops": 0}}
        for s in range(4)
    ]
    fwd = aggregate_results("x", rows, skipped=["b", "a"])
    rev = aggregate_results("x", list(reversed(rows)), skipped=["a", "b"])
    assert fwd == rev
    assert fwd["skipped"] == ["a", "b"]
    g, = fwd["groups"]
    assert g["count"] == 4
    assert g["mean_wall_time"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# fuzzer
# ----------------------------------------------------------------------

def test_splitmix64_is_stable_and_uniformish():
    rng = SplitMix64(42, 0)
    draws = [rng.randint(0, 9) for _ in range(200)]
    assert set(draws) == set(range(10))
    # same seed parts -> same stream; different parts -> different
    assert [SplitMix64(42, 0).next_u64() for _ in range(4)] == \
        [SplitMix64(42, 0).next_u64() for _ in range(4)]
    assert SplitMix64(42, 0).next_u64() != SplitMix64(42, 1).next_u64()


def test_fuzz_params_deterministic_and_valid():
    seen = set()
    for i in range(30):
        params = fuzz_params(9, i)
        assert params == fuzz_params(9, i)
        resolve_params(params)               # must always validate
        combo_slug(params)                   # and be slug-safe
        seen.add(params["app"])
    assert len(seen) > 1                     # the space is actually swept


def test_fuzz_one_runs_all_invariants_clean():
    row = fuzz_one((1, 0))
    assert set(row["invariants"]) == {"oracle", "sanitize", "perturb"}
    assert row["ok"], row
    assert "repro" not in row


def test_fuzz_failure_persisted_with_repro_line(tmp_path, monkeypatch):
    # force the oracle checker to fail so persistence is exercised
    from repro.campaign import fuzz as fuzz_mod
    broken = (("oracle", lambda params: "forced violation"),) + \
        tuple(x for x in fuzz_mod._INVARIANTS if x[0] != "oracle")
    monkeypatch.setattr(fuzz_mod, "_INVARIANTS", broken[:1])
    report = run_fuzz(7, 2, out_dir=tmp_path)
    assert not report.clean and len(report.failures) == 2
    lines = (tmp_path / "failures.jsonl").read_text().splitlines()
    assert len(lines) == 2
    rec = json.loads(lines[0])
    assert rec["repro"] == "python -m repro.campaign fuzz --seed 7 --index 0"
    assert "FAIL" in report.render()


def test_replay_checked_in_corpus_is_clean():
    # the pinned regression corpus: scenarios that once failed an
    # invariant must stay fixed forever
    corpus = pathlib.Path(__file__).parent / "fixtures" / "fuzz" / \
        "failures.jsonl"
    report = run_replay(corpus)
    assert report.clean, report.render()
    row, = report.rows
    assert set(row["invariants"]) == {"oracle", "sanitize", "perturb"}
    assert "drifted" not in row          # generator still derives the slug


def test_replay_falls_back_on_generator_drift():
    row = fuzz_one((0, 24))
    stale = dict(row)
    stale["slug"] = "app=ghost,long=gone"  # as if the generator moved on
    out = replay_one(stale)
    assert out["drifted"] is True
    assert out["params"] == row["params"]  # recorded params used verbatim
    assert out["ok"]


def test_replay_corpus_validation(tmp_path):
    bad = tmp_path / "failures.jsonl"
    bad.write_text(json.dumps({"seed": 1}) + "\n")
    with pytest.raises(ValueError, match="missing"):
        load_corpus(bad)
    bad.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_corpus(bad)


def test_replay_cli_exit_codes(tmp_path):
    corpus = pathlib.Path(__file__).parent / "fixtures" / "fuzz" / \
        "failures.jsonl"
    root = pathlib.Path(__file__).parent.parent
    env = {"PYTHONPATH": str(root / "src")}
    r = subprocess.run(
        [sys.executable, "-m", "repro.campaign", "fuzz",
         "--replay", str(corpus), "--workers", "1"],
        capture_output=True, text=True, env=env, cwd=root,
    )
    assert r.returncode == 0, r.stdout + r.stderr
    assert "all invariants clean" in r.stdout
    r = subprocess.run(
        [sys.executable, "-m", "repro.campaign", "fuzz",
         "--replay", str(tmp_path / "nope.jsonl")],
        capture_output=True, text=True, env=env, cwd=root,
    )
    assert r.returncode == 2


def test_combo_identity_helpers():
    combo = Combo.from_dict({"b": 2, "a": 1})
    assert combo.slug == "a=1,b=2"
    assert combo.as_dict() == {"a": 1, "b": 2}
