"""Property tests for the interval data plane (hypothesis).

Three layers, each checked row-for-row against a naive set reference:

* the :class:`IntervalSet` algebra itself (union/intersect/subtract/
  clip/contains/iteration) on randomized row sets;
* DRSD materialization: ``needed_intervals`` vs ``rows_needed`` on
  randomized bounds and offsets, including ``step > 1``;
* redistribution planning: interval ``needed_map`` and the interval
  send rule vs the retained set-based oracle
  (:mod:`repro.core.reference`) on randomized multi-rank transitions
  (including removed ranks and crash-recovery row-set bounds).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import reference
from repro.core.drsd import DRSD, AccessMode
from repro.core.intervals import IntervalSet
from repro.core.redistribute import needed_map, owned_intervals, plan_sends
from repro.analysis.plancheck import accesses_to_phases

row_sets = st.sets(st.integers(min_value=0, max_value=80), max_size=40)


# ---------------------------------------------------------------------------
# algebra vs set reference
# ---------------------------------------------------------------------------
@given(a=row_sets, b=row_sets)
@settings(max_examples=200, deadline=None)
def test_algebra_matches_sets(a, b):
    ia, ib = IntervalSet.from_rows(a), IntervalSet.from_rows(b)
    assert ia | ib == a | b
    assert ia & ib == a & b
    assert ia - ib == a - b
    assert ia.isdisjoint(ib) == a.isdisjoint(b)
    assert ia.issuperset(ib) == (a >= b)
    assert list(ia) == sorted(a)
    assert len(ia) == len(a)
    assert bool(ia) == bool(a)


@given(a=row_sets, lo=st.integers(-5, 90), width=st.integers(0, 40))
@settings(max_examples=200, deadline=None)
def test_clip_and_contains_match_sets(a, lo, width):
    ia = IntervalSet.from_rows(a)
    hi = lo + width
    assert ia.clip(lo, hi) == {g for g in a if lo <= g <= hi}
    for g in range(min(a, default=0) - 2, max(a, default=0) + 3):
        assert (g in ia) == (g in a)


@given(a=row_sets)
@settings(max_examples=100, deadline=None)
def test_canonical_form(a):
    """Spans are sorted, disjoint, non-adjacent — the canonical form
    that makes __eq__/__hash__ structural."""
    ia = IntervalSet.from_rows(a)
    spans = ia.spans
    assert all(lo <= hi for lo, hi in spans)
    assert all(spans[i][1] + 1 < spans[i + 1][0] for i in range(len(spans) - 1))
    assert hash(ia) == hash(IntervalSet.from_rows(sorted(a)))
    assert ia == set(a)


@given(lo=st.integers(0, 50), width=st.integers(0, 60), step=st.integers(1, 7))
@settings(max_examples=150, deadline=None)
def test_strided_path_matches_range(lo, width, step):
    hi = lo + width
    assert IntervalSet.from_strided(lo, hi, step) == set(range(lo, hi + 1, step))
    if step == 1:
        assert IntervalSet.from_strided(lo, hi, step).n_spans == 1


def test_from_bounds_forms():
    assert IntervalSet.from_bounds(None) == set()
    assert IntervalSet.from_bounds((3, 9)) == set(range(3, 10))
    assert IntervalSet.from_bounds(frozenset({1, 4, 5})) == {1, 4, 5}
    ivl = IntervalSet.span(2, 6)
    assert IntervalSet.from_bounds(ivl) is ivl


def test_empty_min_max_raise():
    with pytest.raises(ValueError):
        IntervalSet.empty().min_row
    with pytest.raises(ValueError):
        IntervalSet.empty().max_row


def test_immutable():
    ivl = IntervalSet.span(0, 3)
    with pytest.raises(AttributeError):
        ivl._spans = ()


# ---------------------------------------------------------------------------
# DRSD materialization
# ---------------------------------------------------------------------------
@given(
    s=st.integers(0, 40), e=st.integers(-2, 60), n_rows=st.integers(1, 50),
    lo_off=st.integers(-3, 3), hi_extra=st.integers(0, 4),
    step=st.integers(1, 4),
)
@settings(max_examples=200, deadline=None)
def test_needed_intervals_matches_rows_needed(s, e, n_rows, lo_off, hi_extra, step):
    acc = DRSD("A", AccessMode.READ, lo_off=lo_off, hi_off=lo_off + hi_extra,
               step=step)
    assert acc.needed_intervals(s, e, n_rows) == set(acc.rows_needed(s, e, n_rows))


# ---------------------------------------------------------------------------
# planning vs the set-based oracle
# ---------------------------------------------------------------------------
def _block_bounds(draw, n_ranks, n_rows):
    """A randomized bounds tuple: contiguous blocks, some ranks removed
    (None), optionally one crash-recovery row-set entry."""
    cuts = draw(st.lists(st.integers(0, n_rows - 1), min_size=n_ranks - 1,
                         max_size=n_ranks - 1))
    edges = [0] + sorted(cuts) + [n_rows]
    bounds = []
    for i in range(n_ranks):
        lo, hi = edges[i], edges[i + 1] - 1
        if hi < lo or draw(st.booleans()) and draw(st.booleans()):
            bounds.append(None)
        else:
            bounds.append((lo, hi))
    if n_ranks >= 2 and draw(st.booleans()):
        # crash recovery: a buddy adopts a dead rank's rows, so its old
        # ownership becomes an explicit (possibly non-contiguous) row
        # set; ownership stays a partition — the dead entry goes None
        dead = draw(st.integers(0, n_ranks - 1))
        buddy = (dead + 1 + draw(st.integers(0, n_ranks - 2))) % n_ranks
        merged = set()
        for r in (dead, buddy):
            if bounds[r] is not None:
                merged |= set(range(bounds[r][0], bounds[r][1] + 1))
        bounds[dead] = None
        bounds[buddy] = frozenset(merged) if merged else None
    return tuple(bounds)


@given(data=st.data())
@settings(max_examples=120, deadline=None)
def test_plan_matches_set_oracle(data):
    n_ranks = data.draw(st.integers(2, 5))
    n_rows = data.draw(st.integers(4, 40))
    accesses = [
        DRSD("A", AccessMode.READWRITE,
             lo_off=data.draw(st.integers(-2, 0)),
             hi_off=data.draw(st.integers(0, 2))),
        DRSD("B", AccessMode.READ,
             lo_off=0, hi_off=0,
             step=data.draw(st.integers(1, 3))),
    ]
    phases = accesses_to_phases(accesses)
    array_rows = {"A": n_rows, "B": n_rows}
    old_bounds = _block_bounds(data.draw, n_ranks, n_rows)
    new_bounds = tuple(
        b if not isinstance(b, frozenset) else None
        for b in _block_bounds(data.draw, n_ranks, n_rows)
    )

    needed = needed_map(phases, new_bounds, array_rows)
    oracle_needed = reference.needed_map_sets(phases, new_bounds, array_rows)
    for rel in range(n_ranks):
        for name in array_rows:
            assert needed[rel][name] == oracle_needed[rel][name], (rel, name)
        assert owned_intervals(old_bounds, rel) == \
            reference.owned_rows_set(old_bounds, rel)

    # the send rule, both forms: the per-pair expression redistribute()
    # evaluates, and the span-indexed whole-group derivation
    oracle_sends = reference.plan_sends_sets(old_bounds, oracle_needed,
                                             list(array_rows))
    sends = plan_sends(old_bounds, needed, list(array_rows))
    for src in range(n_ranks):
        src_old = owned_intervals(old_bounds, src)
        for dst in range(n_ranks):
            if dst == src:
                continue
            dst_old = owned_intervals(old_bounds, dst)
            for name in array_rows:
                rows = (needed[dst][name] - dst_old) & src_old
                expect = oracle_sends.get((src, dst), {}).get(name, [])
                assert rows.to_rows() == expect, (src, dst, name)
                indexed = sends.get((src, dst), {}).get(name,
                                                        IntervalSet.empty())
                assert indexed.to_rows() == expect, (src, dst, name)
