"""Tests for the busy-polling receive mode (2003-era MPICH ch_p4
behavior) — the mechanism behind the paper's node-removal results."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.mpi import run_spmd
from repro.simcluster import Cluster, Compute, Sleep


def make_cluster(recv_mode, n=2, quantum=0.010, speed=1e8):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=speed, quantum=quantum),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8,
                            cpu_per_byte=0.0, cpu_per_msg=0.0,
                            recv_mode=recv_mode),
    ))


def test_polling_recv_burns_cpu_while_waiting():
    cluster = make_cluster("polling")
    times = {}

    def program(ep):
        if ep.rank == 0:
            yield Sleep(0.1)  # make the receiver wait 100 ms
            yield from ep.send(1, tag=0, payload="x")
        else:
            _, _ = yield from ep.recv(0, tag=0)
            times["cpu"] = [p for p in ep.comm.sim.processes
                            if p.name == "rank1"][0].cpu_time

    run_spmd(cluster, program)
    # the receiver spun for ~the whole wait
    assert times["cpu"] == pytest.approx(0.1, rel=0.1)


def test_blocking_recv_uses_no_cpu_while_waiting():
    cluster = make_cluster("blocking")
    times = {}

    def program(ep):
        if ep.rank == 0:
            yield Sleep(0.1)
            yield from ep.send(1, tag=0, payload="x")
        else:
            _, _ = yield from ep.recv(0, tag=0)
            times["cpu"] = [p for p in ep.comm.sim.processes
                            if p.name == "rank1"][0].cpu_time

    run_spmd(cluster, program)
    assert times["cpu"] < 0.001


def test_polling_delivery_correctness():
    """Payloads and ordering are identical to blocking mode."""
    for mode in ("blocking", "polling"):
        cluster = make_cluster(mode)

        def program(ep):
            if ep.rank == 0:
                for i in range(5):
                    yield from ep.send(1, tag=3, payload=i)
            else:
                got = []
                for _ in range(5):
                    v, _ = yield from ep.recv(0, tag=3)
                    got.append(v)
                assert got == list(range(5))

        run_spmd(cluster, program)


def test_polling_on_loaded_node_delays_message_notice():
    """The Figure 6 mechanism: with k competing processes, a polling
    receiver notices an arrived message only when it next gets the
    CPU — a multi-quantum stall that a blocking receiver (with wakeup
    boost) does not suffer."""
    send_times = [0.173, 0.331, 0.489, 0.642, 0.817, 0.971]
    notice = {}
    for mode in ("blocking", "polling"):
        cluster = make_cluster(mode)
        for _ in range(3):
            cluster.nodes[1].start_competing()
        delays = []

        def program(ep):
            sim = ep.comm.sim
            if ep.rank == 0:
                for t_send in send_times:
                    yield Sleep(t_send - sim.now)
                    yield from ep.send(1, tag=0, payload="x")
            else:
                # burn CPU first so the EMA share is realistic
                yield Compute(1e6)
                for t_send in send_times:
                    _, _ = yield from ep.recv(0, tag=0)
                    delays.append(sim.now - t_send)

        run_spmd(cluster, program)
        notice[mode] = sum(delays) / len(delays)
    assert notice["polling"] > notice["blocking"]
    # average stall is on the order of the competing quanta ahead of us
    assert notice["polling"] > 0.005


def test_polling_sub_quantum_chunks_bound_overshoot():
    """On an unloaded node the polling loop notices a message within
    one poll chunk (quantum/100), not a full quantum."""
    cluster = make_cluster("polling")
    arrival = {}

    def program(ep):
        sim = ep.comm.sim
        if ep.rank == 0:
            yield Sleep(0.0501)
            yield from ep.send(1, tag=0, payload="x")
        else:
            _, _ = yield from ep.recv(0, tag=0)
            arrival["t"] = sim.now

    run_spmd(cluster, program)
    assert arrival["t"] - 0.0501 < 0.001
