"""Smoke tests: every example script must run to completion and print
its headline output (examples are documentation — they must not rot)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "with Dyn-MPI" in out
    assert "speedup" in out
    assert "redistribute" in out


def test_node_removal(capsys):
    out = run_example("node_removal.py", capsys)
    assert "drop" in out
    assert "physically removed" in out


def test_unbalanced_particles(capsys):
    out = run_example("unbalanced_particles.py", capsys)
    assert "hot rows" in out
    assert "redistribute" in out


def test_cg_solver(capsys):
    out = run_example("cg_solver.py", capsys)
    assert "matches the sequential solver" in out


def test_failover(capsys):
    out = run_example("failover.py", capsys)
    assert "crash_recovery" in out
    assert "bitwise-equal to the crash-free run: YES" in out


def test_scheduler_timeline(capsys):
    out = run_example("scheduler_timeline.py", capsys)
    assert "CPU timelines" in out
    assert "n0 |" in out and "n1 |" in out
