"""Tests for Deferred Regular Section Descriptors."""

import pytest

from repro.core.drsd import AccessMode, DRSD
from repro.errors import RegistrationError


def test_basic_write_access():
    d = DRSD("A", AccessMode.WRITE)
    assert d.writes and not d.reads
    assert list(d.rows_needed(3, 6, 10)) == [3, 4, 5, 6]


def test_stencil_read_access_extends_bounds():
    d = DRSD("B", AccessMode.READ, lo_off=-1, hi_off=1)
    assert d.reads and not d.writes
    assert list(d.rows_needed(3, 6, 10)) == [2, 3, 4, 5, 6, 7]
    assert d.halo_width() == (1, 1)


def test_clipping_at_array_edges():
    d = DRSD("B", AccessMode.READ, lo_off=-2, hi_off=2)
    assert list(d.rows_needed(0, 1, 10)) == [0, 1, 2, 3]
    assert list(d.rows_needed(8, 9, 10)) == [6, 7, 8, 9]


def test_empty_loop_yields_no_rows():
    d = DRSD("A", AccessMode.WRITE)
    assert list(d.rows_needed(5, 4, 10)) == []


def test_fully_clipped_yields_no_rows():
    d = DRSD("A", AccessMode.READ, lo_off=5, hi_off=5)
    assert list(d.rows_needed(7, 9, 10)) == []


def test_strided_access():
    d = DRSD("A", AccessMode.READWRITE, step=2)
    assert d.reads and d.writes
    assert list(d.rows_needed(0, 7, 10)) == [0, 2, 4, 6]


def test_validation():
    with pytest.raises(RegistrationError):
        DRSD("A", "banana")
    with pytest.raises(RegistrationError):
        DRSD("A", AccessMode.READ, step=0)
    with pytest.raises(RegistrationError):
        DRSD("A", AccessMode.READ, lo_off=2, hi_off=1)


def test_halo_width_only_counts_outside_range():
    assert DRSD("A", AccessMode.READ, lo_off=0, hi_off=2).halo_width() == (0, 2)
    assert DRSD("A", AccessMode.READ, lo_off=-3, hi_off=0).halo_width() == (3, 0)
    assert DRSD("A", AccessMode.WRITE).halo_width() == (0, 0)
