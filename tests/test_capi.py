"""Tests for the paper-named DMPI_* facade — including a one-to-one
transliteration of the paper's Figure 2 program."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import DynMPIJob
from repro.core.capi import (
    DMPI,
    DMPI_BLOCK,
    DMPI_CYCLIC,
    DMPI_NEAREST_NEIGHBOR,
    DMPI_READ,
    DMPI_WRITE,
)
from repro.errors import RegistrationError
from repro.simcluster import Cluster, CycleTrigger, LoadScript

N = 32
NUM_ITERS = 24


def make_cluster(n=4):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
    ))


def figure2_program(ctx, numprocs):
    """The paper's Figure 2, transliterated line for line."""
    dmpi = DMPI(ctx)
    # regular MPI initialization omitted
    dmpi.DMPI_init(numprocs, 1, 2, DMPI_BLOCK)
    A = dmpi.DMPI_register_dense_array("A", 0, N - 1, row_elems=N)
    B = dmpi.DMPI_register_dense_array("B", 0, N - 1, row_elems=N)
    dmpi.DMPI_init_phase(1, 0, N - 1, DMPI_NEAREST_NEIGHBOR, row_nbytes=N * 8)
    dmpi.DMPI_add_array_access(1, "A", DMPI_WRITE, 0, 0)
    dmpi.DMPI_add_array_access(1, "B", DMPI_READ, -1, 1)
    dmpi.DMPI_commit()

    for g in B.held_rows():
        B.row(g)[:] = 1.0

    def work_of(s, e):
        return np.full(e - s + 1, N * 9.0)

    for t in range(NUM_ITERS):
        yield from dmpi.DMPI_begin_cycle()
        start_iter = dmpi.DMPI_get_start_iter()
        end_iter = dmpi.DMPI_get_end_iter()
        if dmpi.DMPI_participating():

            def exec_rows(lo, hi):
                for i in range(lo, hi + 1):
                    A.hold([i])
                    A.row(i)[:] = B.row(i)  # F(B, i, j)

            yield from dmpi.DMPI_compute(1, work_of, exec_rows)
            rel_rank = dmpi.DMPI_get_rel_rank()
            if rel_rank > 0:
                yield from dmpi.DMPI_Send(
                    B.row(start_iter).copy(), rel_rank - 1, tag=9)
            if rel_rank < dmpi.DMPI_get_num_active() - 1:
                data, _ = yield from dmpi.DMPI_Recv(rel_rank + 1, tag=9)
                B.hold([end_iter + 1])
                B.set_row(end_iter + 1, data)
        yield from dmpi.DMPI_end_cycle()
    return (start_iter, end_iter)


def test_figure2_program_runs_and_adapts():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=0, action="start")
    ]))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=False,
        daemon_interval=0.002,
    ))
    results = job.launch(figure2_program, args=(4,))
    assert any(ev.kind == "redistribute" for ev in job.events)
    total = sum(e - s + 1 for (s, e) in results if e >= s)
    assert total == N


def test_dmpi_init_validates():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        dmpi = DMPI(ctx)
        with pytest.raises(RegistrationError):
            dmpi.DMPI_init(99, 1, 1)  # wrong processor count
        with pytest.raises(RegistrationError):
            dmpi.DMPI_init(2, 1, 1, "scatter")  # unknown distribution
        with pytest.raises(RegistrationError):
            dmpi.DMPI_init(2, 1, 1, DMPI_CYCLIC)  # not runtime-supported
        dmpi.DMPI_init(2, 1, 1, DMPI_BLOCK)
        with pytest.raises(RegistrationError):
            dmpi.DMPI_init_phase(1, 0, 9, "gossip")
        yield from ()

    job.launch(program)


def test_dmpi_rel_rank_of_other_world_rank():
    cluster = make_cluster(3)
    job = DynMPIJob(cluster)

    def program(ctx):
        dmpi = DMPI(ctx)
        dmpi.DMPI_init(3, 1, 1)
        dmpi.DMPI_register_dense_array("A", 0, N - 1)
        dmpi.DMPI_init_phase(1, 0, N - 1, DMPI_NEAREST_NEIGHBOR)
        dmpi.DMPI_add_array_access(1, "A", DMPI_WRITE)
        dmpi.DMPI_commit()
        assert dmpi.DMPI_get_rel_rank(0) == 0
        assert dmpi.DMPI_get_rel_rank(2) == 2
        assert dmpi.DMPI_get_num_active() == 3
        yield from ()

    job.launch(program)


def test_dmpi_allreduce_and_sparse_iterator():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        dmpi = DMPI(ctx)
        dmpi.DMPI_init(2, 1, 1)
        S = dmpi.DMPI_register_sparse_array("S", N, N)
        dmpi.DMPI_init_phase(1, 0, N - 1, DMPI_NEAREST_NEIGHBOR)
        dmpi.DMPI_add_array_access(1, "S", DMPI_READ)
        dmpi.DMPI_commit()
        s, e = ctx.my_bounds()
        S.set(s, 0, float(ctx.world_rank + 1))
        total = yield from dmpi.DMPI_Allreduce(ctx.world_rank + 1)
        assert total == 3
        it = dmpi.DMPI_sparse_iterator("S", s)
        assert it.next() == (0, float(ctx.world_rank + 1))

    job.launch(program)
