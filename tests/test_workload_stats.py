"""Tests for load scripts, the metric recorder, and named RNG streams."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.errors import ConfigError
from repro.simcluster import (
    Cluster,
    CycleTrigger,
    LoadScript,
    Recorder,
    Sleep,
    TimeTrigger,
    single_competitor,
)
from repro.simcluster.rng import StreamRegistry


def make_cluster(n=2):
    return Cluster(ClusterSpec(n_nodes=n, node=NodeSpec(speed=1e8)))


# ----------------------------------------------------------------------
# load scripts
# ----------------------------------------------------------------------
def test_time_trigger_starts_and_stops():
    cluster = make_cluster()
    script = LoadScript(time_triggers=[
        TimeTrigger(time=1.0, node=0, action="start", count=2),
        TimeTrigger(time=3.0, node=0, action="stop", count=1),
    ])
    cluster.install_load_script(script)
    counts = []
    cluster.sim.schedule(0.5, lambda: counts.append(cluster.nodes[0].n_competing))
    cluster.sim.schedule(1.5, lambda: counts.append(cluster.nodes[0].n_competing))
    cluster.sim.schedule(3.5, lambda: counts.append(cluster.nodes[0].n_competing))
    cluster.sim.run(until=4.0)
    assert counts == [0, 2, 1]


def test_cycle_trigger_fires_once_per_cycle():
    cluster = make_cluster()
    script = single_competitor(1, start_cycle=3, stop_cycle=6)
    cluster.install_load_script(script)
    cluster.notify_cycle(0)
    cluster.notify_cycle(3)
    assert cluster.nodes[1].n_competing == 1
    cluster.notify_cycle(3)  # repeated notification must not double-fire
    assert cluster.nodes[1].n_competing == 1
    cluster.notify_cycle(6)
    assert cluster.nodes[1].n_competing == 0


def test_stop_more_than_started_is_clamped():
    cluster = make_cluster()
    script = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=1, node=0, action="start", count=1),
        CycleTrigger(cycle=2, node=0, action="stop", count=5),
    ])
    cluster.install_load_script(script)
    cluster.notify_cycle(1)
    cluster.notify_cycle(2)
    assert cluster.nodes[0].n_competing == 0


def test_trigger_validation():
    with pytest.raises(ConfigError):
        TimeTrigger(time=-1, node=0, action="start")
    with pytest.raises(ConfigError):
        TimeTrigger(time=0, node=0, action="restart")
    with pytest.raises(ConfigError):
        CycleTrigger(cycle=-1, node=0, action="start")
    with pytest.raises(ConfigError):
        CycleTrigger(cycle=0, node=0, action="start", count=0)


def test_uninstalled_script_rejects_cycles():
    script = single_competitor(0, start_cycle=0)
    with pytest.raises(ConfigError):
        script.on_cycle(0)


def test_recorder_marks_events():
    cluster = make_cluster()
    cluster.install_load_script(single_competitor(0, start_cycle=2))
    cluster.notify_cycle(2)
    assert any("start:1cp@n0" in label for _, label in cluster.recorder.events)


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------
def test_recorder_counters_and_series():
    r = Recorder()
    r.count("msgs")
    r.count("msgs", 2)
    r.sample("q", 0.0, 1.0)
    r.sample("q", 1.0, 3.0)
    assert r.total("msgs") == 3
    assert r.mean("q") == 2.0
    assert list(r.times("q")) == [0.0, 1.0]
    assert np.isnan(r.mean("missing"))


def test_recorder_merge():
    a, b = Recorder(), Recorder()
    a.count("x", 1)
    b.count("x", 2)
    b.sample("s", 0.0, 5.0)
    b.mark(1.0, "evt")
    a.merge([b])
    assert a.total("x") == 3
    assert a.mean("s") == 5.0
    assert a.events == [(1.0, "evt")]


# ----------------------------------------------------------------------
# rng streams
# ----------------------------------------------------------------------
def test_streams_are_deterministic_per_name():
    r1 = StreamRegistry(seed=42)
    r2 = StreamRegistry(seed=42)
    a = r1.stream("cpu0").random(5)
    b = r2.stream("cpu0").random(5)
    assert np.array_equal(a, b)


def test_streams_independent_of_creation_order():
    r1 = StreamRegistry(seed=1)
    r2 = StreamRegistry(seed=1)
    _ = r1.stream("first")
    a = r1.stream("second").random(3)
    b = r2.stream("second").random(3)  # created first here
    assert np.array_equal(a, b)


def test_different_names_and_seeds_differ():
    r = StreamRegistry(seed=7)
    a = r.stream("a").random(4)
    b = r.stream("b").random(4)
    assert not np.array_equal(a, b)
    other = StreamRegistry(seed=8).stream("a").random(4)
    assert not np.array_equal(a, other)


def test_stream_persists_state():
    r = StreamRegistry(seed=0)
    s = r.stream("x")
    first = s.random()
    again = r.stream("x").random()  # same generator object, advanced
    assert first != again
    assert "x" in r
