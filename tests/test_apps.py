"""Application correctness tests: each distributed app must compute
exactly what its sequential reference computes — with and without
redistribution happening mid-run."""

import numpy as np
import pytest

from repro.apps import (
    CGConfig,
    JacobiConfig,
    ParticleConfig,
    SORConfig,
    cg_program,
    initial_counts,
    jacobi_program,
    particle_program,
    run_program,
    sor_program,
)
from repro.apps import jacobi as jacobi_mod
from repro.apps import sor as sor_mod
from repro.apps.kernels import make_cg_rows
from repro.apps.reference import (
    cg_matrix_dense,
    cg_reference,
    jacobi_reference,
    particle_reference,
    sor_reference,
)
from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.simcluster import Cluster, CycleTrigger, LoadScript

# tiny test problems mean sub-millisecond phase cycles, so the load
# daemon must sample far faster than the paper's 1 Hz to notice the
# competing process within the run
FAST_SPEC = RuntimeSpec(grace_period=2, post_redist_period=3,
                        allow_removal=False, daemon_interval=0.002)


def make_cluster(n=4):
    # Tiny test problems (tens of rows) must keep the comm/comp ratio
    # realistic, so the per-message CPU overheads are scaled down with
    # the problem; otherwise the balancer correctly-but-unhelpfully
    # optimizes for neighbor count instead of load.
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
    ))


def loaded_script(node=0, cycle=3, count=2):
    return LoadScript(cycle_triggers=[
        CycleTrigger(cycle=cycle, node=node, action="start", count=count)
    ])


# ----------------------------------------------------------------------
# Jacobi
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_nodes", [1, 2, 4])
def test_jacobi_matches_reference(n_nodes):
    cfg = JacobiConfig(n=24, iters=6, materialized=True, collect=True)
    res = run_program(make_cluster(n_nodes), jacobi_program, cfg, adaptive=False)
    expected = jacobi_reference(jacobi_mod.initial_grid(cfg), cfg.iters)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


def test_jacobi_correct_across_redistribution():
    cfg = JacobiConfig(n=32, iters=30, materialized=True, collect=True)
    res = run_program(
        make_cluster(4), jacobi_program, cfg,
        spec=FAST_SPEC, adaptive=True, load_script=loaded_script(),
    )
    assert res.n_redistributions >= 1
    expected = jacobi_reference(jacobi_mod.initial_grid(cfg), cfg.iters)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)
    # the loaded node ends with fewer rows than even
    s0, e0 = res.bounds[0]
    assert (e0 - s0 + 1) < cfg.n // 4


def test_jacobi_virtual_mode_runs_and_adapts():
    cfg = JacobiConfig(n=64, iters=30, materialized=False)
    res = run_program(
        make_cluster(4), jacobi_program, cfg,
        spec=FAST_SPEC, adaptive=True, load_script=loaded_script(),
    )
    assert res.n_redistributions >= 1
    assert res.wall_time > 0


# ----------------------------------------------------------------------
# SOR
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_nodes", [1, 3, 4])
def test_sor_matches_reference(n_nodes):
    cfg = SORConfig(n=20, iters=5, materialized=True, collect=True)
    res = run_program(make_cluster(n_nodes), sor_program, cfg, adaptive=False)
    expected = sor_reference(sor_mod.initial_grid(cfg), cfg.iters, cfg.omega)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


def test_sor_correct_across_redistribution():
    cfg = SORConfig(n=24, iters=24, materialized=True, collect=True)
    res = run_program(
        make_cluster(3), sor_program, cfg,
        spec=FAST_SPEC, adaptive=True, load_script=loaded_script(node=1),
    )
    assert res.n_redistributions >= 1
    expected = sor_reference(sor_mod.initial_grid(cfg), cfg.iters, cfg.omega)
    for out in res.per_rank:
        assert np.allclose(out["grid"], expected, atol=1e-12)


# ----------------------------------------------------------------------
# CG
# ----------------------------------------------------------------------
def test_cg_matrix_is_symmetric_and_diag_dominant():
    n = 60
    A = cg_matrix_dense(n)
    assert np.allclose(A, A.T)
    for i in range(n):
        assert A[i, i] > np.abs(A[i]).sum() - A[i, i]


def test_cg_rows_consistent_with_dense():
    n = 40
    A = cg_matrix_dense(n)
    for g in (0, 7, n - 1):
        cols, vals = make_cg_rows(n, g)
        row = np.zeros(n)
        row[cols] = vals
        assert np.allclose(row, A[g])


@pytest.mark.parametrize("n_nodes", [1, 2, 4])
def test_cg_matches_reference(n_nodes):
    cfg = CGConfig(n=48, iters=12)
    res = run_program(make_cluster(n_nodes), cg_program, cfg, adaptive=False)
    A = cg_matrix_dense(cfg.n, nnz_target=cfg.nnz_target, seed=cfg.seed)
    x_ref, resid_ref = cg_reference(A, np.ones(cfg.n), cfg.iters)
    # assemble distributed x
    x = np.zeros(cfg.n)
    for out in res.per_rank:
        for g, v in out["x_local"].items():
            x[g] = v
    assert np.allclose(x, x_ref, atol=1e-8)
    assert res.per_rank[0]["residual"] == pytest.approx(resid_ref, abs=1e-8)


def test_cg_converges():
    cfg = CGConfig(n=64, iters=40)
    res = run_program(make_cluster(2), cg_program, cfg, adaptive=False)
    assert res.per_rank[0]["residual"] < 1e-6 * np.sqrt(cfg.n)


def test_cg_correct_across_redistribution():
    cfg = CGConfig(n=48, iters=25)
    res = run_program(
        make_cluster(4), cg_program, cfg,
        spec=FAST_SPEC, adaptive=True, load_script=loaded_script(node=2),
    )
    assert res.n_redistributions >= 1
    A = cg_matrix_dense(cfg.n, nnz_target=cfg.nnz_target, seed=cfg.seed)
    x_ref, _ = cg_reference(A, np.ones(cfg.n), cfg.iters)
    x = np.zeros(cfg.n)
    for out in res.per_rank:
        for g, v in out["x_local"].items():
            x[g] = v
    assert np.allclose(x, x_ref, atol=1e-8)


# ----------------------------------------------------------------------
# particle simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_nodes", [1, 2, 4])
def test_particle_matches_reference(n_nodes):
    cfg = ParticleConfig(rows=16, cols=8, steps=6, collect=True)
    res = run_program(make_cluster(n_nodes), particle_program, cfg, adaptive=False)
    expected = particle_reference(initial_counts(cfg), cfg.steps, cfg.seed)
    for out in res.per_rank:
        assert np.array_equal(out["grid"], expected)


def test_particle_mass_conserved():
    cfg = ParticleConfig(rows=16, cols=8, steps=10)
    res = run_program(make_cluster(2), particle_program, cfg, adaptive=False)
    total = sum(out["particles"] for out in res.per_rank)
    assert total == pytest.approx(initial_counts(cfg).sum())


def test_particle_correct_across_redistribution():
    cfg = ParticleConfig(rows=24, cols=8, steps=24, hot_rows=6,
                         hot_factor=2.0, collect=True)
    res = run_program(
        make_cluster(4), particle_program, cfg,
        spec=FAST_SPEC, adaptive=True, load_script=loaded_script(node=0),
    )
    assert res.n_redistributions >= 1
    expected = particle_reference(initial_counts(cfg), cfg.steps, cfg.seed)
    for out in res.per_rank:
        assert np.array_equal(out["grid"], expected)


def test_particle_unbalanced_rows_get_fewer_per_node():
    """With 2x particles on the hot rows, weighted blocks give the hot
    node fewer rows even when nobody is loaded (after a redistribution
    is forced by a competing process elsewhere)."""
    cfg = ParticleConfig(rows=32, cols=8, steps=40, hot_rows=8, hot_factor=4.0)
    res = run_program(
        make_cluster(4), particle_program, cfg,
        spec=FAST_SPEC, adaptive=True,
        load_script=LoadScript(cycle_triggers=[
            CycleTrigger(cycle=3, node=3, action="start"),
            CycleTrigger(cycle=20, node=3, action="stop"),
        ]),
    )
    assert res.n_redistributions >= 1
    # the heavy upper half (the hot region plus the mass that diffuses
    # just below it) is held by the first two ranks with fewer rows
    # than the light lower half held by the last two
    upper = sum(e - s + 1 for s, e in res.bounds[:2] if e >= s)
    lower = sum(e - s + 1 for s, e in res.bounds[2:] if e >= s)
    assert upper + lower == cfg.rows
    assert upper < lower
