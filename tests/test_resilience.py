"""Tests for repro.resilience: injected node crashes, in-memory buddy
checkpointing, heartbeat failure detection, and lockstep recovery
(crash treated as an involuntary Section 4.4 removal)."""

import numpy as np
import pytest

from repro.config import (
    ClusterSpec, NetworkSpec, NodeSpec, ResilienceSpec, RuntimeSpec,
)
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.core.loadmon import FailureDetector
from repro.errors import CheckpointLostError, ConfigError, RankFailedError
from repro.dmem import ProjectedArray
from repro.resilience import (
    CheckpointStore,
    CycleFault,
    FailureScript,
    holder_for,
    node_crash,
    ring_buddies,
    snapshot,
)
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SPEED = 1e8
N_ROWS = 64
# per-row work giving ~40 ms of compute per cycle on 4 ranks: long
# enough that a stopped heartbeat crosses the detection timeout a
# deterministic two cycles after the crash (see HEARTBEAT_TIMEOUT)
ROW_WORK = SPEED * 0.04 / (N_ROWS // 4)
HEARTBEAT_TIMEOUT = 0.055


def make_cluster(n=4):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=SPEED),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))


def program(ctx, n_cycles, row_work, check_data=False):
    A = ctx.register_dense("A", (N_ROWS, 8))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
    ctx.add_array_access(1, "A", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        A.row(g)[:] = g

    def work_of(s, e):
        return np.full(e - s + 1, row_work)

    for _t in range(n_cycles):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()

    if check_data and ctx.participating():
        s, e = ctx.my_bounds()
        for g in range(s, e + 1):
            assert np.all(A.row(g) == g), f"row {g} corrupted"
    return ctx.my_bounds()


def resilient_spec(**kw):
    base = dict(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_mode="physical", allow_rejoin=True, daemon_interval=0.01,
        resilience=ResilienceSpec(heartbeat_timeout=HEARTBEAT_TIMEOUT),
    )
    base.update(kw)
    return RuntimeSpec(**base)


def run_crash_scenario(script, *, spec=None, n_cycles=30):
    cluster = make_cluster(4)
    cluster.install_failure_script(script)
    job = DynMPIJob(cluster, spec or resilient_spec())
    results = job.launch(program, args=(n_cycles, ROW_WORK, True))
    return job, results


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------

def test_resilience_spec_defaults():
    res = ResilienceSpec()
    assert res.checkpoint_interval == 1
    assert res.replication == 1
    # no explicit timeout: 3 heartbeat periods
    assert res.resolve_timeout(0.01) == pytest.approx(0.03)
    assert ResilienceSpec(heartbeat_timeout=0.5).resolve_timeout(0.01) == 0.5


@pytest.mark.parametrize("kw", [
    {"checkpoint_interval": 0},
    {"replication": 0},
    {"heartbeat_timeout": -1.0},
])
def test_resilience_spec_validation(kw):
    with pytest.raises(ConfigError):
        ResilienceSpec(**kw)


# ---------------------------------------------------------------------------
# checkpoint layer
# ---------------------------------------------------------------------------

def test_ring_buddies():
    assert ring_buddies(0, 4, 1) == [1]
    assert ring_buddies(3, 4, 2) == [0, 1]
    assert ring_buddies(1, 4, 10) == [2, 3, 0]  # clipped to size-1
    assert ring_buddies(0, 1, 3) == []          # degenerate ring


def test_holder_for_prefers_nearest_alive_buddy():
    assert holder_for(1, 4, 2, alive_rels={2, 3}) == 2
    assert holder_for(1, 4, 2, alive_rels={0, 3}) == 3
    with pytest.raises(CheckpointLostError):
        holder_for(1, 4, 1, alive_rels={0, 3})  # sole buddy (2) died too


def test_snapshot_restore_roundtrip():
    src = ProjectedArray("A", (8, 4))
    src.hold(range(2, 6))
    for g in range(2, 6):
        src.row(g)[:] = 10 * g
    ckpt = snapshot({"A": src}, (2, 5), owner_world=1, cycle=7)
    assert ckpt.owner_world == 1 and ckpt.cycle == 7
    assert ckpt.owned_rows() == {2, 3, 4, 5}
    assert ckpt.nbytes > 0

    dst = ProjectedArray("A", (8, 4))
    installed = ckpt.restore({"A": dst})
    assert installed == 4
    for g in range(2, 6):
        assert np.all(dst.row(g) == 10 * g)


def test_snapshot_of_empty_bounds_is_header_only():
    ckpt = snapshot({}, None, owner_world=3, cycle=0)
    assert ckpt.owned_rows() == set()
    assert ckpt.arrays == {}


def test_checkpoint_store_keeps_newest_per_owner():
    store = CheckpointStore()
    store.put(snapshot({}, None, owner_world=1, cycle=3))
    store.put(snapshot({}, None, owner_world=1, cycle=9))
    store.put(snapshot({}, None, owner_world=2, cycle=9))
    assert store.owners() == [1, 2]
    assert store.get(1).cycle == 9
    assert store.held_nbytes > 0
    store.discard(1)
    assert store.get(1) is None
    store.discard(1)  # idempotent


# ---------------------------------------------------------------------------
# failure detector
# ---------------------------------------------------------------------------

class FakePs:
    def __init__(self):
        self.t = 0.0
        self.samples = {}
        self.alive = {}

    def last_sample_time(self, node_id):
        return self.samples.get(node_id, float("-inf"))

    def app_alive(self, node_id):
        return self.alive.get(node_id, True)


def test_detector_no_false_positive_at_boot():
    ps = FakePs()
    det = FailureDetector(ps, timeout=0.5, now=lambda: ps.t)
    # no sample yet, but we are inside the first timeout window: boot
    # counts as an implicit heartbeat
    ps.t = 0.4
    assert not det.suspect(0)
    ps.t = 0.6
    assert det.suspect(0)


def test_detector_stale_heartbeat_and_dead_app():
    ps = FakePs()
    det = FailureDetector(ps, timeout=0.5, now=lambda: ps.t)
    ps.samples[0] = 1.0
    ps.t = 1.4
    assert not det.suspect(0)
    ps.t = 1.6
    assert det.suspect(0)
    # a dead application is suspicious even with a fresh heartbeat
    ps.samples[1] = 1.59
    ps.alive[1] = False
    assert det.suspect(1)
    assert det.sweep([0, 1]) == [0, 1]


def test_detector_logs_first_suspicion_and_latency():
    ps = FakePs()
    det = FailureDetector(ps, timeout=0.5, now=lambda: ps.t)
    ps.samples[0] = 1.0
    ps.t = 2.0
    assert det.suspect(0) and det.suspect(0)
    assert det.suspected_log == [(2.0, 0)]  # first suspicion only
    assert det.detection_latency(0, fail_time=1.0) == pytest.approx(1.0)
    assert det.detection_latency(3, fail_time=0.0) is None


def test_detector_rejects_bad_timeout():
    with pytest.raises(ValueError):
        FailureDetector(FakePs(), timeout=0.0)


# ---------------------------------------------------------------------------
# crash recovery (the tentpole)
# ---------------------------------------------------------------------------

def test_crash_recovery_restores_rows():
    job, results = run_crash_scenario(node_crash(2, at_cycle=10))
    kinds = [ev.kind for ev in job.events]
    assert "crash_recovery" in kinds
    ev = next(ev for ev in job.events if ev.kind == "crash_recovery")
    assert ev.detail["dead_world"] == [2]
    assert ev.detail["parked_dead"] == []
    # ring buddy of rel 2 is rel 3; it replayed 16 rows of "A"
    assert ev.detail["holders"] == {2: 3}
    assert ev.detail["adopted_rows"] == 16
    assert ev.detail["replayed_installs"] == 16
    # the victim's generator was closed, not run to completion
    assert results[2] is None
    assert job.contexts[2].crashed
    # survivors tile every row between them (check_data inside the
    # program already proved each row still carries its global index,
    # i.e. the checkpoint replay was correct)
    survivor_bounds = [results[w] for w in (0, 1, 3)]
    total = sum(e - s + 1 for (s, e) in survivor_bounds if e >= s)
    assert total == N_ROWS


def test_crash_detection_latency_is_bounded():
    job, _results = run_crash_scenario(node_crash(1, at_cycle=8))
    crash_t = next(t for t, label in job.cluster.recorder.events
                   if label == "fault:crash@n1")
    latency = job.detector.detection_latency(1, crash_t)
    # stale-heartbeat detection: within the timeout plus a few cycles
    assert latency is not None
    assert latency <= HEARTBEAT_TIMEOUT + 0.2


def test_double_crash_survives_with_replication_two():
    script = FailureScript(cycle_faults=[
        CycleFault(cycle=8, node=1, action="crash"),
        CycleFault(cycle=8, node=2, action="crash"),
    ])
    job, results = run_crash_scenario(
        script,
        spec=resilient_spec(resilience=ResilienceSpec(
            replication=2, heartbeat_timeout=HEARTBEAT_TIMEOUT)),
    )
    ev = next(ev for ev in job.events if ev.kind == "crash_recovery")
    assert ev.detail["dead_world"] == [1, 2]
    # rel 1's buddies are (2, 3): 2 is dead, 3 replays; rel 2's buddies
    # are (3, 0): 3 replays both
    assert ev.detail["holders"] == {1: 3, 2: 3}
    total = sum(e - s + 1 for w in (0, 3) for (s, e) in [results[w]] if e >= s)
    assert total == N_ROWS


def test_double_adjacent_crash_without_replication_loses_checkpoint():
    """replication=1 cannot survive a rank and its sole buddy dying in
    the same detection window: survivors fail loudly, not silently."""
    script = FailureScript(cycle_faults=[
        CycleFault(cycle=8, node=1, action="crash"),
        CycleFault(cycle=8, node=2, action="crash"),
    ])
    with pytest.raises(CheckpointLostError):
        run_crash_scenario(script)


def test_crash_of_parked_rank():
    """A node that crashes while physically removed (parked, waiting to
    rejoin) is excised from the rejoin protocol via a 'dead' token; no
    data recovery is needed because it owned no rows."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=2, action="start", count=8),
    ]))
    cluster.install_failure_script(node_crash(2, at_cycle=30))
    # comm-dominant cycles so the loaded node is dropped (the
    # test_rejoin regime), with a proportionally tight heartbeat
    job = DynMPIJob(cluster, resilient_spec(
        daemon_interval=0.002,
        resilience=ResilienceSpec(heartbeat_timeout=0.01),
    ))
    results = job.launch(program, args=(140, SPEED * 0.2e-3 / N_ROWS * 4, True))
    kinds = [ev.kind for ev in job.events]
    assert "drop" in kinds
    assert "crash_recovery" in kinds
    assert "rejoin" not in kinds
    ev = next(ev for ev in job.events if ev.kind == "crash_recovery")
    assert ev.detail["dead_world"] == [2]
    assert ev.detail["parked_dead"] == [2]
    assert "holders" not in ev.detail  # nothing to replay
    assert results[2] is None
    assert job.contexts[2].crashed
    total = sum(e - s + 1 for w in (0, 1, 3)
                for (s, e) in [results[w]] if e >= s)
    assert total == N_ROWS


def test_checkpointing_disabled_without_spec():
    cluster = make_cluster(4)
    job = DynMPIJob(cluster, RuntimeSpec(daemon_interval=0.01))
    job.launch(program, args=(6, ROW_WORK))
    assert job.detector is None
    assert all(ctx._ckpt_store is None for ctx in job.contexts)


def test_checkpoint_interval_spacing():
    """interval=4: snapshots land only every 4th cycle (plus forced
    post-change snapshots), so the stored replica's cycle stamp lags."""
    cluster = make_cluster(4)
    job = DynMPIJob(cluster, resilient_spec(resilience=ResilienceSpec(
        checkpoint_interval=4, heartbeat_timeout=HEARTBEAT_TIMEOUT)))
    job.launch(program, args=(11, ROW_WORK))
    for ctx in job.contexts:
        stored = [ctx._ckpt_store.get(o) for o in ctx._ckpt_store.owners()]
        assert stored, "every rank should hold a neighbor replica"
        assert all(c.cycle % 4 == 0 for c in stored)


def _run_jacobi(crash_cycle=None):
    from repro.apps import JacobiConfig, jacobi_program, run_program

    cluster = make_cluster(4)
    if crash_cycle is not None:
        cluster.install_failure_script(node_crash(1, at_cycle=crash_cycle))
    spec = resilient_spec(
        daemon_interval=0.001,
        resilience=ResilienceSpec(heartbeat_timeout=0.004),
    )
    cfg = JacobiConfig(n=64, iters=60, materialized=True, collect=True, seed=3)
    return run_program(cluster, jacobi_program, cfg, spec=spec)


def test_jacobi_bitwise_equal_after_crash():
    """The acceptance bar for the recovery protocol: a Jacobi run with
    a mid-run node crash finishes with *bitwise* the same grid as a
    crash-free run — the buddy checkpoint replays the exact
    cycle-boundary state, and redistribution never perturbs values."""
    clean = _run_jacobi()
    crashed = _run_jacobi(crash_cycle=15)
    ev = [e for e in crashed.events if e.kind == "crash_recovery"]
    assert len(ev) == 1 and ev[0].detail["dead_world"] == [1]
    assert crashed.per_rank[1] is None  # the victim returned nothing
    ref = clean.per_rank[0]["grid"]
    for w in (0, 2, 3):
        got = crashed.per_rank[w]["grid"]
        assert np.array_equal(got, ref), f"rank {w} grid diverged"
    # per-rank checksums are partial sums over local bounds (which
    # differ after recovery); their total is layout-independent
    total_clean = sum(r["checksum"] for r in clean.per_rank if r)
    total_crash = sum(r["checksum"] for r in crashed.per_rank if r)
    assert total_crash == pytest.approx(total_clean, rel=1e-12)


# ---------------------------------------------------------------------------
# hard failures (kill / inject): fail fast, no recovery guarantee
# ---------------------------------------------------------------------------

def test_hard_kill_poisons_survivors():
    """A hard-killed rank cannot run the cooperative protocol; peers
    blocked on it must get RankFailedError instead of a deadlock."""
    script = FailureScript(cycle_faults=[
        CycleFault(cycle=8, node=1, action="kill"),
    ])
    cluster = make_cluster(4)
    cluster.install_failure_script(script)
    job = DynMPIJob(cluster, RuntimeSpec(daemon_interval=0.01))
    with pytest.raises(RankFailedError):
        job.launch(program, args=(30, ROW_WORK))


def test_rank_failed_error_message():
    err = RankFailedError(3)
    assert "rank 3" in str(err)
    assert RankFailedError(1, "send to").rank == 1
