"""Collective algorithm tests across group sizes (including
non-powers-of-two) and over subsets of world ranks."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.errors import MPIError
from repro.mpi import MAX, MIN, PROD, SUM, Group, run_spmd
from repro.mpi.collectives import (
    allgather,
    allreduce,
    alltoallv,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from repro.simcluster import Cluster, Sleep

SIZES = [1, 2, 3, 4, 5, 7, 8]


def make_cluster(n):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8),
    ))


@pytest.mark.parametrize("n", SIZES)
def test_bcast_all_roots(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        for root in range(n):
            value = f"msg-{root}" if group.rel(ep.rank) == root else None
            got = yield from bcast(ep, group, value, root=root)
            assert got == f"msg-{root}"

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum_every_root(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))
    expected = sum(range(n))

    def program(ep):
        me = group.rel(ep.rank)
        for root in range(n):
            result = yield from reduce(ep, group, me, SUM, root=root)
            if me == root:
                assert result == expected
            else:
                assert result is None

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("op,expected_fn", [
    (SUM, lambda vals: sum(vals)),
    (MAX, lambda vals: max(vals)),
    (MIN, lambda vals: min(vals)),
    (PROD, lambda vals: np.prod(vals)),
])
def test_allreduce_ops(n, op, expected_fn):
    cluster = make_cluster(n)
    group = Group(list(range(n)))
    vals = [r + 1 for r in range(n)]

    def program(ep):
        me = group.rel(ep.rank)
        result = yield from allreduce(ep, group, vals[me], op)
        assert result == expected_fn(vals)

    run_spmd(cluster, program)


def test_allreduce_numpy_arrays():
    n = 4
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        vec = np.full(8, float(me))
        result = yield from allreduce(ep, group, vec, SUM)
        assert np.allclose(result, sum(range(n)))

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_gather_in_rank_order(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        out = yield from gather(ep, group, me * 10, root=0)
        if me == 0:
            assert out == [r * 10 for r in range(n)]
        else:
            assert out is None

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_scatter(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        values = [f"v{r}" for r in range(n)] if me == 0 else None
        mine = yield from scatter(ep, group, values, root=0)
        assert mine == f"v{me}"

    run_spmd(cluster, program)


def test_scatter_wrong_length_raises():
    cluster = make_cluster(2)
    group = Group([0, 1])

    def program(ep):
        me = group.rel(ep.rank)
        values = ["only-one"] if me == 0 else None
        if me == 0:
            yield Sleep(0)
            yield from scatter(ep, group, values, root=0)
        else:
            yield Sleep(0)

    with pytest.raises(MPIError):
        run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_allgather_variable_sizes(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        block = np.arange(me + 1, dtype=float)  # ragged contributions
        out = yield from allgather(ep, group, block)
        assert len(out) == n
        for r in range(n):
            assert np.array_equal(out[r], np.arange(r + 1, dtype=float))

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_alltoallv_permutation(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        blocks = [f"{me}->{j}" for j in range(n)]
        out = yield from alltoallv(ep, group, blocks)
        assert out == [f"{j}->{me}" for j in range(n)]

    run_spmd(cluster, program)


def test_alltoallv_with_none_blocks():
    n = 4
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        blocks = [me if (me + j) % 2 == 0 else None for j in range(n)]
        out = yield from alltoallv(ep, group, blocks)
        for j in range(n):
            expected = j if (j + me) % 2 == 0 else None
            assert out[j] == expected

    run_spmd(cluster, program)


@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronizes(n):
    cluster = make_cluster(n)
    group = Group(list(range(n)))
    after = []

    def program(ep):
        me = group.rel(ep.rank)
        yield Sleep(me * 0.1)  # stagger arrivals
        yield from barrier(ep, group)
        after.append(ep.comm.sim.now)

    run_spmd(cluster, program)
    # nobody leaves the barrier before the last arrival
    assert min(after) >= (n - 1) * 0.1


def test_collectives_on_subgroup():
    """Collectives over a strict subset of world ranks — the mechanism
    Dyn-MPI uses after physically dropping nodes."""
    n = 5
    cluster = make_cluster(n)
    active = Group([0, 2, 4])  # ranks 1 and 3 "removed"

    def program(ep):
        if ep.rank in active:
            me = active.rel(ep.rank)
            total = yield from allreduce(ep, active, me + 1, SUM)
            assert total == 6
            got = yield from bcast(ep, active, "go" if me == 0 else None, root=0)
            assert got == "go"
        else:
            yield Sleep(0)

    run_spmd(cluster, program)


def test_nonmember_collective_call_raises():
    cluster = make_cluster(2)
    group = Group([0])

    def program(ep):
        if ep.rank == 1:
            yield Sleep(0)
            yield from barrier(ep, group)
        else:
            yield Sleep(0)

    with pytest.raises(MPIError):
        run_spmd(cluster, program)


def test_group_rel_world_roundtrip():
    g = Group([3, 1, 4])
    assert g.rel(3) == 0 and g.rel(1) == 1 and g.rel(4) == 2
    assert [g.world(i) for i in range(3)] == [3, 1, 4]
    assert 1 in g and 0 not in g
    with pytest.raises(MPIError):
        g.rel(9)
    with pytest.raises(MPIError):
        g.world(5)
    with pytest.raises(MPIError):
        Group([1, 1])
    with pytest.raises(MPIError):
        Group([])


def test_sequential_collectives_do_not_cross_talk():
    """Back-to-back collectives with different values must not mix
    messages (tag sequencing)."""
    n = 4
    cluster = make_cluster(n)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        results = []
        for round_no in range(5):
            r = yield from allreduce(ep, group, me + round_no, SUM)
            results.append(r)
        expected = [sum(range(n)) + n * k for k in range(5)]
        assert results == expected

    run_spmd(cluster, program)
