"""Tests for CPU scheduling disciplines (round-robin and processor
sharing) — the core of the non dedicated node model."""

import math

import pytest

from repro.config import NodeSpec
from repro.errors import SimulationError
from repro.simcluster import Compute, ProcState, Simulator, Sleep
from repro.simcluster.cpu import ProcessorSharingCPU, RoundRobinCPU, make_cpu
from repro.simcluster.node import Node


def make_node(sim, speed=100.0, quantum=0.010, discipline="rr", node_id=0):
    return Node(sim, node_id, NodeSpec(speed=speed, quantum=quantum, discipline=discipline))


def compute_prog(work):
    yield Compute(work)


def run_compute(discipline, work, speed=100.0, n_competing=0, quantum=0.010):
    sim = Simulator()
    node = make_node(sim, speed=speed, quantum=quantum, discipline=discipline)
    for _ in range(n_competing):
        node.start_competing()
    p = sim.spawn(compute_prog(work), name="w", node=node)
    sim.run_all([p])
    return sim.now, p


@pytest.mark.parametrize("discipline", ["rr", "ps"])
def test_dedicated_compute_takes_work_over_speed(discipline):
    t, p = run_compute(discipline, work=250.0, speed=100.0)
    assert t == pytest.approx(2.5, rel=1e-9)
    assert p.cpu_time == pytest.approx(2.5, rel=1e-9)


@pytest.mark.parametrize("discipline", ["rr", "ps"])
def test_one_competitor_doubles_wallclock(discipline):
    # Work that is an exact multiple of the quantum so RR has no
    # final-partial-slice skew.
    t, p = run_compute(discipline, work=100.0, speed=100.0, n_competing=1)
    assert t == pytest.approx(2.0, rel=1e-2)
    # CPU time actually consumed by the app is unchanged.
    assert p.cpu_time == pytest.approx(1.0, rel=1e-9)


@pytest.mark.parametrize("discipline", ["rr", "ps"])
def test_three_competitors_quadruple_wallclock(discipline):
    t, p = run_compute(discipline, work=100.0, speed=100.0, n_competing=3)
    assert t == pytest.approx(4.0, rel=1e-2)
    assert p.cpu_time == pytest.approx(1.0, rel=1e-9)


def test_rr_two_equal_jobs_finish_together_roughly():
    sim = Simulator()
    node = make_node(sim, speed=100.0)
    p1 = sim.spawn(compute_prog(100.0), name="a", node=node)
    p2 = sim.spawn(compute_prog(100.0), name="b", node=node)
    sim.run()
    assert sim.now == pytest.approx(2.0, rel=1e-2)
    assert p1.cpu_time == pytest.approx(1.0, rel=1e-9)
    assert p2.cpu_time == pytest.approx(1.0, rel=1e-9)


def test_ps_two_equal_jobs_finish_exactly_together():
    sim = Simulator()
    node = make_node(sim, discipline="ps", speed=100.0)
    sim.spawn(compute_prog(100.0), name="a", node=node)
    sim.spawn(compute_prog(100.0), name="b", node=node)
    sim.run()
    assert sim.now == pytest.approx(2.0, rel=1e-9)


def test_rr_fast_path_single_event_for_dedicated_job():
    sim = Simulator()
    node = make_node(sim, speed=100.0, quantum=0.010)
    sim.spawn(compute_prog(1000.0), name="w", node=node)
    sim.run()
    # 10 s of compute at 10 ms quantum would be ~1000 slice events if the
    # fast path were missing.
    assert sim.n_events < 20


def test_rr_fast_path_preempted_by_arrival():
    sim = Simulator()
    node = make_node(sim, speed=100.0)

    def late_arrival():
        yield Sleep(0.5)
        yield Compute(50.0)

    p1 = sim.spawn(compute_prog(100.0), name="long", node=node)
    p2 = sim.spawn(late_arrival(), name="late", node=node)
    sim.run()
    # long: 0.5 s alone + shares [0.5..1.5]; late needs 0.5 CPU inside the
    # shared interval.  long finishes at 1.5, late at ~1.5.
    assert sim.now == pytest.approx(1.5, rel=1e-2)
    assert p1.cpu_time == pytest.approx(1.0, rel=1e-9)
    assert p2.cpu_time == pytest.approx(0.5, rel=1e-9)


def test_competing_process_accumulates_cpu_time():
    sim = Simulator()
    node = make_node(sim, speed=100.0)
    name = node.start_competing()
    p = sim.spawn(compute_prog(100.0), name="w", node=node)
    sim.run_all([p])
    bg = node.background[name]
    # Total CPU delivered over ~2 s is split evenly.
    assert bg.cpu_time == pytest.approx(1.0, rel=5e-2)


def test_stop_competing_restores_full_speed():
    sim = Simulator()
    node = make_node(sim, speed=100.0)
    node.start_competing("cp")
    sim.schedule(1.0, lambda: node.stop_competing("cp"))
    p = sim.spawn(compute_prog(100.0), name="w", node=node)
    sim.run_all([p])
    # 1 s at half speed (50 work) + 0.5 s at full speed (50 work).
    assert sim.now == pytest.approx(1.5, rel=1e-2)
    assert p.cpu_time == pytest.approx(1.0, rel=1e-9)


def test_stop_unknown_competing_raises():
    sim = Simulator()
    node = make_node(sim)
    with pytest.raises(SimulationError):
        node.stop_competing("ghost")


def test_duplicate_competing_name_raises():
    sim = Simulator()
    node = make_node(sim)
    node.start_competing("cp")
    with pytest.raises(SimulationError):
        node.start_competing("cp")


def test_runnable_count_includes_app_and_competitors():
    sim = Simulator()
    node = make_node(sim, speed=100.0)
    node.start_competing()
    node.start_competing()

    observed = []

    def prog():
        yield Compute(10.0)

    def sampler():
        yield Sleep(0.05)
        observed.append(node.runnable_count())

    app = sim.spawn(prog(), name="app", node=node)
    sim.spawn(sampler(), name="s", daemon=True)
    sim.run_all([app])
    assert observed == [3]


def test_blocked_process_not_runnable():
    sim = Simulator()
    node = make_node(sim)

    observed = []

    def prog():
        yield Sleep(1.0)  # blocked, off the run queue

    def sampler():
        yield Sleep(0.5)
        observed.append(node.runnable_count())

    sim.spawn(prog(), name="app", node=node)
    sim.spawn(sampler(), name="s", daemon=True)
    sim.run()
    assert observed == [0]


def test_rr_context_switch_counter_increases_under_load():
    sim = Simulator()
    node = make_node(sim, speed=100.0, quantum=0.010)
    node.start_competing()
    p = sim.spawn(compute_prog(50.0), name="w", node=node)
    sim.run_all([p])
    assert node.cpu.n_context_switches > 10


def test_ps_infinite_background_never_completes():
    sim = Simulator()
    node = make_node(sim, discipline="ps", speed=100.0)
    node.start_competing()
    p = sim.spawn(compute_prog(10.0), name="w", node=node)
    sim.run_all([p])
    assert node.n_competing == 1
    assert sim.now == pytest.approx(0.2, rel=1e-9)


def test_make_cpu_rejects_unknown_discipline():
    with pytest.raises(SimulationError):
        make_cpu(Simulator(), "fifo", 1.0, 0.01)


def test_zero_work_completes_immediately():
    t, p = run_compute("rr", work=0.0)
    assert t == pytest.approx(0.0)
    assert p.state == ProcState.DONE


def test_node_attach_twice_rejected():
    sim = Simulator()
    n1 = make_node(sim, node_id=0)
    n2 = make_node(sim, node_id=1)

    def prog():
        yield Sleep(0.1)

    p = sim.spawn(prog(), name="p", node=n1)
    with pytest.raises(SimulationError):
        n2.attach(p)
    sim.run()


def test_sequential_computes_accumulate():
    sim = Simulator()
    node = make_node(sim, speed=100.0)

    def prog():
        yield Compute(50.0)
        yield Compute(50.0)
        yield Compute(100.0)

    p = sim.spawn(prog(), name="w", node=node)
    sim.run()
    assert sim.now == pytest.approx(2.0, rel=1e-9)
    assert p.cpu_time == pytest.approx(2.0, rel=1e-9)
