"""The dyncamp CLI: run/resume/status/report/fuzz, exit codes, and the
checked-in campaign spec files."""

import json
import pathlib

import pytest

from repro.campaign.__main__ import main
from repro.campaign.space import load_space

CAMPAIGNS = pathlib.Path(__file__).parent.parent / "benchmarks" / "campaigns"

SPEC = {
    "name": "clitest",
    "params": {"app": ["jacobi", "sor"], "seed": [0, 1]},
    "fixed": {"size": 16, "cycles": 4, "n_nodes": 2},
}


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def test_run_status_report_round_trip(spec_file, tmp_path, capsys):
    cdir = tmp_path / "camp"
    assert main(["run", str(spec_file), "--dir", str(cdir),
                 "--workers", "1", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "4/4 combos done" in out
    assert (cdir / "BENCH_campaign.json").exists()

    assert main(["status", "--dir", str(cdir)]) == 0
    assert "4/4 done" in capsys.readouterr().out

    assert main(["report", "--dir", str(cdir),
                 "--bench-dir", str(tmp_path / "out")]) == 0
    capsys.readouterr()
    a = (cdir / "BENCH_campaign.json").read_bytes()
    b = (tmp_path / "out" / "BENCH_campaign.json").read_bytes()
    assert a == b


def test_interrupted_run_then_resume_byte_identical(spec_file, tmp_path,
                                                    capsys):
    ref_dir, cut_dir = tmp_path / "ref", tmp_path / "cut"
    assert main(["run", str(spec_file), "--dir", str(ref_dir),
                 "--workers", "1", "--quiet"]) == 0
    # stop after 2 of 4 combos — the CLI reports how to resume
    assert main(["run", str(spec_file), "--dir", str(cut_dir),
                 "--workers", "1", "--quiet", "--max-combos", "2"]) == 0
    out = capsys.readouterr().out
    assert "stopped early" in out and "resume" in out
    assert not (cut_dir / "BENCH_campaign.json").exists()
    assert main(["resume", "--dir", str(cut_dir),
                 "--workers", "1", "--quiet"]) == 0
    assert (cut_dir / "BENCH_campaign.json").read_bytes() == \
        (ref_dir / "BENCH_campaign.json").read_bytes()


def test_quarantine_yields_exit_code_1(tmp_path, capsys):
    spec = dict(SPEC)
    spec["params"] = {"app": ["jacobi", "boom"], "seed": [0]}
    path = tmp_path / "poison.json"
    path.write_text(json.dumps(spec))
    rc = main(["run", str(path), "--dir", str(tmp_path / "c"),
               "--workers", "1", "--quiet", "--max-tries", "1"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "quarantined" in out and "boom" in out


def test_usage_errors_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["run", str(bad), "--dir", str(tmp_path / "c")]) == 2
    assert main(["status", "--dir", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_fuzz_subcommand_clean_and_index_form(tmp_path, capsys):
    assert main(["fuzz", "--seed", "1", "--iterations", "2",
                 "--workers", "1", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "2 scenario(s), 0 failure(s)" in out
    # the repro-line form: run exactly one index
    assert main(["fuzz", "--seed", "1", "--index", "0",
                 "--workers", "1"]) == 0
    assert "1 scenario(s)" in capsys.readouterr().out
    # a clean fuzz leaves no failures file behind
    assert not (tmp_path / "failures.jsonl").exists() or \
        not (tmp_path / "failures.jsonl").read_text().strip()


def test_checked_in_campaign_specs_are_valid():
    demo = load_space(CAMPAIGNS / "demo.json")
    assert len(demo) >= 200                  # the acceptance-scale sweep
    smoke = load_space(CAMPAIGNS / "smoke.json")
    assert 16 <= len(smoke) <= 48            # CI-sized
    # every declared value must survive resolution
    from repro.campaign.scenarios import resolve_params
    from repro.campaign.space import expand
    for combo in expand(smoke):
        resolve_params(combo.as_dict())
    for combo in expand(demo)[:20]:
        resolve_params(combo.as_dict())
