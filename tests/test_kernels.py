"""Unit tests for the application kernels and their sequential
references (repro.apps.kernels / repro.apps.reference)."""

import numpy as np
import pytest

from repro.apps.kernels import (
    jacobi_row_update,
    make_cg_rows,
    particle_row_flows,
    sor_row_halfsweep,
)
from repro.apps.reference import (
    cg_matrix_dense,
    cg_reference,
    jacobi_reference,
    particle_reference,
    sor_reference,
)


# ----------------------------------------------------------------------
# Jacobi kernel
# ----------------------------------------------------------------------
def test_jacobi_row_interior_average():
    row = np.array([0.0, 4.0, 0.0])
    up = np.array([4.0, 0.0, 4.0])
    down = np.array([4.0, 0.0, 4.0])
    out = jacobi_row_update(row, up, down)
    # middle cell: (4 + 0+0 + 0+0)/5
    assert out[1] == pytest.approx(4.0 / 5)


def test_jacobi_row_boundary_counts_fewer_neighbors():
    row = np.array([2.0, 2.0])
    out = jacobi_row_update(row, None, None)
    # corner cells: (self + 1 horizontal)/2
    assert np.allclose(out, [2.0, 2.0])


def test_jacobi_constant_grid_is_fixed_point():
    grid = np.full((6, 6), 3.14)
    assert np.allclose(jacobi_reference(grid, 10), grid)


def test_jacobi_reference_smooths_peak():
    grid = np.zeros((7, 7))
    grid[3, 3] = 1.0
    out = jacobi_reference(grid, 1)
    assert out[3, 3] == pytest.approx(0.2)
    assert out[3, 4] == pytest.approx(0.2)
    assert out[0, 0] == 0.0


# ----------------------------------------------------------------------
# SOR kernel
# ----------------------------------------------------------------------
def test_sor_halfsweep_touches_only_one_color():
    row = np.arange(6, dtype=float)
    before = row.copy()
    up = np.ones(6)
    down = np.ones(6)
    sor_row_halfsweep(row, up, down, g=0, color=0)
    cols = np.arange(6)
    red = (cols % 2) == 0
    assert not np.allclose(row[red], before[red])
    assert np.array_equal(row[~red], before[~red])


def test_sor_constant_grid_is_fixed_point():
    grid = np.full((6, 6), 1.5)
    assert np.allclose(sor_reference(grid, 5), grid)


def test_sor_converges_toward_harmonic_interior():
    rng = np.random.default_rng(0)
    grid = rng.random((8, 8))
    out = sor_reference(grid, 200)
    # after many sweeps, the field is very smooth
    assert np.ptp(out) < np.ptp(grid) * 0.2


# ----------------------------------------------------------------------
# CG matrix generator
# ----------------------------------------------------------------------
def test_cg_rows_deterministic():
    c1, v1 = make_cg_rows(100, 42)
    c2, v2 = make_cg_rows(100, 42)
    assert np.array_equal(c1, c2) and np.array_equal(v1, v2)


def test_cg_rows_include_diagonal_and_stay_in_range():
    for g in (0, 50, 99):
        cols, vals = make_cg_rows(100, g)
        assert g in cols
        assert cols.min() >= 0 and cols.max() < 100
        diag = vals[list(cols).index(g)]
        assert diag > 0


def test_cg_matrix_spd_enough_for_cg():
    A = cg_matrix_dense(80)
    eigs = np.linalg.eigvalsh((A + A.T) / 2)
    assert eigs.min() > 0  # positive definite


def test_cg_reference_reduces_residual():
    A = cg_matrix_dense(50)
    b = np.ones(50)
    _, resid = cg_reference(A, b, 30)
    assert resid < 1e-8 * np.linalg.norm(b) * 50


def test_cg_reference_zero_matrix_guard():
    A = np.zeros((4, 4))
    x, resid = cg_reference(A, np.ones(4), 5)
    assert np.allclose(x, 0)  # breaks out on zero curvature


# ----------------------------------------------------------------------
# particle kernel
# ----------------------------------------------------------------------
def test_particle_flows_conserve_mass_per_row():
    counts = np.array([10.0, 4.0, 0.0, 7.5])
    stay, up, down = particle_row_flows(counts, g=3, step=5, seed=9)
    assert (stay.sum() + up.sum() + down.sum()) == pytest.approx(counts.sum())
    assert np.all(stay >= 0) and np.all(up >= 0) and np.all(down >= 0)


def test_particle_flows_deterministic_in_row_step_seed():
    counts = np.array([400.0, 250.0])
    a = particle_row_flows(counts, 1, 2, 3)
    b = particle_row_flows(counts, 1, 2, 3)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)
    c = particle_row_flows(counts, 1, 3, 3)
    assert not all(np.array_equal(x, y) for x, y in zip(a, c))


def test_particle_reference_conserves_total_mass():
    counts = np.full((10, 6), 2.0)
    out = particle_reference(counts, steps=15)
    assert out.sum() == pytest.approx(counts.sum())
    assert np.all(out >= 0)


def test_particle_empty_grid_stays_empty():
    counts = np.zeros((5, 5))
    out = particle_reference(counts, steps=5)
    assert np.array_equal(out, counts)
