"""Tests for the monitoring substrate: dmpi_ps vs vmstat semantics,
/PROC quantization, and hrtimer min-filtering."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.errors import SimulationError
from repro.simcluster import Cluster, Compute, Sleep
from repro.sysmon import DmpiPs, HrTimer, ProcClock, Vmstat, min_filter


def make_cluster(n=2, speed=100.0, discipline="rr"):
    return Cluster(ClusterSpec(n_nodes=n, node=NodeSpec(speed=speed, discipline=discipline)))


def spin(duration_work):
    yield Compute(duration_work)


def test_dmpi_ps_counts_app_plus_competitors():
    cluster = make_cluster()
    ps = DmpiPs(cluster, interval=1.0, jitter=False)
    cluster.nodes[0].start_competing()
    cluster.nodes[0].start_competing()

    app = cluster.sim.spawn(spin(1000.0), name="app", node=cluster.nodes[0])
    ps.register_monitored(0, app)
    ps.start()
    cluster.sim.run_all([app])
    # app + 2 competitors
    assert ps.load(0) == 3
    # node 1 idle, no monitored app registered there
    assert ps.load(1) == 0


def test_dmpi_ps_includes_blocked_monitored_app():
    """The monitored app is counted even while blocked at a 'receive'
    (here: a sleep) — the fix for the vmstat unreliability."""
    cluster = make_cluster()
    ps = DmpiPs(cluster, interval=0.5, jitter=False)

    def app_prog():
        yield Sleep(3.0)  # voluntarily off the run queue

    app = cluster.sim.spawn(app_prog(), name="app", node=cluster.nodes[0])
    ps.register_monitored(0, app)
    ps.start()
    cluster.sim.run_all([app])
    samples = [v for t, v in ps.history(0) if t < 3.0]
    assert samples and all(v >= 1 for v in samples)


def test_vmstat_misses_blocked_process():
    """vmstat samples while the app is blocked report zero load —
    the unreliability the paper describes."""
    cluster = make_cluster()
    vm = Vmstat(cluster, interval=0.5)

    def app_prog():
        yield Sleep(3.0)

    app = cluster.sim.spawn(app_prog(), name="app", node=cluster.nodes[0])
    vm.start()
    cluster.sim.run_all([app])
    samples = [v for _, v in vm.history(0)]
    assert samples and all(v == 0 for v in samples)


def test_dmpi_ps_detects_load_change_within_interval():
    cluster = make_cluster()
    ps = DmpiPs(cluster, interval=1.0, jitter=False)

    def app_prog():
        yield Compute(1000.0)  # long-running

    app = cluster.sim.spawn(app_prog(), name="app", node=cluster.nodes[0])
    ps.register_monitored(0, app)
    ps.start()
    cluster.sim.schedule(3.5, lambda: cluster.nodes[0].start_competing())
    cluster.sim.run_all([app])
    hist = dict(ps.history(0))
    # at t=3s the load is still 1; by t=5s it must read 2
    assert hist[3.0] == 1
    assert hist[5.0] == 2


def test_dmpi_ps_interval_validation():
    cluster = make_cluster()
    with pytest.raises(SimulationError):
        DmpiPs(cluster, interval=0.0)


def test_dmpi_ps_double_start_rejected():
    cluster = make_cluster()
    ps = DmpiPs(cluster)
    ps.start()
    with pytest.raises(SimulationError):
        ps.start()


def test_proc_clock_quantizes_down():
    cluster = make_cluster(1, speed=100.0)
    app = cluster.sim.spawn(spin(2.37 * 100.0), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([app])
    clock = ProcClock(app, granularity=0.010)
    assert clock.read_exact() == pytest.approx(2.37, rel=1e-9)
    assert clock.read() == pytest.approx(2.37, abs=0.010 + 1e-12)
    assert clock.read() <= clock.read_exact() + 1e-12


def test_proc_clock_excludes_competing_time():
    """/PROC CPU time is unaffected by a competing process even though
    wallclock doubles — exactly why the paper prefers it."""
    cluster = make_cluster(1, speed=100.0)
    cluster.nodes[0].start_competing()
    app = cluster.sim.spawn(spin(100.0), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([app])
    assert cluster.sim.now == pytest.approx(2.0, rel=1e-2)  # wallclock: 2x
    clock = ProcClock(app, granularity=0.010)
    assert clock.read() == pytest.approx(1.0, abs=0.011)  # CPU: true 1 s


def test_proc_clock_validation():
    cluster = make_cluster(1)
    app = cluster.sim.spawn(spin(1.0), name="app", node=cluster.nodes[0])
    with pytest.raises(SimulationError):
        ProcClock(app, granularity=0)
    cluster.sim.run_all([app])


def test_hrtimer_interval_includes_competitor_time():
    """Wallclock intervals on a loaded node overestimate true compute
    time — the gethrtime hazard."""
    cluster = make_cluster(1, speed=100.0)
    cluster.nodes[0].start_competing()
    timer = HrTimer(cluster.sim)
    measured = {}

    def app_prog():
        t0 = timer.read()
        yield Compute(100.0)
        t1 = timer.read()
        measured["dt"] = timer.interval(t0, t1)

    app = cluster.sim.spawn(app_prog(), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([app])
    assert measured["dt"] == pytest.approx(2.0, rel=2e-2)  # ~2x the true 1 s


def test_hrtimer_interval_backwards_raises():
    cluster = make_cluster(1)
    timer = HrTimer(cluster.sim)
    with pytest.raises(SimulationError):
        timer.interval(2.0, 1.0)


def test_min_filter_removes_spikes():
    samples = [
        [1.0, 1.1, 5.0],   # cycle 0: iteration 2 hit a context switch
        [1.0, 4.0, 1.2],   # cycle 1: iteration 1 hit one
        [3.0, 1.1, 1.2],
    ]
    out = min_filter(samples)
    assert np.allclose(out, [1.0, 1.1, 1.2])


def test_min_filter_validation():
    with pytest.raises(SimulationError):
        min_filter([])
    with pytest.raises(SimulationError):
        min_filter([[[1.0]]])


def test_min_filter_single_cycle_is_identity():
    out = min_filter([[2.0, 3.0]])
    assert np.allclose(out, [2.0, 3.0])


def test_sub_quantum_iterations_min_filter_recovers_true_time():
    """End-to-end Figure-7 mechanism: iterations shorter than the
    scheduling quantum on a loaded node give noisy wallclock times, but
    the minimum over several cycles recovers the unloaded time."""
    cluster = make_cluster(1, speed=100.0)  # quantum 10 ms
    cluster.nodes[0].start_competing()
    timer = HrTimer(cluster.sim)
    true_work = 0.4  # 4 ms per iteration at speed 100: sub-quantum
    n_iters, n_cycles = 10, 5
    samples = []

    def app_prog():
        for _c in range(n_cycles):
            row = []
            for _i in range(n_iters):
                t0 = timer.read()
                yield Compute(true_work)
                t1 = timer.read()
                row.append(timer.interval(t0, t1))
            samples.append(row)

    app = cluster.sim.spawn(app_prog(), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([app])
    flat = np.array(samples)
    # Noise exists: some measurement must exceed the true 4 ms by ~a quantum
    assert flat.max() > 0.004 + 0.005
    # but the min-filter estimate is close to the truth for most iterations
    est = min_filter(samples)
    assert np.median(est) == pytest.approx(0.004, rel=0.15)
