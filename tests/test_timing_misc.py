"""Unit tests for grace-period timing (GraceSamples + estimation),
load monitoring, phase descriptors, and datatype helpers."""

import numpy as np
import pytest

from repro.core import GraceSamples, LoadMonitor, Phase, estimate_unloaded_times
from repro.core.commcost import NearestNeighbor
from repro.core.drsd import DRSD, AccessMode
from repro.errors import RegistrationError, SimulationError
from repro.mpi.datatypes import LAND, LOR, MAX, MIN, PROD, SUM, payload_nbytes
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status


# ----------------------------------------------------------------------
# GraceSamples / estimate_unloaded_times
# ----------------------------------------------------------------------
def test_grace_samples_shape_checked():
    gs = GraceSamples([3, 4, 5])
    gs.add_cycle([1.0, 1.0, 1.0], [0.01, 0.01, 0.01])
    with pytest.raises(SimulationError):
        gs.add_cycle([1.0], [0.01])
    assert gs.n_cycles == 1


def test_estimate_prefers_proc_for_big_iterations():
    gs = GraceSamples([0, 1])
    for _ in range(3):
        gs.add_cycle([0.05, 0.06], [0.05, 0.06])
    est, source = estimate_unloaded_times(gs, hrtimer_threshold=0.010)
    assert source == "proc"
    assert np.allclose(est, [0.05, 0.06])


def test_estimate_uses_hrtimer_below_threshold():
    gs = GraceSamples([0, 1])
    gs.add_cycle([0.002, 0.012], [0.0, 0.01])  # median 7ms < 10ms
    gs.add_cycle([0.002, 0.003], [0.0, 0.0])
    est, source = estimate_unloaded_times(gs, hrtimer_threshold=0.010)
    assert source == "hrtimer"
    # per-iteration minimum across cycles
    assert np.allclose(est, [0.002, 0.003])


def test_estimate_proc_all_zero_falls_back_to_hrtimer():
    gs = GraceSamples([0])
    gs.add_cycle([0.05], [0.0])  # /PROC read nothing despite big iters
    est, source = estimate_unloaded_times(gs, hrtimer_threshold=0.010)
    assert source == "hrtimer"
    assert est[0] == pytest.approx(0.05)


def test_estimate_empty_rows():
    est, source = estimate_unloaded_times(GraceSamples([]))
    assert est.size == 0 and source == "none"


def test_estimate_no_cycles_raises():
    with pytest.raises(SimulationError):
        estimate_unloaded_times(GraceSamples([0]))


# ----------------------------------------------------------------------
# LoadMonitor
# ----------------------------------------------------------------------
def test_load_monitor_detects_changes_only():
    mon = LoadMonitor()
    assert not mon.observe([1, 1], cycle=0)  # baseline
    assert not mon.observe([1, 1], cycle=1)
    assert mon.observe([2, 1], cycle=2)
    assert not mon.observe([2, 1], cycle=3)
    assert mon.observe([1, 1], cycle=4)  # change back counts too
    assert mon.n_changes == 2
    assert mon.change_cycles == [2, 4]


def test_load_monitor_rebase():
    mon = LoadMonitor()
    mon.observe([1, 1, 1], cycle=0)
    mon.rebase([2, 1])  # group shrank
    assert not mon.observe([2, 1], cycle=1)
    assert mon.observe([1, 1], cycle=2)


# ----------------------------------------------------------------------
# Phase
# ----------------------------------------------------------------------
def test_phase_validation_and_queries():
    ph = Phase(1, 100, NearestNeighbor(row_nbytes=8))
    ph.add_access(DRSD("A", AccessMode.WRITE))
    ph.add_access(DRSD("B", AccessMode.READ, -1, 1))
    ph.add_access(DRSD("A", AccessMode.READ))
    assert ph.arrays() == ["A", "B"]
    assert len(ph.accesses_of("A")) == 2
    with pytest.raises(RegistrationError):
        Phase(2, 0, NearestNeighbor(row_nbytes=8))
    with pytest.raises(RegistrationError):
        Phase(3, 10, "not a pattern")


# ----------------------------------------------------------------------
# datatypes
# ----------------------------------------------------------------------
def test_payload_nbytes_numpy_exact():
    arr = np.zeros(100, dtype=np.float64)
    assert payload_nbytes(arr) == 64 + 800


def test_payload_nbytes_orderings():
    small = payload_nbytes(1)
    assert payload_nbytes(None) < small
    assert payload_nbytes([1] * 100) > payload_nbytes([1] * 10)
    assert payload_nbytes({"a": 1, "b": 2}) > payload_nbytes({"a": 1})
    assert payload_nbytes(b"x" * 50) == 64 + 50
    assert payload_nbytes("hello") == 64 + 5
    assert payload_nbytes(object()) > 64


def test_reduce_ops_scalars():
    assert SUM(2, 3) == 5
    assert MAX(2, 3) == 3
    assert MIN(2, 3) == 2
    assert PROD(2, 3) == 6
    assert LAND(True, False) is False
    assert LOR(True, False) is True


def test_reduce_ops_arrays():
    a, b = np.array([1.0, 5.0]), np.array([4.0, 2.0])
    assert np.array_equal(MAX(a, b), [4.0, 5.0])
    assert np.array_equal(MIN(a, b), [1.0, 2.0])
    assert np.array_equal(SUM(a, b), [5.0, 7.0])
    assert np.array_equal(LAND(np.array([1, 0]), np.array([1, 1])),
                          [True, False])


def test_status_matching():
    st = Status(source=3, tag=7, nbytes=10)
    assert st.matches(3, 7)
    assert st.matches(ANY_SOURCE, 7)
    assert st.matches(3, ANY_TAG)
    assert st.matches(ANY_SOURCE, ANY_TAG)
    assert not st.matches(2, 7)
    assert not st.matches(3, 8)
