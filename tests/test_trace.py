"""Tests for the execution tracer."""

import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.errors import SimulationError
from repro.mpi import run_spmd
from repro.simcluster import Cluster, Compute, Sleep
from repro.simcluster.trace import Tracer


def make_cluster(n=2):
    return Cluster(ClusterSpec(n_nodes=n, node=NodeSpec(speed=1e8)))


def test_traces_cpu_slices_and_busy_time():
    cluster = make_cluster(1)
    tracer = Tracer(cluster).attach()

    def prog():
        yield Compute(1e6)  # 10 ms
        yield Sleep(0.01)
        yield Compute(2e6)  # 20 ms

    p = cluster.sim.spawn(prog(), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([p])
    tracer.detach()
    assert tracer.busy_time(0, "app") == pytest.approx(0.03, rel=1e-6)
    assert tracer.busy_time(0) == pytest.approx(0.03, rel=1e-6)
    assert len(tracer.slices) >= 2


def test_traces_competing_slices():
    cluster = make_cluster(1)
    cluster.nodes[0].start_competing("cp0")
    with Tracer(cluster) as tracer:
        def prog():
            yield Compute(1e6)
            yield Sleep(0.05)  # competing process owns the CPU here
            yield Compute(1e6)

        p = cluster.sim.spawn(prog(), name="app", node=cluster.nodes[0])
        cluster.sim.run_all([p])
    assert tracer.busy_time(0, "app") == pytest.approx(0.02, rel=1e-6)
    assert tracer.busy_time(0, "cp0") > 0.03


def test_traces_messages():
    cluster = make_cluster(2)
    tracer = Tracer(cluster).attach()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=None, nbytes=5000)
        else:
            yield from ep.recv(0, tag=0)

    run_spmd(cluster, program)
    tracer.detach()
    assert tracer.bytes_between(0, 1) == 5000
    assert tracer.bytes_between(1, 0) == 0
    msg = tracer.messages[0]
    assert msg.delivered > msg.sent


def test_timeline_rendering():
    cluster = make_cluster(1)
    tracer = Tracer(cluster).attach()

    def prog():
        yield Compute(1e6)
        yield Sleep(0.01)
        yield Compute(1e6)

    p = cluster.sim.spawn(prog(), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([p])
    line = tracer.timeline(0, width=30)
    assert line.startswith("n0 |")
    assert "a" in line and "." in line
    with pytest.raises(SimulationError):
        tracer.timeline(0, t0=5.0, t1=5.0)


def test_detach_stops_recording():
    cluster = make_cluster(1)
    tracer = Tracer(cluster).attach()
    tracer.detach()
    n_before = len(tracer.slices)

    def prog():
        yield Compute(1e6)

    p = cluster.sim.spawn(prog(), name="app", node=cluster.nodes[0])
    cluster.sim.run_all([p])
    assert len(tracer.slices) == n_before


def test_double_attach_rejected():
    cluster = make_cluster(1)
    tracer = Tracer(cluster).attach()
    with pytest.raises(SimulationError):
        tracer.attach()
    tracer.detach()
    tracer.detach()  # idempotent
