"""Property suite: the calendar engine is observationally identical to
the reference (pre-dynkern single-heap) engine.

The determinism contract of the dynkern rebuild: same ``(time, seq)``
total order, same event count, byte-identical dynscope exports — for
whole scenarios, not just kernel microtests.  Each test here runs a
scenario once per engine and compares the full export text with ``==``
(no approx): Jacobi removal, CG under load, and a crash-recovery run,
plus the removal scenario under schedule perturbation and with the
communication sanitizer attached.
"""

import numpy as np
import pytest

from repro.apps import CGConfig, cg_program, run_program
from repro.config import (
    ClusterSpec, NetworkSpec, NodeSpec, ResilienceSpec, RuntimeSpec,
)
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.obs.export import chrome_json, jsonl_text
from repro.obs.scenario import RemovalScenario, run_removal
from repro.resilience import node_crash
from repro.simcluster import Cluster

ENGINES = ("calendar", "reference")

# smoke-sized removal: every instrumented path (grace mode, halo
# traffic, redistribution, the drop decision) in a couple of seconds
SCENARIO = RemovalScenario(n_nodes=4, n=96, iters=14, load_cycle=4)


def removal_export(engine, monkeypatch, perturb=None, sanitize=False):
    monkeypatch.setenv("DYNMPI_KERNEL", engine)
    if perturb is None:
        monkeypatch.delenv("DYNMPI_PERTURB", raising=False)
    else:
        monkeypatch.setenv("DYNMPI_PERTURB", str(perturb))
    if sanitize:
        monkeypatch.setenv("DYNMPI_SANITIZE", "1")
    else:
        monkeypatch.delenv("DYNMPI_SANITIZE", raising=False)
    _, cluster = run_removal(SCENARIO, observe=True)
    return (jsonl_text(cluster.obs), chrome_json(cluster.obs),
            cluster.sim.n_events, cluster.sim.now)


def test_removal_scenario_byte_identical(monkeypatch):
    cal = removal_export("calendar", monkeypatch)
    ref = removal_export("reference", monkeypatch)
    assert cal[2] == ref[2]  # n_events
    assert cal[3] == ref[3]  # final simulated time, exact
    assert cal[0] == ref[0]  # dynscope JSONL, byte for byte
    assert cal[1] == ref[1]  # chrome trace


@pytest.mark.parametrize("perturb", [1, 2])
def test_removal_equivalence_under_perturbation(monkeypatch, perturb):
    # the perturbed schedules differ from the unperturbed one, but both
    # engines must perturb identically for the same seed
    cal = removal_export("calendar", monkeypatch, perturb=perturb)
    ref = removal_export("reference", monkeypatch, perturb=perturb)
    assert cal[2] == ref[2]
    assert cal[0] == ref[0]


def test_removal_equivalence_with_sanitizer(monkeypatch):
    cal = removal_export("calendar", monkeypatch, sanitize=True)
    ref = removal_export("reference", monkeypatch, sanitize=True)
    assert cal[2] == ref[2]
    assert cal[0] == ref[0]


def _cg_cluster(engine):
    return Cluster(ClusterSpec(
        n_nodes=4,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
        observe=True,
        kernel=engine,
    ))


def test_cg_run_byte_identical():
    outs = {}
    for engine in ENGINES:
        cluster = _cg_cluster(engine)
        res = run_program(
            cluster, cg_program, CGConfig(n=48, iters=6), adaptive=True,
            spec=RuntimeSpec(grace_period=2, post_redist_period=3,
                             allow_removal=False, daemon_interval=0.002),
        )
        outs[engine] = (jsonl_text(cluster.obs), cluster.sim.n_events,
                        cluster.sim.now, res.wall_time, res.bounds)
    cal, ref = outs["calendar"], outs["reference"]
    assert cal[1] == ref[1]
    assert cal[2] == ref[2]
    assert cal[0] == ref[0]
    assert cal[3] == ref[3]
    assert cal[4] == ref[4]


SPEED = 1e8
N_ROWS = 64
ROW_WORK = SPEED * 0.04 / (N_ROWS // 4)


def _crash_program(ctx, n_cycles, row_work):
    A = ctx.register_dense("A", (N_ROWS, 8))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
    ctx.add_array_access(1, "A", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        A.row(g)[:] = g

    def work_of(s, e):
        return np.full(e - s + 1, row_work)

    for _t in range(n_cycles):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()
    return ctx.my_bounds()


def test_crash_recovery_byte_identical():
    # a node crash mid-run: detection, buddy-checkpoint replay and the
    # involuntary removal must replay identically on both engines
    outs = {}
    for engine in ENGINES:
        cluster = Cluster(ClusterSpec(
            n_nodes=4,
            node=NodeSpec(speed=SPEED),
            network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                                cpu_per_byte=0.4, cpu_per_msg=3000.0),
            observe=True,
            kernel=engine,
        ))
        cluster.install_failure_script(node_crash(2, at_cycle=10))
        job = DynMPIJob(cluster, RuntimeSpec(
            grace_period=2, post_redist_period=3, allow_removal=True,
            drop_mode="physical", allow_rejoin=True, daemon_interval=0.01,
            resilience=ResilienceSpec(heartbeat_timeout=0.055),
        ))
        results = job.launch(_crash_program, args=(20, ROW_WORK))
        outs[engine] = (jsonl_text(cluster.obs), cluster.sim.n_events,
                        cluster.sim.now, results)
    cal, ref = outs["calendar"], outs["reference"]
    assert cal[1] == ref[1]
    assert cal[2] == ref[2]
    assert cal[0] == ref[0]
    assert cal[3] == ref[3]
