"""Smoke + shape tests of the experiment modules at tiny scale (the
benches assert full-shape at larger scales; these keep the harness
itself honest in the regular test run)."""

import numpy as np
import pytest

from repro.experiments import (
    Scenario,
    bench_scale,
    cg_4node_narrative,
    format_balance_ablation,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_memalloc,
    format_monitor_ablation,
    format_table,
    run_balance_ablation,
    run_figure4,
    run_figure5,
    run_figure7,
    run_memalloc,
    run_monitor_ablation,
    scaled,
    scaled_spec,
    steady_state_cycle_time,
)
from repro.config import RuntimeSpec


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("DYNMPI_BENCH_SCALE", raising=False)
    assert bench_scale() == 1.0
    assert bench_scale(0.5) == 0.5
    monkeypatch.setenv("DYNMPI_BENCH_SCALE", "0.25")
    assert bench_scale() == 0.25
    assert bench_scale(0.5) == 0.25
    monkeypatch.setenv("DYNMPI_BENCH_SCALE", "2.0")
    with pytest.raises(ValueError):
        bench_scale()


def test_scaled_floors():
    assert scaled(1000, 0.5) == 500
    assert scaled(10, 0.01, minimum=4) == 4
    assert scaled(10, 1.0) == 10


def test_scaled_spec_adjusts_daemon():
    base = RuntimeSpec(daemon_interval=1.0)
    assert scaled_spec(base, 1.0) is base
    s = scaled_spec(base, 0.1)
    assert s.daemon_interval == pytest.approx(0.01)
    tiny = scaled_spec(base, 0.001)
    assert tiny.daemon_interval == 0.001  # floored


def test_figure4_tiny_scale_shape():
    rows = run_figure4(nodes=(2,), apps=("jacobi",), scale=0.12)
    assert len(rows) == 1
    r = rows[0]
    assert r.t_noadapt > r.t_dedicated
    assert r.t_dynmpi <= r.t_noadapt * 1.05
    table = format_figure4(rows)
    assert "jacobi" in table and "improvement" in table


def test_figure5_tiny_scale_runs():
    cells = run_figure5(periods=(30,), scale=0.12)
    assert len(cells) == 3
    policies = {c.policy for c in cells}
    assert policies == {"no_redist", "redist_once", "redist_twice"}
    once = next(c for c in cells if c.policy == "redist_once")
    assert once.n_redists <= 1
    twice = next(c for c in cells if c.policy == "redist_twice")
    assert twice.n_redists >= once.n_redists
    assert "period1(s)" in format_figure5(cells)


def test_figure7_tiny_scale_runs():
    cells = run_figure7(parts=(10.0,), grace_periods=(1, 2), n_nodes=4,
                        scale=0.15)
    assert len(cells) == 2
    assert all(c.cycle_time > 0 for c in cells)
    assert "GP" in format_figure7(cells)


def test_memalloc_invariants_at_any_scale():
    rows = run_memalloc(scale=0.2)
    for r in rows:
        assert r.proj_bytes_copied == 0
        assert r.cont_bytes_alloc >= r.proj_bytes_alloc
        assert r.work_ratio >= 1.0
    assert "cont/proj work" in format_memalloc(rows)


def test_balance_ablation_monotone():
    rows = run_balance_ablation(ratios=(16.0, 1.0))
    assert rows[1].gain >= rows[0].gain
    assert "gain(%)" in format_balance_ablation(rows)


def test_monitor_ablation_shape():
    rows = run_monitor_ablation(duration=15.0)
    by = {r.monitor: r for r in rows}
    assert by["dmpi_ps"].missed_samples == 0
    assert by["vmstat"].missed_samples > 0
    assert "vmstat" in format_monitor_ablation(rows)


def test_cg_narrative_tiny_scale():
    n = cg_4node_narrative(scale=0.1)
    assert n.t_dedicated > 0
    assert n.t_dynmpi < n.t_noadapt
    assert len(n.shares) in (0, 4)


def test_steady_state_cycle_time_window():
    class FakeResult:
        cycle_times = [[1.0] * 10 + [2.0] * 10, []]

    assert steady_state_cycle_time(FakeResult(), tail_frac=0.25) == 2.0


def test_format_table_rendering():
    out = format_table(["a", "longer"], [(1, 2.5), ("x", float("nan"))],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "longer" in lines[1]
    assert "-" in lines[2]
    assert out.count("\n") == 4
