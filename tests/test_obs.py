"""dynscope (repro.obs) tests: registry semantics, recorder behavior,
deterministic exports, Chrome schema validation, cost attribution, the
Tracer replay adapter, and the obs-off purity guarantee."""

import json

import numpy as np
import pytest

from repro.core.runtime import RuntimeEvent  # back-compat re-export
from repro.obs import (
    CPU_TID,
    JOB_PID,
    NET_PID,
    MetricsRegistry,
    ObsRecorder,
    chrome_json,
    chrome_trace,
    jsonl_text,
    load_trace,
    validate_chrome,
    write_trace,
)
from repro.obs.registry import Histogram
from repro.obs.report import attribute, diff_reports, span_bucket
from repro.obs.scenario import RemovalScenario, run_removal
from repro.obs.simadapter import replay_tracer


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

def test_counter_accumulates_per_label_set():
    reg = MetricsRegistry()
    reg.count("net.bytes", 100, src=0, dst=1)
    reg.count("net.bytes", 50, dst=1, src=0)   # label order irrelevant
    reg.count("net.bytes", 7, src=1, dst=0)
    assert reg.counter_value("net.bytes", src=0, dst=1) == 150
    assert reg.counter_value("net.bytes", src=1, dst=0) == 7
    assert reg.counter_total("net.bytes") == 157
    assert reg.counter_value("net.bytes", src=9, dst=9) == 0.0


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("held", 10)
    reg.gauge("held", 3)
    assert reg.gauge_value("held") == 3
    assert reg.gauge_value("missing") is None


def test_histogram_stats_and_buckets():
    h = Histogram()
    for v in (0.5, 1.5, 3.0, 0.0):
        h.observe(v)
    assert h.count == 4
    assert h.min == 0.0 and h.max == 3.0
    assert h.mean == pytest.approx(1.25)
    # 0.5 -> exponent 0, 1.5 -> 1, 3.0 -> 2, 0.0 -> floor bucket
    assert set(h.buckets) == {0, 1, 2, -1075}


def test_registry_merge_across_ranks():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.count("msgs", 2)
    b.count("msgs", 3)
    a.observe("lat", 1.0)
    b.observe("lat", 3.0)
    a.gauge("held", 10)
    b.gauge("held", 20)   # same seq as a's write; later merge arg wins
    merged = MetricsRegistry().merge([a, b])
    assert merged.counter_value("msgs") == 5
    hist = merged.histogram("lat")
    assert hist.count == 2 and hist.total == 4.0
    assert merged.gauge_value("held") == 20


def test_snapshot_renders_sorted_labelled_keys():
    reg = MetricsRegistry()
    reg.count("edge", 5, src=1, dst=0)
    reg.count("plain")
    snap = reg.snapshot()
    assert snap["counters"] == {"edge{dst=0,src=1}": 5.0, "plain": 1.0}
    # snapshots are json-stable
    assert json.dumps(snap, sort_keys=True) == json.dumps(
        reg.snapshot(), sort_keys=True
    )


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------

def test_disabled_recorder_records_adaptations_only():
    rec = ObsRecorder(enabled=False)
    with rec.span("x", pid=0, tid=0):
        pass
    rec.complete("y", 0.0, pid=0, tid=0)
    rec.instant("z")
    ev = rec.adaptation("drop", cycle=3, time=1.0, detail={"node": 2})
    assert rec.events == []
    assert rec.adaptations == [ev]
    assert isinstance(ev, RuntimeEvent)
    assert ev.kind == "drop" and ev.detail == {"node": 2}


def test_enabled_adaptation_spans_job_track():
    rec = ObsRecorder(clock=lambda: 5.0)
    rec.adaptation("redistribute", cycle=2, time=5.0, duration=1.5)
    (ev,) = rec.events
    assert ev.name == "adapt.redistribute" and ev.ph == "X"
    assert ev.pid == JOB_PID
    assert ev.ts == pytest.approx(3.5) and ev.dur == pytest.approx(1.5)


def test_args_sanitized_for_json():
    rec = ObsRecorder(clock=lambda: 1.0)
    rec.complete("s", 0.0, pid=0, tid=0,
                 n=np.int64(4), xs=np.arange(3), d={"k": np.float64(0.5)})
    args = rec.events[0].args
    assert args == {"n": 4, "xs": [0, 1, 2], "d": {"k": 0.5}}
    json.dumps(args)  # must be serializable as-is


def test_sorted_events_and_tracks():
    t = iter([1.0, 3.0, 2.0])
    rec = ObsRecorder(clock=lambda: next(t))
    rec.instant("a", pid=0, tid=1)
    rec.instant("b", pid=1, tid=0)
    rec.instant("c", pid=0, tid=CPU_TID)
    assert [e.name for e in rec.sorted_events()] == ["a", "c", "b"]
    assert rec.tracks() == {0: [CPU_TID, 1], 1: [0]}


# ----------------------------------------------------------------------
# the canonical removal run: one observed trace shared by the tests
# ----------------------------------------------------------------------

SCENARIO = RemovalScenario()


@pytest.fixture(scope="module")
def removal():
    return run_removal(SCENARIO, observe=True, trace_cpu=True)


def test_removal_run_exercises_every_layer(removal):
    result, cluster = removal
    obs = cluster.obs
    cats = {e.cat for e in obs.events}
    assert {"cycle", "compute", "mpi", "coll", "redist",
            "ckpt", "adapt", "sim"} <= cats
    kinds = {ev.kind for ev in result.events}
    assert "redistribute" in kinds
    assert kinds & {"drop", "logical_drop"}
    # metrics flowed from every instrumented layer
    merged = obs.merged_registry()
    assert merged.counter_total("mpi.bytes_sent") > 0
    assert merged.counter_total("redist.edge_bytes") > 0
    assert merged.counter_total("ckpt.snapshots") > 0
    # the scenario's sends are all nonblocking, so the latency
    # histogram comes from the receive side
    assert merged.histogram("mpi.recv_seconds").count > 0


def test_chrome_export_passes_schema(removal):
    _, cluster = removal
    trace = chrome_trace(cluster.obs)
    assert validate_chrome(trace) == []
    # track metadata names the reserved processes
    names = {(e["pid"], e["args"]["name"]) for e in trace["traceEvents"]
             if e.get("name") == "process_name"}
    assert (JOB_PID, "job") in names
    assert (NET_PID, "network") in names
    assert (0, "node0") in names


def test_exports_byte_identical_across_runs(removal):
    _, cluster = removal
    _, cluster2 = run_removal(SCENARIO, observe=True, trace_cpu=True)
    assert chrome_json(cluster.obs) == chrome_json(cluster2.obs)
    assert jsonl_text(cluster.obs) == jsonl_text(cluster2.obs)


def test_roundtrip_both_formats(removal, tmp_path):
    _, cluster = removal
    p_chrome = write_trace(cluster.obs, tmp_path / "t.json", "chrome")
    p_jsonl = write_trace(cluster.obs, tmp_path / "t.jsonl", "jsonl")
    meta_c, ev_c = load_trace(p_chrome)
    meta_j, ev_j = load_trace(p_jsonl)
    assert len(ev_c) == len(ev_j) == len(cluster.obs.events)
    # the jsonl meta line carries the merged metrics snapshot
    assert meta_j["metrics"] == cluster.obs.merged_registry().snapshot()
    assert meta_j["kind"] == "trace-meta"
    # attribution is identical whichever format was loaded
    assert attribute(ev_c)["total"] == pytest.approx(
        attribute(ev_j)["total"]
    )
    with pytest.raises(ValueError):
        write_trace(cluster.obs, tmp_path / "t.x", "xml")


def test_obs_off_is_pure_and_keeps_events_view():
    on, _ = run_removal(SCENARIO, observe=True)
    off, cluster_off = run_removal(SCENARIO, observe=False)
    assert cluster_off.obs is None
    assert off.obs is not None and not off.obs.enabled  # the job's view
    assert off.wall_time == on.wall_time
    assert off.cycle_times == on.cycle_times
    assert [(e.kind, e.cycle) for e in off.events] == \
           [(e.kind, e.cycle) for e in on.events]


# ----------------------------------------------------------------------
# schema validator negatives
# ----------------------------------------------------------------------

def _trace(events):
    return {"traceEvents": events}


def test_validator_flags_structural_problems():
    assert validate_chrome([]) != []
    assert validate_chrome({"traceEvents": {}}) != []
    assert "empty" in validate_chrome(_trace([]))[0]
    bad_ph = _trace([{"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}])
    assert "bad 'ph'" in validate_chrome(bad_ph)[0]
    no_dur = _trace([{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}])
    assert "dur" in validate_chrome(no_dur)[0]
    neg = _trace([{"name": "x", "ph": "i", "ts": -1, "pid": 0, "tid": 0}])
    assert "negative ts" in validate_chrome(neg)[0]


def test_validator_flags_partial_overlap():
    ok = _trace([
        {"name": "outer", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
        {"name": "inner", "ph": "X", "ts": 2, "dur": 3, "pid": 0, "tid": 0},
        {"name": "next", "ph": "X", "ts": 6, "dur": 4, "pid": 0, "tid": 0},
    ])
    assert validate_chrome(ok) == []
    overlap = _trace([
        {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
        {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 0},
    ])
    errors = validate_chrome(overlap)
    assert len(errors) == 1 and "partially overlaps" in errors[0]
    # same spans on different tracks: no relation, no error
    apart = _trace([
        {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 0, "tid": 0},
        {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 0, "tid": 1},
    ])
    assert validate_chrome(apart) == []


# ----------------------------------------------------------------------
# cost attribution
# ----------------------------------------------------------------------

def _span(name, cat, ts, dur, tid=0, pid=0, **args):
    d = {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
         "pid": pid, "tid": tid}
    if args:
        d["args"] = args
    return d


def test_span_bucket_mapping():
    assert span_bucket(_span("c", "compute", 0, 1)) == "compute"
    assert span_bucket(_span("c", "compute", 0, 1, mode="grace")) == "grace"
    assert span_bucket(_span("s", "mpi", 0, 1)) == "comm"
    assert span_bucket(_span("b", "coll", 0, 1)) == "comm"
    assert span_bucket(_span("r", "redist", 0, 1)) == "redist"
    assert span_bucket(_span("k", "ckpt", 0, 1)) == "ckpt"
    assert span_bucket(_span("v", "recover", 0, 1)) == "recovery"
    assert span_bucket(_span("y", "cycle", 0, 1)) == "other"


def test_attribute_exclusive_time_and_sticky_buckets():
    events = [
        _span("cycle", "cycle", 0.0, 10.0),
        _span("compute", "compute", 0.0, 4.0),
        _span("coll.allreduce", "coll", 4.0, 3.0),
        _span("mpi.send", "mpi", 4.5, 1.0),          # inside the collective
        _span("redist.apply", "redist", 7.0, 2.0),
        _span("mpi.send", "mpi", 7.5, 1.0),          # sticky: charges redist
        _span("adapt.drop", "adapt", 9.0, 0.0, pid=-1),  # job track, skipped
    ]
    report = attribute(events)
    sums = report["per_rank"]["0"]
    assert sums["compute"] == pytest.approx(4.0)
    assert sums["comm"] == pytest.approx(3.0)    # coll excl. 2.0 + mpi 1.0
    assert sums["redist"] == pytest.approx(2.0)  # nested send absorbed
    assert sums["other"] == pytest.approx(1.0)   # cycle minus children
    assert sums["total"] == pytest.approx(10.0)
    assert report["wall"] == pytest.approx(10.0)
    assert report["adaptations"] == {"drop": 1}


def test_attribution_covers_rank_wall_time(removal):
    _, cluster = removal
    report = attribute(e.to_dict() for e in cluster.obs.sorted_events())
    for sums in report["per_rank"].values():
        assert sums["total"] <= report["wall"] * (1 + 1e-9)
        assert sums["total"] > 0
    assert report["total"]["redist"] > 0
    assert report["total"]["grace"] > 0


def test_diff_reports_deltas():
    a = attribute([_span("c", "compute", 0, 4.0)])
    b = attribute([_span("c", "compute", 0, 5.0),
                   _span("r", "redist", 5.0, 1.0)])
    diff = diff_reports(a, b)
    assert diff["phases"]["compute"]["delta"] == pytest.approx(1.0)
    assert diff["phases"]["compute"]["pct"] == pytest.approx(25.0)
    assert diff["phases"]["redist"]["a"] == 0.0
    assert diff["phases"]["redist"]["pct"] is None  # no baseline
    assert diff["wall"]["delta"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# tracer replay adapter
# ----------------------------------------------------------------------

class _Slice:
    def __init__(self, node, proc, start, end):
        self.node, self.proc, self.start, self.end = node, proc, start, end


class _Msg:
    def __init__(self, src, dst, sent, delivered, nbytes):
        self.src, self.dst = src, dst
        self.sent, self.delivered, self.nbytes = sent, delivered, nbytes


class _FakeTracer:
    def __init__(self, slices, messages):
        self.slices = slices
        self.messages = messages


def test_replay_lays_overlapping_messages_into_lanes():
    tracer = _FakeTracer(
        slices=[_Slice(0, "rank0", 0.0, 1.0)],
        messages=[
            _Msg(0, 1, 0.0, 2.0, 64),
            _Msg(1, 0, 1.0, 3.0, 64),   # overlaps the first -> lane 1
            _Msg(0, 1, 2.5, 4.0, 64),   # lane 0 free again
        ],
    )
    rec = ObsRecorder(clock=lambda: 0.0)
    assert replay_tracer(tracer, rec) == 4
    net = [e for e in rec.events if e.pid == NET_PID]
    assert [e.tid for e in net] == [0, 1, 0]
    (cpu,) = [e for e in rec.events if e.pid == 0]
    assert cpu.tid == CPU_TID and cpu.name == "cpu.rank0"
    assert cpu.dur == pytest.approx(1.0)
    # lanes never partially overlap: the chrome schema stays valid
    assert validate_chrome(chrome_trace(rec)) == []


def test_replay_into_disabled_recorder_is_a_noop():
    rec = ObsRecorder(enabled=False)
    tracer = _FakeTracer([_Slice(0, "p", 0.0, 1.0)], [])
    assert replay_tracer(tracer, rec) == 0
    assert rec.events == []
