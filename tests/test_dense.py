"""Tests for ProjectedArray (2-d projection layout) and the
ContiguousArray baseline."""

import numpy as np
import pytest

from repro.dmem import ContiguousArray, MemCostModel, ProjectedArray
from repro.errors import AllocationError


def test_shape_projection_extended_rows():
    a = ProjectedArray("a", (10, 4, 3))
    assert a.n_rows == 10
    assert a.row_elems == 12
    assert a.row_nbytes == 12 * 8
    b = ProjectedArray("b", (5,))
    assert b.row_elems == 1


def test_invalid_shape_rejected():
    with pytest.raises(AllocationError):
        ProjectedArray("a", (0, 3))
    with pytest.raises(AllocationError):
        ProjectedArray("a", (4, -1))
    with pytest.raises(AllocationError):
        ContiguousArray("a", ())


def test_hold_drop_and_accounting():
    a = ProjectedArray("a", (8, 2))
    assert a.hold([0, 1, 2]) == 3
    assert a.hold([2, 3]) == 1  # row 2 already held
    assert a.held_rows() == [0, 1, 2, 3]
    assert a.drop([1, 7]) == 1
    assert a.held_rows() == [0, 2, 3]
    assert a.stats.n_allocs == 4
    assert a.stats.n_frees == 1
    assert a.stats.bytes_allocated == 4 * a.row_nbytes


def test_row_access_and_write():
    a = ProjectedArray("a", (4, 3))
    a.hold([1])
    a.row(1)[:] = [1.0, 2.0, 3.0]
    assert np.array_equal(a.row(1), [1.0, 2.0, 3.0])
    a.set_row(1, np.zeros(3))
    assert np.array_equal(a.row(1), np.zeros(3))


def test_unheld_row_access_raises():
    a = ProjectedArray("a", (4, 3))
    with pytest.raises(AllocationError):
        a.row(0)
    with pytest.raises(AllocationError):
        a.row(99)
    with pytest.raises(AllocationError):
        a.hold([4])


def test_virtual_array_has_no_data():
    a = ProjectedArray("a", (4, 3), materialized=False)
    a.hold([0])
    with pytest.raises(AllocationError):
        a.row(0)
    payload, nbytes = a.pack([0])
    assert payload is None
    assert nbytes == a.row_nbytes
    a.unpack([1], None)  # allocates the row, no data needed
    assert a.holds(1)


def test_block_roundtrip():
    a = ProjectedArray("a", (6, 2))
    a.hold(range(2, 5))
    data = np.arange(6.0).reshape(3, 2)
    a.set_block(2, data)
    assert np.array_equal(a.block(2, 4), data)
    with pytest.raises(AllocationError):
        a.block(4, 2)


def test_pack_unpack_preserves_data():
    src = ProjectedArray("src", (10, 4))
    dst = ProjectedArray("dst", (10, 4))
    src.hold([3, 5, 7])
    for g in (3, 5, 7):
        src.row(g)[:] = g
    payload, nbytes = src.pack([3, 5, 7])
    assert nbytes == 3 * src.row_nbytes
    dst.unpack([3, 5, 7], payload)
    for g in (3, 5, 7):
        assert np.all(dst.row(g) == g)


def test_unpack_shape_mismatch_raises():
    a = ProjectedArray("a", (4, 3))
    with pytest.raises(AllocationError):
        a.unpack([0, 1], np.zeros((1, 3)))
    with pytest.raises(AllocationError):
        a.unpack([0], None)


def test_retarget_reuses_surviving_rows():
    """The projection method's key property: rows that stay local are
    not copied or reallocated, only the pointer vector is rewritten."""
    a = ProjectedArray("a", (100, 8))
    a.hold(range(0, 50))
    for g in range(0, 50):
        a.row(g)[:] = g
    before = a.stats.snapshot()
    buf40 = a.row(40)
    a.retarget(range(30, 50))  # shrink: keep 20 rows
    delta = a.stats.delta(before)
    assert delta.bytes_copied == 0
    assert delta.bytes_allocated == 0
    assert delta.n_frees == 30
    assert delta.pointer_moves == 100
    # same underlying buffer: the surviving slab is a view, not a copy
    assert np.shares_memory(a.row(40), buf40)
    assert np.array_equal(a.row(40), buf40)
    assert np.all(a.row(40) == 40)


def test_contiguous_resize_copies_overlap():
    c = ContiguousArray("c", (100, 8))
    c.resize(0, 49)
    for g in range(0, 50):
        c.row(g)[:] = g
    before = c.stats.snapshot()
    c.resize(30, 59)  # shift: overlap is rows 30..49
    delta = c.stats.delta(before)
    assert delta.bytes_allocated == 30 * c.row_nbytes
    assert delta.bytes_copied == 20 * c.row_nbytes
    assert delta.n_frees == 1
    assert np.all(c.row(40) == 40)       # survived the copy
    assert np.all(c.row(55) == 0.0)      # fresh rows zeroed


def test_contiguous_rejects_out_of_range_rows():
    c = ContiguousArray("c", (10, 2))
    c.resize(0, 4)
    with pytest.raises(AllocationError):
        c.row(7)
    with pytest.raises(AllocationError):
        c.resize(5, 10)
    with pytest.raises(AllocationError):
        c.unpack([9], np.zeros((1, 2)))


def test_contiguous_release():
    c = ContiguousArray("c", (10, 2))
    c.resize(0, 9)
    c.release()
    assert c.bounds is None
    assert c.n_held == 0
    assert c.stats.bytes_freed == 10 * c.row_nbytes


def test_projection_beats_contiguous_on_shift():
    """Figure 3's claim, quantitatively: shifting a partition boundary
    costs the projection layout far less memory traffic than the
    contiguous layout."""
    n, width = 1000, 64
    proj = ProjectedArray("p", (n, width))
    cont = ContiguousArray("c", (n, width))
    proj.hold(range(0, 500))
    cont.resize(0, 499)
    p0, c0 = proj.stats.snapshot(), cont.stats.snapshot()

    # gain 10 rows at the bottom, lose nothing else
    proj.retarget(range(0, 510))
    proj.hold(range(500, 510))
    cont.resize(0, 509)

    model = MemCostModel()
    p_work = model.work(proj.stats.delta(p0))
    c_work = model.work(cont.stats.delta(c0))
    assert p_work < c_work / 10


def test_cost_model_paging_penalty():
    from repro.dmem import AllocStats

    model = MemCostModel(paging_threshold=0.5, paging_factor=40.0)
    stats = AllocStats()
    stats.record_alloc(100 * 1024)
    small_mem_work = model.work(stats, memory_bytes=100 * 1024)  # pages
    big_mem_work = model.work(stats, memory_bytes=10 * 1024 * 1024)  # fits
    assert small_mem_work > 10 * big_mem_work


def test_stats_merge_and_delta():
    from repro.dmem import AllocStats

    a = AllocStats()
    a.record_alloc(10)
    b = AllocStats()
    b.record_copy(5)
    b.record_free(3)
    a.merge(b)
    assert a.bytes_allocated == 10
    assert a.bytes_copied == 5
    assert a.bytes_freed == 3
    snap = a.snapshot()
    a.record_copy(7)
    assert a.delta(snap).bytes_copied == 7


def test_stats_negative_values_rejected():
    from repro.dmem import AllocStats

    s = AllocStats()
    with pytest.raises(AllocationError):
        s.record_alloc(-1)
    with pytest.raises(AllocationError):
        s.record_copy(-1)
    with pytest.raises(AllocationError):
        s.record_free(-1)
    with pytest.raises(AllocationError):
        s.record_pointer_moves(-1)
