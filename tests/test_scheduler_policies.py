"""Focused tests for the scheduler's policy layer: the fair-share EMA
governor, the interactive slice, and quantum continuation — the pieces
that make the non dedicated node model behave like a real OS (see the
scheduler row of DESIGN.md's substitution table)."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.simcluster import Cluster, Compute, Sleep
from repro.simcluster.cpu import RoundRobinCPU

SPEED = 1e8
QUANTUM = 0.010


def make_cluster():
    return Cluster(ClusterSpec(
        n_nodes=1, node=NodeSpec(speed=SPEED, quantum=QUANTUM)))


def run(prog_gen, n_competing=0, until=float("inf")):
    cluster = make_cluster()
    node = cluster.nodes[0]
    for _ in range(n_competing):
        node.start_competing()
    p = cluster.sim.spawn(prog_gen, name="app", node=node)
    cluster.sim.run_all([p], until=until)
    return cluster, p


def test_cpu_hungry_app_gets_fair_share():
    """An app alternating long computes with tiny blocks converges to
    ~1/(k+1) of the CPU: the governor denies its boosts."""
    work_per_burst = SPEED * QUANTUM * 2  # 20 ms CPU per burst

    def prog():
        for _ in range(40):
            yield Compute(work_per_burst)
            yield Sleep(1e-5)

    cluster, p = run(prog(), n_competing=1)
    total_cpu = 40 * QUANTUM * 2
    # wallclock ~= 2x its CPU need under 1 competing process
    assert cluster.sim.now == pytest.approx(2 * total_cpu, rel=0.15)


def test_mostly_blocked_app_keeps_its_boost():
    """An app that sleeps most of the time stays below fair share and
    its short bursts run promptly despite a competing process."""
    burst = SPEED * 0.0005  # 0.5 ms CPU

    def prog():
        for _ in range(40):
            yield Sleep(0.010)
            yield Compute(burst)

    cluster, p = run(prog(), n_competing=1)
    # ideal = 40 * (10 ms sleep + 0.5 ms burst); boosted bursts keep
    # the overhead small even with a CPU hog present
    ideal = 40 * 0.0105
    assert cluster.sim.now < ideal * 1.25


def test_interactive_slice_caps_boosted_compute():
    """A wakeup above fair share gets only a short head start: a long
    compute following a wake still pays the fair-share price."""
    def prog():
        # build a high EMA share first
        yield Compute(SPEED * 0.08)
        yield Sleep(1e-4)  # brief block, then a long compute
        yield Compute(SPEED * 0.05)

    cluster, p = run(prog(), n_competing=1)
    # the post-wake 50 ms compute must NOT have run at full speed:
    # total elapsed >> sum of CPU times
    assert cluster.sim.now > 0.13 * 1.6


def test_quantum_continuation_chains_same_instant_submissions():
    """Back-to-back computes from one process share a quantum instead
    of queueing behind the competitor each time."""
    rows = 20
    per_row = SPEED * 0.0002  # 0.2 ms each; 4 ms total, well within one quantum

    def prog():
        yield Sleep(0.001)
        for _ in range(rows):
            yield Compute(per_row)

    cluster, p = run(prog(), n_competing=1)
    # without continuation each row would wait ~a competing quantum:
    # >200 ms; with it the chain finishes within a few quanta
    assert cluster.sim.now < 0.05


def test_ema_share_decays_over_time():
    cluster = make_cluster()
    cpu = cluster.nodes[0].cpu
    assert isinstance(cpu, RoundRobinCPU)

    class P:  # stand-in schedulable
        name = "x"
        state = "ready"
        cpu_time = 0.0

    proc = P()
    cpu._ema_add(proc, 0.02)
    s0 = cpu._ema_share(proc)
    cluster.sim.now = 0.2  # let a long time pass
    s1 = cpu._ema_share(proc)
    assert s1 < s0 / 10


def test_below_fair_share_threshold():
    cluster = make_cluster()
    cpu = cluster.nodes[0].cpu

    class P:
        name = "y"
        state = "ready"
        cpu_time = 0.0

    proc = P()
    # untouched process: share 0 -> below fair
    assert cpu._below_fair_share(proc)
    cpu._ema_add(proc, cpu._EMA_TAU)  # share ~= 1.0
    assert not cpu._below_fair_share(proc)


def test_background_jobs_never_boosted():
    cluster = make_cluster()
    node = cluster.nodes[0]
    node.start_competing()
    boosts_before = node.cpu.n_wake_boosts
    node.start_competing()  # background submit, not a wakeup boost
    assert node.cpu.n_wake_boosts == boosts_before


def test_processor_sharing_has_no_quantum_artifacts():
    """Under the fluid discipline, per-iteration times are exactly
    scaled by the sharing factor — no spikes for the min-filter to
    clean (the discipline the predictor assumes)."""
    cluster = Cluster(ClusterSpec(
        n_nodes=1, node=NodeSpec(speed=SPEED, discipline="ps")))
    node = cluster.nodes[0]
    node.start_competing()
    times = []

    def prog():
        sim = cluster.sim
        for _ in range(10):
            t0 = sim.now
            yield Compute(SPEED * 0.001)
            times.append(sim.now - t0)

    p = cluster.sim.spawn(prog(), name="app", node=node)
    cluster.sim.run_all([p])
    assert np.allclose(times, 0.002, rtol=1e-9)
