"""Integration tests for the Dyn-MPI runtime: registration, the phase
cycle state machine, redistribution on load change, and node removal."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.errors import RegistrationError
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SPEED = 1e8


def make_cluster(n=4, quantum=0.010):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=SPEED, quantum=quantum),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))


N_ROWS = 64
ROW_WORK = SPEED * 2e-3 / N_ROWS * 4  # ~2 ms per cycle per node on 4 nodes


def synthetic_program(ctx, n_cycles, row_work=None, check_data=False):
    """A minimal Dyn-MPI program: one nearest-neighbor phase over a
    materialized array A (and read-halo array B)."""
    work = row_work if row_work is not None else ROW_WORK
    A = ctx.register_dense("A", (N_ROWS, 8))
    ctx.register_dense("B", (N_ROWS, 8))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
    ctx.add_array_access(1, "A", AccessMode.WRITE)
    ctx.add_array_access(1, "B", AccessMode.READ, lo_off=-1, hi_off=1)
    ctx.commit()

    # stamp owned rows of A with their global index (for data checks)
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        A.row(g)[:] = g

    def work_of(s, e):
        return np.full(e - s + 1, work)

    for _t in range(n_cycles):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
            left, right = ctx.nn_neighbors()
            me = ctx.rel_rank()
            s, e = ctx.my_bounds()
            if e >= s:
                if left is not None:
                    yield from ctx.sendrecv_rel(left, 10, None, left, 11, nbytes=64)
                if right is not None:
                    yield from ctx.sendrecv_rel(right, 11, None, right, 10, nbytes=64)
        yield from ctx.end_cycle()

    if check_data and ctx.participating():
        s, e = ctx.my_bounds()
        for g in range(s, e + 1):
            assert np.all(A.row(g) == g), f"row {g} corrupted after redistribution"
    return ctx.my_bounds()


def test_registration_validation():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        ctx.register_dense("A", (N_ROWS, 4))
        with pytest.raises(RegistrationError):
            ctx.register_dense("A", (N_ROWS, 4))  # duplicate
        ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
        with pytest.raises(RegistrationError):
            ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
        with pytest.raises(RegistrationError):
            ctx.init_phase(2, N_ROWS + 1, NearestNeighbor(row_nbytes=32))
        with pytest.raises(RegistrationError):
            ctx.add_array_access(1, "missing", AccessMode.READ)
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        ctx.commit()
        with pytest.raises(RegistrationError):
            ctx.register_dense("C", (N_ROWS, 4))
        yield from ctx.begin_cycle()
        yield from ctx.end_cycle()

    job.launch(program)


def test_commit_requires_phase():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        ctx.register_dense("A", (N_ROWS, 4))
        with pytest.raises(RegistrationError):
            ctx.commit()
        yield from ()

    job.launch(program)


def test_initial_distribution_even_and_halo_held():
    cluster = make_cluster(4)
    job = DynMPIJob(cluster)

    def program(ctx):
        A = ctx.register_dense("A", (N_ROWS, 8))
        B = ctx.register_dense("B", (N_ROWS, 8))
        ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        ctx.add_array_access(1, "B", AccessMode.READ, lo_off=-1, hi_off=1)
        ctx.commit()
        s, e = ctx.my_bounds()
        assert e - s + 1 == N_ROWS // 4
        assert A.holds(s) and A.holds(e) and not A.holds((e + 1) % N_ROWS) or ctx.rel_rank() == 3
        # B holds the read halo
        if s > 0:
            assert B.holds(s - 1)
        if e < N_ROWS - 1:
            assert B.holds(e + 1)
        yield from ()

    job.launch(program)


def test_no_load_change_means_no_adaptation():
    cluster = make_cluster(4)
    job = DynMPIJob(cluster)
    results = job.launch(synthetic_program, args=(20,))
    assert job.events == []
    # even distribution persisted
    for (s, e) in results:
        assert e - s + 1 == N_ROWS // 4


def test_load_change_triggers_grace_then_redistribution():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=5, node=0, action="start")]
    ))
    job = DynMPIJob(cluster, RuntimeSpec(grace_period=3, post_redist_period=5,
                                         allow_removal=False,
                                         daemon_interval=0.05))
    results = job.launch(synthetic_program, args=(40,))
    redists = [ev for ev in job.events if ev.kind == "redistribute"]
    assert len(redists) >= 1
    ev = redists[0]
    # grace starts when dmpi_ps notices (~1 s daemon lag), then 3 cycles
    assert ev.cycle > 5
    # the loaded node's share dropped below even
    shares = ev.detail["shares"]
    assert shares[0] < 0.25
    assert shares[0] < min(shares[1:])
    # ownership reflects the shares: node 0 has fewer rows
    (s0, e0) = results[0]
    assert (e0 - s0 + 1) < N_ROWS // 4


def test_redistribution_preserves_array_contents():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=5, node=1, action="start", count=2)]
    ))
    job = DynMPIJob(cluster, RuntimeSpec(grace_period=2, post_redist_period=4,
                                         allow_removal=False,
                                         daemon_interval=0.05))
    job.launch(synthetic_program, args=(40,), )
    # run again with data checking enabled via kwargs-like tuple
    cluster2 = make_cluster(4)
    cluster2.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=5, node=1, action="start", count=2)]
    ))
    job2 = DynMPIJob(cluster2, RuntimeSpec(grace_period=2, post_redist_period=4,
                                           allow_removal=False,
                                           daemon_interval=0.05))

    def program(ctx):
        result = yield from synthetic_program(ctx, 40, check_data=True)
        return result

    job2.launch(program)
    assert any(ev.kind == "redistribute" for ev in job2.events)


def test_second_load_change_triggers_second_redistribution():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=5, node=0, action="start"),
        CycleTrigger(cycle=25, node=0, action="stop"),
    ]))
    job = DynMPIJob(cluster, RuntimeSpec(grace_period=2, post_redist_period=3,
                                         allow_removal=False,
                                         daemon_interval=0.05))
    results = job.launch(synthetic_program, args=(60,))
    redists = [ev for ev in job.events if ev.kind == "redistribute"]
    assert len(redists) >= 2
    # after the competitor leaves, shares return to ~even
    last = redists[-1].detail["shares"]
    assert max(last) - min(last) < 0.08
    for (s, e) in results:
        assert abs((e - s + 1) - N_ROWS // 4) <= 3


def test_non_adaptive_job_never_redistributes():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=5, node=0, action="start")]
    ))
    job = DynMPIJob(cluster, adaptive=False)
    results = job.launch(synthetic_program, args=(30,))
    assert job.events == []
    for (s, e) in results:
        assert e - s + 1 == N_ROWS // 4


def test_adaptive_beats_no_adaptation_under_load():
    """The headline property: with a competing process, the Dyn-MPI
    version finishes faster than the never-adapting version."""
    def run(adaptive):
        cluster = make_cluster(4)
        cluster.install_load_script(LoadScript(
            cycle_triggers=[CycleTrigger(cycle=5, node=0, action="start", count=3)]
        ))
        job = DynMPIJob(
            cluster,
            RuntimeSpec(grace_period=3, post_redist_period=5, allow_removal=False,
                        daemon_interval=0.05),
            adaptive=adaptive,
        )
        job.launch(synthetic_program, args=(160, SPEED * 10e-3 / N_ROWS * 4))
        return cluster.sim.now

    t_adapt = run(True)
    t_static = run(False)
    assert t_adapt < t_static * 0.80


def test_physical_drop_removes_loaded_node():
    """Make communication dominant so keeping a heavily loaded node is
    a losing proposition; Dyn-MPI must physically drop it."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=4, node=2, action="start", count=8)]
    ))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_mode="physical", daemon_interval=0.05,
    ))
    # tiny per-row work: comm/monitoring overhead dominates
    results = job.launch(synthetic_program, args=(60, SPEED * 0.2e-3 / N_ROWS * 4))
    drops = [ev for ev in job.events if ev.kind == "drop"]
    assert len(drops) == 1
    assert drops[0].detail["removed_world"] == [2]
    # the removed rank ends with no rows
    s2, e2 = results[2]
    assert e2 < s2
    # survivors own all rows
    total = sum(e - s + 1 for i, (s, e) in enumerate(results) if i != 2)
    assert total == N_ROWS


def test_logical_drop_keeps_rank_with_min_rows():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=4, node=2, action="start", count=8)]
    ))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_mode="logical", logical_min_rows=1, daemon_interval=0.05,
    ))
    results = job.launch(synthetic_program, args=(60, SPEED * 0.2e-3 / N_ROWS * 4))
    drops = [ev for ev in job.events if ev.kind == "logical_drop"]
    assert len(drops) == 1
    s2, e2 = results[2]
    assert e2 - s2 + 1 == 1  # minimal assignment, still participating
    total = sum(e - s + 1 for (s, e) in results)
    assert total == N_ROWS


def test_cycle_times_recorded():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)
    job.launch(synthetic_program, args=(10,))
    for ctx in job.contexts:
        assert len(ctx.cycle_times) == 10
        assert all(t >= 0 for t in ctx.cycle_times)
