"""Tests for the DynMPIJob surface: launch semantics, the measured
comm model path, shared groups, and event bookkeeping."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.errors import RegistrationError, SimulationError
from repro.simcluster import Cluster


def make_cluster(n=2):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6),
    ))


def trivial_program(ctx):
    ctx.register_dense("A", (16, 2))
    ctx.init_phase(1, 16, NearestNeighbor(row_nbytes=16))
    ctx.add_array_access(1, "A", AccessMode.WRITE)
    ctx.commit()
    for _ in range(3):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, lambda s, e: np.full(e - s + 1, 100.0))
        yield from ctx.end_cycle()
    return ctx.world_rank


def test_launch_returns_per_rank_results():
    job = DynMPIJob(make_cluster(3))
    assert job.launch(trivial_program) == [0, 1, 2]


def test_double_launch_rejected():
    job = DynMPIJob(make_cluster(2))
    job.launch(trivial_program)
    with pytest.raises(SimulationError):
        job.launch(trivial_program)


def test_non_generator_program_rejected():
    job = DynMPIJob(make_cluster(1))
    with pytest.raises(RegistrationError):
        job.launch(lambda ctx: 42)


def test_measured_comm_model_close_to_spec_model():
    """measure_model=True fits the model from simulated ping-pongs; it
    must land near the oracle from_spec model."""
    cluster = make_cluster(2)
    job_fit = DynMPIJob(cluster, measure_model=True)
    job_ref = DynMPIJob(make_cluster(2), measure_model=False)
    fit, ref = job_fit.comm_model, job_ref.comm_model
    assert fit.cpu_byte_s == pytest.approx(ref.cpu_byte_s, rel=0.15)
    assert fit.wire_byte_s == pytest.approx(ref.wire_byte_s, rel=0.2)


def test_group_for_is_shared_and_cached():
    job = DynMPIJob(make_cluster(3))
    g1 = job.group_for((0, 2))
    g2 = job.group_for((0, 2))
    g3 = job.group_for((0, 1, 2))
    assert g1 is g2
    assert g1 is not g3


def test_contexts_exposed_after_launch():
    job = DynMPIJob(make_cluster(2))
    job.launch(trivial_program)
    assert len(job.contexts) == 2
    for rank, ctx in enumerate(job.contexts):
        assert ctx.world_rank == rank
        assert len(ctx.cycle_times) == 3
        assert len(ctx.cycle_stamps) == 3
        for (b, e) in ctx.cycle_stamps:
            assert e >= b


def test_ps_daemons_started_and_monitoring():
    # sample far faster than the run's few-ms duration
    job = DynMPIJob(make_cluster(2), RuntimeSpec(daemon_interval=0.0002))
    job.launch(trivial_program)
    # each node's daemon saw its app (load >= 1 while running)
    for node_id in range(2):
        hist = job.ps.history(node_id)
        assert hist, "daemon never sampled"


def test_custom_mem_model_used():
    from repro.dmem import MemCostModel

    model = MemCostModel(work_per_byte_copied=123.0)
    job = DynMPIJob(make_cluster(2), mem_model=model)
    assert job.mem_model.work_per_byte_copied == 123.0
