"""Tests for the `python -m repro.experiments` figure runner."""

import pytest

from repro.experiments.__main__ import main


def test_cli_fig3(capsys):
    assert main(["fig3", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "cont/proj work" in out


def test_cli_fig4_subset(capsys):
    assert main(["fig4", "--scale", "0.12", "--apps", "jacobi"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "jacobi" in out
    assert "cg" not in out.splitlines()[2]


def test_cli_ablations(capsys):
    assert main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "Successive balancing" in out
    assert "vmstat" in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])
