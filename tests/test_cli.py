"""Tests for the `python -m repro.experiments` figure runner."""

import pytest

from repro.experiments.__main__ import main


def test_cli_fig3(capsys):
    assert main(["fig3", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "cont/proj work" in out


def test_cli_fig4_subset(capsys):
    assert main(["fig4", "--scale", "0.12", "--apps", "jacobi"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "jacobi" in out
    assert "cg" not in out.splitlines()[2]


def test_cli_ablations(capsys):
    assert main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "Successive balancing" in out
    assert "vmstat" in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_seed_flag_threads_into_figures(capsys):
    assert main(["fig4", "--scale", "0.12", "--apps", "jacobi",
                 "--seed", "3"]) == 0
    seeded = capsys.readouterr().out
    assert main(["fig4", "--scale", "0.12", "--apps", "jacobi",
                 "--seed", "3"]) == 0
    again = capsys.readouterr().out
    assert seeded == again          # same seed -> identical tables


def test_scenario_seed_override_equals_reseeded_spec():
    from repro.campaign.scenarios import build_scenario
    from repro.experiments.harness import Scenario

    built = build_scenario({"app": "jacobi", "size": 16, "cycles": 4,
                            "n_nodes": 2, "check": 0})

    def scenario(**kw):
        return Scenario(name="s", cluster_spec=built.cluster_spec,
                        program=built.program, cfg=built.cfg,
                        spec=built.spec, **kw)

    # the override is equivalent to baking the seed into the spec...
    overridden = scenario(seed=5).run()
    baked = scenario().run()
    rebaked = Scenario(
        name="s", cluster_spec=built.cluster_spec.with_seed(5),
        program=built.program, cfg=built.cfg, spec=built.spec,
    ).run()
    assert overridden.wall_time == rebaked.wall_time
    # ...and seed=None keeps the spec's own seed
    assert baked.wall_time == scenario(seed=built.cluster_spec.seed).run() \
        .wall_time
