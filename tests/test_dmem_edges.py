"""Additional edge-case coverage for the memory substrate: block
operations, dtype handling, virtual/materialized mixing, contiguous
pack/unpack, and cost-model corner cases."""

import numpy as np
import pytest

from repro.dmem import (
    AllocStats,
    ContiguousArray,
    MemCostModel,
    ProjectedArray,
    SparseMatrix,
)
from repro.errors import AllocationError


# ----------------------------------------------------------------------
# ProjectedArray extras
# ----------------------------------------------------------------------
def test_projected_one_dimensional_array():
    v = ProjectedArray("v", (10,))
    v.hold([3])
    v.row(3)[0] = 7.5
    assert v.row_elems == 1
    assert v.row(3).shape == (1,)
    payload, nbytes = v.pack([3])
    assert nbytes == 8
    w = ProjectedArray("w", (10,))
    w.unpack([3], payload)
    assert w.row(3)[0] == 7.5


def test_projected_dtype_respected():
    a = ProjectedArray("a", (4, 3), dtype=np.float32)
    a.hold([0])
    assert a.row(0).dtype == np.float32
    assert a.row_nbytes == 12


def test_projected_3d_shape_flattens_extended_rows():
    a = ProjectedArray("a", (5, 2, 4))
    assert a.row_elems == 8
    a.hold([2])
    a.row(2)[:] = np.arange(8)
    assert a.row(2)[7] == 7


def test_set_block_and_held_nbytes():
    a = ProjectedArray("a", (8, 2))
    a.hold(range(2, 6))
    a.set_block(2, np.ones((4, 2)))
    assert a.held_nbytes == 4 * 16
    assert np.all(a.block(2, 5) == 1.0)


def test_set_row_shape_coercion_and_error():
    a = ProjectedArray("a", (4, 4))
    a.hold([0])
    a.set_row(0, [1, 2, 3, 4])  # list accepted
    assert np.array_equal(a.row(0), [1, 2, 3, 4])
    with pytest.raises(Exception):
        a.set_row(0, [1, 2, 3])  # wrong length


def test_virtual_pack_requires_held_rows():
    a = ProjectedArray("a", (4, 2), materialized=False)
    with pytest.raises(AllocationError):
        a.pack([1])


def test_retarget_validates_rows():
    a = ProjectedArray("a", (4, 2))
    with pytest.raises(AllocationError):
        a.retarget([9])


# ----------------------------------------------------------------------
# ContiguousArray extras
# ----------------------------------------------------------------------
def test_contiguous_pack_unpack_within_range():
    c = ContiguousArray("c", (10, 2))
    c.resize(2, 6)
    for g in range(2, 7):
        c.row(g)[:] = g
    payload, nbytes = c.pack([3, 5])
    assert nbytes == 2 * c.row_nbytes
    d = ContiguousArray("d", (10, 2))
    d.resize(0, 9)
    d.unpack([3, 5], payload)
    assert np.all(d.row(3) == 3) and np.all(d.row(5) == 5)


def test_contiguous_grow_in_place_overlap():
    c = ContiguousArray("c", (10, 2))
    c.resize(4, 6)
    c.row(5)[:] = 5
    c.resize(2, 8)  # grow both directions
    assert np.all(c.row(5) == 5)
    assert np.all(c.row(2) == 0)
    assert c.n_held == 7


def test_contiguous_disjoint_resize_copies_nothing():
    c = ContiguousArray("c", (10, 2), materialized=False)
    c.resize(0, 3)
    before = c.stats.snapshot()
    c.resize(6, 9)
    delta = c.stats.delta(before)
    assert delta.bytes_copied == 0
    assert delta.bytes_allocated == 4 * c.row_nbytes


def test_contiguous_virtual_rows_unavailable():
    c = ContiguousArray("c", (4, 2), materialized=False)
    c.resize(0, 3)
    with pytest.raises(AllocationError):
        c.row(0)


# ----------------------------------------------------------------------
# SparseMatrix extras
# ----------------------------------------------------------------------
def test_sparse_pack_empty_rows():
    s = SparseMatrix("s", (4, 4))
    s.hold([0, 1])
    payload, nbytes = s.pack([0, 1])
    assert list(payload["row_ptr"]) == [0, 0, 0]
    d = SparseMatrix("d", (4, 4))
    d.unpack([0, 1], payload)
    assert d.row_items(0) == [] and d.row_items(1) == []


def test_sparse_hold_idempotent_preserves_data():
    s = SparseMatrix("s", (4, 4))
    s.hold([0])
    s.set(0, 1, 9.0)
    assert s.hold([0]) == 0  # already held: no-op
    assert s.get(0, 1) == 9.0


def test_sparse_csr_version_changes_on_drop():
    s = SparseMatrix("s", (4, 4))
    s.hold(range(4))
    v0 = s.csr_version
    s.drop([2])
    assert s.csr_version != v0


def test_sparse_iterator_survives_set_through_matrix():
    s = SparseMatrix("s", (2, 4))
    s.hold([0, 1])
    s.set_row_items(0, [1, 2], [1.0, 2.0])
    it = s.iterator(0)
    it.next()
    s.set(0, 2, 5.0)  # in-place value update
    assert it.next() == (2, 5.0)


# ----------------------------------------------------------------------
# MemCostModel extras
# ----------------------------------------------------------------------
def test_cost_model_zero_memory_never_pages():
    stats = AllocStats()
    stats.record_alloc(10**9)
    model = MemCostModel()
    w_nolimit = model.work(stats, memory_bytes=0)
    w_small = model.work(stats, memory_bytes=10**6)
    assert w_small > w_nolimit


def test_cost_model_linear_components():
    model = MemCostModel(work_per_byte_copied=2.0, work_per_byte_alloced=0.5,
                         work_per_call=10.0, work_per_pointer=1.0)
    stats = AllocStats()
    stats.record_alloc(100)
    stats.record_copy(50)
    stats.record_free(100)
    stats.record_pointer_moves(7)
    assert model.work(stats) == pytest.approx(
        50 * 2.0 + 100 * 0.5 + 2 * 10.0 + 7 * 1.0
    )
