"""State-machine and error-path tests for the Dyn-MPI runtime that the
scenario tests don't reach directly."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.errors import RegistrationError
from repro.simcluster import Cluster, CycleTrigger, LoadScript

SPEED = 1e8
N_ROWS = 48


def make_cluster(n=4):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=SPEED),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
    ))


def base_program(ctx, n_cycles, hooks=None):
    ctx.register_dense("A", (N_ROWS, 4))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
    ctx.add_array_access(1, "A", AccessMode.READWRITE, -1, 1)
    ctx.commit()

    def work_of(s, e):
        return np.full(e - s + 1, SPEED * 5e-4 / N_ROWS * 4)

    for t in range(n_cycles):
        yield from ctx.begin_cycle()
        if hooks:
            hooks(ctx, t)
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()
    return ctx.my_bounds()


def test_grace_restarts_on_second_load_change():
    """A second load change mid-grace restarts the measurement window,
    so the redistribution uses loads/timings from the final state."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=4, node=0, action="start"),
        CycleTrigger(cycle=7, node=0, action="start"),  # mid-grace
    ]))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=8, post_redist_period=3, allow_removal=False,
        daemon_interval=0.0005,
    ))
    job.launch(base_program, args=(60,))
    redists = [ev for ev in job.events if ev.kind == "redistribute"]
    assert redists
    # the (single) redistribution saw both competing processes
    assert redists[0].detail["loads"][0] == 3


def test_compute_rows_outside_bounds_rejected():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        ctx.register_dense("A", (N_ROWS, 4))
        ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        ctx.commit()
        yield from ctx.begin_cycle()
        s, e = ctx.my_bounds()
        with pytest.raises(RegistrationError):
            yield from ctx.compute(
                1, lambda a, b: np.ones(b - a + 1), rows=(s, e + 5)
            )
        with pytest.raises(RegistrationError):
            yield from ctx.compute(99, lambda a, b: np.ones(b - a + 1))
        with pytest.raises(RegistrationError):
            # wrong work vector shape
            yield from ctx.compute(1, lambda a, b: np.ones(2 * (b - a + 1)))
        yield from ctx.end_cycle()

    job.launch(program)


def test_compute_with_empty_subrange_is_noop():
    cluster = make_cluster(2)
    job = DynMPIJob(cluster)

    def program(ctx):
        ctx.register_dense("A", (N_ROWS, 4))
        ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        ctx.commit()
        yield from ctx.begin_cycle()
        s, _e = ctx.my_bounds()
        yield from ctx.compute(1, lambda a, b: np.ones(b - a + 1),
                               rows=(s, s - 1))
        yield from ctx.end_cycle()

    job.launch(program)


def test_global_reduce_reaches_removed_ranks():
    """The send-in/send-out rule: a dropped rank still receives global
    reduction results (paper Section 4.4's termination concern)."""
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=2, action="start", count=8)
    ]))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=True,
        drop_margin=1e-9, daemon_interval=0.0005,
    ))
    sums = {}

    def program(ctx):
        ctx.register_dense("A", (N_ROWS, 4))
        ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=32))
        ctx.add_array_access(1, "A", AccessMode.READWRITE, -1, 1)
        ctx.commit()

        def work_of(s, e):
            return np.full(e - s + 1, SPEED * 1e-5)

        for t in range(40):
            yield from ctx.begin_cycle()
            if ctx.participating():
                yield from ctx.compute(1, work_of)
            yield from ctx.end_cycle()
        # all ranks — including a removed one — get the global value
        value = yield from ctx.global_reduce(1 if ctx.participating() else 0)
        sums[ctx.world_rank] = value
        return ctx.participating()

    active = job.launch(program)
    assert not all(active), "expected a drop"
    expected = sum(1 for a in active if a)
    assert set(sums.values()) == {expected}


def test_begin_cycle_before_commit_rejected():
    cluster = make_cluster(1)
    job = DynMPIJob(cluster)

    def program(ctx):
        with pytest.raises(RegistrationError):
            yield from ctx.begin_cycle()
        yield from ()

    job.launch(program)


def test_array_shorter_than_loop_rejected_at_commit():
    cluster = make_cluster(1)
    job = DynMPIJob(cluster)

    def program(ctx):
        ctx.register_dense("A", (8, 2))
        ctx.init_phase(1, 16, NearestNeighbor(row_nbytes=16))
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        with pytest.raises(RegistrationError):
            ctx.commit()
        yield from ()

    job.launch(program)


def test_max_redistributions_zero_means_unlimited():
    cluster = make_cluster(4)
    cluster.install_load_script(LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=0, action="start"),
        CycleTrigger(cycle=25, node=0, action="stop"),
    ]))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=2, post_redist_period=3, allow_removal=False,
        daemon_interval=0.0005, max_redistributions=0,
    ))
    job.launch(base_program, args=(60,))
    redists = [ev for ev in job.events if ev.kind == "redistribute"]
    assert len(redists) >= 2


def test_nn_neighbors_skip_empty_ranks():
    cluster = make_cluster(4)
    job = DynMPIJob(cluster, adaptive=False)
    seen = {}

    def program(ctx):
        ctx.register_dense("A", (3, 2))  # 3 rows over 4 ranks: one empty
        ctx.init_phase(1, 3, NearestNeighbor(row_nbytes=16))
        ctx.add_array_access(1, "A", AccessMode.WRITE)
        ctx.commit()
        yield from ctx.begin_cycle()
        seen[ctx.rel_rank()] = ctx.nn_neighbors()
        yield from ctx.end_cycle()

    job.launch(program)
    assert seen[0] == (None, 1)
    assert seen[1] == (0, 2)
    assert seen[2] == (1, None)
    assert seen[3] == (None, None)  # no rows, no neighbors
