"""dynflow tests: CFG construction on tricky shapes, call-graph
resolution and rooting, the taint/trace domain, every DYN5xx code on
the seeded-bad fixtures, the acceptance check that the real tree is
clean, suppression + baseline handling, the CLI exit-code/JSON
contract, and the CG removal regression the analyzer originally
caught."""

import ast
import io
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.flow import analyze_paths, run_flow
from repro.analysis.flow.callgraph import load_registry
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.domain import TaintEnv, classify_call

ROOT = pathlib.Path(__file__).parent.parent
SRC = ROOT / "src"
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "flow"
ENV = {"PYTHONPATH": str(SRC)}


def analyze_source(tmp_path, code, name="prog.py"):
    f = tmp_path / name
    f.write_text(textwrap.dedent(code))
    return analyze_paths([f])


def codes(findings):
    return sorted(f.code for f in findings)


def fn_of(code):
    return ast.parse(textwrap.dedent(code)).body[0]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------

def test_cfg_if_else_join():
    cfg = build_cfg(fn_of("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """))
    kinds = {k for _, _, k in cfg.edges()}
    assert {"true", "false", "return"} <= kinds
    # both arms rejoin before the return
    labels = [b.label for b in cfg.blocks]
    assert "then" in labels and "else" in labels and "join" in labels


def test_cfg_while_else_break_bypasses_else():
    cfg = build_cfg(fn_of("""
        def f(xs):
            while xs:
                if stop():
                    break
                step()
            else:
                cleanup()
            return 1
    """))
    by_label = {b.label: b for b in cfg.blocks}
    after = by_label["while-after"]
    else_b = by_label["while-else"]
    # the break edge goes straight to after, skipping the else body
    break_dsts = [d for _, d, k in cfg.edges() if k == "break"]
    assert break_dsts == [after.idx]
    # the else body is entered from the loop head on normal exhaustion
    exit_dsts = [d for _, d, k in cfg.edges() if k == "exit"]
    assert else_b.idx in exit_dsts


def test_cfg_return_routes_through_finally():
    cfg = build_cfg(fn_of("""
        def f():
            try:
                return 1
            finally:
                release()
    """))
    by_label = {b.label: b for b in cfg.blocks}
    fin = by_label["finally"]
    # the try-body return enters the finally block, and the finally
    # block carries the deferred return edge to the function exit
    finally_dsts = [d for _, d, k in cfg.edges() if k == "finally"]
    assert fin.idx in finally_dsts
    assert (fin.idx, cfg.exit, "return") in cfg.edges()


def test_cfg_try_except_edges():
    cfg = build_cfg(fn_of("""
        def f():
            try:
                risky()
            except ValueError:
                fallback()
            return 1
    """))
    kinds = [k for _, _, k in cfg.edges()]
    assert "except" in kinds
    assert any(b.label.startswith("except-") for b in cfg.blocks)


def test_cfg_nested_comprehension_stays_in_one_block():
    cfg = build_cfg(fn_of("""
        def f(rows):
            flat = [x for row in rows for x in row if x]
            return flat
    """))
    # a comprehension is a value, not control flow: no branch blocks
    assert all(b.cond is None for b in cfg.blocks)
    stmts = [s for b in cfg.blocks for s in b.stmts]
    assert len(stmts) == 2  # the assign and the return


def test_cfg_unreachable_code_survives():
    cfg = build_cfg(fn_of("""
        def f():
            return 1
            dead()
    """))
    stmts = [s for b in cfg.blocks for s in b.stmts]
    assert len(stmts) == 2  # the dead call is kept in an orphan block
    assert any(b.label == "unreachable" for b in cfg.blocks)


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------

def _write(tmp_path, name, code):
    (tmp_path / name).write_text(textwrap.dedent(code))


def test_callgraph_roots_and_reachability(tmp_path):
    _write(tmp_path, "appmod.py", """
        def used_helper(ctx):
            yield from ctx.begin_cycle()
            yield from ctx.end_cycle()

        def foo_program(ctx, cfg):
            yield from used_helper(ctx)

        def lonely_helper(ctx):
            yield from ctx.begin_cycle()
            yield from ctx.end_cycle()
    """)
    _write(tmp_path, "driver.py", """
        from appmod import foo_program

        def main():
            run(foo_program)
    """)
    reg = load_registry([tmp_path])
    roots = {f.qualname for f in reg.roots()}
    # programs and mains root the analysis; the helper reached from
    # foo_program is not re-rooted, the unreached one is
    assert "foo_program" in roots
    assert "main" in roots
    assert "lonely_helper" in roots
    assert "used_helper" not in roots


def test_callgraph_resolves_from_imports(tmp_path):
    _write(tmp_path, "shared.py", """
        def reduce_all(ctx, x):
            out = yield from ctx.global_reduce(x)
            return out
    """)
    _write(tmp_path, "consumer.py", """
        from shared import reduce_all

        def sum_program(ctx, cfg):
            total = yield from reduce_all(ctx, 1.0)
            return total
    """)
    reg = load_registry([tmp_path])
    edges = reg.call_edges()
    assert ("consumer.sum_program", "shared.reduce_all") in edges


def test_callgraph_prefers_enclosing_scope(tmp_path):
    _write(tmp_path, "nest.py", """
        def outer_program(ctx, cfg):
            def step():
                return 1
            return step()

        def step():
            return 2
    """)
    reg = load_registry([tmp_path])
    mod = reg.modules["nest"]
    call = next(
        n for n in ast.walk(mod.functions["outer_program"].node)
        if isinstance(n, ast.Call)
    )
    resolved = reg.resolve_call(call, mod.functions["outer_program"])
    assert resolved is not None
    assert resolved.qualname == "outer_program.step"


# ----------------------------------------------------------------------
# abstract domain
# ----------------------------------------------------------------------

def _expr(src):
    return ast.parse(src, mode="eval").body


def test_classify_call_scopes():
    assert classify_call(_expr("ctx.global_reduce(x)")).scope == "world"
    assert classify_call(_expr("ctx.allgather_active(x)")).scope == "active"
    assert classify_call(_expr("ctx.ep.isend(w, t, p)")).kind == "send"
    # a .send on something that is not an endpoint is not traffic
    assert classify_call(_expr("queue.send(item)")) is None


def test_taint_sources_and_laundering():
    env = TaintEnv()
    assign = ast.parse("s, e = ctx.my_bounds()").body[0]
    env.assign(assign.targets, assign.value)
    assert {"s", "e"} <= env.tainted
    assert env.expr_tainted(_expr("e - s + 1"))
    # a collective result is rank-uniform: taint does not pass through
    assert not env.expr_tainted(_expr("ctx.allreduce_active(e - s)"))


def test_participation_info_forms():
    env = TaintEnv()
    assert env.participation_info(_expr("ctx.participating()")) == (
        "active", "removed"
    )
    assert env.participation_info(_expr("not ctx.participating()")) == (
        "removed", "active"
    )
    # participation as a conjunct: only the true edge is refined
    assert env.participation_info(
        _expr("cfg.collect and ctx.participating()")
    ) == ("active", None)
    assert env.participation_info(_expr("e >= s")) is None
    # a variable bound to participation carries the fact
    bind = ast.parse("alive = ctx.participating()").body[0]
    env.assign(bind.targets, bind.value)
    assert env.participation_info(_expr("alive")) == ("active", "removed")


# ----------------------------------------------------------------------
# the seeded-bad fixtures: every code fires, with the right shape
# ----------------------------------------------------------------------

def test_fixture_dyn501_branch_divergence():
    findings = analyze_paths([FIXTURES / "bad_dyn501_branch.py"])
    assert codes(findings) == ["DYN501"]
    f = findings[0]
    assert f.function == "skewed_reduce_program"
    assert f.side_by_side is not None
    assert any("allreduce_active" in s for s in f.side_by_side.left)
    assert f.side_by_side.right == ()  # the other arm is silent


def test_fixture_dyn502_rank_dependent_loop():
    findings = analyze_paths([FIXTURES / "bad_dyn502_loop.py"])
    assert codes(findings) == ["DYN502"]
    assert "range(s, e + 1)" in findings[0].message
    assert "global_reduce" in findings[0].message


def test_fixture_dyn503_removed_path_send_in():
    findings = analyze_paths([FIXTURES / "bad_dyn503_removed.py"])
    assert codes(findings) == ["DYN503", "DYN503"]
    messages = " ".join(f.message for f in findings)
    assert "send_rel" in messages
    assert "allreduce_active" in messages


def test_fixture_dyn504_ownership_violation():
    findings = analyze_paths([FIXTURES / "bad_dyn504_ownership.py"])
    assert codes(findings) == ["DYN504"]
    f = findings[0]
    assert f.detail["array"] == "grid"
    # the witness partition owns [407, 613] with a 1-row halo; a g-2
    # read reaches row 405, one past the declared region
    assert f.detail["accessed"] == [[405, 405]]


def test_fixture_dyn505_signature_mismatch():
    findings = analyze_paths([FIXTURES / "bad_dyn505_signature.py"])
    assert codes(findings) == ["DYN505"]
    sbs = findings[0].side_by_side
    assert any("root=0" in s for s in sbs.left)
    assert any("root=1" in s for s in sbs.right)


# ----------------------------------------------------------------------
# acceptance: the real tree is clean, and the guards stay legal
# ----------------------------------------------------------------------

def test_real_tree_is_clean():
    findings = analyze_paths([SRC / "repro", ROOT / "examples"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_participation_guard_is_legal(tmp_path):
    findings = analyze_source(tmp_path, """
        def guarded_program(ctx, cfg):
            yield from ctx.begin_cycle()
            if ctx.participating():
                acc = yield from ctx.allreduce_active(1.0)
            yield from ctx.end_cycle()
    """)
    assert findings == []


def test_compound_participation_guard_is_legal(tmp_path):
    # cfg.collect is rank-uniform: and-ing it with participation still
    # means the active collective is entered by active ranks only
    findings = analyze_source(tmp_path, """
        def collecting_program(ctx, cfg):
            if cfg.collect and ctx.participating():
                rows = yield from ctx.allgather_active([1])
    """)
    assert findings == []


def test_world_collective_under_guard_is_flagged(tmp_path):
    findings = analyze_source(tmp_path, """
        def broken_program(ctx, cfg):
            yield from ctx.begin_cycle()
            if ctx.participating():
                total = yield from ctx.global_reduce(1.0)
            yield from ctx.end_cycle()
    """)
    assert codes(findings) == ["DYN501"]
    assert "4.4" in findings[0].hint


def test_uniform_convergence_break_is_legal(tmp_path):
    # the classic pattern: loop until a *collective result* converges —
    # data-dependent, but identical on every rank
    findings = analyze_source(tmp_path, """
        def iterative_program(ctx, cfg):
            residual = 1.0
            for _ in range(cfg.iters):
                residual = yield from ctx.global_reduce(residual)
                if residual < cfg.tol:
                    break
    """)
    assert findings == []


def test_interprocedural_divergence_is_caught(tmp_path):
    # the collective hides inside a helper; the rank-dependent branch
    # is in the caller
    findings = analyze_source(tmp_path, """
        def reduce_step(ctx):
            out = yield from ctx.global_reduce(0.0)
            return out

        def split_program(ctx, cfg):
            s, e = ctx.my_bounds()
            if e - s > 3:
                val = yield from reduce_step(ctx)
    """)
    assert codes(findings) == ["DYN501"]


# ----------------------------------------------------------------------
# suppression and baselines
# ----------------------------------------------------------------------

def test_line_suppression_marker(tmp_path):
    findings = analyze_source(tmp_path, """
        def waived_program(ctx, cfg):
            s, e = ctx.my_bounds()
            if e - s > 10:  # dynflow: ok
                acc = yield from ctx.allreduce_active(1.0)
    """)
    assert findings == []


def test_baseline_roundtrip(tmp_path):
    bad = FIXTURES / "bad_dyn501_branch.py"
    baseline = tmp_path / "flow-baseline.json"
    out = io.StringIO()
    rc = run_flow([bad], write_baseline=str(baseline), stream=out)
    assert rc == 1  # findings still reported on the writing run
    data = json.loads(baseline.read_text())
    assert data["tool"] == "dynflow"
    assert len(data["findings"]) == 1
    out = io.StringIO()
    rc = run_flow([bad], baseline=str(baseline), stream=out)
    assert rc == 0
    assert "1 baselined" in out.getvalue()


# ----------------------------------------------------------------------
# CLI contract: exit codes and --json
# ----------------------------------------------------------------------

def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=ENV, cwd=ROOT,
    )


def test_cli_flow_clean_exits_zero(tmp_path):
    clean = tmp_path / "fine.py"
    clean.write_text(textwrap.dedent("""
        def fine_program(ctx, cfg):
            yield from ctx.begin_cycle()
            yield from ctx.end_cycle()
    """))
    proc = _cli("flow", str(clean))
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_flow_findings_exit_one_and_json():
    proc = _cli("flow", "--json", str(FIXTURES / "bad_dyn503_removed.py"))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "dynflow"
    assert [f["code"] for f in payload["findings"]] == ["DYN503", "DYN503"]
    assert all("fingerprint" in f for f in payload["findings"])


def test_cli_flow_usage_error_exits_two():
    proc = _cli("flow")  # missing paths
    assert proc.returncode == 2


def test_cli_flow_budget_overrun_exits_two(tmp_path):
    clean = tmp_path / "fine.py"
    clean.write_text("def fine_program(ctx, cfg):\n    yield\n")
    proc = _cli("flow", "--max-seconds", "0", str(clean))
    assert proc.returncode == 2
    assert "budget" in proc.stderr


def test_cli_lint_json():
    proc = _cli("lint", "--json", str(FIXTURES / "bad_dyn501_branch.py"))
    # communication-bad but lint-clean: exit 0 with a JSON report
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "dynsan-lint"
    assert payload["count"] == 0


# ----------------------------------------------------------------------
# the regression dynflow originally caught: CG's global_reduce must be
# reachable by removed ranks (paper 4.4 send-out)
# ----------------------------------------------------------------------

def test_cg_global_reduce_reaches_removed_ranks():
    from repro.apps.base import run_program
    from repro.apps.cg import CGConfig, cg_program
    from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
    from repro.simcluster import Cluster, CycleTrigger, LoadScript

    cluster = Cluster(ClusterSpec(
        n_nodes=4, sanitize=True, node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
    ))
    script = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=1, action="start", count=8),
    ])
    # before the fix, every post-removal iteration left two unmatched
    # global_reduce send-outs per removed rank and the sanitizer threw
    res = run_program(
        cluster, cg_program, CGConfig(n=48, iters=25),
        spec=RuntimeSpec(grace_period=2, post_redist_period=3,
                         allow_removal=True, drop_margin=1e-9,
                         daemon_interval=0.002),
        adaptive=True, load_script=script,
    )
    assert res.n_redistributions >= 1
    assert res.per_rank[0]["residual"] == pytest.approx(0.0, abs=1e-6)
    # every rank — including the removed one — tracked the recurrence
    residuals = {r["residual"] for r in res.per_rank}
    assert len(residuals) == 1
