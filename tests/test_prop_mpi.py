"""Property-based tests for the MPI layer: arbitrary message schedules
must respect MPI's non-overtaking guarantee and deliver every payload
exactly once, regardless of eager/rendezvous mix, timing, and receive
order."""

from collections import defaultdict, deque

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.mpi import ANY_SOURCE, Group, run_spmd
from repro.mpi import collectives as coll
from repro.mpi.datatypes import MAX, SUM
from repro.simcluster import Cluster, Sleep


def make_cluster(n, eager):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8,
                            eager_threshold=eager),
    ))


@given(
    sizes=st.lists(st.integers(1, 4000), min_size=1, max_size=12),
    tags=st.lists(st.integers(0, 2), min_size=1, max_size=12),
    eager=st.sampled_from([0, 512, 1 << 20]),
    delay=st.floats(0.0, 0.01),
)
@settings(max_examples=40, deadline=None)
def test_per_tag_fifo_and_exactly_once(sizes, tags, eager, delay):
    n_msgs = min(len(sizes), len(tags))
    sizes, tags = sizes[:n_msgs], tags[:n_msgs]
    cluster = make_cluster(2, eager)
    received = defaultdict(list)

    def program(ep):
        if ep.rank == 0:
            # non-blocking sends: a blocking rendezvous send to a
            # receiver that posts tags out of order would deadlock,
            # exactly as in real (unbuffered) MPI
            reqs = [
                ep.isend(1, tag=tag, payload=np.full(size // 8 + 1, float(i)))
                for i, (size, tag) in enumerate(zip(sizes, tags))
            ]
            for req in reqs:
                yield from req.wait()
        else:
            yield Sleep(delay)
            per_tag = defaultdict(deque)
            for i, tag in enumerate(tags):
                per_tag[tag].append(i)
            # receive per tag, in tag-grouped order
            for tag in sorted(per_tag):
                for _ in range(len(per_tag[tag])):
                    data, st_ = yield from ep.recv(0, tag=tag)
                    received[tag].append(int(data[0]))

    run_spmd(cluster, program)
    # per (src, tag), messages arrive in send order (non-overtaking)
    for tag, seq in received.items():
        expected = [i for i, t in enumerate(tags) if t == tag]
        assert seq == expected
    assert sum(len(v) for v in received.values()) == n_msgs


@given(
    n=st.integers(2, 6),
    values=st.data(),
    op=st.sampled_from([SUM, MAX]),
)
@settings(max_examples=30, deadline=None)
def test_allreduce_agrees_with_local_reduction(n, values, op):
    vals = values.draw(st.lists(
        st.integers(-1000, 1000), min_size=n, max_size=n))
    cluster = make_cluster(n, eager=1 << 20)
    group = Group(list(range(n)))
    results = []

    def program(ep):
        me = group.rel(ep.rank)
        out = yield from coll.allreduce(ep, group, vals[me], op)
        results.append(out)

    run_spmd(cluster, program)
    expected = vals[0]
    for v in vals[1:]:
        expected = op(expected, v)
    assert all(r == expected for r in results)


@given(
    n=st.integers(2, 6),
    root=st.data(),
    payload=st.one_of(
        st.integers(), st.text(max_size=20),
        st.lists(st.floats(allow_nan=False, allow_infinity=False),
                 max_size=5),
    ),
)
@settings(max_examples=30, deadline=None)
def test_bcast_delivers_arbitrary_payloads(n, root, payload):
    root_rel = root.draw(st.integers(0, n - 1))
    cluster = make_cluster(n, eager=1 << 20)
    group = Group(list(range(n)))
    got = []

    def program(ep):
        me = group.rel(ep.rank)
        value = payload if me == root_rel else None
        out = yield from coll.bcast(ep, group, value, root=root_rel)
        got.append(out)

    run_spmd(cluster, program)
    assert all(g == payload for g in got)


@given(perm=st.permutations(list(range(5))))
@settings(max_examples=20, deadline=None)
def test_alltoallv_arbitrary_permutation_routing(perm):
    """Route block i of each rank to rank perm[i]-ish: every rank
    reconstructs exactly the blocks addressed to it."""
    n = 5
    cluster = make_cluster(n, eager=1 << 20)
    group = Group(list(range(n)))

    def program(ep):
        me = group.rel(ep.rank)
        blocks = [(me, perm[j]) for j in range(n)]
        out = yield from coll.alltoallv(ep, group, blocks)
        assert out == [(j, perm[me]) for j in range(n)]

    run_spmd(cluster, program)
