"""Seeded-bad dynflow fixture: a collective inside a loop whose trip
count is rank-dependent.

Each rank iterates once per *owned row*, and every iteration enters a
world-scope ``global_reduce`` — ranks owning different block sizes
execute a different number of collectives.  DYN502.
"""


def per_row_reduce_program(ctx, cfg):
    total = 0.0
    s, e = ctx.my_bounds()
    for g in range(s, e + 1):
        total = yield from ctx.global_reduce(float(g))
    return total
