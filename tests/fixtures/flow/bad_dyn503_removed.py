"""Seeded-bad dynflow fixture: send-in on a removed path.

The paper's Section 4.4 invariant says a removed node only *receives*
(send-out); here the non-participating branch both sends point-to-
point traffic and enters an active-group collective.  Both are DYN503.
"""

STATUS_TAG = 55


def chatty_removed_program(ctx, cfg):
    yield from ctx.begin_cycle()
    if ctx.participating():
        acc = yield from ctx.allreduce_active(1.0)
    else:
        # a removed rank must not send...
        yield from ctx.send_rel(0, STATUS_TAG, "still here", nbytes=16)
        # ...and must not enter an active-group collective
        acc = yield from ctx.allreduce_active(0.0)
    yield from ctx.end_cycle()
    return acc
