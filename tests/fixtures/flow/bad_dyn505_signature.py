"""Seeded-bad dynflow fixture: collectives pair up across a
rank-dependent branch but with different signatures.

Both arms broadcast — same collective count, so naive length matching
passes — but from *different roots*, so the group disagrees about who
is sending.  DYN505 (signature mismatch), not DYN501.
"""


def two_roots_program(ctx, cfg):
    s, e = ctx.my_bounds()
    if e - s > 4:
        value = yield from ctx.bcast_active(float(e - s), 0)
    else:
        value = yield from ctx.bcast_active(float(e - s), 1)
    return value
