"""Seeded-bad dynflow fixture: array access outside owned+halo.

The phase declares a one-row halo (``lo_off=-1, hi_off=1``) but the
kernel reads two rows back — row ``s - 2`` is never redistributed to
this rank.  DYN504, caught by the witness-partition evaluator.
"""

from repro.core import AccessMode, NearestNeighbor


def widestencil_program(ctx, cfg):
    n = 1000
    grid = ctx.register_dense("grid", (n, n), materialized=True)
    ctx.init_phase(1, n, NearestNeighbor(row_nbytes=n * 8))
    ctx.add_array_access(1, "grid", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()

    yield from ctx.begin_cycle()
    if ctx.participating():
        s, e = ctx.my_bounds()
        for g in range(s, e + 1):
            above = grid.row(g - 2)  # two rows back: outside the halo
            grid.row(g)[:] = above
    yield from ctx.end_cycle()
