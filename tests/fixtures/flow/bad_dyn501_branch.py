"""Seeded-bad dynflow fixture: a collective guarded by a
rank-dependent condition with no matching call on the other arm.

Ranks whose owned block is large enter the allreduce; small-block
ranks skip it — the classic divergence deadlock.  dynflow must flag
the ``if`` with DYN501 and show the two traces side by side.
"""


def skewed_reduce_program(ctx, cfg):
    yield from ctx.begin_cycle()
    s, e = ctx.my_bounds()
    local = float(e - s + 1)
    if e - s > 10:
        # only "big" ranks reduce: the others never enter the call
        local = yield from ctx.allreduce_active(local)
    yield from ctx.end_cycle()
    return local
