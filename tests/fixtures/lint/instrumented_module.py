"""DYN601 fixture: library code with ad-hoc instrumentation.

Linted by ``tests/test_lint.py`` with ``instrumentation_zone=True``
(its real path lacks a ``repro`` component, so the CI lint gate over
``tests/`` never fires on it).  Expected findings, in line order:
``print`` at the module level, ``time.perf_counter()`` in ``work``,
and ``time.time()`` via the ``from``-import — the suppressed and
sysmon-styled lines stay clean.
"""

import time
from time import time as wallclock

print("loading instrumented module")  # DYN601: bare print


def work(n):
    t0 = time.perf_counter()  # DYN601: ad-hoc wallclock timing
    total = sum(range(n))
    elapsed = time.perf_counter() - t0  # dynsan: ok
    return total, elapsed


def stamp():
    return wallclock()  # DYN601: time.time via from-import alias


def quiet(n):
    # sanctioned styles: sleeping is not timing, f-strings are not print
    time.sleep(0)
    return f"sum={sum(range(n))}"
