"""Seeded-bad fixture for DYN1101 (farm-protocol access outside the
farm runtime and the one-sided home).

The raw band tags and the ad-hoc ``Window(...)`` below are findings
when linted as library code (``farm_zone=True``); the same file is
clean outside the zone, which is why it may sit under tests/ without
tripping the CI lint gate.  The suppressed lines demonstrate
``# dynfarm: ok`` and must NOT be reported.
"""


def splice_into_farm(ep, master):
    yield from ep.send(master, 211, None, nbytes=64)       # (finding 1)
    payload, status = yield from ep.recv(master, tag=213)  # (finding 2)
    return payload, status


def adhoc_window(comm):
    from repro.mpi.rma import Window
    return Window(comm, 4, name="rogue")                   # (finding 3)


def sanctioned_uses(ep, comm, master):
    from repro.mpi.rma import Window
    win = Window(comm, 4)                                  # dynfarm: ok
    yield from ep.send(master, 214, None, nbytes=64)       # dynfarm: ok
    yield from ep.send(master, 101, None, nbytes=64)  # outside the band
    yield from ep.recv(master, tag=209)               # just below the band
    yield from ep.recv(master, tag=220)               # just above the band
    return win
