"""Seeded-bad fixture for DYN801 (process-level parallelism in
library code).

Every import below is a finding when linted as library code
(``process_zone=True``); the same file is clean outside the zone,
which is why it may sit under tests/ without tripping the CI lint
gate.  The last import demonstrates the ``# dyncamp: ok`` suppression
and must NOT be reported.
"""

import multiprocessing                          # noqa: F401  (finding 1)
from concurrent.futures import ProcessPoolExecutor  # noqa: F401 (finding 2)
import subprocess                               # noqa: F401  (finding 3)

import subprocess as sp                         # noqa: F401  # dyncamp: ok


def fan_out(jobs):
    with multiprocessing.Pool() as pool:
        return pool.map(str, jobs)
