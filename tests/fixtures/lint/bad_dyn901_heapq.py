"""Seeded-bad fixture for DYN901 (event-queue manipulation outside
the kernel modules).

The heapq imports and the ``sim._heap`` pokes below are findings when
linted as library code (``kernel_zone=True``); the same file is clean
outside the zone, which is why it may sit under tests/ without
tripping the CI lint gate.  The last import demonstrates the
``# dynkern: ok`` suppression and must NOT be reported.
"""

import heapq                                    # noqa: F401  (finding 1)
from heapq import heappush                      # noqa: F401  (finding 2)

import heapq as hq                              # noqa: F401  # dynkern: ok


def sneak_in_timer(sim, when, timer):
    # two findings: the read on the left and the push target
    depth = len(sim._heap)                      # (finding 3)
    heappush(sim._heap, (when, -1, timer))      # (finding 4)
    return depth
