"""DYN1005 fixture: exception control flow and eager formatting."""


def lookup(events, cache):  # dynperf: hot
    hits = 0
    for ev in events:
        try:                   # DYN1005: exceptions as control flow
            hits += cache[ev]
        except KeyError:
            hits += 1
        tag = f"event {ev} processed"  # DYN1005: unguarded f-string
        hits += len(tag)
    return hits
