"""DYN1001 fixture: allocation inside a hot loop."""


def drain(events):  # dynperf: hot
    total = 0
    for ev in events:
        staged = list(ev.payload)        # DYN1001: alloc call per event
        keys = [k for k in ev.keys]      # DYN1001: comprehension per event
        merged = staged + [ev.src]       # DYN1001: sequence concat
        total += len(merged) + len(keys)
    return total
