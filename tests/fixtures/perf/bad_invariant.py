"""DYN1004 fixture: loop-invariant work repeated inside a hot loop."""


def cost(table):
    return len(table)


def route(packets, cfg):  # dynperf: hot
    out = []
    for p in packets:
        base = cost(cfg)                      # DYN1004: invariant call
        cap = cfg.net.limits.window.max_size  # DYN1004: deep chain
        out.append(min(p + base, cap))
    return out
