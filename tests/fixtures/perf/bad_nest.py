"""DYN1003 fixture: nested iteration over ranks x rows."""


def exchange(ranks, rows_of):  # dynperf: hot
    moved = 0
    for r in ranks:                # outer: iterates the world
        for row in rows_of[r]:     # DYN1003: quadratic in world size
            moved += row
    return moved
