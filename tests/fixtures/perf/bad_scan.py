"""DYN1002 fixture: linear scans on the per-event path."""


def match(queue, want):  # dynperf: hot
    pending = list(queue)
    if want in pending:       # DYN1002: membership test against a list
        pending.remove(want)  # DYN1002: whole-list scan
    if pending:
        return pending.pop(0)  # DYN1002: O(n) shift per event
    return None
