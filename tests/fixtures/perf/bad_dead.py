"""DYN1006 fixture: expensive results discarded in the hot zone."""


def scrub(events):  # dynperf: hot
    seen = 0
    for ev in events:
        sorted(ev.parts)           # DYN1006: pure result discarded
        [p.strip() for p in ev.parts]  # DYN1006: comprehension discarded
        seen += 1
    return seen
