"""Seeded-bad dynrace fixture: float accumulation over set iteration.

Float addition does not commute with reordering, so both the ``+=``
loop and the ``sum()`` over a set-ordered generator produce
hash-seeding-dependent totals — DYN705, twice.
"""


def checksum_program(ep):
    shares = {0.5 * (r + 1) for r in range(4)}
    total = 0.0
    for part in shares:  # accumulation order = set iteration order
        total += part
    grand = sum(part * part for part in shares)
    yield from ep.send(0, tag=0, payload=total + grand)
    return None
