"""Seeded-bad dynrace fixture: RNG outside the StreamRegistry home.

Three distinct DYN704 shapes: importing the process-global ``random``
module, drawing from it, and constructing an entropy-seeded numpy
generator.  All belong in ``simcluster/rng.py``'s seeded
StreamRegistry instead.
"""

import random

import numpy as np


def jitter_program(ep):
    peer = (ep.rank + 1) % 2
    delay = random.random()  # process-global random state
    rng = np.random.default_rng()  # entropy-seeded: irreproducible
    yield from ep.send(peer, tag=0,
                       payload=rng.standard_normal(4) * delay)
    _data, _st = yield from ep.recv(peer, tag=0)
    return None
