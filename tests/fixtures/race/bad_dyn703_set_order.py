"""Seeded-bad dynrace fixture: set iteration drives message emission.

The fan-out loop iterates a ``set`` literal, so the *order* the sends
hit the wire depends on hash seeding, not the program — DYN703.  The
fix is one word (``sorted(peers)``), which is what the finding's
message says.
"""


def fanout_program(ep):
    if ep.rank == 0:
        peers = {1, 2, 3}
        for dst in peers:  # emission order = set iteration order
            yield from ep.send(dst, tag=0, payload=float(dst))
    else:
        _data, _st = yield from ep.recv(0, tag=0)
    return None
