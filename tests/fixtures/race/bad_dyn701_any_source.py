"""Seeded-bad dynrace fixture: master/worker ANY_SOURCE race.

Both workers send to rank 0 while the master sleeps, so both envelopes
sit in the mailbox when the wildcard receive finally looks — which
source wins the match is the kernel's tie-break, not the program.
dynrace must flag the receive with DYN701 and show the racing send
sites, and the perturbation harness (``DYNMPI_PERTURB``) must
reproduce the race dynamically: the ``mpi.recv`` trace span records
the matched source, so flipping the tie-break is a byte-level diff of
the export.  ``run_traced()`` is the perturbation target.
"""


def farm_program(ep):
    if ep.rank == 0:
        from repro.simcluster import Sleep

        # let both workers' sends arrive before the first receive
        yield Sleep(0.05)
        total = 0.0
        for _ in range(2):
            part, st = yield from ep.recv()  # ANY_SOURCE: the race point
            total += part
        return total
    yield from ep.send(0, tag=1, payload=float(ep.rank))
    return None


def run_traced() -> str:
    from repro.config import ClusterSpec, NodeSpec
    from repro.mpi import run_spmd
    from repro.obs.export import jsonl_text
    from repro.simcluster import Cluster

    cluster = Cluster(ClusterSpec(
        n_nodes=3, node=NodeSpec(speed=1e8), observe=True,
    ))
    run_spmd(cluster, farm_program)
    return jsonl_text(cluster.obs)
