"""Seeded-bad dynrace fixture: the matched source steers communication.

The master's wildcard receive decides which worker gets the follow-up
message: the branch condition derives from ``st.source`` — a value the
message schedule chose — and the two arms emit *different* traffic.
dynrace must flag the branch with DYN702 (on top of the underlying
DYN701 wildcard race).  Never run: whichever worker loses the match
blocks forever, which is exactly the hazard the code encodes.
"""


def steer_program(ep):
    if ep.rank == 0:
        part, st = yield from ep.recv()  # wildcard: schedule picks source
        if st.source == 1:
            yield from ep.send(1, tag=2, payload=part)
        else:
            yield from ep.send(2, tag=2, payload=part)
    else:
        yield from ep.send(0, tag=1, payload=float(ep.rank))
        _reply, _st = yield from ep.recv(0, tag=2)
    return None
