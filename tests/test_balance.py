"""Tests for relative power, the comm cost model, and the balancers
(naive / closed-form / successive balancing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterSpec, NetworkSpec, NodeSpec, pentium_cluster
from repro.core.balance import (
    closed_form_shares,
    comm_terms,
    predict_times,
    successive_balance,
)
from repro.core.commcost import (
    CommCostModel,
    NearestNeighbor,
    NoComm,
    RingAllgather,
    ScalarAllreduce,
    measure_comm_model,
)
from repro.core.power import available_powers, naive_shares
from repro.errors import DistributionError


def model(cpu_msg=1e-5, cpu_byte=4e-9, wire_msg=75e-6, wire_byte=8e-8, speed=1e8):
    return CommCostModel(cpu_msg, cpu_byte, wire_msg, wire_byte, speed)


# ----------------------------------------------------------------------
# power
# ----------------------------------------------------------------------
def test_available_powers():
    p = available_powers([100.0, 100.0], [1, 2])
    assert np.allclose(p, [100.0, 50.0])
    # load zero is clamped to 1 (the app always counts)
    p = available_powers([100.0], [0])
    assert np.allclose(p, [100.0])


def test_naive_shares_proportional():
    s = naive_shares([100.0, 50.0, 50.0])
    assert np.allclose(s, [0.5, 0.25, 0.25])
    with pytest.raises(DistributionError):
        naive_shares([])
    with pytest.raises(DistributionError):
        naive_shares([0.0, 0.0])


def test_paper_cg_naive_shares():
    """One competing process on one of four nodes: relative powers
    1,1,1,1/2 -> shares 2/7,2/7,2/7,1/7 (the paper's CG distribution)."""
    p = available_powers([1.0] * 4, [1, 1, 1, 2])
    s = naive_shares(p)
    assert np.allclose(s, [2 / 7, 2 / 7, 2 / 7, 1 / 7])


# ----------------------------------------------------------------------
# comm cost model
# ----------------------------------------------------------------------
def test_from_spec_matches_network():
    spec = pentium_cluster(2)
    m = CommCostModel.from_spec(spec.network, spec.node.speed)
    assert m.wire_msg_s == spec.network.latency
    assert m.wire_byte_s == pytest.approx(1.0 / spec.network.bandwidth)
    assert m.cpu_work(1000, 1) == pytest.approx(
        spec.network.cpu_per_msg + 1000 * spec.network.cpu_per_byte
    )


def test_measured_model_close_to_oracle():
    """The simulated micro-benchmark must recover the specs it ran on."""
    spec = pentium_cluster(2)
    fit = measure_comm_model(spec, sizes=(32768, 65536, 131072, 262144), reps=4)
    oracle = CommCostModel.from_spec(spec.network, spec.node.speed)
    assert fit.cpu_byte_s == pytest.approx(oracle.cpu_byte_s, rel=0.1)
    assert fit.wire_byte_s == pytest.approx(oracle.wire_byte_s, rel=0.15)
    # per-message terms are small and noisier; just require same scale
    assert fit.cpu_msg_s < 10 * oracle.cpu_msg_s + 1e-4


def test_nearest_neighbor_edges_cheaper():
    m = model()
    pat = NearestNeighbor(row_nbytes=16384)
    counts = [10, 10, 10, 10]
    cpu_edge, _ = pat.comm_cost(0, counts, m)
    cpu_mid, _ = pat.comm_cost(1, counts, m)
    assert cpu_mid == pytest.approx(2 * cpu_edge)


def test_nearest_neighbor_single_node_free():
    m = model()
    pat = NearestNeighbor(row_nbytes=16384)
    assert pat.comm_cost(0, [10], m) == (0.0, 0.0)


def test_ring_allgather_scales_with_n():
    m = model()
    pat = RingAllgather(total_nbytes=1 << 20)
    cpu4, _ = pat.comm_cost(0, [1] * 4, m)
    cpu8, _ = pat.comm_cost(0, [1] * 8, m)
    assert cpu8 > cpu4  # more foreign data to ingest


def test_scalar_allreduce_log_rounds():
    m = model()
    pat = ScalarAllreduce(count=2)
    cpu2, _ = pat.comm_cost(0, [1, 1], m)
    cpu16, _ = pat.comm_cost(0, [1] * 16, m)
    assert cpu16 == pytest.approx(4 * cpu2)  # log2 16 / log2 2 = 4


# ----------------------------------------------------------------------
# balancers
# ----------------------------------------------------------------------
def test_closed_form_no_comm_equals_naive():
    avails = np.array([100.0, 50.0, 25.0])
    res = closed_form_shares(1000.0, avails, [NoComm()], model(), n_rows=100)
    assert np.allclose(res.shares, naive_shares(avails), atol=1e-9)
    # equal predicted times
    assert np.ptp(res.predicted_times) < 1e-9


def test_closed_form_with_comm_shifts_work_off_loaded_node():
    """With communication consuming CPU, the loaded (weak) node must
    get *less* than its naive relative-power share."""
    avails = np.array([100e6, 100e6, 100e6, 50e6])
    pat = NearestNeighbor(row_nbytes=1 << 14)
    res = closed_form_shares(20e6, avails, [pat], model(), n_rows=2048)
    naive = naive_shares(avails)
    assert res.shares[3] < naive[3]
    assert res.shares.sum() == pytest.approx(1.0)
    # per-node times equalized
    assert np.ptp(res.predicted_times) / res.predicted_times.max() < 0.05


def test_closed_form_clamps_hopeless_node_to_zero():
    """If a node is so slow that its equal-time share is negative, it
    gets zero work (the precursor of node removal)."""
    avails = np.array([100e6, 100e6, 0.5e4])
    pat = NearestNeighbor(row_nbytes=1 << 18)
    res = closed_form_shares(1e6, avails, [pat], model(), n_rows=100000)
    assert res.shares[2] == 0.0
    assert res.shares.sum() == pytest.approx(1.0)


def test_successive_balance_converges_to_closed_form():
    avails = np.array([100e6, 100e6, 100e6, 50e6])
    loads = np.array([1, 1, 1, 2])
    pat = NearestNeighbor(row_nbytes=1 << 15)
    sb = successive_balance(30e6, avails, loads, [pat], model(), n_rows=2048)
    cf = closed_form_shares(30e6, avails, [pat], model(), n_rows=2048)
    assert np.allclose(sb.shares, cf.shares, atol=5e-3)
    assert sb.rounds >= 1


def test_successive_balance_no_loaded_nodes_falls_back():
    avails = np.array([100.0, 100.0])
    res = successive_balance(100.0, avails, [1, 1], [NoComm()], model(), n_rows=10)
    assert np.allclose(res.shares, [0.5, 0.5])
    assert res.rounds == 0


def test_successive_balance_all_loaded_falls_back():
    avails = np.array([50.0, 25.0])
    res = successive_balance(100.0, avails, [2, 3], [NoComm()], model(), n_rows=10)
    assert np.allclose(res.shares, naive_shares(avails), atol=1e-9)


def test_successive_balance_paper_4node_cg_shape():
    """Roughly the paper's 4-node CG: loaded node ends up at or below
    1/7 of the work once comm CPU is accounted."""
    speed = 1.1e8
    avails = np.array([speed, speed, speed, speed / 2])
    loads = np.array([1, 1, 1, 2])
    pats = [RingAllgather(total_nbytes=14000 * 8), ScalarAllreduce(count=3)]
    res = successive_balance(
        speed * 0.30, avails, loads, pats,
        CommCostModel.from_spec(pentium_cluster(4).network, speed),
        n_rows=14000,
    )
    assert res.shares[3] <= 1 / 7 + 0.01
    assert res.shares[:3].min() > 0.25


def test_predict_times_monotone_in_share():
    avails = np.array([100.0, 100.0])
    t1 = predict_times([0.5, 0.5], 100.0, avails, [NoComm()], model(), 10)
    t2 = predict_times([0.8, 0.2], 100.0, avails, [NoComm()], model(), 10)
    assert t2[0] > t1[0] and t2[1] < t1[1]


def test_balance_validation():
    with pytest.raises(DistributionError):
        closed_form_shares(0.0, [1.0], [NoComm()], model(), 10)
    with pytest.raises(DistributionError):
        closed_form_shares(10.0, [-1.0], [NoComm()], model(), 10)
    with pytest.raises(DistributionError):
        successive_balance(10.0, [1.0, 1.0], [1], [NoComm()], model(), 10)


@given(
    n=st.integers(2, 8),
    loaded_count=st.integers(1, 3),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_successive_balance_invariants(n, loaded_count, data):
    loaded_count = min(loaded_count, n - 1)
    loads = np.ones(n, dtype=int)
    idx = data.draw(
        st.lists(st.integers(0, n - 1), min_size=loaded_count,
                 max_size=loaded_count, unique=True)
    )
    for i in idx:
        loads[i] = data.draw(st.integers(2, 4))
    avails = available_powers([100e6] * n, loads)
    pat = NearestNeighbor(row_nbytes=4096)
    res = successive_balance(30e6, avails, loads, [pat], model(), n_rows=1024)
    # shares form a distribution
    assert res.shares.sum() == pytest.approx(1.0)
    assert np.all(res.shares >= 0)
    # every loaded node gets at most what any unloaded node gets
    u = [r for r in range(n) if loads[r] == 1]
    for l in idx:
        assert res.shares[l] <= res.shares[u[0]] + 1e-9
    # prediction is no worse than naive's prediction
    t_sb = res.predicted_times.max()
    t_naive = predict_times(
        naive_shares(avails), 30e6, avails, [pat], model(), 1024
    ).max()
    assert t_sb <= t_naive * 1.02