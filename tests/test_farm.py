"""dynfarm: the elastic task farm.

Pins the subsystem's acceptance invariants: every policy completes the
full job set with a digest bitwise-identical to the computed reference;
a worker crashed mid-job has its in-flight chunk requeued exactly once
and the completed set still matches an undisturbed run; the digest is
invariant under ``DYNMPI_PERTURB`` schedule perturbation; parked
workers are re-admitted; and total worker loss raises ``FarmError``
instead of hanging.
"""

import pytest

from repro.apps.farm import FarmConfig, farm_oracle, run_farm_app
from repro.campaign import run_combo
from repro.config import ClusterSpec
from repro.errors import ConfigError, FarmError
from repro.farm import (
    POLICIES,
    FarmSpec,
    JobQueue,
    farm_digest,
    reference_results,
    run_farm,
)
from repro.resilience import CycleFault, FailureScript
from repro.simcluster import Cluster, CycleTrigger, LoadScript

N_JOBS = 200
SEED = 0
REFERENCE = farm_digest(reference_results(N_JOBS, SEED))


def small_cluster(n=6, **kw):
    return Cluster(ClusterSpec(n_nodes=n, seed=SEED, **kw))


def small_spec(policy, **kw):
    kw.setdefault("n_jobs", N_JOBS)
    kw.setdefault("seed", SEED)
    kw.setdefault("chunk", 8)
    kw.setdefault("cycles", 6)
    return FarmSpec(policy=policy, **kw)


# ----------------------------------------------------------------------
# completeness + cross-policy digest identity
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", POLICIES)
def test_policy_completes_with_reference_digest(policy):
    result = run_farm(small_cluster(sanitize=True), small_spec(policy))
    assert result.jobs_done == N_JOBS
    assert result.digest == REFERENCE
    assert result.duplicates == 0
    assert result.n_requeued == 0
    # every completed job ran on some worker
    assert sum(result.per_worker.values()) >= N_JOBS


def test_digest_identical_across_policies_and_skews():
    digests = {
        (policy, skew): run_farm(
            small_cluster(), small_spec(policy, skew=skew)
        ).digest
        for policy in POLICIES
        for skew in ("uniform", "hot")
    }
    assert set(digests.values()) == {REFERENCE}


# ----------------------------------------------------------------------
# elasticity: crash requeue, perturbation, park/readmit
# ----------------------------------------------------------------------

def test_crash_mid_job_requeues_and_matches_undisturbed_run():
    undisturbed = run_farm(small_cluster(), small_spec("self"))
    failure = FailureScript(cycle_faults=[
        CycleFault(cycle=2, node=3, action="kill"),
    ])
    crashed = run_farm(small_cluster(sanitize=True), small_spec("self"),
                       failure_script=failure)
    assert crashed.jobs_done == N_JOBS
    # the completed map — not just its digest — is bitwise-identical
    assert crashed.completed == undisturbed.completed
    assert crashed.digest == REFERENCE
    assert crashed.dead_workers and crashed.n_requeued > 0
    # requeue-exactly-once: no job bounces through the queue twice
    assert max(crashed.requeued.values()) == 1
    # the dead worker's in-flight jobs were re-run elsewhere, and the
    # dedup-by-completed-set counted any late duplicates it produced
    assert crashed.duplicates >= 0


@pytest.mark.parametrize("policy", ("self", "rma"))
def test_perturb_invariance_across_seeds(policy):
    digests = set()
    for perturb in (1, 2, 3):
        result = run_farm(small_cluster(perturb=perturb),
                          small_spec(policy))
        assert result.jobs_done == N_JOBS
        digests.add(result.digest)
    assert digests == {REFERENCE}


def test_load_burst_parks_then_readmits_workers():
    load = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=2, node=4, action="start", count=2),
        CycleTrigger(cycle=4, node=4, action="stop", count=2),
    ])
    result = run_farm(small_cluster(sanitize=True), small_spec("guided"),
                      load_script=load)
    assert result.jobs_done == N_JOBS
    assert result.digest == REFERENCE
    assert result.park_events >= 1
    assert result.readmit_events >= 1
    if result.requeued:
        assert max(result.requeued.values()) == 1


def test_churn_under_every_policy_keeps_digest():
    failure = FailureScript(cycle_faults=[
        CycleFault(cycle=2, node=3, action="kill"),
    ])
    load = LoadScript(cycle_triggers=[
        CycleTrigger(cycle=3, node=5, action="start", count=2),
        CycleTrigger(cycle=5, node=5, action="stop", count=2),
    ])
    for policy in POLICIES:
        result = run_farm(
            Cluster(ClusterSpec(n_nodes=8, seed=SEED)),
            small_spec(policy),
            load_script=load, failure_script=failure,
        )
        assert result.jobs_done == N_JOBS, policy
        assert result.digest == REFERENCE, policy
        if result.requeued:
            assert max(result.requeued.values()) == 1, policy


def test_all_workers_dead_raises_farm_error():
    failure = FailureScript(cycle_faults=[
        CycleFault(cycle=1, node=1, action="kill"),
        CycleFault(cycle=1, node=2, action="kill"),
    ])
    with pytest.raises(FarmError, match="every worker died"):
        run_farm(small_cluster(3), small_spec("self", cycles=4),
                 failure_script=failure)


# ----------------------------------------------------------------------
# validation + units
# ----------------------------------------------------------------------

def test_farm_spec_validation():
    with pytest.raises(ConfigError, match="at least one job"):
        run_farm(small_cluster(2), FarmSpec(n_jobs=0))
    with pytest.raises(ConfigError, match="chunk"):
        run_farm(small_cluster(2), FarmSpec(chunk=0))
    with pytest.raises(ConfigError, match="skew"):
        run_farm(small_cluster(2), FarmSpec(skew="bimodal"))
    with pytest.raises(ConfigError, match="master and at least one"):
        run_farm(small_cluster(1), FarmSpec())


def test_farm_config_validation_and_oracle():
    with pytest.raises(ConfigError):
        FarmConfig(policy="round-robin")
    with pytest.raises(ConfigError):
        FarmConfig(n_jobs=-5)
    cfg = FarmConfig(n_jobs=120, policy="rma", chunk=4)
    result = run_farm_app(small_cluster(4), cfg)
    check = farm_oracle(cfg)
    assert check(result) == ""
    # a tampered digest is caught
    result.digest = "0" * 40
    assert "deviates" in check(result)


def test_job_queue_take_requeue_accounting():
    q = JobQueue(range(10))
    assert len(q) == 10
    assert q.take(4) == [0, 1, 2, 3]
    assert q.take(0) == []
    q.requeue([1, 3])
    q.requeue([1])
    assert q.take(100) == [4, 5, 6, 7, 8, 9, 1, 3, 1]
    assert len(q) == 0
    assert q.requeued == {1: 2, 3: 1}
    assert q.n_requeued == 3
    q.extend([42])
    assert len(q) == 1 and q.n_requeued == 3


# ----------------------------------------------------------------------
# campaign integration
# ----------------------------------------------------------------------

def test_campaign_farm_combo_runs_and_checks():
    row = run_combo({
        "app": "farm", "policy": "rma", "n_nodes": 4,
        "n_jobs": 120, "chunk": 4, "skew": "hot",
        "seed": 0, "cycles": 4, "sanitize": 1,
    })
    metrics = row["metrics"]
    assert metrics["jobs_done"] == 120
    assert metrics["jobs_per_sec"] > 0
    assert metrics["duplicates"] == 0


def test_campaign_aggregates_farm_rows():
    # farm rows carry a different metric set than the phase apps; the
    # aggregate must summarize throughput, not KeyError on redist/drop
    from repro.campaign.report import render_summary
    from repro.campaign.results import aggregate_results

    rows = [run_combo({
        "app": "farm", "policy": policy, "n_nodes": 4,
        "n_jobs": 120, "chunk": 4, "cycles": 4,
    }) for policy in ("self", "rma")]
    agg = aggregate_results("t", rows)
    (group,) = agg["groups"]
    assert group["app"] == "farm" and group["count"] == 2
    assert group["min_jobs_done"] == 120
    assert group["mean_jobs_per_sec"] > 0
    assert "farm" in render_summary(agg)


def test_campaign_rejects_master_node_faults():
    with pytest.raises(ConfigError, match="node 0"):
        run_combo({
            "app": "farm", "policy": "self", "n_nodes": 4,
            "n_jobs": 120, "failure": "crash:n0@c2",
        })
