"""Fault-injection tests: exceptions delivered into simulated
processes, process kills, and what the rest of the job observes."""

import pytest

from repro.config import ClusterSpec, NodeSpec
from repro.errors import DeadlockError, SimulationError
from repro.mpi import run_spmd
from repro.simcluster import Cluster, Compute, ProcState, Simulator, Sleep


class InjectedFault(Exception):
    pass


def test_injected_exception_kills_uncatching_process():
    sim = Simulator()

    def prog():
        yield Sleep(10.0)

    p = sim.spawn(prog(), name="victim")
    sim.schedule(1.0, lambda: sim.inject(p, InjectedFault("zap")))
    sim.run(until=5.0)
    assert p.state == ProcState.FAILED
    assert isinstance(p.error, InjectedFault)
    assert sim.now <= 5.0


def test_injected_exception_can_be_caught_and_survived():
    sim = Simulator()
    log = []

    def prog():
        try:
            yield Sleep(10.0)
        except InjectedFault:
            log.append("caught")
        yield Sleep(1.0)
        log.append("done")

    p = sim.spawn(prog(), name="survivor")
    sim.schedule(1.0, lambda: sim.inject(p, InjectedFault()))
    sim.run()
    assert log == ["caught", "done"]
    assert p.state == ProcState.DONE


def test_inject_into_finished_process_is_noop():
    sim = Simulator()

    def prog():
        yield Sleep(0.1)

    p = sim.spawn(prog(), name="quick")
    sim.schedule(1.0, lambda: sim.inject(p, InjectedFault()))
    sim.run()
    assert p.state == ProcState.DONE
    assert p.error is None


def test_kill_terminates_mid_compute():
    cluster = Cluster(ClusterSpec(n_nodes=1, node=NodeSpec(speed=1e6)))
    sim = cluster.sim

    def prog():
        yield Compute(1e9)  # 1000 s of work

    p = sim.spawn(prog(), name="hog", node=cluster.nodes[0])
    sim.schedule(2.0, lambda: sim.kill(p))
    sim.run(until=10.0)
    assert p.state == ProcState.FAILED
    assert "killed" in str(p.error)
    assert sim.now < 10.0 or True


def test_killed_rank_deadlocks_its_peer():
    """A rank dying mid-protocol leaves its partner waiting forever —
    surfaced as DeadlockError rather than a hang."""
    cluster = Cluster(ClusterSpec(n_nodes=2, node=NodeSpec(speed=1e8)))

    def program(ep):
        if ep.rank == 0:
            yield Sleep(5.0)  # would send later, but gets killed first
            yield from ep.send(1, tag=0, payload="never")
        else:
            yield from ep.recv(0, tag=0)

    # spawn manually so we can kill rank 0
    from repro.mpi import make_comm

    comm = make_comm(cluster)
    procs = []
    for rank in range(2):
        procs.append(cluster.sim.spawn(
            program(comm.endpoint(rank)), name=f"rank{rank}",
            node=cluster.nodes[rank],
        ))
    cluster.sim.schedule(1.0, lambda: cluster.sim.kill(procs[0]))
    with pytest.raises(DeadlockError) as exc:
        cluster.sim.run()
    assert "rank1" in str(exc.value)


def test_finish_cleans_up_node_process_table():
    cluster = Cluster(ClusterSpec(n_nodes=1, node=NodeSpec(speed=1e8)))

    def prog():
        yield Sleep(1.0)

    p = cluster.sim.spawn(prog(), name="p", node=cluster.nodes[0])
    assert p in cluster.nodes[0].procs
    cluster.sim.run()
    assert p not in cluster.nodes[0].procs
