"""Point-to-point messaging tests: matching, ordering, blocking
semantics, non-blocking requests, and timing of the network model."""

import numpy as np
import pytest

from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.errors import DeadlockError, MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, run_spmd
from repro.simcluster import Cluster, Compute, Sleep


def make_cluster(n=2, *, eager=1 << 20, cpu_per_byte=0.0, cpu_per_msg=0.0,
                 latency=1e-4, bandwidth=1e8, speed=1e6, discipline="rr"):
    spec = ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=speed, discipline=discipline),
        network=NetworkSpec(
            latency=latency, bandwidth=bandwidth,
            cpu_per_byte=cpu_per_byte, cpu_per_msg=cpu_per_msg,
            eager_threshold=eager,
        ),
    )
    return Cluster(spec)


def test_send_recv_roundtrip_object():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=5, payload={"x": 1})
            reply, status = yield from ep.recv(1, tag=6)
            assert status.source == 1
            return reply
        else:
            data, status = yield from ep.recv(0, tag=5)
            assert data == {"x": 1}
            assert status.tag == 5
            yield from ep.send(0, tag=6, payload="ack")
            return None

    results = run_spmd(cluster, program)
    assert results[0] == "ack"


def test_numpy_payload_copied_on_send():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            buf = np.arange(4.0)
            yield from ep.send(1, tag=1, payload=buf)
            buf[:] = -1  # must not corrupt the in-flight message
        else:
            data, _ = yield from ep.recv(0, tag=1)
            assert np.array_equal(data, np.arange(4.0))
            yield Sleep(0)

    run_spmd(cluster, program)


def test_message_ordering_same_pair_preserved():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            for i in range(10):
                yield from ep.send(1, tag=3, payload=i)
        else:
            seen = []
            for _ in range(10):
                v, _ = yield from ep.recv(0, tag=3)
                seen.append(v)
            assert seen == list(range(10))

    run_spmd(cluster, program)


def test_tag_selectivity():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=1, payload="one")
            yield from ep.send(1, tag=2, payload="two")
        else:
            v2, _ = yield from ep.recv(0, tag=2)
            v1, _ = yield from ep.recv(0, tag=1)
            assert (v1, v2) == ("one", "two")

    run_spmd(cluster, program)


def test_any_source_any_tag():
    cluster = make_cluster(3)

    def program(ep):
        if ep.rank in (0, 1):
            yield from ep.send(2, tag=ep.rank + 10, payload=ep.rank)
        else:
            got = set()
            for _ in range(2):
                v, status = yield from ep.recv(ANY_SOURCE, ANY_TAG)
                assert status.source == v
                got.add(v)
            assert got == {0, 1}

    run_spmd(cluster, program)


def test_recv_blocks_until_message():
    cluster = make_cluster()
    times = {}

    def program(ep):
        if ep.rank == 0:
            yield Sleep(2.0)
            yield from ep.send(1, tag=0, payload="late")
        else:
            _, _ = yield from ep.recv(0, tag=0)
            times["recv_done"] = ep.comm.sim.now

    run_spmd(cluster, program)
    assert times["recv_done"] >= 2.0


def test_unmatched_recv_deadlocks():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 1:
            yield from ep.recv(0, tag=99)
        else:
            yield Sleep(0.1)

    with pytest.raises(DeadlockError):
        run_spmd(cluster, program)


def test_send_to_invalid_rank_raises():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(5, tag=0)
        else:
            yield Sleep(0)

    with pytest.raises(MPIError):
        run_spmd(cluster, program)


def test_eager_send_does_not_block():
    """An eager sender finishes even though the receiver never posts
    a recv until much later."""
    cluster = make_cluster(eager=1 << 20)
    t_send_done = {}

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=np.zeros(64))
            t_send_done["t"] = ep.comm.sim.now
        else:
            yield Sleep(5.0)
            yield from ep.recv(0, tag=0)

    run_spmd(cluster, program)
    assert t_send_done["t"] < 1.0


def test_rendezvous_send_blocks_until_recv_posted():
    cluster = make_cluster(eager=16)  # force rendezvous
    t_send_done = {}

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=np.zeros(1024))
            t_send_done["t"] = ep.comm.sim.now
        else:
            yield Sleep(5.0)
            data, _ = yield from ep.recv(0, tag=0)
            assert data.shape == (1024,)

    run_spmd(cluster, program)
    assert t_send_done["t"] >= 5.0


def test_wire_time_latency_plus_bandwidth():
    # zero CPU cost; 1 MB at 1e8 B/s = 10ms + 0.1ms latency
    cluster = make_cluster(latency=1e-4, bandwidth=1e8, eager=1 << 30)
    arrived = {}

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=None, nbytes=10**6)
        else:
            _, status = yield from ep.recv(0, tag=0)
            arrived["t"] = ep.comm.sim.now
            assert status.nbytes == 10**6

    run_spmd(cluster, program)
    # cut-through switch: uncontended time = latency + nbytes/bandwidth
    assert arrived["t"] == pytest.approx(0.01 + 1e-4, rel=0.05)


def test_comm_cpu_cost_charged_to_sender_and_receiver():
    cluster = make_cluster(cpu_per_msg=1000.0, cpu_per_byte=0.0, speed=1e6)

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=None, nbytes=100)
        else:
            yield from ep.recv(0, tag=0)

    comm_procs = run_spmd(cluster, program)
    # Each side computed 1000 units at 1e6 units/s = 1 ms of CPU
    ranks = [p for p in cluster.sim.processes if p.name.startswith("rank")]
    for p in ranks:
        assert p.cpu_time == pytest.approx(1e-3, rel=1e-6)


def test_isend_irecv_completion():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            reqs = [ep.isend(1, tag=i, payload=i) for i in range(5)]
            for r in reqs:
                yield from r.wait()
        else:
            reqs = [ep.irecv(0, tag=i) for i in range(5)]
            vals = []
            for r in reqs:
                (v, status) = yield from r.wait()
                vals.append(v)
            assert vals == list(range(5))

    run_spmd(cluster, program)


def test_irecv_posted_before_send_matches():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 1:
            req = ep.irecv(0, tag=7)
            yield Sleep(0.001)
            (v, _) = yield from req.wait()
            assert v == "x"
        else:
            yield Sleep(0.5)
            yield from ep.send(1, tag=7, payload="x")

    run_spmd(cluster, program)


def test_iprobe_detects_queued_message():
    cluster = make_cluster()
    probes = []

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=4, payload="hello")
            yield Sleep(0)
        else:
            probes.append(ep.iprobe(0, tag=4))  # before arrival
            yield Sleep(1.0)
            st = ep.iprobe(0, tag=4)
            probes.append(st)
            yield from ep.recv(0, tag=4)
            probes.append(ep.iprobe(0, tag=4))

    run_spmd(cluster, program)
    assert probes[0] is None
    assert probes[1] is not None and probes[1].source == 0
    assert probes[2] is None


def test_sendrecv_exchange_no_deadlock():
    cluster = make_cluster(4, eager=0)  # rendezvous everything

    def program(ep):
        right = (ep.rank + 1) % ep.size
        left = (ep.rank - 1) % ep.size
        val, _ = yield from ep.sendrecv(right, 9, ep.rank, left, 9,
                                        nbytes=8192)
        assert val == left

    run_spmd(cluster, program)


def test_self_send_local_delivery():
    cluster = make_cluster(1)

    def program(ep):
        yield from ep.send(0, tag=0, payload="self")
        v, _ = yield from ep.recv(0, tag=0)
        return v

    assert run_spmd(cluster, program) == ["self"]


def test_network_counters():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=0, payload=None, nbytes=500)
        else:
            yield from ep.recv(0, tag=0)

    run_spmd(cluster, program)
    assert cluster.network.n_messages == 1
    assert cluster.network.n_bytes == 500


def test_nic_serialization_two_senders_one_receiver():
    """Two simultaneous 1 MB sends into one node must serialize on the
    receiver link: second delivery ~1 tx later than the first."""
    cluster = make_cluster(3, latency=0.0, bandwidth=1e8, eager=1 << 30)
    deliveries = []

    def program(ep):
        if ep.rank in (0, 1):
            yield from ep.send(2, tag=ep.rank, payload=None, nbytes=10**6)
        else:
            for _ in range(2):
                _, st = yield from ep.recv(ANY_SOURCE, ANY_TAG)
                deliveries.append(ep.comm.sim.now)

    run_spmd(cluster, program)
    assert deliveries[1] - deliveries[0] == pytest.approx(0.01, rel=0.05)
