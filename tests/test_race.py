"""dynrace tests: happens-before construction over communication
traces, every DYN70x code on its seeded-bad fixture, the acceptance
check that the real tree is clean, suppression + baseline handling,
the CLI exit-code/JSON contract, and the perturbation harness —
schedule invariance of the canonical removal run, and the DYN701
fixture's race reproduced as a byte-level trace diff."""

import io
import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.flow.callgraph import load_registry
from repro.analysis.flow.collectives import CollectiveAnalyzer
from repro.analysis.flow.domain import CommEvent
from repro.analysis.race import analyze_race_paths, run_race
from repro.analysis.race.hb import RaceEvent, collect_events, may_match
from repro.analysis.race.perturb import run_perturbed
from repro.simcluster.kernel import Perturb, perturb_from_env

ROOT = pathlib.Path(__file__).parent.parent
SRC = ROOT / "src"
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "race"
ENV = {"PYTHONPATH": str(SRC)}


def analyze_source(tmp_path, code, name="prog.py"):
    f = tmp_path / name
    f.write_text(textwrap.dedent(code))
    return analyze_race_paths([f])


def codes(findings):
    return sorted(f.code for f in findings)


def trace_of(tmp_path, code, root):
    f = tmp_path / "prog.py"
    f.write_text(textwrap.dedent(code))
    registry = load_registry([f])
    fi = next(fi for fi in registry.roots() if fi.qualname == root)
    return CollectiveAnalyzer(registry).summarize(fi, frozenset()).trace


# ----------------------------------------------------------------------
# happens-before model
# ----------------------------------------------------------------------

def test_hb_epochs_segment_at_collectives(tmp_path):
    trace = trace_of(tmp_path, """
        def seg_program(ep):
            yield from ep.send(1, tag=0, payload=1.0)
            x = yield from ep.allreduce_active(1.0)
            yield from ep.send(1, tag=0, payload=2.0)
    """, "seg_program")
    events = []
    collect_events(trace, "seg_program", out=events)
    sends = [e for e in events if e.event.kind == "send"]
    assert [e.epoch for e in sends] == [0, 1]


def test_hb_rank_pin_reaches_events(tmp_path):
    trace = trace_of(tmp_path, """
        def pin_program(ep):
            if ep.rank == 0:
                data, st = yield from ep.recv()
            else:
                yield from ep.send(0, tag=1, payload=1.0)
    """, "pin_program")
    events = []
    collect_events(trace, "pin_program", out=events)
    recv = next(e for e in events if e.event.kind == "recv")
    send = next(e for e in events if e.event.kind == "send")
    assert recv.pin == 0      # true arm of `ep.rank == 0`
    assert send.pin is None   # else arm: any non-zero rank


def test_may_match_epoch_and_tag_rules():
    def ev(kind, peer, tag):
        return CommEvent(kind=kind, scope="p2p", name=kind,
                         peer=peer, tag=tag)

    recv = RaceEvent(ev("recv", "*", "*"), epoch=0, pin=None,
                     in_loop=False, root="r")
    early = RaceEvent(ev("send", "0", "1"), epoch=0, pin=None,
                      in_loop=False, root="r")
    late = RaceEvent(ev("send", "0", "1"), epoch=1, pin=None,
                     in_loop=False, root="r")
    looped = RaceEvent(ev("send", "0", "1"), epoch=1, pin=None,
                       in_loop=True, root="r")
    assert may_match(early, recv)
    # a send strictly after the receive's closing collective cannot
    # supply it — unless loops blur the epoch structure
    assert not may_match(late, recv)
    assert may_match(looped, recv)
    # concrete tag mismatch excludes
    tagged_recv = RaceEvent(ev("recv", "*", "7"), epoch=0, pin=None,
                            in_loop=False, root="r")
    assert not may_match(early, tagged_recv)


def test_single_pinned_sender_is_not_a_race(tmp_path):
    # one pinned send site = one source: non-overtaking defines the
    # winner, so the wildcard receive is not flagged
    findings = analyze_source(tmp_path, """
        def pair_program(ep):
            if ep.rank == 0:
                data, st = yield from ep.recv()
            elif ep.rank == 1:
                yield from ep.send(0, tag=1, payload=1.0)
    """)
    assert codes(findings) == []


# ----------------------------------------------------------------------
# every code on its seeded-bad fixture
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fixture, code", [
    ("bad_dyn701_any_source.py", "DYN701"),
    ("bad_dyn702_sched_branch.py", "DYN702"),
    ("bad_dyn703_set_order.py", "DYN703"),
    ("bad_dyn704_rng.py", "DYN704"),
    ("bad_dyn705_float_order.py", "DYN705"),
])
def test_fixture_is_flagged(fixture, code):
    findings = analyze_race_paths([FIXTURES / fixture])
    assert code in codes(findings)


def test_dyn701_shows_racing_sites():
    findings = analyze_race_paths([FIXTURES / "bad_dyn701_any_source.py"])
    f = next(f for f in findings if f.code == "DYN701")
    assert f.side_by_side is not None


def test_real_tree_is_clean():
    assert analyze_race_paths([SRC / "repro", ROOT / "examples"]) == []


# ----------------------------------------------------------------------
# suppression + baseline
# ----------------------------------------------------------------------

def test_line_suppression_marker(tmp_path):
    findings = analyze_source(tmp_path, """
        import numpy as np

        def seeded_program(ep):
            rng = np.random.default_rng(7)  # dynrace: ok
            yield from ep.send(0, tag=0, payload=rng.random(4))
    """)
    assert findings == []


def test_baseline_roundtrip(tmp_path):
    bad = FIXTURES / "bad_dyn704_rng.py"
    baseline = tmp_path / "race-baseline.json"
    out = io.StringIO()
    rc = run_race([bad], write_baseline=str(baseline), stream=out)
    assert rc == 1  # findings still reported on the writing run
    data = json.loads(baseline.read_text())
    assert data["tool"] == "dynrace"
    assert len(data["findings"]) == 3
    out = io.StringIO()
    rc = run_race([bad], baseline=str(baseline), stream=out)
    assert rc == 0
    assert "3 baselined" in out.getvalue()


# ----------------------------------------------------------------------
# CLI contract: exit codes and --json
# ----------------------------------------------------------------------

def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, env=ENV, cwd=ROOT,
    )


def test_cli_race_clean_exits_zero(tmp_path):
    clean = tmp_path / "fine.py"
    clean.write_text(textwrap.dedent("""
        def fine_program(ep):
            yield from ep.send(0, tag=0, payload=1.0)
    """))
    proc = _cli("race", str(clean))
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_race_findings_exit_one_and_json():
    proc = _cli("race", "--json", str(FIXTURES / "bad_dyn703_set_order.py"))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "dynrace"
    assert [f["code"] for f in payload["findings"]] == ["DYN703"]
    assert all("fingerprint" in f for f in payload["findings"])


def test_cli_race_usage_error_exits_two():
    proc = _cli("race")  # missing paths
    assert proc.returncode == 2


def test_cli_lint_baseline_roundtrip(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent("""
        def f(ep):
            ep.send(0, tag=0, payload=1.0)
    """))
    baseline = tmp_path / "lint-baseline.json"
    proc = _cli("lint", "--write-baseline", str(baseline), str(bad))
    assert proc.returncode == 1  # DYN001 reported while writing
    proc = _cli("lint", "--baseline", str(baseline), str(bad))
    assert proc.returncode == 0
    assert "1 baselined" in proc.stdout


# ----------------------------------------------------------------------
# perturbation harness
# ----------------------------------------------------------------------

def test_perturb_choose_is_deterministic():
    p = Perturb(42)
    picks = [p.choose(3, (1, "x", 7)) for _ in range(3)]
    assert picks[0] == picks[1] == picks[2]
    assert 0 <= picks[0] < 3
    # a different seed is allowed to disagree; a different key usually does
    assert any(Perturb(s).choose(3, (1, "x", 7)) != picks[0]
               or Perturb(s).choose(3, (2, "y", 9)) != p.choose(3, (2, "y", 9))
               for s in (1, 2, 3))


def test_perturb_from_env(monkeypatch):
    from repro.errors import SimulationError

    monkeypatch.delenv("DYNMPI_PERTURB", raising=False)
    assert perturb_from_env() is None
    monkeypatch.setenv("DYNMPI_PERTURB", "")
    assert perturb_from_env() is None
    monkeypatch.setenv("DYNMPI_PERTURB", "7")
    assert perturb_from_env().seed == 7
    monkeypatch.setenv("DYNMPI_PERTURB", "x")
    with pytest.raises(SimulationError):
        perturb_from_env()


def test_match_ties_counted_on_the_race_fixture():
    from repro.analysis.race.perturb import _load_target
    from repro.config import ClusterSpec, NodeSpec
    from repro.mpi import run_spmd
    from repro.mpi.launcher import make_comm
    from repro.simcluster import Cluster

    mod = _load_target(str(FIXTURES / "bad_dyn701_any_source.py"))
    cluster = Cluster(ClusterSpec(n_nodes=3, node=NodeSpec(speed=1e8)))
    comm = make_comm(cluster)
    procs = [
        cluster.sim.spawn(
            mod.farm_program(comm.endpoint(r)),
            name=f"rank{r}", node=cluster.nodes[comm.node_of(r)],
        )
        for r in range(comm.size)
    ]
    cluster.sim.run_all(procs)
    # both workers' envelopes were queued when the wildcard matched
    assert comm.match_ties >= 1


def test_removal_trace_is_schedule_invariant():
    report = run_perturbed("removal", seeds=(1, 2, 3))
    assert report.invariant
    assert report.trace_lines > 0


def test_dyn701_fixture_races_under_perturbation():
    report = run_perturbed(
        str(FIXTURES / "bad_dyn701_any_source.py"), seeds=(1, 2, 3, 4, 5)
    )
    diffs = [r for r in report.runs if not r.identical]
    assert diffs, "the seeded ANY_SOURCE race never surfaced"
    # the diff is the matched source flipping inside an mpi.recv span
    assert any('"src"' in r.first_diff for r in diffs)


def test_cli_perturb_expect_diff_contract():
    target = str(FIXTURES / "bad_dyn701_any_source.py")
    proc = _cli("perturb", "--target", target, "--seeds", "1,2,3,4,5",
                "--expect-diff", "--json")
    assert proc.returncode == 0
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "dynrace-perturb"
    assert payload["invariant"] is False
    # without --expect-diff the same racy target fails the gate
    proc = _cli("perturb", "--target", target, "--seeds", "1,2,3,4,5")
    assert proc.returncode == 1
