"""Runtime MPI sanitizer tests: opt-in wiring, deadlock conversion,
finalize-time accounting, ANY_SOURCE races, and collective checking."""

import pytest

from repro.analysis import CommSanitizer, sanitizer_enabled
from repro.config import ClusterSpec, NetworkSpec, NodeSpec
from repro.errors import CommDeadlockError, DeadlockError, SanitizerError
from repro.mpi import ANY_SOURCE, ANY_TAG, SUM, Group, run_spmd
from repro.mpi.collectives import allreduce, bcast
from repro.simcluster import Cluster, Sleep


def make_cluster(n=2, *, sanitize=True, eager=1 << 20):
    return Cluster(ClusterSpec(
        n_nodes=n,
        node=NodeSpec(speed=1e6),
        network=NetworkSpec(latency=1e-4, bandwidth=1e8, eager_threshold=eager),
        sanitize=sanitize,
    ))


# ----------------------------------------------------------------------
# opt-in wiring
# ----------------------------------------------------------------------

def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("DYNMPI_SANITIZE", raising=False)
    cluster = make_cluster(sanitize=None)
    assert cluster.sanitizer is None


def test_env_var_enables(monkeypatch):
    monkeypatch.setenv("DYNMPI_SANITIZE", "1")
    cluster = make_cluster(sanitize=None)
    assert isinstance(cluster.sanitizer, CommSanitizer)


def test_spec_false_overrides_env(monkeypatch):
    monkeypatch.setenv("DYNMPI_SANITIZE", "1")
    cluster = make_cluster(sanitize=False)
    assert cluster.sanitizer is None
    assert not sanitizer_enabled(cluster.spec)


def test_spec_true_needs_no_env(monkeypatch):
    monkeypatch.delenv("DYNMPI_SANITIZE", raising=False)
    cluster = make_cluster(sanitize=True)
    assert isinstance(cluster.sanitizer, CommSanitizer)


# ----------------------------------------------------------------------
# clean programs stay clean
# ----------------------------------------------------------------------

def test_clean_point_to_point_run():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=1, payload={"x": 1})
            reply, _ = yield from ep.recv(1, tag=2)
            return reply
        data, _ = yield from ep.recv(0, tag=1)
        yield from ep.send(0, tag=2, payload="ack")

    results = run_spmd(cluster, program)
    assert results[0] == "ack"
    san = cluster.sanitizer
    assert san.n_sends == san.n_matches == 2
    report = san.finalize(raise_on_error=False)
    assert report.clean


def test_clean_rendezvous_and_collectives():
    cluster = make_cluster(4, eager=64)
    group = Group([0, 1, 2, 3])

    def program(ep):
        got = yield from bcast(ep, group, ep.rank if ep.rank == 0 else None,
                               root=0)
        total = yield from allreduce(ep, group, ep.rank, SUM)
        # a rendezvous round-trip between neighbors
        peer = ep.rank ^ 1
        if ep.rank < peer:
            yield from ep.send(peer, tag=9, payload=None, nbytes=1 << 16)
            yield from ep.recv(peer, tag=10)
        else:
            yield from ep.recv(peer, tag=9)
            yield from ep.send(peer, tag=10, payload=None, nbytes=1 << 16)
        return got, total

    results = run_spmd(cluster, program)
    assert all(r == (0, 6) for r in results)
    assert cluster.sanitizer.finalize(raise_on_error=False).clean


# ----------------------------------------------------------------------
# deadlock conversion (the fail-fast service)
# ----------------------------------------------------------------------

def head_to_head(ep):
    """Classic unsafe exchange: both ranks rendezvous-send first."""
    peer = 1 - ep.rank
    yield from ep.send(peer, tag=7, payload=None, nbytes=1 << 16)
    yield from ep.recv(peer, tag=7)


def test_head_to_head_rendezvous_deadlock_is_diagnosed():
    cluster = make_cluster(eager=64)
    with pytest.raises(CommDeadlockError) as exc:
        run_spmd(cluster, head_to_head)
    err = exc.value
    assert sorted(err.cycle) == [0, 1]
    assert sorted(err.blocked) == ["rank0", "rank1"]
    msg = str(err)
    assert "communication deadlock" in msg
    assert "rendezvous send" in msg


def test_head_to_head_without_sanitizer_is_plain_deadlock():
    cluster = make_cluster(eager=64, sanitize=False)
    with pytest.raises(DeadlockError) as exc:
        run_spmd(cluster, head_to_head)
    assert not isinstance(exc.value, CommDeadlockError)


def test_recv_recv_cycle_is_diagnosed():
    cluster = make_cluster()

    def program(ep):
        peer = 1 - ep.rank
        yield from ep.recv(peer, tag=3)
        yield from ep.send(peer, tag=3, payload=None)

    with pytest.raises(CommDeadlockError) as exc:
        run_spmd(cluster, program)
    assert sorted(exc.value.cycle) == [0, 1]
    assert "blocked in recv" in str(exc.value)


def test_safe_exchange_ordering_is_not_flagged():
    """send/recv vs recv/send is legal and must not trip the detector."""
    cluster = make_cluster(eager=64)

    def program(ep):
        peer = 1 - ep.rank
        if ep.rank == 0:
            yield from ep.send(peer, tag=4, payload=None, nbytes=1 << 16)
            yield from ep.recv(peer, tag=5)
        else:
            yield from ep.recv(peer, tag=4)
            yield from ep.send(peer, tag=5, payload=None, nbytes=1 << 16)

    run_spmd(cluster, program)
    assert cluster.sanitizer.finalize(raise_on_error=False).clean


# ----------------------------------------------------------------------
# finalize-time accounting
# ----------------------------------------------------------------------

def test_unmatched_eager_send_reported_at_finalize():
    cluster = make_cluster()

    def program(ep):
        if ep.rank == 0:
            yield from ep.send(1, tag=5, payload=None, nbytes=8)
        else:
            yield Sleep(0.01)

    with pytest.raises(SanitizerError, match="unmatched send"):
        run_spmd(cluster, program)
    report = cluster.sanitizer.finalize(raise_on_error=False)
    assert any("0->1 tag=5" in e for e in report.errors)


def test_incomplete_collective_warned_at_finalize():
    cluster = make_cluster()
    group = Group([0, 1])

    def program(ep):
        if ep.rank == 0:
            yield from bcast(ep, group, "v", root=0)
        else:
            yield Sleep(0.01)

    # rank 0's eager tree send is never consumed -> finalize error,
    # and the half-entered collective is reported alongside it.
    with pytest.raises(SanitizerError, match="unmatched send"):
        run_spmd(cluster, program)
    report = cluster.sanitizer.finalize(raise_on_error=False)
    assert any("incomplete collective bcast" in w for w in report.warnings)


def test_any_source_race_is_warned():
    cluster = make_cluster(3)

    def program(ep):
        if ep.rank < 2:
            yield from ep.send(2, tag=1, payload=ep.rank)
        else:
            yield Sleep(1.0)  # let both messages arrive first
            got = set()
            for _ in range(2):
                v, _ = yield from ep.recv(ANY_SOURCE, ANY_TAG)
                got.add(v)
            assert got == {0, 1}

    run_spmd(cluster, program)
    warnings = cluster.sanitizer.warnings
    assert any("ANY_SOURCE race" in w for w in warnings)


def test_collective_mismatch_raises_immediately():
    cluster = make_cluster()
    group = Group([0, 1])

    def program(ep):
        # SPMD violation: the two ranks disagree on the root
        got = yield from bcast(ep, group, ep.rank, root=ep.rank)
        return got

    with pytest.raises(SanitizerError, match="collective mismatch"):
        run_spmd(cluster, program)
