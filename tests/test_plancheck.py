"""Static redistribution-plan verifier tests: Section 4.4 invariants
on derived and tampered plans, the runtime self-check, and the CLI."""

import json

import numpy as np
import pytest

from repro.analysis.plancheck import (
    RedistPlan,
    accesses_to_phases,
    build_plan,
    verify_plan,
    verify_transition,
)
from repro.config import ClusterSpec, NetworkSpec, NodeSpec, RuntimeSpec
from repro.core import AccessMode, DynMPIJob, NearestNeighbor
from repro.core.drsd import DRSD
from repro.errors import PlanCheckError
from repro.simcluster import Cluster, CycleTrigger, LoadScript

N = 12
ARRAYS = {"A": N, "B": N}
# A is written over the loop range; B is read with a +/-1 halo, the
# shape that makes ghost rows part of the needed sets.
PHASES = accesses_to_phases([
    DRSD("A", AccessMode.WRITE),
    DRSD("B", AccessMode.READ, lo_off=-1, hi_off=1),
])

OLD = ((0, 3), (4, 7), (8, 11))


def codes(violations):
    return sorted({v.code for v in violations})


# ----------------------------------------------------------------------
# derived plans are sound
# ----------------------------------------------------------------------

@pytest.mark.parametrize("new", [
    ((0, 5), (6, 9), (10, 11)),           # shrink rank 2
    ((0, 1), (2, 5), (6, 11)),            # grow rank 2
    ((0, 5), (6, 11), None),              # remove rank 2
    (None, (0, 5), (6, 11)),              # remove rank 0
    ((0, 11), None, None),                # collapse to one rank
])
def test_derived_plans_verify_clean(new):
    plan, violations = verify_transition(OLD, new, PHASES, ARRAYS)
    assert violations == []
    assert plan.rows_sent() > 0


def test_removed_rank_sends_out_but_never_in():
    new = ((0, 5), (6, 11), None)
    plan = build_plan(OLD, new, PHASES, ARRAYS)
    outgoing = [(s, d) for (s, d) in plan.sends if s == 2]
    incoming = [(s, d) for (s, d) in plan.sends if d == 2]
    assert outgoing and not incoming
    # rank 2's old rows 8..11 all land somewhere
    moved = {r for (s, d), entry in plan.sends.items() if s == 2
             for rows in entry.values() for r in rows}
    assert moved == {8, 9, 10, 11}


def test_noop_transition_moves_only_ghosts():
    plan, violations = verify_transition(OLD, OLD, PHASES, ARRAYS)
    assert violations == []
    # ghost halo rows are never *owned*, so the send rule refreshes
    # them even when bounds are unchanged; owned rows must not move
    moved = {name for entry in plan.sends.values() for name in entry}
    assert moved == {"B"}
    assert plan.rows_sent() == 4  # one halo row per internal boundary side


# ----------------------------------------------------------------------
# tampered plans are rejected
# ----------------------------------------------------------------------

def tampered_plan(new):
    """The runtime's own plan, rebuilt so tests can corrupt it."""
    return build_plan(OLD, new, PHASES, ARRAYS)


def test_dropped_extended_row_is_lost_row():
    new = ((0, 5), (6, 11), None)
    plan = tampered_plan(new)
    # drop one row rank 1 must newly hold (an extended row from rank 2)
    entry = plan.sends[(2, 1)]
    entry["A"] = entry["A"][:-1]
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert "lost-row" in codes(violations)
    with pytest.raises(PlanCheckError, match="lost-row"):
        verify_plan(plan, OLD, new, PHASES, ARRAYS)


def test_dropped_ghost_row_is_lost_row():
    new = ((0, 7), (8, 9), (10, 11))
    plan = tampered_plan(new)
    # rank 1 now owns rows 8-9 and reads B rows 7..10: row 10 is pure
    # ghost (rank 2 keeps owning it).  Drop it from the transfer.
    entry = plan.sends[(2, 1)]
    assert 10 in entry["B"]
    entry["B"] = tuple(r for r in entry["B"] if r != 10)
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert any(v.code == "lost-row" and v.array == "B" and "[10]" in v.message
               for v in violations)


def test_duplicate_sender_is_rejected():
    new = ((0, 5), (6, 11), None)
    plan = tampered_plan(new)
    # row 8 legitimately moves 2->1; a second copy from rank 0 is both
    # unowned (0 never held row 8) and a duplicate arrival
    plan.add(0, 1, "A", [8])
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert {"duplicate-row", "unowned-send"} <= set(codes(violations))


def test_phantom_row_is_rejected():
    new = ((0, 5), (6, 9), (10, 11))
    plan = tampered_plan(new)
    # rank 0 owned row 0 and keeps it; shipping it to rank 2 is phantom
    plan.add(0, 2, "A", [0])
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert "phantom-row" in codes(violations)


def test_send_to_removed_rank_is_rejected():
    new = ((0, 5), (6, 11), None)
    plan = tampered_plan(new)
    plan.add(0, 2, "A", [0])
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert "send-to-removed" in codes(violations)


def test_self_send_and_bad_rank_are_rejected():
    new = ((0, 5), (6, 11), None)
    plan = tampered_plan(new)
    plan.add(1, 1, "A", [6])
    plan.add(0, 7, "A", [0])
    violations = verify_plan(plan, OLD, new, PHASES, ARRAYS,
                             raise_on_error=False)
    assert {"self-send", "bad-rank"} <= set(codes(violations))


def test_rank_count_mismatch_is_fatal():
    with pytest.raises(PlanCheckError, match="bad-rank"):
        verify_plan(RedistPlan(2), OLD, ((0, 5), (6, 11), None),
                    PHASES, ARRAYS)


# ----------------------------------------------------------------------
# CLI (python -m repro.analysis plan)
# ----------------------------------------------------------------------

def write_spec(tmp_path, plan=None):
    spec = {
        "n_rows": N,
        "old_bounds": list(OLD),
        "new_bounds": [[0, 5], [6, 11], None],
        "arrays": ARRAYS,
        "accesses": [
            {"array": "A", "mode": "write"},
            {"array": "B", "mode": "read", "lo_off": -1, "hi_off": 1},
        ],
    }
    if plan is not None:
        spec["plan"] = plan
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def test_cli_derived_plan_ok(tmp_path, capsys):
    from repro.analysis.__main__ import main
    assert main(["plan", write_spec(tmp_path)]) == 0
    assert "plan OK (derived)" in capsys.readouterr().out


def test_cli_supplied_corrupt_plan_fails(tmp_path, capsys):
    from repro.analysis.__main__ import main
    # rank 2's rows never move anywhere: every one is lost
    path = write_spec(tmp_path, plan={"0->1": {"A": [0]}})
    assert main(["plan", path]) == 1
    out = capsys.readouterr().out
    assert "lost-row" in out and "phantom-row" in out


# ----------------------------------------------------------------------
# runtime self-check integration: a real adaptive run redistributes
# through verify_transition (wired into DynMPI._apply_bounds) cleanly
# ----------------------------------------------------------------------

SPEED = 1e8
N_ROWS = 64


def adaptive_program(ctx, n_cycles):
    A = ctx.register_dense("A", (N_ROWS, 8))
    ctx.register_dense("B", (N_ROWS, 8))
    ctx.init_phase(1, N_ROWS, NearestNeighbor(row_nbytes=64))
    ctx.add_array_access(1, "A", AccessMode.WRITE)
    ctx.add_array_access(1, "B", AccessMode.READ, lo_off=-1, hi_off=1)
    ctx.commit()

    row_work = SPEED * 2e-3 / N_ROWS * 4

    def work_of(s, e):
        return np.full(e - s + 1, row_work)

    for _t in range(n_cycles):
        yield from ctx.begin_cycle()
        if ctx.participating():
            yield from ctx.compute(1, work_of)
        yield from ctx.end_cycle()
    return ctx.my_bounds()


def test_sanitized_adaptive_run_passes_self_check():
    cluster = Cluster(ClusterSpec(
        n_nodes=4,
        node=NodeSpec(speed=SPEED),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.4, cpu_per_msg=3000.0),
        sanitize=True,
    ))
    cluster.install_load_script(LoadScript(
        cycle_triggers=[CycleTrigger(cycle=5, node=0, action="start")]
    ))
    job = DynMPIJob(cluster, RuntimeSpec(
        grace_period=3, post_redist_period=5,
        allow_removal=False, daemon_interval=0.05,
    ))
    results = job.launch(adaptive_program, args=(40,))
    # the loaded node's share shrank: a redistribution really happened,
    # and its plan passed verify_transition without a PlanCheckError
    s0, e0 = results[0]
    assert (e0 - s0 + 1) < N_ROWS // 4
    assert cluster.sanitizer.finalize(raise_on_error=False).errors == []
