"""/PROC-style per-process CPU time accounting (paper Section 4.2).

Real /PROC reports the CPU time a process has actually consumed,
*excluding* time stolen by competing processes — which makes it the
preferred source for unloaded iteration times.  Its drawback is
granularity: the paper cites 10 ms, below which readings are useless
and ``gethrtime`` must be used instead.

:class:`ProcClock` wraps a simulated process's exact ``cpu_time``
counter and quantizes reads to the configured granularity, reproducing
both the virtue and the flaw.
"""

from __future__ import annotations

import math

from ..errors import SimulationError
from ..simcluster.kernel import SimProcess

__all__ = ["ProcClock"]


class ProcClock:
    def __init__(self, proc: SimProcess, granularity: float = 0.010):
        if granularity <= 0:
            raise SimulationError("granularity must be positive")
        self.proc = proc
        self.granularity = granularity

    def read(self) -> float:
        """CPU seconds consumed, rounded down to the granularity."""
        ticks = math.floor(self.proc.cpu_time / self.granularity + 1e-12)
        return ticks * self.granularity

    def read_exact(self) -> float:
        """The unquantized counter (not available on a real system;
        used only by tests to bound quantization error)."""
        return self.proc.cpu_time
