"""The ``dmpi_ps`` load daemon (paper Section 4.2).

One daemon per node samples the process table every second (by
default) and publishes the node's *load*: the number of processes that
are in a running or ready state, **with the monitored application
always included** even when it is blocked at a receive.  That
inclusion is the paper's fix for the vmstat problem — an MPI process
that has voluntarily relinquished the CPU while waiting for a message
is still a consumer of the node the moment data arrives, so it must be
counted.

The Dyn-MPI runtime reads the latest local sample (a cheap local read,
exactly like reading the daemon's shared memory segment on a real
node) and exchanges samples between nodes with an allgather.
"""

from __future__ import annotations


from ..errors import SimulationError
from ..simcluster import Cluster, ProcState, Sleep
from ..simcluster.kernel import SimProcess

__all__ = ["DmpiPs"]


class DmpiPs:
    def __init__(self, cluster: Cluster, interval: float = 1.0, jitter: bool = True):
        if interval <= 0:
            raise SimulationError("daemon interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self._jitter = jitter
        self._monitored: dict[int, list[SimProcess]] = {i: [] for i in range(cluster.n_nodes)}
        self._latest: list[int] = [1] * cluster.n_nodes  # before first sample: just the app
        self._history: list[list[tuple[float, int]]] = [[] for _ in range(cluster.n_nodes)]
        self._started = False

    # ------------------------------------------------------------------
    def register_monitored(self, node_id: int, proc: SimProcess) -> None:
        """Mark ``proc`` as the (or an) application process on ``node_id``."""
        self._monitored[node_id].append(proc)

    def start(self) -> None:
        """Spawn one sampling daemon per node."""
        if self._started:
            raise SimulationError("dmpi_ps already started")
        self._started = True
        rng = self.cluster.rng.stream("dmpi_ps")
        for node_id in range(self.cluster.n_nodes):
            phase = float(rng.uniform(0, self.interval)) if self._jitter else 0.0
            self.cluster.sim.spawn(
                self._daemon(node_id, phase),
                name=f"dmpi_ps@n{node_id}",
                daemon=True,
            )

    def _daemon(self, node_id: int, phase: float):
        yield Sleep(phase)
        while True:
            if self.cluster.failure_board.crashed(node_id):
                return  # a dead node samples nothing: heartbeat goes stale
            self._take_sample(node_id)
            yield Sleep(self.interval)

    def _take_sample(self, node_id: int) -> None:
        self._latest[node_id] = self._measure(node_id)
        self._history[node_id].append((self.cluster.sim.now, self._latest[node_id]))

    def _measure(self, node_id: int) -> int:
        node = self.cluster.nodes[node_id]
        monitored = self._monitored[node_id]
        monitored_ids = {id(p) for p in monitored}
        count = 0
        for proc in node.procs:
            if id(proc) in monitored_ids:
                continue  # counted unconditionally below
            if proc.state in (ProcState.RUNNING, ProcState.READY):
                count += 1
        for bg in node.background.values():
            if bg.state in (ProcState.RUNNING, ProcState.READY):
                count += 1
        # the monitored application is automatically included, even
        # while blocked at a receive
        live = sum(
            1 for p in monitored
            if p.state not in (ProcState.DONE, ProcState.FAILED)
        )
        return count + live

    # ------------------------------------------------------------------
    def load(self, node_id: int) -> int:
        """Latest published load for ``node_id`` (local read)."""
        return self._latest[node_id]

    def loads(self) -> list[int]:
        """Latest published loads of all nodes.

        NOTE: only valid as a *global* view in tests/analysis; the
        runtime itself reads locally and allgathers, as a real
        distributed system must.
        """
        return list(self._latest)

    def history(self, node_id: int) -> list[tuple[float, int]]:
        return list(self._history[node_id])

    def last_sample_time(self, node_id: int) -> float:
        """Sim time of ``node_id``'s most recent heartbeat (the failure
        detector's raw input); -inf before the first sample."""
        hist = self._history[node_id]
        return hist[-1][0] if hist else float("-inf")

    def app_alive(self, node_id: int) -> bool:
        """True while at least one monitored application process on the
        node has neither finished nor died (vacuously True when nothing
        is monitored there)."""
        monitored = self._monitored[node_id]
        if not monitored:
            return True
        return any(
            p.state not in (ProcState.DONE, ProcState.FAILED) for p in monitored
        )
