"""System monitoring substrate: load daemons and timing sources.

Implements the paper's Section 4.2 toolchain — the ``dmpi_ps`` daemon,
the unreliable ``vmstat`` baseline it replaces, /PROC CPU-time
accounting, and ``gethrtime`` wallclock timing with min-filtering.
"""

from .dmpi_ps import DmpiPs
from .hrtimer import HrTimer, min_filter
from .proctime import ProcClock
from .vmstat import Vmstat

__all__ = ["DmpiPs", "Vmstat", "ProcClock", "HrTimer", "min_filter"]
