"""``gethrtime``-style wallclock timing (paper Section 4.2).

A high-resolution wallclock read is exact, but the *interval* between
two reads around a piece of work includes any time the OS gave to
other processes — on a loaded node, a sub-quantum iteration either
completes unpreempted (true time) or absorbs one or more competing
slices (inflated time).  The paper's fix is to measure over several
phase-cycle iterations and take the **minimum**.

:class:`HrTimer` reads the simulator clock (plus a tiny fixed call
overhead); :func:`min_filter` implements the minimum-over-cycles
reduction used during the grace period.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..simcluster import Simulator

__all__ = ["HrTimer", "min_filter"]

#: seconds of overhead per gethrtime() call pair (nanoseconds-scale on
#: real hardware; kept tiny but nonzero so timing is never "free")
CALL_OVERHEAD = 2e-7


class HrTimer:
    def __init__(self, sim: Simulator):
        self.sim = sim
        self.n_reads = 0

    def read(self) -> float:
        self.n_reads += 1
        return self.sim.now

    def interval(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise SimulationError("hrtimer interval ran backwards")
        return (t1 - t0) + CALL_OVERHEAD


def min_filter(samples: Sequence[Sequence[float]]) -> np.ndarray:
    """Per-iteration minimum across grace-period cycles.

    ``samples[c][i]`` is the measured time of iteration ``i`` during
    grace cycle ``c``; the result is the per-iteration minimum, which
    discards context-switch spikes (paper Section 4.2).
    """
    if not samples:
        raise SimulationError("min_filter needs at least one cycle of samples")
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 2:
        raise SimulationError("samples must be a cycle x iteration matrix")
    return arr.min(axis=0)
