"""The unreliable ``vmstat``-style monitor (paper Section 4.2).

The paper reports that vmstat-based load determination is unreliable
because "processes that have voluntarily relinquished the processor
because they are blocked at a receive are not reported".  This monitor
reproduces that failure mode faithfully: it samples the instantaneous
count of runnable processes with *no* special-casing of the monitored
application.  It exists as the baseline that motivates ``dmpi_ps`` and
is compared against it in tests and the monitor ablation bench.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..simcluster import Cluster, ProcState, Sleep

__all__ = ["Vmstat"]


class Vmstat:
    def __init__(self, cluster: Cluster, interval: float = 1.0):
        if interval <= 0:
            raise SimulationError("vmstat interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self._latest: list[int] = [0] * cluster.n_nodes
        self._history: list[list[tuple[float, int]]] = [[] for _ in range(cluster.n_nodes)]
        self._started = False

    def start(self) -> None:
        if self._started:
            raise SimulationError("vmstat already started")
        self._started = True
        for node_id in range(self.cluster.n_nodes):
            self.cluster.sim.spawn(
                self._daemon(node_id), name=f"vmstat@n{node_id}", daemon=True
            )

    def _daemon(self, node_id: int):
        while True:
            node = self.cluster.nodes[node_id]
            load = sum(
                1
                for _, state, _ in node.process_table()
                if state in (ProcState.RUNNING, ProcState.READY)
            )
            self._latest[node_id] = load
            self._history[node_id].append((self.cluster.sim.now, load))
            yield Sleep(self.interval)

    def load(self, node_id: int) -> int:
        return self._latest[node_id]

    def history(self, node_id: int) -> list[tuple[float, int]]:
        return list(self._history[node_id])
