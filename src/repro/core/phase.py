"""Phase descriptors (paper Section 2.1).

An application is an iterative sequence of *phases* — computation over
a partitioned loop followed by communication — all enclosed by the
*phase cycle* loop.  A :class:`Phase` records the partitioned loop
size, the communication pattern (used by the balancer's cost model),
and the array accesses (DRSDs) made inside the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RegistrationError
from .commcost import PhasePattern
from .drsd import DRSD

__all__ = ["Phase"]


@dataclass
class Phase:
    phase_id: int
    n_iters: int
    pattern: PhasePattern
    accesses: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_iters <= 0:
            raise RegistrationError(f"phase {self.phase_id}: n_iters must be positive")
        if not isinstance(self.pattern, PhasePattern):
            raise RegistrationError(
                f"phase {self.phase_id}: pattern must be a PhasePattern"
            )

    def add_access(self, drsd: DRSD) -> None:
        self.accesses.append(drsd)

    def accesses_of(self, array: str) -> list:
        return [a for a in self.accesses if a.array == array]

    def arrays(self) -> list[str]:
        seen: dict[str, None] = {}
        for a in self.accesses:
            seen.setdefault(a.array, None)
        return list(seen)
