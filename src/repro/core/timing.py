"""Unloaded iteration-time estimation during the grace period
(paper Section 4.2).

During the grace period the runtime times every owned iteration each
cycle, through *both* sources:

* /PROC — per-iteration CPU-time deltas, quantized to the /PROC
  granularity.  Immune to competing processes, useless below 10 ms.
* ``gethrtime`` — exact wallclock intervals, polluted by competing
  slices; the per-iteration **minimum** over the grace cycles discards
  the context-switch spikes.

``estimate`` applies the paper's selection rule: use /PROC when the
iterations are big enough (median at or above the threshold),
otherwise the min-filtered wallclock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..sysmon.hrtimer import min_filter

__all__ = ["GraceSamples", "estimate_unloaded_times"]


@dataclass
class GraceSamples:
    """Per-grace-cycle, per-owned-iteration measurements."""

    rows: list  # owned global row indices (same every grace cycle)
    hr: list    # list over cycles of np.ndarray wallclock intervals
    proc: list  # list over cycles of np.ndarray /PROC deltas (quantized)

    def __init__(self, rows):
        self.rows = list(rows)
        self.hr = []
        self.proc = []

    def add_cycle(self, hr_intervals, proc_deltas) -> None:
        hr_arr = np.asarray(hr_intervals, dtype=float)
        proc_arr = np.asarray(proc_deltas, dtype=float)
        if hr_arr.shape != (len(self.rows),) or proc_arr.shape != (len(self.rows),):
            raise SimulationError("grace sample shape mismatch")
        self.hr.append(hr_arr)
        self.proc.append(proc_arr)

    @property
    def n_cycles(self) -> int:
        return len(self.hr)


def estimate_unloaded_times(
    samples: GraceSamples,
    hrtimer_threshold: float = 0.010,
) -> tuple[np.ndarray, str]:
    """Per-owned-iteration unloaded time estimates (seconds).

    Returns ``(estimates, source)`` where source is "proc" or
    "hrtimer".  An empty row set returns an empty estimate.
    """
    if not samples.rows:
        return np.zeros(0), "none"
    if samples.n_cycles == 0:
        raise SimulationError("no grace cycles collected")

    hr_min = min_filter(samples.hr)
    median_iter = float(np.median(hr_min))
    if median_iter >= hrtimer_threshold:
        # /PROC: average the quantized deltas over cycles; quantization
        # noise is zero-mean at this scale
        est = np.mean(np.stack(samples.proc), axis=0)
        # guard: a pathological all-zero /PROC readout (every iteration
        # below granularity despite the median test) falls back
        if est.sum() > 0:
            return est, "proc"
    return hr_min, "hrtimer"
