"""Deferred Regular Section Descriptors (paper Section 2.2).

A DRSD describes an array access inside a partitioned loop in terms of
*start*, *end* and *step*, with the bound computation deferred to run
time (when the loop bounds for the current distribution are known).
For a first-dimension distribution the accesses we must describe are
row accesses affine in the loop variable — e.g. Jacobi's

    A[i]   -> DRSD(A, WRITE, lo_off=0, hi_off=0)
    B[i-1..i+1] -> DRSD(B, READ, lo_off=-1, hi_off=+1)

``rows_needed(s, e)`` materializes the deferred bounds for loop range
``[s, e]``.  Redistribution uses DRSDs to decide which non-owned rows
a node must also acquire (ghost/halo rows), exactly the Fortran-D
technique the paper borrows (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RegistrationError
from .intervals import IntervalSet

__all__ = ["AccessMode", "DRSD"]


class AccessMode:
    READ = "read"
    WRITE = "write"
    READWRITE = "readwrite"

    ALL = (READ, WRITE, READWRITE)


@dataclass(frozen=True)
class DRSD:
    """A deferred regular section over an array's first dimension.

    For a partitioned loop iteration range ``[s, e]`` (inclusive), the
    rows touched are ``{lo_off + s, lo_off + s + step, ...}`` up to
    ``hi_off + e``, clipped to ``[0, n_rows)``.
    """

    array: str
    mode: str
    lo_off: int = 0
    hi_off: int = 0
    step: int = 1

    def __post_init__(self) -> None:
        if self.mode not in AccessMode.ALL:
            raise RegistrationError(f"bad access mode {self.mode!r}")
        if self.step < 1:
            raise RegistrationError(f"DRSD step must be >= 1, got {self.step}")
        if self.lo_off > self.hi_off:
            raise RegistrationError(
                f"DRSD offsets inverted: lo {self.lo_off} > hi {self.hi_off}"
            )

    @property
    def writes(self) -> bool:
        return self.mode in (AccessMode.WRITE, AccessMode.READWRITE)

    @property
    def reads(self) -> bool:
        return self.mode in (AccessMode.READ, AccessMode.READWRITE)

    def rows_needed(self, s: int, e: int, n_rows: int) -> range:
        """Rows this access touches when the loop runs ``[s, e]``.

        Returns an empty range for an empty loop (``e < s``).
        """
        if e < s:
            return range(0)
        lo = max(0, s + self.lo_off)
        hi = min(n_rows - 1, e + self.hi_off)
        if hi < lo:
            return range(0)
        return range(lo, hi + 1, self.step)

    def needed_intervals(self, s: int, e: int, n_rows: int) -> IntervalSet:
        """Rows this access touches when the loop runs ``[s, e]``, as an
        :class:`~repro.core.intervals.IntervalSet` — a single span for
        the unit-stride case (O(1) regardless of the loop length), the
        stride-aware path otherwise.  Row-for-row identical to
        :meth:`rows_needed`."""
        if e < s:
            return IntervalSet.empty()
        lo = max(0, s + self.lo_off)
        hi = min(n_rows - 1, e + self.hi_off)
        if hi < lo:
            return IntervalSet.empty()
        return IntervalSet.from_strided(lo, hi, self.step)

    def halo_width(self) -> tuple[int, int]:
        """(rows below, rows above) the owned range that must be
        acquired: the ghost region."""
        return (max(0, -self.lo_off), max(0, self.hi_off))
