"""Communication cost model, fitted by micro-benchmarks (Section 4.3).

The paper determines effective distributions "by executing
micro-benchmarks" because communication consumes CPU that a naive
relative-power split ignores.  We reproduce the methodology: a
:class:`CommCostModel` is *measured* by running ping-pong and
CPU-accounting experiments on a scratch 2-node simulated cluster with
the same node/network specs as the target cluster, then least-squares
fitting

* per-message and per-byte **CPU seconds** (from /PROC-exact process
  CPU time), and
* per-message latency and per-byte **wire seconds** (from wallclock
  minus CPU time).

``from_spec`` provides the oracle model for tests (the fit should land
close to it — that closeness is itself tested).

:class:`PhasePattern` instances translate a candidate distribution
into per-node per-cycle communication cost under a pattern
(nearest-neighbor halo exchange, ring allgather, scalar allreduce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import ClusterSpec, NetworkSpec
from ..errors import ConfigError
from ..simcluster import Cluster

__all__ = [
    "CommCostModel",
    "measure_comm_model",
    "PhasePattern",
    "NearestNeighbor",
    "RingAllgather",
    "ScalarAllreduce",
    "NoComm",
]


@dataclass(frozen=True)
class CommCostModel:
    """Per-endpoint message costs.

    * ``cpu_msg_s`` / ``cpu_byte_s`` — CPU seconds spent per message /
      per payload byte on one endpoint, measured at *reference speed*
      ``ref_speed`` (work = seconds * ref_speed scales to other nodes).
    * ``wire_msg_s`` / ``wire_byte_s`` — non-CPU wire seconds.
    """

    cpu_msg_s: float
    cpu_byte_s: float
    wire_msg_s: float
    wire_byte_s: float
    ref_speed: float

    def __post_init__(self) -> None:
        for name in ("cpu_msg_s", "cpu_byte_s", "wire_msg_s", "wire_byte_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.ref_speed <= 0:
            raise ConfigError("ref_speed must be positive")

    # CPU **work units** one endpoint spends on a message of n bytes
    def cpu_work(self, nbytes: float, n_msgs: float = 1.0) -> float:
        return (n_msgs * self.cpu_msg_s + nbytes * self.cpu_byte_s) * self.ref_speed

    # wire seconds for a message of n bytes
    def wire_time(self, nbytes: float, n_msgs: float = 1.0) -> float:
        return n_msgs * self.wire_msg_s + nbytes * self.wire_byte_s

    @staticmethod
    def from_spec(network: NetworkSpec, node_speed: float) -> "CommCostModel":
        """The oracle model implied directly by the simulator specs."""
        return CommCostModel(
            cpu_msg_s=network.cpu_per_msg / node_speed,
            cpu_byte_s=network.cpu_per_byte / node_speed,
            wire_msg_s=network.latency,
            wire_byte_s=1.0 / network.bandwidth,
            ref_speed=node_speed,
        )


def measure_comm_model(
    spec: ClusterSpec,
    sizes: Sequence[int] = (1024, 4096, 16384, 65536, 262144),
    reps: int = 8,
) -> CommCostModel:
    """Fit a :class:`CommCostModel` by simulated micro-benchmarks.

    Runs ``reps`` ping-pongs per message size on a dedicated 2-node
    scratch cluster built from ``spec``; splits cost into CPU and wire
    components using exact process CPU time, and fits both affinely in
    the message size.
    """
    from ..mpi import run_spmd  # local import: avoid cycle at package load

    sizes = [int(s) for s in sizes]
    if len(sizes) < 2:
        raise ConfigError("need at least two sizes to fit the model")

    cpu_per_size = []
    wall_per_size = []
    for nbytes in sizes:
        scratch = Cluster(
            ClusterSpec(n_nodes=2, node=spec.node, network=spec.network, seed=spec.seed)
        )

        def program(ep, nbytes=nbytes):
            for _ in range(reps):
                if ep.rank == 0:
                    yield from ep.send(1, tag=0, payload=None, nbytes=nbytes)
                    yield from ep.recv(1, tag=1)
                else:
                    yield from ep.recv(0, tag=0)
                    yield from ep.send(0, tag=1, payload=None, nbytes=nbytes)

        run_spmd(scratch, program)
        rank0 = next(p for p in scratch.sim.processes if p.name == "rank0")
        # per one-way message: rank0 handled 2*reps messages
        cpu_per_size.append(rank0.cpu_time / (2 * reps))
        wall_per_size.append(scratch.sim.now / (2 * reps))

    sizes_arr = np.asarray(sizes, dtype=float)
    design = np.stack([np.ones_like(sizes_arr), sizes_arr], axis=1)
    cpu_msg, cpu_byte = np.linalg.lstsq(design, np.asarray(cpu_per_size), rcond=None)[0]
    wall_msg, wall_byte = np.linalg.lstsq(design, np.asarray(wall_per_size), rcond=None)[0]
    return CommCostModel(
        cpu_msg_s=max(0.0, float(cpu_msg)),
        cpu_byte_s=max(0.0, float(cpu_byte)),
        wire_msg_s=max(0.0, float(wall_msg - cpu_msg)),
        wire_byte_s=max(0.0, float(wall_byte - cpu_byte)),
        ref_speed=spec.node.speed,
    )


class PhasePattern:
    """Per-cycle communication volume of a phase, per node.

    Subclasses answer: for relative rank ``rel`` of ``n`` participants,
    how many CPU work units and wire seconds does one phase cycle of
    communication cost?  ``row_counts[rel]`` are owned-row counts under
    the candidate distribution.
    """

    def comm_cost(
        self,
        rel: int,
        row_counts: Sequence[int],
        model: CommCostModel,
    ) -> tuple[float, float]:  # pragma: no cover - interface
        raise NotImplementedError

    def comm_cost_all(
        self,
        n: int,
        row_counts: Sequence[int],
        model: CommCostModel,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`comm_cost` over all ``n`` relative ranks.

        The built-in patterns override this to compute the active set
        once instead of per rank (the per-rank loop is O(n^2) and
        dominated balancing profiles at large n); every override
        assigns the *same scalar expressions* ``comm_cost`` would, so
        results are bit-for-bit identical.  The default drives the
        per-rank method, keeping external subclasses correct.
        """
        cpu = np.zeros(n)
        wire = np.zeros(n)
        for rel in range(n):
            c, x = self.comm_cost(rel, row_counts, model)
            cpu[rel] = c
            wire[rel] = x
        return cpu, wire

    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class NearestNeighbor(PhasePattern):
    """Halo exchange with left/right neighbors: ``halo_rows`` extended
    rows of ``row_nbytes`` each way per cycle."""

    row_nbytes: int
    halo_rows: int = 1

    def comm_cost(self, rel, row_counts, model):
        # nodes holding no rows do not participate in the exchange
        active = [i for i, c in enumerate(row_counts) if c > 0]
        if rel not in active or len(active) < 2:
            return 0.0, 0.0
        pos = active.index(rel)
        neighbors = 1 if pos in (0, len(active) - 1) else 2
        nbytes = self.halo_rows * self.row_nbytes
        # send + receive on each boundary
        cpu = model.cpu_work(nbytes, 1) * 2 * neighbors
        wire = model.wire_time(nbytes, 1)  # exchanges overlap; one hop exposed
        return cpu, wire

    def comm_cost_all(self, n, row_counts, model):
        cpu = np.zeros(n)
        wire = np.zeros(n)
        active = [i for i, c in enumerate(row_counts) if c > 0]
        if len(active) < 2:
            return cpu, wire
        nbytes = self.halo_rows * self.row_nbytes
        # same factored expressions as comm_cost: (work * 2) * neighbors
        one_side = model.cpu_work(nbytes, 1) * 2
        wire_one = model.wire_time(nbytes, 1)
        last = len(active) - 1
        for pos, rel in enumerate(active):
            cpu[rel] = one_side * 1 if pos in (0, last) else one_side * 2
            wire[rel] = wire_one
        return cpu, wire


@dataclass(frozen=True)
class RingAllgather(PhasePattern):
    """Each cycle, every node assembles the full vector (CG's ``p``):
    n-1 ring steps moving ~total_nbytes through each node."""

    total_nbytes: int

    def comm_cost(self, rel, row_counts, model):
        active = [i for i, c in enumerate(row_counts) if c > 0]
        if rel not in active or len(active) < 2:
            return 0.0, 0.0
        n = len(active)
        other_bytes = self.total_nbytes * (n - 1) / n
        # each node sends and receives (n-1) blocks totalling ~other_bytes
        cpu = 2 * model.cpu_work(other_bytes, n - 1)
        wire = model.wire_time(other_bytes, n - 1)
        return cpu, wire

    def comm_cost_all(self, n, row_counts, model):
        cpu = np.zeros(n)
        wire = np.zeros(n)
        active = [i for i, c in enumerate(row_counts) if c > 0]
        na = len(active)
        if na < 2:
            return cpu, wire
        other_bytes = self.total_nbytes * (na - 1) / na
        cpu_v = 2 * model.cpu_work(other_bytes, na - 1)
        wire_v = model.wire_time(other_bytes, na - 1)
        for rel in active:
            cpu[rel] = cpu_v
            wire[rel] = wire_v
        return cpu, wire


@dataclass(frozen=True)
class ScalarAllreduce(PhasePattern):
    """``count`` scalar allreduces per cycle: ~2 log2 n small messages."""

    count: int = 1
    nbytes: int = 72

    def comm_cost(self, rel, row_counts, model):
        active = [i for i, c in enumerate(row_counts) if c > 0]
        if rel not in active or len(active) < 2:
            return 0.0, 0.0
        n = len(active)
        rounds = 2 * int(np.ceil(np.log2(n)))
        cpu = self.count * rounds * model.cpu_work(self.nbytes, 1)
        wire = self.count * rounds * model.wire_time(self.nbytes, 1)
        return cpu, wire

    def comm_cost_all(self, n, row_counts, model):
        cpu = np.zeros(n)
        wire = np.zeros(n)
        active = [i for i, c in enumerate(row_counts) if c > 0]
        na = len(active)
        if na < 2:
            return cpu, wire
        rounds = 2 * int(np.ceil(np.log2(na)))
        cpu_v = self.count * rounds * model.cpu_work(self.nbytes, 1)
        wire_v = self.count * rounds * model.wire_time(self.nbytes, 1)
        for rel in active:
            cpu[rel] = cpu_v
            wire[rel] = wire_v
        return cpu, wire


@dataclass(frozen=True)
class NoComm(PhasePattern):
    def comm_cost(self, rel, row_counts, model):
        return 0.0, 0.0

    def comm_cost_all(self, n, row_counts, model):
        return np.zeros(n), np.zeros(n)
