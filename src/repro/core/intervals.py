"""Row-interval algebra — public home of :class:`IntervalSet`.

The implementation lives in :mod:`repro._intervals`, a leaf module
with no intra-package imports, because both layers of the data plane
depend on it: :mod:`repro.dmem` (slab-backed storage) sits *below*
:mod:`repro.core` (redistribution planning), and importing it from
either package must not drag the other's ``__init__`` into a cycle.
Import it from here (``repro.core.intervals``) everywhere above dmem.
"""

from .._intervals import IntervalSet, Span

__all__ = ["IntervalSet", "Span"]
