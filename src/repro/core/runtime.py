"""The Dyn-MPI runtime (paper Sections 2 and 4).

:class:`DynMPIJob` is the job-level object: it owns the communicator,
the ``dmpi_ps`` daemons, the comm cost model and the shared rank
groups.  :class:`DynMPI` is one rank's context — the object a Dyn-MPI
program drives, mirroring the paper's API:

===========================  =======================================
paper                        here
===========================  =======================================
DMPI_init                    DynMPIJob(...) + program launch
DMPI_register_dense_array    ctx.register_dense(...)
DMPI_register_sparse_array   ctx.register_sparse(...)
DMPI_init_phase              ctx.init_phase(...)
DMPI_add_array_access        ctx.add_array_access(...)
DMPI_get_start_iter          ctx.start_iter()
DMPI_get_end_iter            ctx.end_iter()
DMPI_participating           ctx.participating()
DMPI_get_rel_rank            ctx.rel_rank()
DMPI_get_num_active          ctx.num_active()
DMPI_Send / DMPI_Recv        ctx.send_rel(...) / ctx.recv_rel(...)
===========================  =======================================

plus ``begin_cycle`` / ``end_cycle`` which bracket every phase cycle
and drive the adaptation state machine:

NORMAL --(dmpi_ps load change)--> GRACE (5 cycles: measure per-
iteration unloaded times via /PROC or min-filtered gethrtime)
--> redistribute (successive balancing -> variable block -> DRSD-driven
row movement) --> POST (10 cycles: measure average cycle time)
--> drop decision (predicted unloaded-only config vs measured) -->
NORMAL.

All adaptation decisions are pure functions of data every active rank
possesses identically (allgathered loads, iteration times, cycle
times), so ranks stay in lockstep without extra coordination — the
same property the real Dyn-MPI relies on.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from ..config import RuntimeSpec
from ..dmem import MemCostModel, ProjectedArray, SparseMatrix
from ..errors import CheckpointLostError, RegistrationError, SimulationError
from ..mpi import Endpoint, Group, make_comm
from ..mpi import collectives as coll
from ..mpi.datatypes import SUM, ReduceOp
from ..obs.recorder import JOB_PID, ObsRecorder, RuntimeEvent
from ..resilience.checkpoint import (
    CheckpointStore,
    checkpoint_exchange,
    holder_for,
    snapshot,
)
from ..resilience.failures import terminate_rank
from ..simcluster import Cluster, Compute, ProcState
from ..sysmon import DmpiPs, HrTimer, ProcClock
from .balance import successive_balance
from .commcost import CommCostModel, PhasePattern, measure_comm_model
from .distribution import BlockDistribution, shares_to_blocks
from .drsd import DRSD
from .loadmon import FailureDetector, LoadMonitor
from .phase import Phase
from .intervals import IntervalSet
from .redistribute import needed_map, redistribute
from .removal import evaluate_drop
from .timing import GraceSamples, estimate_unloaded_times

__all__ = ["DynMPIJob", "DynMPI", "RuntimeEvent"]

_CTRL_TAG = (1 << 29) + 7   # control messages to removed ranks (send-out)
_TOKEN_TAG = (1 << 29) + 8  # per-cycle token: active root -> removed ranks
_LOAD_TAG = (1 << 29) + 9   # load updates: removed ranks -> active root

# RuntimeEvent now lives in repro.obs.recorder (the adaptation events
# are one view of the dynscope recording); re-exported here unchanged
# for backward compatibility.


class DynMPIJob:
    """Job-level state shared by all ranks (one per application run)."""

    def __init__(
        self,
        cluster: Cluster,
        spec: Optional[RuntimeSpec] = None,
        *,
        adaptive: bool = True,
        measure_model: bool = False,
        mem_model: Optional[MemCostModel] = None,
    ):
        self.cluster = cluster
        self.spec = spec or RuntimeSpec()
        self.adaptive = adaptive
        self.comm = make_comm(cluster)
        self.ps = DmpiPs(cluster, self.spec.daemon_interval)
        self.hr = HrTimer(cluster.sim)
        self.mem_model = mem_model or MemCostModel()
        if measure_model:
            self.comm_model = measure_comm_model(cluster.spec)
        else:
            self.comm_model = CommCostModel.from_spec(
                cluster.spec.network, cluster.spec.node.speed
            )
        self.ref_speed = cluster.spec.node.speed
        #: dynscope sink.  The cluster's enabled recorder when
        #: observability is on; otherwise a disabled recorder whose
        #: span/instant methods return immediately but whose
        #: ``adaptations`` list is still populated — so ``job.events``
        #: (a view of that list) behaves identically either way.
        cobs = getattr(cluster, "obs", None)
        self.obs: ObsRecorder = (
            cobs if cobs is not None else ObsRecorder(enabled=False)
        )
        self.obs.bind_clock(lambda: cluster.sim.now)
        self.events: list[RuntimeEvent] = self.obs.adaptations
        self.contexts: list["DynMPI"] = []
        self._groups: dict[tuple, Group] = {}
        #: shared needed-map memo (see RankRuntime._needed).  Every
        #: rank derives the identical plan from identical inputs — the
        #: Section 4.4 no-negotiation property — so the group computes
        #: it once instead of n times (O(n^2) at 1024 ranks otherwise)
        self._needed_cache: dict = {}
        self._launched = False
        #: heartbeat crash detector (repro.resilience); None unless a
        #: ResilienceSpec is attached to the runtime spec
        self.detector: Optional[FailureDetector] = None
        if self.spec.resilience is not None:
            self.detector = FailureDetector(
                self.ps,
                self.spec.resilience.resolve_timeout(self.spec.daemon_interval),
            )

    def group_for(self, world_ranks: tuple) -> Group:
        """Shared Group per rank set (tag counters must be common)."""
        g = self._groups.get(world_ranks)
        if g is None:
            g = Group(list(world_ranks))
            self._groups[world_ranks] = g
        return g

    def launch(self, program: Callable[..., Any], args: tuple = (),
               until: float = float("inf")) -> list[Any]:
        """Run ``program(ctx, *args)`` on every rank to completion."""
        if self._launched:
            raise SimulationError("job already launched")
        self._launched = True
        self.ps.start()
        procs = []
        for rank in range(self.comm.size):
            ctx = DynMPI(self, self.comm.endpoint(rank))
            self.contexts.append(ctx)
            gen = program(ctx, *args)
            if not hasattr(gen, "send"):
                raise RegistrationError("program must be a generator function")
            node = self.cluster.nodes[self.comm.node_of(rank)]
            proc = self.cluster.sim.spawn(gen, name=f"rank{rank}", node=node)
            ctx._bind_process(proc)
            self.ps.register_monitored(node.node_id, proc)
            self.cluster.register_app_proc(node.node_id, proc)
            # dead-endpoint poisoning: a rank death turns peers' blocked
            # operations into RankFailedError instead of a hang
            self.comm.watch_rank(rank, proc)
            procs.append(proc)

        board = self.cluster.failure_board

        def expected_death(proc) -> bool:
            rank = procs.index(proc)
            ctx = self.contexts[rank]
            return ctx.crashed or board.failed(self.comm.node_of(rank))

        self.cluster.sim.run_all(procs, until=until, tolerate=expected_death)
        if self.cluster.sanitizer is not None:
            self.cluster.sanitizer.finalize()
        return [p.result for p in procs]


class DynMPI:
    """One rank's Dyn-MPI context."""

    MODE_NORMAL = "normal"
    MODE_GRACE = "grace"
    MODE_POST = "post"

    def __init__(self, job: DynMPIJob, ep: Endpoint):
        self.job = job
        self.ep = ep
        self.spec = job.spec
        self.world_rank = ep.rank
        self.node_id = ep.node_id
        self.active = True
        self.active_group = job.group_for(tuple(range(ep.size)))
        self.arrays: dict[str, object] = {}
        self.phases: dict[int, Phase] = {}
        self.loop_size: Optional[int] = None
        self.bounds: Optional[tuple] = None  # per active rel rank
        self.mode = self.MODE_NORMAL
        self.cycle = -1
        self.monitor = LoadMonitor()
        self.loads: Optional[np.ndarray] = None
        self.row_weights: Optional[np.ndarray] = None  # seconds/iter, unloaded
        self.last_estimate_source = "none"
        #: dynscope recorder, or None when observability is off (the
        #: hot-path guard — one None test per instrumented site)
        self.obs = getattr(job.cluster, "obs", None)
        self.proc = None
        self.proc_clock: Optional[ProcClock] = None
        self._committed = False
        self._grace: dict[int, GraceSamples] = {}
        self._grace_count = 0
        self._grace_cycle_open: dict[int, tuple] = {}
        self._post_count = 0
        self._post_times: list[float] = []
        self._cycle_t0 = 0.0
        self.cycle_times: list[float] = []
        self.cycle_stamps: list[tuple[float, float]] = []  # (begin, end) sim times
        self.n_redistributions = 0
        self._removed_loads: dict[int, int] = {}  # rejoin bookkeeping (rel 0)
        self._token_root = 0  # world rank that sends this removed rank tokens
        # -- resilience (repro.resilience) ------------------------------
        #: set by terminate_rank when this rank dies to an injected
        #: crash, so the launcher can tell it from an application bug
        self.crashed = False
        #: world ranks every survivor agrees are dead
        self.dead_world: set[int] = set()
        self._ckpt_store: Optional[CheckpointStore] = (
            CheckpointStore() if job.spec.resilience is not None else None
        )
        #: forces a checkpoint at the next cycle regardless of the
        #: interval — set after every bounds/group change so a stored
        #: replica's bounds always match the live distribution
        self._ckpt_due = True

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _bind_process(self, proc) -> None:
        self.proc = proc
        self.proc_clock = ProcClock(proc, self.spec.proc_granularity)

    # ------------------------------------------------------------------
    # registration (paper: DMPI_register_*, DMPI_init_phase, ...)
    # ------------------------------------------------------------------
    def register_dense(
        self,
        name: str,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        materialized: bool = True,
    ) -> ProjectedArray:
        self._check_not_committed(name)
        arr = ProjectedArray(name, shape, dtype, materialized=materialized)
        self.arrays[name] = arr
        return arr

    def register_sparse(
        self, name: str, shape: tuple[int, int], dtype=np.float64
    ) -> SparseMatrix:
        self._check_not_committed(name)
        arr = SparseMatrix(name, shape, dtype)
        self.arrays[name] = arr
        return arr

    def _check_not_committed(self, name: str) -> None:
        if self._committed:
            raise RegistrationError("cannot register after commit()")
        if name in self.arrays:
            raise RegistrationError(f"array {name!r} already registered")

    def init_phase(self, phase_id: int, n_iters: int, pattern: PhasePattern) -> None:
        if self._committed:
            raise RegistrationError("cannot add phases after commit()")
        if phase_id in self.phases:
            raise RegistrationError(f"phase {phase_id} already declared")
        if self.loop_size is None:
            self.loop_size = n_iters
        elif n_iters != self.loop_size:
            raise RegistrationError(
                f"all phases must share the partitioned loop size "
                f"({self.loop_size}); phase {phase_id} has {n_iters}"
            )
        self.phases[phase_id] = Phase(phase_id, n_iters, pattern)

    def add_array_access(
        self,
        phase_id: int,
        array: str,
        mode: str,
        lo_off: int = 0,
        hi_off: int = 0,
        step: int = 1,
    ) -> None:
        if phase_id not in self.phases:
            raise RegistrationError(f"unknown phase {phase_id}")
        if array not in self.arrays:
            raise RegistrationError(f"unknown array {array!r}")
        self.phases[phase_id].add_access(DRSD(array, mode, lo_off, hi_off, step))

    def commit(self) -> None:
        """Finish registration: validate, set the initial even block
        distribution, and allocate the initially needed rows."""
        if self._committed:
            raise RegistrationError("commit() called twice")
        if not self.phases:
            raise RegistrationError("no phases declared")
        if self.loop_size is None:
            raise RegistrationError("loop size undetermined")
        for phase in self.phases.values():
            for acc in phase.accesses:
                arr = self.arrays[acc.array]
                if arr.n_rows < self.loop_size:
                    raise RegistrationError(
                        f"array {acc.array!r} has {arr.n_rows} rows but the "
                        f"partitioned loop needs {self.loop_size}"
                    )
        dist = BlockDistribution.even(self.loop_size, self.active_group.size)
        self.bounds = dist.bounds
        needed = self._needed(self.bounds)
        me = self.active_group.rel(self.world_rank)
        for name, arr in self.arrays.items():
            arr.hold(needed[me][name])
        # baseline load expectation: all nodes unloaded
        self.monitor.rebase([1] * self.active_group.size)
        self._committed = True

    # ------------------------------------------------------------------
    # queries (paper: DMPI_get_*, DMPI_participating)
    # ------------------------------------------------------------------
    def participating(self) -> bool:
        return self.active

    def rel_rank(self) -> int:
        return self.active_group.rel(self.world_rank)

    def num_active(self) -> int:
        return self.active_group.size

    def my_bounds(self) -> tuple[int, int]:
        """(start_iter, end_iter) inclusive; (0, -1) when empty."""
        if not self.active:
            return (0, -1)
        b = self.bounds[self.rel_rank()]
        return (0, -1) if b is None else b

    def start_iter(self) -> int:
        return self.my_bounds()[0]

    def end_iter(self) -> int:
        return self.my_bounds()[1]

    def nn_neighbors(self) -> tuple[Optional[int], Optional[int]]:
        """(left, right) relative ranks among ranks that own rows —
        the neighbor set for nearest-neighbor exchanges."""
        if not self.active:
            return (None, None)
        nonempty = [r for r in range(self.active_group.size)
                    if self.bounds[r] is not None]
        me = self.rel_rank()
        if me not in nonempty:
            return (None, None)
        pos = nonempty.index(me)
        left = nonempty[pos - 1] if pos > 0 else None
        right = nonempty[pos + 1] if pos + 1 < len(nonempty) else None
        return (left, right)

    def array(self, name: str):
        return self.arrays[name]

    # ------------------------------------------------------------------
    # relative-rank communication (paper: DMPI_Send / DMPI_Recv)
    # ------------------------------------------------------------------
    def send_rel(self, dst_rel: int, tag: int, payload=None, nbytes=None) -> Generator:
        yield from self.ep.send(self.active_group.world(dst_rel), tag, payload, nbytes)

    def recv_rel(self, src_rel: int, tag: int) -> Generator:
        result = yield from self.ep.recv(self.active_group.world(src_rel), tag)
        return result

    def sendrecv_rel(self, dst_rel, send_tag, payload, src_rel, recv_tag,
                     nbytes=None) -> Generator:
        result = yield from self.ep.sendrecv(
            self.active_group.world(dst_rel), send_tag, payload,
            self.active_group.world(src_rel), recv_tag, nbytes=nbytes,
        )
        return result

    def allreduce_active(self, value, op: ReduceOp = SUM) -> Generator:
        result = yield from coll.allreduce(self.ep, self.active_group, value, op)
        return result

    def allgather_active(self, value) -> Generator:
        result = yield from coll.allgather(self.ep, self.active_group, value)
        return result

    def bcast_active(self, value=None, root: int = 0) -> Generator:
        result = yield from coll.bcast(self.ep, self.active_group, value, root)
        return result

    def global_reduce(self, value, op: ReduceOp = SUM) -> Generator:
        """Global reduction with the paper's send-in/send-out rule:
        removed ranks contribute nothing (no send-in) but still receive
        the result (send-out), keeping their global state current."""
        removed = self._removed_world_ranks()
        if self.active:
            result = yield from coll.allreduce(self.ep, self.active_group, value, op)
            if removed and self.rel_rank() == 0:
                for w in removed:
                    self.ep.isend(w, _CTRL_TAG, result)
            return result
        result, _ = yield from self.ep.recv(tag=_CTRL_TAG)
        return result

    def _removed_world_ranks(self) -> list[int]:
        return [
            w for w in range(self.ep.size)
            if w not in self.active_group and w not in self.dead_world
        ]

    # ------------------------------------------------------------------
    # the phase cycle
    # ------------------------------------------------------------------
    def begin_cycle(self) -> Generator:
        if not self._committed:
            raise RegistrationError("commit() must be called before cycles")
        self.cycle += 1
        # the cycle notifier is the lowest-ranked *surviving* rank, so
        # cycle-triggered scripts keep firing if rank 0 crashes
        notifier = 0
        if self.dead_world:
            notifier = min(
                w for w in range(self.ep.size) if w not in self.dead_world
            )
        if self.world_rank == notifier:
            self.job.cluster.notify_cycle(self.cycle)
        if not self.active:
            if self.spec.allow_rejoin:
                yield from self._removed_cycle()
            return
        self._cycle_t0 = self.job.hr.read()
        if not self.job.adaptive:
            return
        if self.spec.resilience is not None:
            yield from self._resilient_control()
            return
        local = int(self.job.ps.load(self.node_id))
        if self.spec.allow_rejoin:
            candidates = self._poll_rejoin_candidates()
            gathered = yield from coll.allgather_dissemination(
                self.ep, self.active_group, (local, candidates)
            )
            loads = [g[0] for g in gathered]
            rejoining = gathered[0][1]  # rel 0's view is authoritative
            yield from self._send_tokens(rejoining)
            if rejoining:
                yield from self._perform_rejoin(rejoining)
                return  # next cycle starts fresh over the new group
        else:
            loads = yield from coll.allgather_dissemination(
                self.ep, self.active_group, local
            )
        self.loads = np.asarray(loads, dtype=int)
        changed = self.monitor.observe(loads, self.cycle)
        if changed:
            self._enter_grace()  # (re)start with fresh measurements

    # ------------------------------------------------------------------
    # resilient control path (repro.resilience; docs/RESILIENCE.md)
    # ------------------------------------------------------------------
    def _resilient_control(self) -> Generator:
        """The per-cycle control exchange when a ResilienceSpec is on.

        Checkpoints are exchanged *first*, so the snapshot a buddy may
        replay this cycle is exactly the state at this cycle boundary.
        The decision allgather then carries ``(load, rejoin_candidates,
        suspected_dead)``; rel-0's entry is authoritative (the same
        rule the rejoin protocol uses), so every active rank — the
        crash victim included, since a crashed node fail-stops at the
        boundary — acts on one consistent verdict.
        """
        yield from self._maybe_checkpoint()
        local = int(self.job.ps.load(self.node_id))
        candidates = (
            self._poll_rejoin_candidates() if self.spec.allow_rejoin else ()
        )
        suspected = self._suspect_failures()
        gathered = yield from coll.allgather_dissemination(
            self.ep, self.active_group, (local, candidates, suspected)
        )
        loads = [g[0] for g in gathered]
        rejoining = gathered[0][1]
        dead = gathered[0][2]  # rel 0's view is authoritative
        if dead:
            yield from self._handle_crash(dead)
            return  # next cycle starts fresh over the survivor group
        if self.spec.allow_rejoin:
            yield from self._send_tokens(rejoining)
            if rejoining:
                yield from self._perform_rejoin(rejoining)
                return
        self.loads = np.asarray(loads, dtype=int)
        if self.monitor.observe(loads, self.cycle):
            self._enter_grace()

    def _maybe_checkpoint(self) -> Generator:
        """Ring-exchange checkpoints every ``checkpoint_interval``
        cycles (or when a group/bounds change forced one).  All active
        ranks take the same branch: ``cycle`` and ``_ckpt_due`` evolve
        in lockstep."""
        res = self.spec.resilience
        if self.cycle % res.checkpoint_interval and not self._ckpt_due:
            return
        self._ckpt_due = False
        t0 = self.obs.now() if self.obs is not None else 0.0
        ckpt = snapshot(
            self.arrays, self.bounds[self.rel_rank()],
            self.world_rank, self.cycle,
        )
        yield from checkpoint_exchange(
            self.ep, self.active_group, self._ckpt_store, ckpt,
            res.replication,
        )
        if self.obs is not None:
            self.obs.complete(
                "ckpt.exchange", t0, cat="ckpt",
                pid=self.node_id, tid=self.world_rank,
                cycle=self.cycle, nbytes=ckpt.nbytes,
            )

    def _suspect_failures(self) -> tuple:
        """(active rel 0 only) World ranks whose node is suspected dead
        by the heartbeat detector.  A rank that finished its program is
        not a failure; self-suspicion is allowed so a crash of rel 0
        itself is still announced (cooperative fail-stop lets the
        victim publish its own death sentence)."""
        if self.rel_rank() != 0 or self.job.detector is None:
            return ()
        dead = []
        suspect = self.job.detector.suspect
        node_of = self.job.comm.node_of
        for w in range(self.ep.size):
            if w in self.dead_world:
                continue
            proc = self.job.contexts[w].proc if w < len(self.job.contexts) else None
            if proc is not None and proc.state == ProcState.DONE:
                continue
            if suspect(node_of(w)):
                dead.append(w)
        return tuple(sorted(dead))

    def _handle_crash(self, dead: tuple) -> Generator:
        """Every active rank runs this with the same ``dead`` set.  The
        victims self-terminate; the survivors excise them like an
        involuntary Section 4.4 removal, with the checkpoint holders
        standing in for the dead ranks' send-out."""
        t0 = self.job.hr.read()
        dead = tuple(sorted(dead))
        if self.world_rank in dead:
            yield from terminate_rank(self)  # never returns
        old_group = self.active_group
        active_dead = [w for w in dead if w in old_group]
        survivors = [w for w in old_group.ranks if w not in dead]
        parked_dead = [w for w in dead if w not in old_group]
        parked_alive = [
            w for w in self._removed_world_ranks() if w not in dead
        ]
        self.dead_world.update(dead)
        for w in dead:
            self._removed_loads.pop(w, None)
        # this cycle's tokens to parked ranks (normal _send_tokens was
        # skipped): victims get their death sentence, the rest learn
        # the new root and the updated death record
        new_root = survivors[0]
        if self.world_rank == new_root and self.spec.allow_rejoin:
            for w in parked_dead:
                self.ep.isend(w, _TOKEN_TAG, ("dead", new_root, None))
            noop_token = ("noop", new_root, tuple(sorted(self.dead_world)))
            for w in parked_alive:
                self.ep.isend(w, _TOKEN_TAG, noop_token)
        detail: dict = {
            "dead_world": list(dead),
            "parked_dead": parked_dead,
        }
        if active_dead:
            yield from self._recover_rows(old_group, active_dead, detail)
        if self.obs is not None:
            self.obs.complete(
                "recover.crash", t0, cat="recover",
                pid=self.node_id, tid=self.world_rank,
                cycle=self.cycle, n_dead=len(dead),
            )
        if self.rel_rank() == 0:
            self.job.obs.adaptation(
                "crash_recovery",
                cycle=self.cycle,
                time=self.job.cluster.sim.now,
                duration=self.job.hr.read() - t0,
                detail=detail,
            )

    def _recover_rows(self, old_group: Group, active_dead: list,
                      detail: dict) -> Generator:
        """Survivor-side data recovery: the holder replays each dead
        rank's checkpoint into its own arrays, then a redistribution
        over the survivor group rebalances — the holder's old
        ownership is a row :class:`IntervalSet` (its own rows plus the
        adopted, possibly non-contiguous, rows of the dead rank)."""
        res = self.spec.resilience
        n = old_group.size
        dead_rels = [old_group.rel(w) for w in active_dead]
        alive_rels = set(range(n)) - set(dead_rels)
        holders = {
            dr: holder_for(dr, n, res.replication, alive_rels)
            for dr in dead_rels
        }
        me_old = old_group.rel(self.world_rank)

        # every rank derives every holder's adopted row set from the
        # (shared) bounds; the holder additionally replays the payload.
        # ``replayed`` counts row-installs the same way on every rank
        # (the checkpoint-freshness invariant makes the replica's shape
        # derivable from the shared bounds), so the recorded event does
        # not depend on which rank appends it.
        adopted_by_world: dict[int, IntervalSet] = {}
        replayed = 0
        for dr, hrel in holders.items():
            rows = IntervalSet.from_bounds(self.bounds[dr])
            hw = old_group.world(hrel)
            adopted_by_world[hw] = \
                adopted_by_world.get(hw, IntervalSet.empty()) | rows
            replayed += sum(
                len(rows.clip(0, arr.n_rows - 1))
                for arr in self.arrays.values()
            )
            if hrel == me_old:
                ckpt = self._ckpt_store.get(old_group.world(dr))
                if ckpt is None:
                    raise CheckpointLostError(
                        f"rank {self.world_rank} elected holder for dead "
                        f"rank {old_group.world(dr)} but holds no replica"
                    )
                ckpt.restore(self.arrays)

        new_world = tuple(w for w in old_group.ranks if w not in active_dead)
        old_bounds = []
        for w in new_world:
            own = IntervalSet.from_bounds(self.bounds[old_group.rel(w)])
            own = own | adopted_by_world.get(w, IntervalSet.empty())
            old_bounds.append(own if own else None)

        shares = np.ones(len(new_world)) / len(new_world)
        nd = shares_to_blocks(self.loop_size, shares, self.row_weights)
        group = self.job.group_for(new_world)
        needed = self._needed(nd.bounds)
        yield from redistribute(
            self.ep, group, tuple(old_bounds), nd.bounds,
            self.arrays, needed, self.job.mem_model,
            memory_bytes=self.job.cluster.spec.node.memory_bytes,
        )
        self.active_group = group
        self.bounds = tuple(nd.bounds)
        self.loads = np.ones(group.size, dtype=int)
        self.monitor.rebase([1] * group.size)
        self.mode = self.MODE_NORMAL
        self._grace = {}
        self._grace_count = 0
        self._post_times = []
        self._ckpt_due = True  # re-cover the new group immediately
        for w in active_dead:
            self._ckpt_store.discard(w)
        detail.update({
            "holders": {
                int(old_group.world(dr)): int(old_group.world(hrel))
                for dr, hrel in holders.items()
            },
            "adopted_rows": sum(len(r) for r in adopted_by_world.values()),
            "replayed_installs": replayed,
        })

    # ------------------------------------------------------------------
    # node rejoin (paper Section 2.2 "potentially later add back" /
    # Section 6 future work) — enabled with RuntimeSpec.allow_rejoin
    # ------------------------------------------------------------------
    def _removed_cycle(self) -> Generator:
        """One phase cycle on a physically removed rank: publish the
        local load to the active root and consume the root's per-cycle
        token, which either keeps us parked or re-admits us."""
        self.ep.isend(self._token_root, _LOAD_TAG,
                      (self.world_rank, int(self.job.ps.load(self.node_id))))
        token, _ = yield from self.ep.recv(tag=_TOKEN_TAG)
        kind, root, payload = token
        self._token_root = root
        if kind == "rejoin":
            new_world, old_bounds, new_bounds = payload
            yield from self._apply_rejoin(new_world, old_bounds, new_bounds)
        elif kind == "dead":
            # this parked rank's node crashed: the root's token is its
            # death sentence (the one message it still consumes)
            yield from terminate_rank(self, reason="crashed while parked")
        elif kind == "noop" and payload:
            # keep the death record current so the notifier choice
            # stays consistent across parked and active ranks
            self.dead_world.update(payload)

    def _poll_rejoin_candidates(self) -> tuple:
        """(active rel 0 only) Drain pending load updates from removed
        ranks; return the world ranks whose load has cleared."""
        if self.rel_rank() != 0:
            return ()
        updates = {}
        while self.ep.iprobe(tag=_LOAD_TAG) is not None:
            req = self.ep.irecv(tag=_LOAD_TAG)
            if not req.test():
                break
            (world, load), _status = req._value
            updates[world] = load
        self._removed_loads.update(updates)
        removed = set(self._removed_world_ranks())
        return tuple(sorted(
            w for w, load in self._removed_loads.items()
            if w in removed and load <= 1
        ))

    def _send_tokens(self, rejoining: tuple) -> Generator:
        """(active rel 0 only) One token per removed rank per cycle."""
        if self.rel_rank() != 0:
            return
        removed = self._removed_world_ranks()
        if not removed:
            return
        payload = None
        if rejoining:
            new_world, old_bounds, new_bounds = self._rejoin_plan(rejoining)
            payload = (new_world, old_bounds, new_bounds)
        dead = tuple(sorted(self.dead_world)) or None
        for w in removed:
            if rejoining and w in rejoining:
                self.ep.isend(w, _TOKEN_TAG, ("rejoin", self.world_rank, payload))
            else:
                self.ep.isend(w, _TOKEN_TAG, ("noop", self.world_rank, dead))
        return
        yield  # pragma: no cover - keeps this a generator

    def _rejoin_plan(self, rejoining: tuple):
        """Deterministic rejoin plan every participant derives or
        receives identically: the new world rank list, the current
        ownership expressed in the new group's rel space, and the new
        even-by-weight distribution."""
        new_world = tuple(sorted(set(self.active_group.ranks) | set(rejoining)))
        old_bounds = tuple(
            self.bounds[self.active_group.rel(w)] if w in self.active_group else None
            for w in new_world
        )
        weights = self.row_weights
        shares = np.ones(len(new_world)) / len(new_world)
        nd = shares_to_blocks(self.loop_size, shares, weights)
        return new_world, old_bounds, nd.bounds

    def _perform_rejoin(self, rejoining: tuple) -> Generator:
        """(all active ranks) Re-admit ``rejoining`` world ranks."""
        new_world, old_bounds, new_bounds = self._rejoin_plan(rejoining)
        group = self.job.group_for(new_world)
        needed = self._needed(new_bounds)
        yield from redistribute(
            self.ep, group, old_bounds, new_bounds,
            self.arrays, needed, self.job.mem_model,
            memory_bytes=self.job.cluster.spec.node.memory_bytes,
        )
        was_rel0 = self.rel_rank() == 0
        self.active_group = group
        self.bounds = tuple(new_bounds)
        self.monitor.rebase([1] * group.size)
        self.mode = self.MODE_NORMAL
        self._ckpt_due = True  # cover the rejoined member right away
        for w in rejoining:
            self._removed_loads.pop(w, None)
        if was_rel0:
            self.job.obs.adaptation(
                "rejoin",
                cycle=self.cycle,
                time=self.job.cluster.sim.now,
                detail={"rejoined_world": list(rejoining)},
            )

    def _apply_rejoin(self, new_world, old_bounds, new_bounds) -> Generator:
        """(rejoining rank) Participate in the re-admission exchange."""
        group = self.job.group_for(tuple(new_world))
        needed = self._needed(tuple(new_bounds))
        yield from redistribute(
            self.ep, group, tuple(old_bounds), tuple(new_bounds),
            self.arrays, needed, self.job.mem_model,
            memory_bytes=self.job.cluster.spec.node.memory_bytes,
        )
        self.active = True
        self.active_group = group
        self.bounds = tuple(new_bounds)
        self.monitor.rebase([1] * group.size)
        self.mode = self.MODE_NORMAL
        self._ckpt_due = True  # rejoined rank holds no current replicas
        self._cycle_t0 = self.job.hr.read()

    def _enter_grace(self) -> None:
        if (
            self.spec.max_redistributions
            and self.n_redistributions >= self.spec.max_redistributions
        ):
            return  # redistribution budget exhausted (Figure 5 "Once")
        self.mode = self.MODE_GRACE
        self._grace = {}
        self._grace_count = 0
        if self.obs is not None and self.rel_rank() == 0:
            self.obs.instant(
                "adapt.grace_enter", cat="adapt", pid=JOB_PID, tid=0,
                cycle=self.cycle,
                loads=[] if self.loads is None else self.loads.tolist(),
            )

    def end_cycle(self) -> Generator:
        if not self.active:
            return
        now = self.job.hr.read()
        cycle_time = now - self._cycle_t0
        self.cycle_times.append(cycle_time)
        self.cycle_stamps.append((self._cycle_t0, now))
        if self.obs is not None:
            self.obs.complete(
                "cycle", self._cycle_t0, t1=now, cat="cycle",
                pid=self.node_id, tid=self.world_rank,
                cycle=self.cycle, mode=self.mode,
            )
        if not self.job.adaptive:
            return
        if self.mode == self.MODE_GRACE:
            self._grace_count += 1
            if self._grace_count >= self.spec.grace_period:
                yield from self._redistribute()
        elif self.mode == self.MODE_POST:
            self._post_count += 1
            self._post_times.append(cycle_time)
            if self._post_count >= self.spec.post_redist_period:
                yield from self._consider_drop()

    # ------------------------------------------------------------------
    # computation (instrumented during the grace period)
    # ------------------------------------------------------------------
    def compute(
        self,
        phase_id: int,
        work_of_rows: Callable[[int, int], np.ndarray],
        exec_rows: Optional[Callable[[int, int], None]] = None,
        rows: Optional[tuple[int, int]] = None,
    ) -> Generator:
        """Run this rank's share of phase ``phase_id``.

        ``work_of_rows(s, e)`` returns per-row work units for rows
        ``s..e`` inclusive (the application's cost surrogate — on a
        real system this is simply the rows' execution).  ``exec_rows``
        optionally performs the real numpy computation for those rows.

        ``rows`` restricts the call to a sub-range of the owned rows —
        applications that overlap communication with computation run
        the interior first, then the boundary rows after their ghosts
        arrive.  A phase's sub-range calls may be split arbitrarily as
        long as each cycle covers every owned row exactly once.

        During the grace period the rows run one at a time with timer
        reads around each, exactly how Dyn-MPI measures unloaded
        iteration times; otherwise the whole block runs as one compute.
        """
        if phase_id not in self.phases:
            raise RegistrationError(f"unknown phase {phase_id}")
        if not self.active:
            return
        os_, oe = self.my_bounds()
        if oe < os_:
            return
        if rows is None:
            s, e = os_, oe
        else:
            s, e = rows
            if e < s:
                return
            if s < os_ or e > oe:
                raise RegistrationError(
                    f"compute rows ({s},{e}) outside owned bounds ({os_},{oe})"
                )
        works = np.asarray(work_of_rows(s, e), dtype=float)
        if works.shape != (e - s + 1,):
            raise RegistrationError(
                f"work_of_rows returned shape {works.shape}, expected {(e - s + 1,)}"
            )
        obs = self.obs
        n_rows = e - s + 1  # the grace branch rebinds ``rows`` below
        t0 = obs.now() if obs is not None else 0.0
        if self.mode == self.MODE_GRACE and self.job.adaptive:
            key = (phase_id, s, e)
            rows = list(range(s, e + 1))
            samples = self._grace.get(key)
            if samples is None or samples.rows != rows:
                samples = GraceSamples(rows)
                self._grace[key] = samples
            hr_row = np.empty(len(rows))
            proc_row = np.empty(len(rows))
            hr = self.job.hr
            pc = self.proc_clock
            for i, g in enumerate(rows):
                t0h, t0p = hr.read(), pc.read()
                yield Compute(float(works[i]))
                if exec_rows is not None:
                    exec_rows(g, g)
                t1h, t1p = hr.read(), pc.read()
                hr_row[i] = hr.interval(t0h, t1h)
                proc_row[i] = t1p - t0p
            samples.add_cycle(hr_row, proc_row)
        else:
            yield Compute(float(works.sum()))
            if exec_rows is not None:
                exec_rows(s, e)
        if obs is not None:
            obs.complete(
                "compute", t0, cat="compute",
                pid=self.node_id, tid=self.world_rank,
                phase=phase_id, mode=self.mode, rows=n_rows,
            )

    # ------------------------------------------------------------------
    # adaptation internals
    # ------------------------------------------------------------------
    def _needed(self, bounds) -> list[dict[str, IntervalSet]]:
        array_rows = {name: arr.n_rows for name, arr in self.arrays.items()}
        # memoized on the job: all ranks of a collective epoch pass
        # identical inputs (DRSDs are frozen dataclasses, so the key
        # is by value — ranks with divergent registrations would miss,
        # not collide).  The value is shared, which is safe because
        # IntervalSet is immutable and callers only read the map.
        key = (
            tuple(bounds),
            tuple((pid, tuple(ph.accesses))
                  for pid, ph in sorted(self.phases.items())),
            tuple(sorted(array_rows.items())),
        )
        cache = self.job._needed_cache
        hit = cache.get(key)
        if hit is None:
            if len(cache) >= 8:
                cache.clear()
            hit = cache[key] = needed_map(self.phases, bounds, array_rows)
        return hit

    def _patterns(self) -> list[PhasePattern]:
        return [p.pattern for p in self.phases.values()]

    def _estimate_my_rows(self) -> tuple[list[int], np.ndarray]:
        """Combine per-(phase, sub-range) grace samples into per-row
        unloaded times (seconds per iteration, summed over phases)."""
        s, e = self.my_bounds()
        rows = list(range(s, e + 1)) if e >= s else []
        total = np.zeros(len(rows))
        source = "none"
        for _key, samples in self._grace.items():
            est, source = estimate_unloaded_times(
                samples, self.spec.hrtimer_threshold
            )
            for g, value in zip(samples.rows, est):
                if not (s <= g <= e):
                    raise SimulationError(
                        "grace samples out of sync with loop bounds"
                    )
                total[g - s] += value
        self.last_estimate_source = source
        return rows, total

    def _redistribute(self) -> Generator:
        t0 = self.job.hr.read()
        rows, est = self._estimate_my_rows()
        gathered = yield from coll.allgather_dissemination(
            self.ep, self.active_group, (rows, est)
        )
        weights = np.zeros(self.loop_size)
        for rws, ests in gathered:
            if len(rws):
                weights[np.asarray(rws, dtype=int)] = ests
        # guard against zero measurements (a row that never got timed
        # cannot be weightless or the block split degenerates); no
        # upper clipping — genuinely heavy rows are exactly what the
        # unbalanced-computation support must preserve (Section 5.4)
        positive = weights[weights > 0]
        if positive.size:
            weights = np.maximum(weights, float(positive.min()) * 1e-3)
        else:
            weights = np.maximum(weights, 1.0)
        self.row_weights = weights

        total_work = float(weights.sum()) * self.job.ref_speed
        avails = (self.job.ref_speed / np.maximum(self.loads, 1)).astype(float)
        result = successive_balance(
            total_work, avails, self.loads, self._patterns(),
            self.job.comm_model, self.loop_size,
            tol=self.spec.balance_tol, max_rounds=self.spec.balance_max_rounds,
        )
        new_dist = shares_to_blocks(self.loop_size, result.shares, weights)
        yield from self._apply_bounds(new_dist.bounds)

        self.mode = self.MODE_POST
        self._post_count = 0
        self._post_times = []
        self._grace = {}
        self.n_redistributions += 1
        if self.rel_rank() == 0:
            self.job.obs.adaptation(
                "redistribute",
                cycle=self.cycle,
                time=self.job.cluster.sim.now,
                duration=self.job.hr.read() - t0,
                detail={
                    "shares": result.shares.tolist(),
                    "loads": self.loads.tolist(),
                    "source": self.last_estimate_source,
                    "rounds": result.rounds,
                },
            )

    def _apply_bounds(self, new_bounds) -> Generator:
        t0 = self.obs.now() if self.obs is not None else 0.0
        if self.job.cluster.sanitizer is not None:
            # dynsan self-check: verify the Section 4.4 invariants of
            # the derived plan before any row moves (raises PlanCheckError)
            from ..analysis.plancheck import verify_transition
            array_rows = {name: arr.n_rows for name, arr in self.arrays.items()}
            verify_transition(self.bounds, tuple(new_bounds), self.phases,
                              array_rows)
        needed = self._needed(new_bounds)
        if self.obs is not None:
            # plan derivation is pure computation (no simulated time):
            # a zero-duration marker carrying the plan's span count
            self.obs.complete(
                "redist.plan", t0, t1=t0, cat="redist",
                pid=self.node_id, tid=self.world_rank, cycle=self.cycle,
                spans=sum(len(iv.spans) for per in needed
                          for iv in per.values()),
            )
        report = yield from redistribute(
            self.ep, self.active_group, self.bounds, new_bounds,
            self.arrays, needed, self.job.mem_model,
            memory_bytes=self.job.cluster.spec.node.memory_bytes,
        )
        self.bounds = tuple(new_bounds)
        self._ckpt_due = True  # stored replicas must match the new bounds
        if self.obs is not None:
            self.obs.complete(
                "redist.apply", t0, cat="redist",
                pid=self.node_id, tid=self.world_rank,
                cycle=self.cycle,
                rows_sent=report.rows_sent,
                rows_received=report.rows_received,
                bytes_sent=report.bytes_sent,
            )
        return report

    def _consider_drop(self) -> Generator:
        avg = float(np.mean(self._post_times)) if self._post_times else 0.0
        avgs = yield from coll.allgather_dissemination(
            self.ep, self.active_group, avg
        )
        measured_max = max(avgs)
        total_work = float(self.row_weights.sum()) * self.job.ref_speed
        decision = evaluate_drop(
            self.loads, [self.job.ref_speed] * self.active_group.size,
            total_work, self._patterns(), self.job.comm_model,
            self.loop_size, measured_max, self.spec,
        )
        self.mode = self.MODE_NORMAL
        if self.obs is not None and self.rel_rank() == 0:
            self.obs.instant(
                "adapt.drop_decision", cat="adapt", pid=JOB_PID, tid=0,
                cycle=self.cycle,
                predicted=decision.predicted_time,
                measured=decision.measured_time,
                drop=decision.drop,
            )
        if not decision.drop:
            return
        if self.spec.drop_mode == "physical":
            yield from self._physical_drop(decision)
        else:
            yield from self._logical_drop(decision)

    def _physical_drop(self, decision) -> Generator:
        group = self.active_group
        n = group.size
        removed = set(decision.removed)
        kept = [r for r in range(n) if r not in removed]
        shares_full = np.zeros(n)
        shares_full[kept] = decision.keep_shares
        nd = shares_to_blocks(self.loop_size, shares_full, self.row_weights)
        yield from self._apply_bounds(nd.bounds)

        new_world = tuple(group.world(r) for r in kept)
        was_rel0 = self.rel_rank() == 0
        if self.world_rank not in new_world:
            self.active = False
            self._token_root = new_world[0]
        self.active_group = self.job.group_for(new_world)
        self.bounds = tuple(nd.bounds[r] for r in kept)
        self.loads = self.loads[kept]
        self.monitor.rebase(self.loads)
        if was_rel0:
            self.job.obs.adaptation(
                "drop",
                cycle=self.cycle,
                time=self.job.cluster.sim.now,
                detail={
                    "removed_world": [group.world(r) for r in sorted(removed)],
                    "predicted": decision.predicted_time,
                    "measured": decision.measured_time,
                },
            )

    def _logical_drop(self, decision) -> Generator:
        """Assign removed-candidate nodes a minimal number of rows so
        ranks stay static (the paper's logical-dropping alternative)."""
        group = self.active_group
        n = group.size
        removed = sorted(decision.removed)
        removed_set = frozenset(removed)
        kept = [r for r in range(n) if r not in removed_set]
        min_rows = self.spec.logical_min_rows
        weights = self.row_weights
        # build bounds directly: removed nodes get min_rows rows at their
        # rank position; the rest is split by the kept shares
        counts = np.zeros(n, dtype=int)
        for r in removed:
            counts[r] = min_rows
        free_rows = self.loop_size - counts.sum()
        if free_rows <= 0:
            raise SimulationError("logical drop leaves no rows for active nodes")
        keep_shares = np.asarray(decision.keep_shares, dtype=float)
        kept_counts = np.maximum(np.rint(keep_shares * free_rows).astype(int), 0)
        # fix rounding to hit the total exactly
        diff = free_rows - kept_counts.sum()
        order = np.argsort(-keep_shares)
        i = 0
        while diff != 0 and len(kept) > 0:
            j = order[i % len(kept)]
            step = 1 if diff > 0 else -1
            if kept_counts[j] + step >= 0:
                kept_counts[j] += step
                diff -= step
            i += 1
        for idx, r in enumerate(kept):
            counts[r] = kept_counts[idx]
        bounds = []
        lo = 0
        for r in range(n):
            if counts[r] == 0:
                bounds.append(None)
            else:
                bounds.append((lo, lo + counts[r] - 1))
                lo += counts[r]
        yield from self._apply_bounds(tuple(bounds))
        if self.rel_rank() == 0:
            self.job.obs.adaptation(
                "logical_drop",
                cycle=self.cycle,
                time=self.job.cluster.sim.now,
                detail={"removed_rel": removed,
                        "predicted": decision.predicted_time,
                        "measured": decision.measured_time},
            )
