"""Load-change detection (paper Section 4.2).

"Our policy is to check system load at every phase cycle and
redistribute if any change is detected."  :class:`LoadMonitor` keeps
the last agreed-upon load vector and reports changes; the runtime
feeds it the allgathered ``dmpi_ps`` samples of the active group.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["LoadMonitor"]


class LoadMonitor:
    def __init__(self) -> None:
        self._last: Optional[tuple[int, ...]] = None
        self.n_changes = 0
        self.change_cycles: list[int] = []

    @property
    def last(self) -> Optional[tuple[int, ...]]:
        return self._last

    def observe(self, loads: Sequence[int], cycle: int) -> bool:
        """Record ``loads``; True if they differ from the last
        observation (the redistribution trigger)."""
        loads = tuple(int(v) for v in loads)
        changed = self._last is not None and loads != self._last
        if self._last is None:
            self._last = loads
            return False
        if changed:
            self.n_changes += 1
            self.change_cycles.append(cycle)
            self._last = loads
        return changed

    def rebase(self, loads: Sequence[int]) -> None:
        """Reset the baseline (after a group change, the vector length
        changes)."""
        self._last = tuple(int(v) for v in loads)
