"""Load-change and failure detection (paper Section 4.2 + resilience).

"Our policy is to check system load at every phase cycle and
redistribute if any change is detected."  :class:`LoadMonitor` keeps
the last agreed-upon load vector and reports changes; the runtime
feeds it the allgathered ``dmpi_ps`` samples of the active group.

:class:`FailureDetector` layers crash *suspicion* on the same 1 Hz
``dmpi_ps`` sampling: a node whose daemon has not heartbeat within the
timeout — or whose monitored application processes have all died — is
suspected dead.  Only relative-rank-0 consults the detector; its
verdict rides the per-cycle control allgather so every rank acts on
one consistent view (see ``DynMPI.begin_cycle``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["LoadMonitor", "FailureDetector"]


class LoadMonitor:
    def __init__(self) -> None:
        self._last: Optional[tuple[int, ...]] = None
        self.n_changes = 0
        self.change_cycles: list[int] = []

    @property
    def last(self) -> Optional[tuple[int, ...]]:
        return self._last

    def observe(self, loads: Sequence[int], cycle: int) -> bool:
        """Record ``loads``; True if they differ from the last
        observation (the redistribution trigger)."""
        loads = tuple(int(v) for v in loads)
        changed = self._last is not None and loads != self._last
        if self._last is None:
            self._last = loads
            return False
        if changed:
            self.n_changes += 1
            self.change_cycles.append(cycle)
            self._last = loads
        return changed

    def rebase(self, loads: Sequence[int]) -> None:
        """Reset the baseline (after a group change, the vector length
        changes)."""
        self._last = tuple(int(v) for v in loads)


class FailureDetector:
    """Heartbeat-staleness crash suspicion over ``dmpi_ps`` samples.

    ``ps`` needs ``last_sample_time(node_id)`` and ``app_alive(node_id)``
    (both on :class:`repro.sysmon.dmpi_ps.DmpiPs`); ``timeout`` is the
    staleness bound in simulated seconds, typically
    ``ResilienceSpec.resolve_timeout(daemon_interval)``.
    """

    def __init__(self, ps, timeout: float, now=None) -> None:
        if timeout <= 0:
            raise ValueError("failure-detector timeout must be positive")
        self.ps = ps
        self.timeout = timeout
        self._now = now if now is not None else (lambda: ps.cluster.sim.now)
        self.suspected_log: list[tuple[float, int]] = []
        self._already: set[int] = set()

    def suspect(self, node_id: int) -> bool:
        """Is ``node_id`` suspected dead right now?"""
        now = self._now()
        # boot (t=0) counts as an implicit heartbeat so a daemon that
        # simply hasn't phased in yet is not suspected
        last = max(self.ps.last_sample_time(node_id), 0.0)
        stale = now - last > self.timeout
        dead_app = not self.ps.app_alive(node_id)
        suspected = stale or dead_app
        if suspected and node_id not in self._already:
            self._already.add(node_id)
            self.suspected_log.append((now, node_id))
        return suspected

    def sweep(self, node_ids: Iterable[int]) -> list[int]:
        """The subset of ``node_ids`` currently suspected dead."""
        return [n for n in node_ids if self.suspect(n)]

    def detection_latency(self, node_id: int, fail_time: float) -> Optional[float]:
        """Seconds from the injected failure to first suspicion, if
        ``node_id`` was ever suspected."""
        for t, n in self.suspected_log:
            if n == node_id:
                return t - fail_time
        return None
