"""Work distribution: naive relative power vs successive balancing
(paper Section 4.3).

The model behind both: node ``i`` with available power ``P_i`` (work
units/second the app actually gets) assigned work share ``s_i`` of a
cycle's total ``W`` work units, paying ``C_i`` CPU work units and
``X_i`` exposed wire seconds for its communication, completes a phase
cycle in::

    T_i(s_i) = (s_i * W + C_i) / P_i + X_i

* ``naive_shares`` ignores C and X entirely (the relative-power rule
  of CRAUL [2]) — communication still *happens*, so the loaded node,
  which pays for it with CPU it does not have, becomes the straggler.
* ``closed_form_shares`` solves the equal-completion-time system
  exactly (with clamping for nodes whose fair share would be
  negative).
* ``successive_balance`` is the paper's iterative algorithm: rounds of
  two-node balances between each loaded node and a representative
  unloaded node, the remainder re-balanced among the unloaded nodes,
  until the unloaded assignment stops changing.  It converges to the
  closed form (a property the test suite checks) while matching the
  paper's description operationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import DistributionError
from .commcost import CommCostModel, PhasePattern
from .power import naive_shares

__all__ = [
    "BalanceResult",
    "comm_terms",
    "predict_times",
    "closed_form_shares",
    "successive_balance",
]


@dataclass(frozen=True)
class BalanceResult:
    shares: np.ndarray          # work share per relative rank (sums to 1)
    predicted_times: np.ndarray  # predicted cycle seconds per relative rank
    rounds: int                 # balancing rounds used

    @property
    def predicted_cycle_time(self) -> float:
        return float(self.predicted_times.max())


def comm_terms(
    n: int,
    counts: Sequence[int],
    patterns: Sequence[PhasePattern],
    model: CommCostModel,
) -> tuple[np.ndarray, np.ndarray]:
    """(CPU work units, exposed wire seconds) per node per cycle.

    Accumulates each pattern's batched ``comm_cost_all`` — elementwise
    identical (same additions, same order) to the per-rank double loop
    it replaces, but O(n) instead of O(n^2) per pattern."""
    cpu = np.zeros(n)
    wire = np.zeros(n)
    for pat in patterns:
        c, x = pat.comm_cost_all(n, counts, model)
        cpu += c
        wire += x
    return cpu, wire


def predict_times(
    shares: Sequence[float],
    total_work: float,
    avails: Sequence[float],
    patterns: Sequence[PhasePattern],
    model: CommCostModel,
    n_rows: int,
) -> np.ndarray:
    """Predicted per-node cycle time for a candidate distribution."""
    shares = np.asarray(shares, dtype=float)
    avails = np.asarray(avails, dtype=float)
    n = shares.size
    counts = np.rint(shares * n_rows).astype(int)
    cpu, wire = comm_terms(n, counts, patterns, model)
    return (shares * total_work + cpu) / avails + wire


def closed_form_shares(
    total_work: float,
    avails: Sequence[float],
    patterns: Sequence[PhasePattern],
    model: CommCostModel,
    n_rows: int,
    _inner_iters: int = 3,
) -> BalanceResult:
    """Equal-completion-time solution of the cost model.

    Solves ``T_i(s_i) = T`` for all i with ``sum s_i = 1``; nodes whose
    solution would be negative are clamped to zero and the system
    re-solved over the rest.  Because comm terms depend (weakly) on the
    row counts, the solve is repeated ``_inner_iters`` times with
    updated counts.
    """
    avails = np.asarray(avails, dtype=float)
    n = avails.size
    if n == 0:
        raise DistributionError("need at least one node")
    if np.any(avails <= 0):
        raise DistributionError("available powers must be positive")
    if total_work <= 0:
        raise DistributionError("total work must be positive")

    shares = naive_shares(avails)
    banned = np.zeros(n, dtype=bool)  # sticky zero-share clamps
    new = np.zeros(n)  # clamp scratch, zeroed and refilled per pass
    for _ in range(_inner_iters):
        counts = np.rint(shares * n_rows).astype(int)
        cpu, wire = comm_terms(n, counts, patterns, model)
        active = ~banned
        if not active.any():
            raise DistributionError("no node can take any work")
        new[:] = 0.0
        for _clamp in range(n):
            p, c, x = avails[active], cpu[active], wire[active]
            t_star = (total_work + c.sum() + (p * x).sum()) / p.sum()
            s = (p * (t_star - x) - c) / total_work
            if np.all(s >= -1e-12):
                new[active] = np.clip(s, 0.0, None)
                break
            # clamp the most negative node to zero and re-solve
            idx = np.flatnonzero(active)
            worst = idx[np.argmin(s)]
            active[worst] = False
            banned[worst] = True
            new[worst] = 0.0
            if not active.any():
                raise DistributionError("no node can take any work")
        shares = new / new.sum()
    times = predict_times(shares, total_work, avails, patterns, model, n_rows)
    return BalanceResult(shares, times, rounds=0)


def successive_balance(
    total_work: float,
    avails: Sequence[float],
    loads: Sequence[int],
    patterns: Sequence[PhasePattern],
    model: CommCostModel,
    n_rows: int,
    tol: float = 1e-3,
    max_rounds: int = 50,
) -> BalanceResult:
    """The paper's successive balancing (Section 4.3).

    Each round: (1) for every loaded node, a two-node balance against a
    representative unloaded node fixes the loaded node's share; (2) the
    remaining work is balanced among the unloaded nodes.  Rounds repeat
    until the unloaded assignment changes by less than ``tol``.
    """
    avails = np.asarray(avails, dtype=float)
    loads = np.asarray(loads, dtype=float)
    n = avails.size
    if loads.shape != avails.shape:
        raise DistributionError("loads and avails must have the same shape")
    if np.any(avails <= 0):
        raise DistributionError("available powers must be positive")
    if total_work <= 0:
        raise DistributionError("total work must be positive")

    loaded = loads > 1.0
    if not loaded.any() or loaded.all():
        # no pairing possible; fall back to the global solve
        result = closed_form_shares(total_work, avails, patterns, model, n_rows)
        return BalanceResult(result.shares, result.predicted_times, rounds=0)

    unloaded = ~loaded
    shares = naive_shares(avails)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        counts = np.rint(shares * n_rows).astype(int)
        cpu, wire = comm_terms(n, counts, patterns, model)

        # representative unloaded node: the one with median power
        u_idx = np.flatnonzero(unloaded)
        rep = u_idx[np.argsort(avails[u_idx])[len(u_idx) // 2]]
        t_ref = (shares[rep] * total_work + cpu[rep]) / avails[rep] + wire[rep]

        # (1) two-node balance for each loaded node against the rep
        new = shares.copy()
        for l in np.flatnonzero(loaded):
            s_l = (avails[l] * (t_ref - wire[l]) - cpu[l]) / total_work
            new[l] = min(max(s_l, 0.0), 1.0)

        # (2) balance the remainder among the unloaded nodes
        rem = 1.0 - new[loaded].sum()
        if rem <= 0.0:
            # loaded nodes would take everything: cap them, give the
            # unloaded nodes a proportional floor
            new[loaded] *= 0.5 / new[loaded].sum()
            rem = 0.5
        p_u = avails[u_idx]
        c_u, x_u = cpu[u_idx], wire[u_idx]
        t_u = (rem * total_work + c_u.sum() + (p_u * x_u).sum()) / p_u.sum()
        s_u = np.clip((p_u * (t_u - x_u) - c_u) / total_work, 0.0, None)
        if s_u.sum() <= 0:
            s_u = naive_shares(p_u) * rem
        else:
            s_u *= rem / s_u.sum()

        delta = np.abs(new[u_idx] - shares[u_idx]).max() if rounds > 1 else np.inf
        delta = min(delta, np.abs(s_u - shares[u_idx]).max())
        new[u_idx] = s_u
        shares = new / new.sum()
        if delta < tol:
            break

    times = predict_times(shares, total_work, avails, patterns, model, n_rows)
    return BalanceResult(shares, times, rounds=rounds)
