"""The paper's C-style API, verbatim (Figure 2 compatibility layer).

Programs can be written against the exact names the paper uses —
``DMPI_init``, ``DMPI_register_dense_array``, ``DMPI_get_start_iter``,
``DMPI_participating``, ``DMPI_Send`` … — bound to a rank's
:class:`~repro.core.runtime.DynMPI` context through :class:`DMPI`.
This exists so the paper's Figure 2 program transliterates one-to-one
(see ``tests/test_capi.py`` for that exact program); new code should
prefer the Pythonic :class:`DynMPI` methods.

Constants mirror the paper's:

* ``DMPI_BLOCK`` / ``DMPI_CYCLIC`` — distribution selectors;
* ``DMPI_READ`` / ``DMPI_WRITE`` / ``DMPI_READWRITE`` — access modes;
* ``DMPI_NEAREST_NEIGHBOR`` / ``DMPI_ALLGATHER`` /
  ``DMPI_ALLREDUCE`` — phase communication patterns.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from ..errors import RegistrationError
from .commcost import NearestNeighbor, NoComm, RingAllgather, ScalarAllreduce
from .drsd import AccessMode
from .runtime import DynMPI

__all__ = [
    "DMPI",
    "DMPI_BLOCK",
    "DMPI_CYCLIC",
    "DMPI_READ",
    "DMPI_WRITE",
    "DMPI_READWRITE",
    "DMPI_NEAREST_NEIGHBOR",
    "DMPI_ALLGATHER",
    "DMPI_ALLREDUCE",
    "DMPI_NOCOMM",
]

DMPI_BLOCK = "block"
DMPI_CYCLIC = "cyclic"
DMPI_READ = AccessMode.READ
DMPI_WRITE = AccessMode.WRITE
DMPI_READWRITE = AccessMode.READWRITE
DMPI_NEAREST_NEIGHBOR = "nearest_neighbor"
DMPI_ALLGATHER = "allgather"
DMPI_ALLREDUCE = "allreduce"
DMPI_NOCOMM = "nocomm"


class DMPI:
    """Paper-named wrapper around one rank's :class:`DynMPI` context."""

    def __init__(self, ctx: DynMPI):
        self.ctx = ctx
        self._n_procs: Optional[int] = None
        self._distribution = DMPI_BLOCK
        self._pending_phase_pattern: dict[int, str] = {}

    # -- DMPI_init(num_processors, num_phases, num_arrays, distribution)
    def DMPI_init(self, num_processors: int, num_phases: int,
                  num_arrays: int, distribution: str = DMPI_BLOCK) -> None:
        if num_processors != self.ctx.ep.size:
            raise RegistrationError(
                f"DMPI_init expected {self.ctx.ep.size} processors, "
                f"got {num_processors}"
            )
        if distribution not in (DMPI_BLOCK, DMPI_CYCLIC):
            raise RegistrationError(f"unknown distribution {distribution!r}")
        if distribution == DMPI_CYCLIC:
            raise RegistrationError(
                "the runtime currently redistributes block distributions "
                "only (cyclic is supported at the distribution layer)"
            )
        self._distribution = distribution
        self._declared = (num_phases, num_arrays)

    # -- DMPI_register_dense_array(name, &ptr, lo, hi, elem_size, type)
    def DMPI_register_dense_array(self, name: str, lo: int, hi: int,
                                  row_elems: int = 1, dtype=np.float64,
                                  materialized: bool = True):
        n_rows = hi - lo + 1
        shape = (n_rows, row_elems) if row_elems > 1 else (n_rows,)
        return self.ctx.register_dense(name, shape, dtype,
                                       materialized=materialized)

    def DMPI_register_sparse_array(self, name: str, n_rows: int,
                                   n_cols: int, dtype=np.float64):
        return self.ctx.register_sparse(name, (n_rows, n_cols), dtype)

    # -- DMPI_init_phase(lo, hi, pattern)
    def DMPI_init_phase(self, phase_id: int, lo: int, hi: int,
                        pattern: str = DMPI_NEAREST_NEIGHBOR,
                        row_nbytes: int = 8, total_nbytes: int = 0) -> None:
        n_iters = hi - lo + 1
        if pattern == DMPI_NEAREST_NEIGHBOR:
            pat = NearestNeighbor(row_nbytes=row_nbytes)
        elif pattern == DMPI_ALLGATHER:
            pat = RingAllgather(total_nbytes=total_nbytes or n_iters * 8)
        elif pattern == DMPI_ALLREDUCE:
            pat = ScalarAllreduce()
        elif pattern == DMPI_NOCOMM:
            pat = NoComm()
        else:
            raise RegistrationError(f"unknown phase pattern {pattern!r}")
        self.ctx.init_phase(phase_id, n_iters, pat)

    # -- DMPI_add_array_access(name, mode, coeff, offset)
    def DMPI_add_array_access(self, phase_id: int, name: str, mode: str,
                              lo_off: int = 0, hi_off: int = 0,
                              step: int = 1) -> None:
        self.ctx.add_array_access(phase_id, name, mode, lo_off, hi_off, step)

    def DMPI_commit(self) -> None:
        self.ctx.commit()

    # -- per-cycle queries ------------------------------------------------
    def DMPI_get_start_iter(self) -> int:
        return self.ctx.start_iter()

    def DMPI_get_end_iter(self) -> int:
        return self.ctx.end_iter()

    def DMPI_participating(self) -> bool:
        return self.ctx.participating()

    def DMPI_get_rel_rank(self, world_rank: Optional[int] = None) -> int:
        if world_rank is not None and world_rank != self.ctx.world_rank:
            return self.ctx.active_group.rel(world_rank)
        return self.ctx.rel_rank()

    def DMPI_get_num_active(self) -> int:
        return self.ctx.num_active()

    # -- cycle brackets ----------------------------------------------------
    def DMPI_begin_cycle(self) -> Generator:
        yield from self.ctx.begin_cycle()

    def DMPI_end_cycle(self) -> Generator:
        yield from self.ctx.end_cycle()

    def DMPI_compute(self, phase_id: int, work_of_rows,
                     exec_rows=None, rows=None) -> Generator:
        yield from self.ctx.compute(phase_id, work_of_rows, exec_rows, rows)

    # -- communication on relative ranks ------------------------------------
    def DMPI_Send(self, payload, dest_rel: int, tag: int = 0,
                  nbytes: Optional[int] = None) -> Generator:
        yield from self.ctx.send_rel(dest_rel, tag, payload, nbytes)

    def DMPI_Recv(self, source_rel: int, tag: int = 0) -> Generator:
        result = yield from self.ctx.recv_rel(source_rel, tag)
        return result

    def DMPI_Allreduce(self, value, op=None) -> Generator:
        from ..mpi.datatypes import SUM

        result = yield from self.ctx.allreduce_active(value, op or SUM)
        return result

    # -- sparse accessors (paper Section 2.2) --------------------------------
    def DMPI_sparse_iterator(self, name: str, row: Optional[int] = None):
        return self.ctx.arrays[name].iterator(row)
