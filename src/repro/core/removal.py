"""Node removal decisions (paper Sections 4.4 and 2.2).

After a redistribution, Dyn-MPI monitors for ``post_redist_period``
phase cycles, then compares the worst measured per-cycle time against
the *predicted* time of a configuration containing only unloaded nodes
— which can be predicted with high accuracy, because unloaded nodes
have no scheduling unpredictability.  If the prediction wins, the
loaded nodes are dropped.

Two drop modes:

* **physical** (paper default) — the node leaves the computation;
  relative ranks are reassigned, collectives shrink to the active
  group, and the removed node only receives *send-out* traffic.
* **logical** — the node stays but is assigned a minimal number of
  rows, so ranks stay static.  The paper notes the performance gap
  between the two can be significant; the ablation bench measures it.

``partial removal`` (the paper's future work) additionally evaluates
keeping subsets of the loaded nodes, using the load-scaled power
estimate the paper says would need better prediction — it is off by
default and exists for the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from ..config import RuntimeSpec
from ..errors import DistributionError
from .balance import closed_form_shares
from .commcost import CommCostModel, PhasePattern

__all__ = ["DropDecision", "evaluate_drop"]


@dataclass(frozen=True)
class DropDecision:
    drop: bool
    removed: tuple            # relative ranks (current group) to remove
    predicted_time: float     # predicted cycle time of the chosen config
    measured_time: float      # measured max avg cycle time that triggered it
    keep_shares: Optional[np.ndarray] = None  # shares over the kept nodes


def evaluate_drop(
    loads: Sequence[int],
    speeds: Sequence[float],
    total_work: float,
    patterns: Sequence[PhasePattern],
    model: CommCostModel,
    n_rows: int,
    measured_max: float,
    spec: RuntimeSpec,
) -> DropDecision:
    """Decide whether (and which) loaded nodes to remove.

    ``measured_max`` is the maximum over nodes of the average phase
    cycle time during the post-redistribution grace period.
    """
    loads = np.asarray(loads, dtype=int)
    speeds = np.asarray(speeds, dtype=float)
    n = loads.size
    if speeds.size != n:
        raise DistributionError("loads and speeds must have the same length")
    loaded = np.flatnonzero(loads > 1)
    unloaded = np.flatnonzero(loads <= 1)

    no_drop = DropDecision(False, (), float("nan"), measured_max)
    if not spec.allow_removal or loaded.size == 0 or unloaded.size == 0:
        return no_drop

    candidates: list[tuple[tuple, np.ndarray]] = []
    # the paper's candidate: all loaded nodes removed
    candidates.append((tuple(loaded), speeds[unloaded]))
    if spec.partial_removal:
        # future-work extension: keep some loaded nodes, with their
        # power discounted by measured load.  The candidate sweep is
        # combinatorial by design and gated off by default; it runs
        # once per adaptation decision, never per event.
        all_ranks = np.arange(n)
        for r in range(1, loaded.size):
            for keep_loaded in combinations(loaded, r):  # dynperf: ok
                removed_arr = np.setdiff1d(loaded, keep_loaded)
                kept = np.setdiff1d(all_ranks, removed_arr)
                avails = speeds[kept] / np.maximum(loads[kept], 1)
                candidates.append((tuple(int(x)  # dynperf: ok — per candidate
                                         for x in removed_arr), avails))

    best: Optional[tuple[float, tuple, np.ndarray]] = None
    for removed, avails in candidates:
        try:
            res = closed_form_shares(total_work, avails, patterns, model, n_rows)
        except DistributionError:
            continue
        pred = res.predicted_cycle_time
        if best is None or pred < best[0]:
            best = (pred, removed, res.shares)
    if best is None:
        return no_drop

    pred, removed, shares = best
    if pred * spec.drop_margin < measured_max:
        return DropDecision(True, removed, pred, measured_max, keep_shares=shares)
    return DropDecision(False, removed, pred, measured_max)
