"""Relative power estimation (paper Section 4.3, the "naive" input).

The relative power of a node is the fraction of its CPU the
application can expect: with ``load`` processes sharing the CPU
(``dmpi_ps`` counts the application itself, so load >= 1 on a node
running the app), the app receives ``speed / load`` work units per
second under fair time slicing.

``naive_shares`` is the distribution rule of Rencuzogullari &
Dwarkadas (CRAUL) that the paper improves on: work proportional to
relative power, ignoring the CPU cost of communication.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DistributionError

__all__ = ["available_powers", "naive_shares"]


def available_powers(speeds: Sequence[float], loads: Sequence[int]) -> np.ndarray:
    """Work units per second available to the app on each node."""
    speeds = np.asarray(speeds, dtype=float)
    loads = np.asarray(loads, dtype=float)
    if speeds.shape != loads.shape:
        raise DistributionError("speeds and loads must have the same shape")
    if np.any(speeds <= 0):
        raise DistributionError("node speeds must be positive")
    loads = np.maximum(loads, 1.0)  # the app itself always counts
    return speeds / loads


def naive_shares(powers: Sequence[float]) -> np.ndarray:
    """Work shares proportional to relative power."""
    powers = np.asarray(powers, dtype=float)
    if powers.size == 0:
        raise DistributionError("need at least one node")
    if np.any(powers < 0):
        raise DistributionError("powers must be non-negative")
    total = powers.sum()
    if total <= 0:
        raise DistributionError("total power is zero")
    return powers / total
