"""Set-based reference oracle for the interval data plane.

This module preserves the original O(rows·ranks·arrays) row-set
implementation of redistribution planning (and a dict-of-rows storage
stand-in) verbatim, as ground truth:

* property tests (``tests/test_intervals.py``,
  ``tests/test_prop_dmem.py``) check the interval plane row-for-row
  against these functions on randomized bounds/DRSDs;
* ``benchmarks/bench_plan_scaling.py`` times them against the interval
  plane to measure the speedup.

Nothing in the runtime imports this module on the hot path.  It is
deliberately per-row — the DYN401 lint rule that forbids row-membership
loops in ``core``/``resilience`` exempts this file by name.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import RedistributionError

__all__ = [
    "needed_map_sets",
    "owned_rows_set",
    "plan_sends_sets",
    "RowDictStore",
]

Bounds = Sequence[Optional[tuple[int, int]]]


def needed_map_sets(
    phases: Mapping[int, object],
    bounds: Bounds,
    array_rows: Mapping[str, int],
) -> list[dict[str, set]]:
    """The original per-row ``needed_map``: needed[rel][array] is a
    ``set`` of global rows, built by updating one row at a time."""
    n = len(bounds)
    needed: list[dict[str, set]] = [
        {name: set() for name in array_rows} for _ in range(n)
    ]
    for rel in range(n):
        b = bounds[rel]
        if b is None:
            continue
        s, e = b
        for phase in phases.values():
            for acc in phase.accesses:
                n_rows = array_rows.get(acc.array)
                if n_rows is None:
                    raise RedistributionError(
                        f"phase {phase.phase_id} accesses unregistered array "
                        f"{acc.array!r}"
                    )
                needed[rel][acc.array].update(acc.rows_needed(s, e, n_rows))
    return needed


def owned_rows_set(bounds: Bounds, rel: int) -> set:
    """The original ownership expansion: one set element per owned row."""
    b = bounds[rel]
    if b is None:
        return set()
    if isinstance(b, (set, frozenset)):
        return set(b)
    return set(range(b[0], b[1] + 1))


def plan_sends_sets(
    old_bounds: Bounds,
    needed: Sequence[Mapping[str, set]],
    array_names: Sequence[str],
) -> dict:
    """The original send rule evaluated with row sets:
    ``sends[(src, dst)][array]`` = sorted rows ``src`` packs for
    ``dst`` (``needed - dst_old`` intersected with ``src_old``),
    omitting empty transfers."""
    n = len(old_bounds)
    sends: dict = {}
    for src in range(n):
        src_old = owned_rows_set(old_bounds, src)
        if not src_old:
            continue
        for dst in range(n):
            if dst == src:
                continue
            dst_old = owned_rows_set(old_bounds, dst)
            for name in array_names:
                rows = sorted((set(needed[dst][name]) - dst_old) & src_old)
                if rows:
                    sends.setdefault((src, dst), {})[name] = rows
    return sends


class RowDictStore:
    """The original dict-of-rows dense storage: one independently
    allocated numpy buffer per held extended row, packed row by row.

    Mirrors the :class:`~repro.dmem.dense.ProjectedArray` surface the
    property tests and benches exercise (hold/drop/row/pack/unpack/
    retarget) without the allocation accounting."""

    def __init__(self, n_rows: int, row_elems: int, dtype=np.float64):
        self.n_rows = int(n_rows)
        self.row_elems = int(row_elems)
        self.dtype = np.dtype(dtype)
        self.row_nbytes = self.row_elems * self.dtype.itemsize
        self._rows: dict[int, np.ndarray] = {}

    def hold(self, rows) -> int:
        added = 0
        for g in rows:
            if g not in self._rows:
                self._rows[g] = np.zeros(self.row_elems, dtype=self.dtype)
                added += 1
        return added

    def drop(self, rows) -> int:
        dropped = 0
        for g in rows:
            if self._rows.pop(g, None) is not None:
                dropped += 1
        return dropped

    def held_rows(self) -> list:
        return sorted(self._rows)

    def holds(self, g: int) -> bool:
        return g in self._rows

    def row(self, g: int) -> np.ndarray:
        return self._rows[g]

    def pack(self, rows):
        rows = list(rows)
        out = np.empty((len(rows), self.row_elems), dtype=self.dtype)
        for i, g in enumerate(rows):
            out[i] = self._rows[g]
        return out, len(rows) * self.row_nbytes

    def unpack(self, rows, payload) -> None:
        self.hold(rows)
        for i, g in enumerate(rows):
            self._rows[g][:] = payload[i]

    def retarget(self, keep) -> None:
        keep = set(keep)
        self.drop([g for g in self._rows if g not in keep])
