"""Data distributions over the first array dimension (paper Section 2.1).

Two families, matching the paper's model:

* :class:`BlockDistribution` — *variable block*: a contiguous (possibly
  empty, possibly unequal) row range per participant.  This is what
  the balancer produces; ranges are derived from target work shares
  and per-row weights (so unbalanced computations like the particle
  simulation split by work, not by row count).
* :class:`CyclicDistribution` — rows dealt modulo the participant
  count.

Distributions are expressed in **relative rank** space (positions in
the active group), because Dyn-MPI reassigns ranks when nodes are
removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DistributionError

__all__ = ["BlockDistribution", "CyclicDistribution", "shares_to_blocks"]


@dataclass(frozen=True)
class BlockDistribution:
    """Variable block distribution: ``bounds[r] = (lo, hi)`` inclusive,
    or ``None`` for a participant with no rows."""

    n_rows: int
    bounds: tuple  # tuple[Optional[tuple[int, int]], ...]

    def __post_init__(self) -> None:
        if self.n_rows <= 0:
            raise DistributionError(f"n_rows must be positive, got {self.n_rows}")
        covered = 0
        prev_hi = -1
        for b in self.bounds:
            if b is None:
                continue
            lo, hi = b
            if not (0 <= lo <= hi < self.n_rows):
                raise DistributionError(f"bad block ({lo},{hi}) for {self.n_rows} rows")
            if lo != prev_hi + 1:
                raise DistributionError(
                    f"blocks must tile the rows contiguously; got lo={lo} after hi={prev_hi}"
                )
            prev_hi = hi
            covered += hi - lo + 1
        if covered != self.n_rows:
            raise DistributionError(
                f"blocks cover {covered} of {self.n_rows} rows"
            )

    @property
    def n_parts(self) -> int:
        return len(self.bounds)

    def rows_of(self, rel: int) -> range:
        b = self.bounds[rel]
        if b is None:
            return range(0)
        return range(b[0], b[1] + 1)

    def count_of(self, rel: int) -> int:
        b = self.bounds[rel]
        return 0 if b is None else b[1] - b[0] + 1

    def owner_of(self, row: int) -> int:
        if not (0 <= row < self.n_rows):
            raise DistributionError(f"row {row} out of range")
        for rel, b in enumerate(self.bounds):
            if b is not None and b[0] <= row <= b[1]:
                return rel
        raise DistributionError(f"row {row} is unowned (corrupt distribution)")

    def owner_array(self) -> np.ndarray:
        """owner_array()[row] -> relative owner rank (vectorized lookups)."""
        owners = np.empty(self.n_rows, dtype=np.int32)
        for rel, b in enumerate(self.bounds):
            if b is not None:
                owners[b[0]: b[1] + 1] = rel
        return owners

    @staticmethod
    def even(n_rows: int, n_parts: int) -> "BlockDistribution":
        """The standard near-equal block distribution (the starting
        point of every run)."""
        if n_parts <= 0:
            raise DistributionError("need at least one participant")
        base, extra = divmod(n_rows, n_parts)
        bounds = []
        lo = 0
        for r in range(n_parts):
            cnt = base + (1 if r < extra else 0)
            if cnt == 0:
                bounds.append(None)
            else:
                bounds.append((lo, lo + cnt - 1))
                lo += cnt
        return BlockDistribution(n_rows, tuple(bounds))

    def __str__(self) -> str:  # pragma: no cover
        return f"Block({self.bounds})"


@dataclass(frozen=True)
class CyclicDistribution:
    """Rows dealt modulo the participant count."""

    n_rows: int
    n_parts: int

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_parts <= 0:
            raise DistributionError("n_rows and n_parts must be positive")

    def rows_of(self, rel: int) -> range:
        if not (0 <= rel < self.n_parts):
            raise DistributionError(f"bad relative rank {rel}")
        return range(rel, self.n_rows, self.n_parts)

    def count_of(self, rel: int) -> int:
        return len(self.rows_of(rel))

    def owner_of(self, row: int) -> int:
        if not (0 <= row < self.n_rows):
            raise DistributionError(f"row {row} out of range")
        return row % self.n_parts

    def owner_array(self) -> np.ndarray:
        return (np.arange(self.n_rows) % self.n_parts).astype(np.int32)


def shares_to_blocks(
    n_rows: int,
    shares: Sequence[float],
    row_weights: Optional[Sequence[float]] = None,
) -> BlockDistribution:
    """Convert target *work* shares into a variable block distribution.

    Splits the weighted-row prefix sum at the share boundaries, so each
    participant's rows carry approximately ``shares[r]`` of the total
    work.  ``row_weights`` defaults to uniform (then shares are row
    fractions).  Shares must be non-negative; zero-share participants
    get no rows.
    """
    shares = np.asarray(shares, dtype=float)
    if shares.ndim != 1 or shares.size == 0:
        raise DistributionError("shares must be a non-empty 1-d sequence")
    if np.any(shares < -1e-12):
        raise DistributionError(f"negative share in {shares}")
    total = shares.sum()
    if total <= 0:
        raise DistributionError("shares sum to zero")
    shares = np.clip(shares, 0.0, None) / total

    if row_weights is None:
        weights = np.ones(n_rows, dtype=float)
    else:
        weights = np.asarray(row_weights, dtype=float)
        if weights.shape != (n_rows,):
            raise DistributionError(
                f"row_weights must have shape ({n_rows},), got {weights.shape}"
            )
        if np.any(weights < 0):
            raise DistributionError("row weights must be non-negative")
        if weights.sum() <= 0:
            weights = np.ones(n_rows, dtype=float)

    cum = np.concatenate([[0.0], np.cumsum(weights)])
    total_w = cum[-1]
    targets = np.cumsum(shares) * total_w

    bounds: list = []
    lo = 0
    for r in range(shares.size):
        # last row index whose cumulative weight stays within the target
        hi = int(np.searchsorted(cum[1:], targets[r] + 1e-9, side="right")) - 1
        hi = min(max(hi, lo - 1), n_rows - 1)
        if hi < lo:
            bounds.append(None)
        else:
            bounds.append((lo, hi))
            lo = hi + 1
    if lo <= n_rows - 1:
        # numerical slack: give the tail to the last non-empty holder,
        # or to the last positive-share participant if nobody got rows
        nonempty = [i for i, b in enumerate(bounds) if b is not None]
        if nonempty:
            last = nonempty[-1]
            bounds[last] = (bounds[last][0], n_rows - 1)
        else:
            last = int(np.argmax(shares))
            bounds[last] = (lo, n_rows - 1)
    return BlockDistribution(n_rows, tuple(bounds))
