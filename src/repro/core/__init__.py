"""The Dyn-MPI runtime — the paper's contribution.

Public surface:

* :class:`DynMPIJob` / :class:`DynMPI` — the runtime and per-rank API.
* :class:`DRSD` / :class:`AccessMode` — deferred regular section
  descriptors for array accesses.
* :class:`BlockDistribution` / :class:`CyclicDistribution` /
  :func:`shares_to_blocks` — data distributions.
* :func:`successive_balance` / :func:`closed_form_shares` /
  :func:`naive_shares` — distribution computation.
* :class:`CommCostModel` + phase patterns — micro-benchmark-fitted
  communication costs.
* :func:`evaluate_drop` — node-removal decisions.
"""

from .balance import (
    BalanceResult,
    closed_form_shares,
    predict_times,
    successive_balance,
)
from .commcost import (
    CommCostModel,
    NearestNeighbor,
    NoComm,
    PhasePattern,
    RingAllgather,
    ScalarAllreduce,
    measure_comm_model,
)
from .distribution import BlockDistribution, CyclicDistribution, shares_to_blocks
from .drsd import DRSD, AccessMode
from .intervals import IntervalSet
from .loadmon import LoadMonitor
from .phase import Phase
from .power import available_powers, naive_shares
from .redistribute import RedistReport, needed_map, redistribute
from .removal import DropDecision, evaluate_drop
from .runtime import DynMPI, DynMPIJob, RuntimeEvent
from . import capi
from .timing import GraceSamples, estimate_unloaded_times

__all__ = [
    "DynMPI",
    "DynMPIJob",
    "capi",
    "RuntimeEvent",
    "DRSD",
    "AccessMode",
    "IntervalSet",
    "Phase",
    "BlockDistribution",
    "CyclicDistribution",
    "shares_to_blocks",
    "BalanceResult",
    "successive_balance",
    "closed_form_shares",
    "predict_times",
    "naive_shares",
    "available_powers",
    "CommCostModel",
    "measure_comm_model",
    "PhasePattern",
    "NearestNeighbor",
    "RingAllgather",
    "ScalarAllreduce",
    "NoComm",
    "LoadMonitor",
    "GraceSamples",
    "estimate_unloaded_times",
    "needed_map",
    "redistribute",
    "RedistReport",
    "DropDecision",
    "evaluate_drop",
]
