"""Data redistribution (paper Section 4.4).

Effecting a new distribution requires each node to (1) determine data
ownership, (2) deallocate memory no longer needed, (3) allocate memory
for newly owned data, (4) update pointers for data that stays, and
(5) schedule communication for data that moves.  The DRSDs determine
exactly which rows a node must hold under the new loop bounds — owned
rows plus the ghost rows its read accesses reach (the Fortran-D
technique).

Because every rank derives the same plan from the same inputs (old
distribution, new distribution, DRSDs), no negotiation round is
needed: rank ``src`` sends to rank ``dst`` exactly the rows ``src``
owned before that ``dst`` needs now and did not own before.  The data
moves in one pairwise ``alltoallv`` — one packed message per
communicating pair, the "entire extended rows with a single message"
property of the projection layout.

Memory-management cost (allocations, frees, copies, pointer rewrites,
and paging if the footprint is large) is charged to the CPU through
the :class:`~repro.dmem.allocator.MemCostModel`, so redistribution
time in experiments reflects the allocation scheme.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Generator, Mapping, Optional, Sequence

from ..dmem import MemCostModel
from ..errors import RedistributionError
from ..mpi import Endpoint, Group
from ..mpi.collectives import alltoallv
from ..simcluster import Compute
from .intervals import IntervalSet
from .phase import Phase

__all__ = [
    "RedistReport",
    "needed_map",
    "owned_intervals",
    "plan_sends",
    "redistribute",
]

Bounds = Sequence[Optional[tuple[int, int]]]


@dataclass
class RedistReport:
    rows_sent: int = 0
    rows_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    mem_work: float = 0.0
    per_array_sent: dict = field(default_factory=dict)


def needed_map(
    phases: Mapping[int, Phase],
    bounds: Bounds,
    array_rows: Mapping[str, int],
) -> list[dict[str, IntervalSet]]:
    """needed[rel][array] = :class:`IntervalSet` of global rows rank
    ``rel`` must hold under loop ``bounds`` (owned + DRSD ghosts), for
    every rank.

    Each unit-stride access contributes one span, so building the map
    is O(ranks · arrays · accesses) — independent of the row count.
    The result compares equal to the per-row reference
    (:func:`repro.core.reference.needed_map_sets`) row for row.
    """
    n = len(bounds)
    spans: list[dict[str, list]] = [
        {name: [] for name in array_rows} for _ in range(n)
    ]
    for rel in range(n):
        b = bounds[rel]
        if b is None:
            continue
        s, e = b
        for phase in phases.values():
            for acc in phase.accesses:
                n_rows = array_rows.get(acc.array)
                if n_rows is None:
                    raise RedistributionError(
                        f"phase {phase.phase_id} accesses unregistered array "
                        f"{acc.array!r}"
                    )
                spans[rel][acc.array].extend(
                    acc.needed_intervals(s, e, n_rows).spans
                )
    return [
        {name: IntervalSet(sp) for name, sp in per_rel.items()}
        for per_rel in spans
    ]


def owned_intervals(bounds: Bounds, rel: int) -> IntervalSet:
    """Rows rank ``rel`` owns under ``bounds`` — a single span for a
    ``(lo, hi)`` block, an explicit (possibly non-contiguous) set when
    crash recovery hands the checkpoint holder its own rows plus the
    adopted rows of the rank it stands in for."""
    return IntervalSet.from_bounds(bounds[rel])


def plan_sends(
    old_bounds: Bounds,
    needed: Sequence[Mapping[str, IntervalSet]],
    array_names: Sequence[str],
) -> dict:
    """The full send rule for a group at once:
    ``sends[(src, dst)][array]`` = :class:`IntervalSet` of rows ``src``
    packs for ``dst`` (rows ``dst`` needs now, did not own before, and
    ``src`` did own before).  Empty transfers are omitted.

    Rather than testing every ``(src, dst)`` pair, each destination's
    *missing* spans are bisected into a sorted index of old-ownership
    spans, so only the senders that actually overlap are ever touched —
    O(ranks · arrays · (log ranks + transfers)).  Row-for-row equal to
    :func:`repro.core.reference.plan_sends_sets`.

    Old ownership must partition the rows (disjoint across ranks),
    which the runtime guarantees: crash recovery hands a dead rank's
    rows to its checkpoint buddy and leaves the dead rank's entry
    ``None``, never duplicating an owner (the Section 4.4 unique-old-
    owner invariant plancheck enforces).
    """
    n = len(old_bounds)
    owned = [owned_intervals(old_bounds, r) for r in range(n)]
    index = sorted(
        (lo, hi, src) for src in range(n) for lo, hi in owned[src].spans
    )
    starts = [lo for lo, _, _ in index]

    acc: dict[tuple[int, int, str], list] = {}
    for dst in range(n):
        for name in array_names:
            missing = needed[dst][name] - owned[dst]
            for lo, hi in missing.spans:
                i = max(bisect_right(starts, lo) - 1, 0)
                while i < len(index) and index[i][0] <= hi:
                    slo, shi, src = index[i]
                    i += 1
                    if shi < lo or src == dst:
                        continue
                    acc.setdefault((src, dst, name), []).append(
                        (max(lo, slo), min(hi, shi))
                    )

    sends: dict = {}
    for (src, dst, name), spans in acc.items():
        sends.setdefault((src, dst), {})[name] = IntervalSet(spans)
    return sends


def redistribute(
    ep: Endpoint,
    group: Group,
    old_bounds: Bounds,
    new_bounds: Bounds,
    arrays: Mapping[str, object],
    needed: Sequence[Mapping[str, IntervalSet]],
    mem_model: MemCostModel,
    memory_bytes: int = 0,
) -> Generator:
    """Move array rows from ``old_bounds`` ownership to satisfy
    ``needed`` (derived from ``new_bounds``); a generator to drive with
    ``yield from``.  Returns a :class:`RedistReport`.
    """
    me = group.rel(ep.rank)
    n = group.size
    if len(old_bounds) != n or len(new_bounds) != n or len(needed) != n:
        raise RedistributionError("bounds/needed must cover the whole group")

    report = RedistReport()
    my_old = owned_intervals(old_bounds, me)
    obs = ep.comm.obs
    t0 = obs.now() if obs is not None else 0.0

    # -- build one packed block per destination -------------------------
    # interval algebra: each send set is two merge passes over a
    # handful of spans, never a per-row set operation
    blocks: list = [None] * n
    nbytes: list[int] = [64] * n
    for dst in range(n):
        if dst == me:
            continue
        dst_old = owned_intervals(old_bounds, dst)
        entry = {}
        total = 64
        for name, arr in arrays.items():
            rows = (needed[dst][name] - dst_old) & my_old
            if not rows:
                continue
            payload, nb = arr.pack(rows)
            entry[name] = (rows, payload)
            total += nb
            report.rows_sent += len(rows)
            report.per_array_sent[name] = report.per_array_sent.get(name, 0) + len(rows)
        if entry:
            blocks[dst] = entry
            nbytes[dst] = total
            report.bytes_sent += total

    snapshots = {name: arr.stats.snapshot() for name, arr in arrays.items()}

    if obs is not None:
        # packing spends no simulated time (a zero-duration span), but
        # the per-edge byte counters are the data the cost report and
        # trace diff lean on
        obs.complete(
            "redist.pack", t0, cat="redist", pid=ep.node_id, tid=ep.rank,
            rows=report.rows_sent, nbytes=report.bytes_sent,
        )
        reg = obs.rank_registry(ep.rank)
        for dst in range(n):
            if blocks[dst] is not None:
                reg.count("redist.edge_bytes", nbytes[dst],
                          src=ep.rank, dst=group.world(dst))
        reg.count("redist.rows_sent", report.rows_sent)
        reg.count("redist.bytes_sent", report.bytes_sent)

    # -- the single exchange --------------------------------------------
    incoming = yield from alltoallv(ep, group, blocks, nbytes=nbytes)
    t1 = obs.now() if obs is not None else 0.0

    # -- drop stale rows, install received rows, allocate the rest ------
    for name, arr in arrays.items():
        arr.retarget(needed[me][name])
    for src in range(n):
        entry = incoming[src]
        if src == me or not entry:
            continue
        for name, (rows, payload) in entry.items():
            arrays[name].unpack(rows, payload)
            report.rows_received += len(rows)
    for name, arr in arrays.items():
        arr.hold(needed[me][name])  # zero-fill anything nobody sent

    # -- charge the memory-management CPU cost --------------------------
    mem_work = 0.0
    for name, arr in arrays.items():
        delta = arr.stats.delta(snapshots[name])
        mem_work += mem_model.work(delta, memory_bytes)
    report.mem_work = mem_work
    if mem_work > 0:
        yield Compute(mem_work)
    if obs is not None:
        obs.complete(
            "redist.unpack", t1, cat="redist", pid=ep.node_id, tid=ep.rank,
            rows=report.rows_received, mem_work=report.mem_work,
        )
        obs.rank_registry(ep.rank).count(
            "redist.rows_received", report.rows_received
        )
    return report
