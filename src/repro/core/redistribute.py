"""Data redistribution (paper Section 4.4).

Effecting a new distribution requires each node to (1) determine data
ownership, (2) deallocate memory no longer needed, (3) allocate memory
for newly owned data, (4) update pointers for data that stays, and
(5) schedule communication for data that moves.  The DRSDs determine
exactly which rows a node must hold under the new loop bounds — owned
rows plus the ghost rows its read accesses reach (the Fortran-D
technique).

Because every rank derives the same plan from the same inputs (old
distribution, new distribution, DRSDs), no negotiation round is
needed: rank ``src`` sends to rank ``dst`` exactly the rows ``src``
owned before that ``dst`` needs now and did not own before.  The data
moves in one pairwise ``alltoallv`` — one packed message per
communicating pair, the "entire extended rows with a single message"
property of the projection layout.

Memory-management cost (allocations, frees, copies, pointer rewrites,
and paging if the footprint is large) is charged to the CPU through
the :class:`~repro.dmem.allocator.MemCostModel`, so redistribution
time in experiments reflects the allocation scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Mapping, Optional, Sequence

from ..dmem import MemCostModel
from ..errors import RedistributionError
from ..mpi import Endpoint, Group
from ..mpi.collectives import alltoallv
from ..simcluster import Compute
from .phase import Phase

__all__ = ["RedistReport", "needed_map", "redistribute"]

Bounds = Sequence[Optional[tuple[int, int]]]


@dataclass
class RedistReport:
    rows_sent: int = 0
    rows_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    mem_work: float = 0.0
    per_array_sent: dict = field(default_factory=dict)


def needed_map(
    phases: Mapping[int, Phase],
    bounds: Bounds,
    array_rows: Mapping[str, int],
) -> list[dict[str, set[int]]]:
    """needed[rel][array] = set of global rows rank ``rel`` must hold
    under loop ``bounds`` (owned + DRSD ghosts), for every rank."""
    n = len(bounds)
    needed: list[dict[str, set[int]]] = [
        {name: set() for name in array_rows} for _ in range(n)
    ]
    for rel in range(n):
        b = bounds[rel]
        if b is None:
            continue
        s, e = b
        for phase in phases.values():
            for acc in phase.accesses:
                n_rows = array_rows.get(acc.array)
                if n_rows is None:
                    raise RedistributionError(
                        f"phase {phase.phase_id} accesses unregistered array "
                        f"{acc.array!r}"
                    )
                needed[rel][acc.array].update(acc.rows_needed(s, e, n_rows))
    return needed


def _owned_rows(bounds: Bounds, rel: int) -> set[int]:
    b = bounds[rel]
    if b is None:
        return set()
    if isinstance(b, (set, frozenset)):
        # explicit row set: crash recovery hands the checkpoint holder
        # its own rows plus the adopted (possibly non-contiguous) rows
        # of the rank it stands in for
        return set(b)
    return set(range(b[0], b[1] + 1))


def redistribute(
    ep: Endpoint,
    group: Group,
    old_bounds: Bounds,
    new_bounds: Bounds,
    arrays: Mapping[str, object],
    needed: Sequence[Mapping[str, set[int]]],
    mem_model: MemCostModel,
    memory_bytes: int = 0,
) -> Generator:
    """Move array rows from ``old_bounds`` ownership to satisfy
    ``needed`` (derived from ``new_bounds``); a generator to drive with
    ``yield from``.  Returns a :class:`RedistReport`.
    """
    me = group.rel(ep.rank)
    n = group.size
    if len(old_bounds) != n or len(new_bounds) != n or len(needed) != n:
        raise RedistributionError("bounds/needed must cover the whole group")

    report = RedistReport()
    my_old = _owned_rows(old_bounds, me)

    # -- build one packed block per destination -------------------------
    blocks: list = [None] * n
    nbytes: list[int] = [64] * n
    for dst in range(n):
        if dst == me:
            continue
        dst_old = _owned_rows(old_bounds, dst)
        entry = {}
        total = 64
        for name, arr in arrays.items():
            rows = sorted((needed[dst][name] - dst_old) & my_old)
            if not rows:
                continue
            payload, nb = arr.pack(rows)
            entry[name] = (rows, payload)
            total += nb
            report.rows_sent += len(rows)
            report.per_array_sent[name] = report.per_array_sent.get(name, 0) + len(rows)
        if entry:
            blocks[dst] = entry
            nbytes[dst] = total
            report.bytes_sent += total

    snapshots = {name: arr.stats.snapshot() for name, arr in arrays.items()}

    # -- the single exchange --------------------------------------------
    incoming = yield from alltoallv(ep, group, blocks, nbytes=nbytes)

    # -- drop stale rows, install received rows, allocate the rest ------
    for name, arr in arrays.items():
        arr.retarget(needed[me][name])
    for src in range(n):
        entry = incoming[src]
        if src == me or not entry:
            continue
        for name, (rows, payload) in entry.items():
            arrays[name].unpack(rows, payload)
            report.rows_received += len(rows)
    for name, arr in arrays.items():
        arr.hold(needed[me][name])  # zero-fill anything nobody sent

    # -- charge the memory-management CPU cost --------------------------
    mem_work = 0.0
    for name, arr in arrays.items():
        delta = arr.stats.delta(snapshots[name])
        mem_work += mem_model.work(delta, memory_bytes)
    report.mem_work = mem_work
    if mem_work > 0:
        yield Compute(mem_work)
    return report
