"""Sequential reference implementations, used to verify that the
distributed applications compute the same numbers regardless of how
many nodes they run on or how often data was redistributed."""

from __future__ import annotations

import numpy as np

from .kernels import jacobi_row_update, make_cg_rows, particle_row_flows, sor_row_halfsweep

__all__ = [
    "jacobi_reference",
    "sor_reference",
    "cg_matrix_dense",
    "cg_reference",
    "particle_reference",
]


def jacobi_reference(grid: np.ndarray, iters: int) -> np.ndarray:
    """``iters`` Jacobi sweeps of the 5-point average."""
    cur = grid.astype(float).copy()
    n_rows = cur.shape[0]
    for _ in range(iters):
        nxt = np.empty_like(cur)
        for g in range(n_rows):
            up = cur[g - 1] if g > 0 else None
            down = cur[g + 1] if g < n_rows - 1 else None
            nxt[g] = jacobi_row_update(cur[g], up, down)
        cur = nxt
    return cur


def sor_reference(grid: np.ndarray, iters: int, omega: float = 1.5) -> np.ndarray:
    """``iters`` red/black SOR cycles (red half-sweep then black)."""
    cur = grid.astype(float).copy()
    n_rows = cur.shape[0]
    for _ in range(iters):
        for color in (0, 1):
            snapshot = cur.copy()
            for g in range(n_rows):
                up = snapshot[g - 1] if g > 0 else None
                down = snapshot[g + 1] if g < n_rows - 1 else None
                row = cur[g]
                tmp = snapshot[g].copy()
                sor_row_halfsweep(tmp, up, down, g, color, omega)
                mask = ((np.arange(cur.shape[1]) + g) % 2) == color
                row[mask] = tmp[mask]
    return cur


def cg_matrix_dense(n: int, *, nnz_target: int = 12, seed: int = 1234) -> np.ndarray:
    """The CG system matrix, densified (tests only — small n)."""
    A = np.zeros((n, n))
    for g in range(n):
        cols, vals = make_cg_rows(n, g, nnz_target=nnz_target, seed=seed)
        A[g, cols] = vals
    return A


def cg_reference(A: np.ndarray, b: np.ndarray, iters: int) -> tuple[np.ndarray, float]:
    """Plain conjugate gradient; returns (x, final residual norm)."""
    x = np.zeros_like(b)
    r = b - A @ x
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iters):
        q = A @ p
        denom = float(p @ q)
        if denom == 0.0:
            break
        alpha = rho / denom
        x += alpha * p
        r -= alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho if rho > 0 else 0.0
        p = r + beta * p
        rho = rho_new
    return x, float(np.linalg.norm(A @ x - b))


def particle_reference(counts: np.ndarray, steps: int, seed: int = 7) -> np.ndarray:
    """Sequential run of the count-based particle transport."""
    cur = counts.astype(float).copy()
    n_rows = cur.shape[0]
    for step in range(steps):
        stay = np.empty_like(cur)
        up = np.empty_like(cur)
        down = np.empty_like(cur)
        for g in range(n_rows):
            stay[g], up[g], down[g] = particle_row_flows(cur[g], g, step, seed)
        nxt = stay
        # reflecting boundaries: flow off the grid stays in place
        nxt[0] += up[0]
        nxt[-1] += down[-1]
        nxt[:-1] += up[1:]
        nxt[1:] += down[:-1]
        cur = nxt
    return cur
