"""Red/Black successive over-relaxation (paper Sections 5.1, 5.3).

One n x n grid; each phase cycle is a red half-sweep followed by a
black half-sweep, with a ghost-row exchange before each.  SOR's
computation/communication ratio is half Jacobi's (two exchanges per
cycle, half the arithmetic per sweep), which is why the paper uses it
for the node-removal study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..core import AccessMode, NearestNeighbor
from .base import halo_finish, halo_start
from .kernels import SOR_WORK_PER_CELL_PER_PHASE, sor_row_halfsweep

__all__ = ["SORConfig", "sor_program", "initial_grid"]


@dataclass(frozen=True)
class SORConfig:
    n: int = 1024
    iters: int = 250
    omega: float = 1.5
    materialized: bool = False
    collect: bool = False
    seed: int = 11


def initial_grid(cfg: SORConfig) -> np.ndarray:
    # seeded straight from the config, identical on every rank —
    # the initial condition is content-addressed, not a draw
    rng = np.random.default_rng(cfg.seed)  # dynrace: ok
    return rng.random((cfg.n, cfg.n))


def sor_program(ctx, cfg: SORConfig) -> Generator:
    n = cfg.n
    G = ctx.register_dense("G", (n, n), materialized=cfg.materialized)
    ctx.init_phase(1, n, NearestNeighbor(row_nbytes=n * 8))  # red
    ctx.init_phase(2, n, NearestNeighbor(row_nbytes=n * 8))  # black
    for phase in (1, 2):
        ctx.add_array_access(phase, "G", AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()

    if cfg.materialized:
        init = initial_grid(cfg)
        for g in G.held_rows():
            G.row(g)[:] = init[g]

    def work_of(s: int, e: int) -> np.ndarray:
        return np.full(e - s + 1, n * SOR_WORK_PER_CELL_PER_PHASE)

    for _t in range(cfg.iters):
        yield from ctx.begin_cycle()
        if ctx.participating():
            s, e = ctx.my_bounds()
            for phase, color in ((1, 0), (2, 1)):
                if e < s:
                    continue

                def exec_rows(lo: int, hi: int, color=color) -> None:
                    # snapshot neighbor rows so in-rank sweep order
                    # cannot leak updated same-color values
                    snap = {
                        g: G.row(g).copy()
                        for g in range(max(0, lo - 1), min(n - 1, hi + 1) + 1)
                    }
                    for g in range(lo, hi + 1):
                        up = snap[g - 1] if g > 0 else None
                        down = snap[g + 1] if g < n - 1 else None
                        sor_row_halfsweep(G.row(g), up, down, g, color, cfg.omega)

                exec_fn = exec_rows if cfg.materialized else None
                # overlap: interior rows need no ghosts, so they run
                # while the boundary rows travel; the boundary rows run
                # after the ghosts arrive (standard stencil overlap —
                # and the reason a loaded node's slow message handling
                # only hurts when the cycle is communication-bound)
                reqs = halo_start(ctx, G, materialized=cfg.materialized)
                if e - s + 1 > 2:
                    yield from ctx.compute(phase, work_of, exec_fn,
                                           rows=(s + 1, e - 1))
                    yield from halo_finish(ctx, G, reqs,
                                           materialized=cfg.materialized)
                    yield from ctx.compute(phase, work_of, exec_fn, rows=(s, s))
                    yield from ctx.compute(phase, work_of, exec_fn, rows=(e, e))
                else:
                    yield from halo_finish(ctx, G, reqs,
                                           materialized=cfg.materialized)
                    yield from ctx.compute(phase, work_of, exec_fn)
        yield from ctx.end_cycle()

    result = {"bounds": ctx.my_bounds(), "cycles": len(ctx.cycle_times)}
    if cfg.materialized and ctx.participating():
        s, e = ctx.my_bounds()
        result["checksum"] = float(
            sum(G.row(g).sum() for g in range(s, e + 1))
        ) if e >= s else 0.0
    if cfg.collect and cfg.materialized:
        from .base import collect_rows

        if ctx.participating():
            result["grid"] = yield from collect_rows(ctx, G)
    return result
