"""Numerical kernels and calibrated work-cost models for the four
evaluated applications.

Work units are "effective flops" on the reference node: a node with
``speed`` work units/second executes ``speed`` of them per second.
The constants below are calibrated (see EXPERIMENTS.md) so that, on
the paper's Pentium cluster spec, the 4-node dedicated CG run lands
near the paper's 37.5 s; the other apps use consistent per-flop costs.

* Jacobi: 5-point stencil, ~5 flops + loads per cell -> ~9 work/cell.
* Red/Black SOR: each half-sweep updates half the cells with ~7 flops
  each -> ~3.5 work/cell per phase.
* CG: one phase cycle stands for one NAS-CG *outer* iteration (~25
  inner solves of SpMV + vector ops folded into the per-row constant,
  which is what puts the 4-node dedicated run near the paper's
  37.5 s).
* Particle: per-cell base cost plus per-particle move/collide cost.

The real-math kernels operate row-wise through accessor callables so
they work directly on :class:`~repro.dmem.dense.ProjectedArray` rows
(including ghost rows fetched by redistribution or halo exchange).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "JACOBI_WORK_PER_CELL",
    "SOR_WORK_PER_CELL_PER_PHASE",
    "CG_WORK_PER_NNZ",
    "CG_WORK_PER_ROW",
    "PARTICLE_WORK_PER_CELL",
    "PARTICLE_WORK_PER_PARTICLE",
    "jacobi_row_update",
    "sor_row_halfsweep",
    "make_cg_rows",
    "particle_row_flows",
]

JACOBI_WORK_PER_CELL = 9.0
SOR_WORK_PER_CELL_PER_PHASE = 3.5
CG_WORK_PER_NNZ = 1250.0
CG_WORK_PER_ROW = 1000.0
PARTICLE_WORK_PER_CELL = 6.0
PARTICLE_WORK_PER_PARTICLE = 40.0


def jacobi_row_update(src_row, s_up, s_down) -> np.ndarray:
    """One Jacobi row: the 5-point average with Dirichlet boundaries.

    ``src_row`` is the row itself; ``s_up`` / ``s_down`` are the rows
    above/below (None at the grid edge).  Returns the updated row.
    """
    acc = src_row.copy()
    cnt = np.ones_like(src_row)
    acc[1:] += src_row[:-1]
    cnt[1:] += 1
    acc[:-1] += src_row[1:]
    cnt[:-1] += 1
    if s_up is not None:
        acc += s_up
        cnt += 1
    if s_down is not None:
        acc += s_down
        cnt += 1
    return acc / cnt


def sor_row_halfsweep(row, r_up, r_down, g: int, color: int, omega: float = 1.5) -> None:
    """In-place red/black Gauss-Seidel half-sweep of one row.

    Updates the cells of ``row`` whose checkerboard color matches
    ``color`` (0=red, 1=black) using the standard SOR relaxation with
    the current values of the other color.
    """
    n = row.shape[0]
    cols = np.arange(n)
    mask = ((cols + g) % 2) == color
    neigh = np.zeros(n)
    cnt = np.zeros(n)
    neigh[1:] += row[:-1]
    cnt[1:] += 1
    neigh[:-1] += row[1:]
    cnt[:-1] += 1
    if r_up is not None:
        neigh += r_up
        cnt += 1
    if r_down is not None:
        neigh += r_down
        cnt += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        gs = np.where(cnt > 0, neigh / np.maximum(cnt, 1), row)
    row[mask] = (1 - omega) * row[mask] + omega * gs[mask]


#: band width of the CG matrix's off-diagonal couplings
_CG_SPAN = 16


def make_cg_rows(n: int, row: int, *, nnz_target: int = 12, seed: int = 1234):
    """Deterministically generate row ``row`` of a diagonally dominant
    **symmetric** banded random sparse matrix.

    Edge (i, i+d) exists iff d is among the hashed offsets of i, so row
    i's upward partners are {i+d : d in offsets(i)} and its downward
    partners are {i-d : d in offsets(i-d)} — both computable from the
    row index alone.  Any rank can therefore generate any row
    identically (no global build), which is also what lets the work
    model know per-row nnz cheaply.  Returns ``(cols, vals)`` with the
    diagonal included.
    """
    half = max(1, (nnz_target - 1) // 2)
    cols = {row}
    for d in _cg_offsets(row, half, seed):
        if row + d < n:
            cols.add(row + d)
    for d in range(1, _CG_SPAN + 1):
        i = row - d
        if i >= 0 and d in _cg_offsets(i, half, seed):
            cols.add(i)
    cols = sorted(cols)
    vals = []
    for c in cols:
        if c == row:
            vals.append(float(nnz_target + 4.0))  # dominance
        else:
            vals.append(_pair_val(row, c, seed))
    return np.asarray(cols, dtype=np.int64), np.asarray(vals, dtype=float)


def _cg_offsets(row: int, count: int, seed: int) -> set[int]:
    """Hashed upward edge offsets of ``row`` within the band."""
    out = set()
    for t in range(count):
        h = (row * 2_654_435_761 + t * 40_503 + seed * 97) & 0xFFFFFFFF
        out.add(1 + (h % _CG_SPAN))
    return out


def _pair_val(i: int, j: int, seed: int) -> float:
    lo, hi = (i, j) if i < j else (j, i)
    h = (lo * 73_856_093 ^ hi * 19_349_663 ^ seed) & 0xFFFFFFFF
    return -0.5 * (h / 0xFFFFFFFF)  # negative off-diagonals, SPD-friendly


def particle_row_flows(counts: np.ndarray, g: int, step: int, seed: int):
    """One time step of the count-based particle transport for row ``g``.

    Returns ``(stay, up, down)``: the particles remaining in each cell
    (after intra-row drift) and the per-cell counts flowing to the row
    above/below.  Deterministic in ``(g, step, seed)`` — ownership of
    the row never changes the physics, which is what makes results
    invariant under redistribution.
    """
    counts = np.asarray(counts)
    # content-addressed stream, fully determined by (g, step, seed)
    # and identical on every rank
    rng = np.random.default_rng(  # dynrace: ok
        ((step * 1_000_003 + g) ^ seed) & 0x7FFFFFFF)
    n = counts.shape[0]
    frac_up = rng.uniform(0.05, 0.15, size=n)
    frac_down = rng.uniform(0.05, 0.15, size=n)
    up = np.floor(counts * frac_up)
    down = np.floor(counts * frac_down)
    stay = counts - up - down
    # intra-row drift: circular shift of a third of the remainder
    drift = np.floor(stay / 3.0)
    stay = stay - drift + np.roll(drift, 1)
    return stay, up, down
