"""Common scaffolding for the evaluated applications.

Every app module exposes a ``*Config`` dataclass, a ``*_program``
generator (the Dyn-MPI program itself), and a ``run_*`` driver that
wires a cluster, a load script, and a :class:`DynMPIJob` together and
returns an :class:`AppResult`.  The same program runs in three guises:

* dedicated — no competing processes (the paper's baseline),
* no-adapt — competing load but ``adaptive=False`` (plain MPI),
* Dyn-MPI — competing load with the runtime adapting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

import numpy as np

from ..config import RuntimeSpec
from ..core import DynMPIJob
from ..core.runtime import DynMPI
from ..simcluster import Cluster, LoadScript

__all__ = ["AppResult", "run_program", "exchange_halo", "halo_start", "halo_finish", "collect_rows"]

HALO_UP_TAG = 101    # carries my first row to the left neighbor
HALO_DOWN_TAG = 102  # carries my last row to the right neighbor


@dataclass
class AppResult:
    """Everything an experiment needs from one application run."""

    wall_time: float
    events: list
    bounds: list
    cycle_times: list
    per_rank: list
    job: Any

    @property
    def obs(self):
        """The run's dynscope recorder (``job.obs``) — the enabled
        cluster recorder when observability was on, otherwise the
        job's disabled one (whose ``adaptations`` still back
        :attr:`events`)."""
        return self.job.obs

    @property
    def n_redistributions(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "redistribute")

    @property
    def n_drops(self) -> int:
        return sum(1 for ev in self.events if ev.kind in ("drop", "logical_drop"))

    def mean_cycle_time(self, first: int = 0, last: Optional[int] = None) -> float:
        """Mean over ranks of per-rank mean cycle time in a window."""
        vals = []
        for ct in self.cycle_times:
            window = ct[first:last]
            if window:
                vals.append(float(np.mean(window)))
        return float(np.mean(vals)) if vals else float("nan")


def run_program(
    cluster: Cluster,
    program: Callable[..., Generator],
    cfg,
    *,
    spec: Optional[RuntimeSpec] = None,
    adaptive: bool = True,
    load_script: Optional[LoadScript] = None,
) -> AppResult:
    """Launch ``program(ctx, cfg)`` on ``cluster`` and collect results."""
    if load_script is not None:
        cluster.install_load_script(load_script)
    job = DynMPIJob(cluster, spec, adaptive=adaptive)
    per_rank = job.launch(program, args=(cfg,))
    return AppResult(
        wall_time=cluster.sim.now,
        events=list(job.events),
        bounds=[ctx.my_bounds() for ctx in job.contexts],
        cycle_times=[list(ctx.cycle_times) for ctx in job.contexts],
        per_rank=per_rank,
        job=job,
    )


def halo_start(ctx: DynMPI, arr, *, materialized: bool) -> list:
    """Post the boundary-row sends of a halo exchange (non-blocking);
    returns the send requests for :func:`halo_finish`."""
    s, e = ctx.my_bounds()
    if e < s:
        return []
    left, right = ctx.nn_neighbors()
    nbytes = arr.row_nbytes
    reqs = []
    if left is not None:
        payload = arr.row(s).copy() if materialized else None
        reqs.append(ctx.ep.isend(ctx.active_group.world(left), HALO_UP_TAG,
                                 payload, nbytes=nbytes))
    if right is not None:
        payload = arr.row(e).copy() if materialized else None
        reqs.append(ctx.ep.isend(ctx.active_group.world(right), HALO_DOWN_TAG,
                                 payload, nbytes=nbytes))
    return reqs


def halo_finish(ctx: DynMPI, arr, reqs: list, *, materialized: bool) -> Generator:
    """Receive the ghost rows of a halo exchange started with
    :func:`halo_start` (the blocking/polling part)."""
    s, e = ctx.my_bounds()
    if e < s:
        return
    left, right = ctx.nn_neighbors()
    if left is not None:
        data, _ = yield from ctx.recv_rel(left, HALO_DOWN_TAG)
        arr.hold([s - 1])
        if materialized:
            arr.set_row(s - 1, data)
    if right is not None:
        data, _ = yield from ctx.recv_rel(right, HALO_UP_TAG)
        arr.hold([e + 1])
        if materialized:
            arr.set_row(e + 1, data)
    for req in reqs:
        yield from req.wait()


def exchange_halo(ctx: DynMPI, arr, *, materialized: bool) -> Generator:
    """Nearest-neighbor ghost-row exchange for a block distribution:
    my first owned row goes to the left neighbor, my last to the right,
    and I install their counterparts as rows ``s-1`` / ``e+1``."""
    s, e = ctx.my_bounds()
    if e < s:
        return
    left, right = ctx.nn_neighbors()
    nbytes = arr.row_nbytes
    reqs = []
    if left is not None:
        payload = arr.row(s).copy() if materialized else None
        reqs.append(ctx.ep.isend(ctx.active_group.world(left), HALO_UP_TAG,
                                 payload, nbytes=nbytes))
    if right is not None:
        payload = arr.row(e).copy() if materialized else None
        reqs.append(ctx.ep.isend(ctx.active_group.world(right), HALO_DOWN_TAG,
                                 payload, nbytes=nbytes))
    if left is not None:
        data, _ = yield from ctx.recv_rel(left, HALO_DOWN_TAG)
        arr.hold([s - 1])
        if materialized:
            arr.set_row(s - 1, data)
    if right is not None:
        data, _ = yield from ctx.recv_rel(right, HALO_UP_TAG)
        arr.hold([e + 1])
        if materialized:
            arr.set_row(e + 1, data)
    for req in reqs:
        yield from req.wait()


def collect_rows(ctx: DynMPI, arr) -> Generator:
    """Assemble the full (materialized) array on every active rank —
    a test/verification helper, not part of the application model."""
    s, e = ctx.my_bounds()
    if e >= s:
        rows = list(range(s, e + 1))
        block = np.stack([arr.row(g) for g in rows])
    else:
        rows, block = [], np.zeros((0, arr.row_elems))
    gathered = yield from ctx.allgather_active((rows, block))
    full = np.zeros((arr.n_rows, arr.row_elems))
    for rws, blk in gathered:
        if len(rws):
            full[np.asarray(rws, dtype=int)] = blk
    return full
