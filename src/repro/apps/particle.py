"""Particle simulation — the scaled-down MP3D stand-in (paper
Sections 5.1, 5.4).

A rows x cols cell grid carries particle *counts*; each time step,
every cell deterministically sheds a fraction of its particles to the
rows above/below and drifts a fraction within the row (see
:func:`~repro.apps.kernels.particle_row_flows`).  Cross-row flows at a
partition boundary travel by explicit messages.  Per-row cost is
``cells * c1 + particles * c2``, so the computation is *unbalanced*
and evolves over time — the property the paper uses to exercise
per-iteration timing (Section 4.2 / Figure 7).

The substitution (tracked counts instead of individual MP3D molecules)
preserves what the experiments measure: nonuniform, data-dependent
per-row work and row-boundary particle migration.  DESIGN.md records
this under substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..core import AccessMode, NearestNeighbor
from .kernels import (
    PARTICLE_WORK_PER_CELL,
    PARTICLE_WORK_PER_PARTICLE,
    particle_row_flows,
)

__all__ = ["ParticleConfig", "particle_program", "initial_counts"]

_FLOW_UP_TAG = 111
_FLOW_DOWN_TAG = 112


@dataclass(frozen=True)
class ParticleConfig:
    rows: int = 256
    cols: int = 256
    steps: int = 200
    #: particles per cell everywhere (paper 5.1: "one or two")
    base_density: float = 1.5
    #: extra density factor applied to ``hot_rows`` (paper 5.1: one node
    #: had twice as many particles)
    hot_factor: float = 1.0
    #: rows [0, hot_rows) receive base_density * hot_factor
    hot_rows: int = 0
    #: Figure 7 variant: particles/cell in the top half of P0's rows
    #: (None = use base_density/hot_factor instead)
    part_top: float | None = None
    n_nodes_hint: int = 8  # used to size the Figure 7 hot region
    collect: bool = False
    seed: int = 7


def initial_counts(cfg: ParticleConfig) -> np.ndarray:
    counts = np.full((cfg.rows, cfg.cols), float(cfg.base_density))
    if cfg.part_top is not None:
        # Figure 7: the top half of the rows initially owned by P0
        hot = cfg.rows // (2 * cfg.n_nodes_hint)
        counts[:hot] = float(cfg.part_top)
    elif cfg.hot_rows > 0:
        counts[: cfg.hot_rows] *= cfg.hot_factor
    return np.floor(counts * 2) / 2.0  # half-particle resolution


def particle_program(ctx, cfg: ParticleConfig) -> Generator:
    R, C = cfg.rows, cfg.cols
    grid = ctx.register_dense("C", (R, C), materialized=True)
    ctx.init_phase(1, R, NearestNeighbor(row_nbytes=C * 8))
    ctx.add_array_access(1, "C", AccessMode.READWRITE)
    ctx.commit()

    init = initial_counts(cfg)
    for g in grid.held_rows():
        grid.row(g)[:] = init[g]

    def work_of(s: int, e: int) -> np.ndarray:
        particles = np.array(
            [grid.row(g).sum() for g in range(s, e + 1)], dtype=float
        )
        return C * PARTICLE_WORK_PER_CELL + particles * PARTICLE_WORK_PER_PARTICLE

    for step in range(cfg.steps):
        yield from ctx.begin_cycle()
        if ctx.participating():
            s, e = ctx.my_bounds()
            if e >= s:
                new_rows = {g: None for g in range(s, e + 1)}
                edge_up = np.zeros(C)    # flow leaving row s upward
                edge_down = np.zeros(C)  # flow leaving row e downward

                def exec_rows(lo: int, hi: int) -> None:
                    nonlocal edge_up, edge_down
                    for g in range(lo, hi + 1):
                        stay, up, down = particle_row_flows(
                            grid.row(g), g, step, cfg.seed
                        )
                        new_rows[g] = (
                            stay if new_rows[g] is None else new_rows[g] + stay
                        )
                        # reflecting grid boundaries
                        if g == 0:
                            new_rows[g] += up
                        elif g - 1 >= s:
                            prev = new_rows[g - 1]
                            new_rows[g - 1] = up if prev is None else prev + up
                        else:
                            edge_up = edge_up + up
                        if g == R - 1:
                            new_rows[g] += down
                        elif g + 1 <= e:
                            nxt = new_rows[g + 1]
                            new_rows[g + 1] = down if nxt is None else nxt + down
                        else:
                            edge_down = edge_down + down

                yield from ctx.compute(1, work_of, exec_rows)

                # exchange boundary flows with the block neighbors
                left, right = ctx.nn_neighbors()
                reqs = []
                if left is not None:
                    reqs.append(ctx.ep.isend(
                        ctx.active_group.world(left), _FLOW_UP_TAG, edge_up
                    ))
                if right is not None:
                    reqs.append(ctx.ep.isend(
                        ctx.active_group.world(right), _FLOW_DOWN_TAG, edge_down
                    ))
                if left is not None:
                    inflow, _ = yield from ctx.recv_rel(left, _FLOW_DOWN_TAG)
                    new_rows[s] = new_rows[s] + inflow
                if right is not None:
                    inflow, _ = yield from ctx.recv_rel(right, _FLOW_UP_TAG)
                    new_rows[e] = new_rows[e] + inflow
                for req in reqs:
                    yield from req.wait()

                for g in range(s, e + 1):
                    grid.row(g)[:] = new_rows[g]
        yield from ctx.end_cycle()

    result = {"bounds": ctx.my_bounds(), "cycles": len(ctx.cycle_times)}
    if ctx.participating():
        s, e = ctx.my_bounds()
        result["particles"] = float(
            sum(grid.row(g).sum() for g in range(s, e + 1))
        ) if e >= s else 0.0
    if cfg.collect and ctx.participating():
        from .base import collect_rows

        result["grid"] = yield from collect_rows(ctx, grid)
    return result
