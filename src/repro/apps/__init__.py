"""The paper's four evaluated applications, written against the
Dyn-MPI API: Jacobi iteration, Red/Black SOR, Conjugate Gradient, and
the particle simulation.  Sequential references live in
:mod:`repro.apps.reference`; shared scaffolding in
:mod:`repro.apps.base`."""

from .base import AppResult, collect_rows, exchange_halo, run_program
from .cg import CGConfig, cg_program
from .farm import FarmConfig, farm_oracle, run_farm_app
from .jacobi import JacobiConfig, jacobi_program
from .particle import ParticleConfig, initial_counts, particle_program
from .sor import SORConfig, sor_program
from . import kernels, reference

__all__ = [
    "AppResult",
    "run_program",
    "exchange_halo",
    "collect_rows",
    "JacobiConfig",
    "jacobi_program",
    "SORConfig",
    "sor_program",
    "CGConfig",
    "cg_program",
    "ParticleConfig",
    "particle_program",
    "FarmConfig",
    "run_farm_app",
    "farm_oracle",
    "initial_counts",
    "kernels",
    "reference",
]
