"""The task farm as a fifth evaluated "application".

Unlike the row-distributed apps (Jacobi/SOR/CG/particle) the farm does
not run through :class:`~repro.core.DynMPIJob` — it has its own elastic
master/worker launcher (:func:`repro.farm.run_farm`).  This module
adapts it to the app conventions the campaign expects: a ``*Config``
dataclass, a ``run_*`` driver, and an oracle factory whose check is the
farm's headline guarantee — the completed-result digest equals the
reference digest computed without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigError
from ..farm import (
    FarmResult,
    FarmSpec,
    POLICIES,
    farm_digest,
    reference_results,
    run_farm,
)
from ..simcluster import Cluster, LoadScript

__all__ = ["FarmConfig", "farm_spec", "run_farm_app", "farm_oracle", "SKEWS"]

#: the cost-skew profiles :func:`repro.farm.job_cost` understands
SKEWS = ("uniform", "linear", "hot")


@dataclass
class FarmConfig:
    """Campaign-facing farm parameters (a strict subset of
    :class:`~repro.farm.FarmSpec`, with campaign-scale defaults)."""

    n_jobs: int = 200
    policy: str = "self"
    chunk: int = 8
    skew: str = "hot"
    base_cost: float = 1e4
    seed: int = 0
    cycles: int = 8

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ConfigError(f"farm needs at least one job ({self.n_jobs})")
        if self.chunk <= 0:
            raise ConfigError(f"farm chunk must be positive ({self.chunk})")
        if self.cycles <= 0:
            raise ConfigError(f"farm cycles must be positive ({self.cycles})")
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown farm policy {self.policy!r} (one of {POLICIES})"
            )
        if self.skew not in SKEWS:
            raise ConfigError(
                f"unknown skew profile {self.skew!r} (one of {SKEWS})"
            )


def farm_spec(cfg: FarmConfig) -> FarmSpec:
    """Lower a :class:`FarmConfig` to the runtime's spec."""
    return FarmSpec(
        n_jobs=cfg.n_jobs,
        policy=cfg.policy,
        chunk=cfg.chunk,
        skew=cfg.skew,
        base_cost=cfg.base_cost,
        seed=cfg.seed,
        cycles=cfg.cycles,
        name=f"farm-{cfg.policy}",
    )


def run_farm_app(
    cluster: Cluster,
    cfg: FarmConfig,
    *,
    load_script: Optional[LoadScript] = None,
    failure_script=None,
) -> FarmResult:
    """Run the farm on ``cluster`` under the app calling convention."""
    return run_farm(
        cluster,
        farm_spec(cfg),
        load_script=load_script,
        failure_script=failure_script,
    )


def farm_oracle(cfg: FarmConfig) -> Callable[[FarmResult], str]:
    """Bitwise-identity check: the completed set must digest to exactly
    what :func:`~repro.farm.reference_results` predicts — regardless of
    policy, perturbation seed, or churn."""
    expected = farm_digest(reference_results(cfg.n_jobs, cfg.seed))

    def check(result: FarmResult) -> str:
        if result.jobs_done != cfg.n_jobs:
            return (f"farm completed {result.jobs_done} of "
                    f"{cfg.n_jobs} jobs")
        if result.digest != expected:
            return (f"completed-result digest {result.digest} deviates "
                    f"from reference {expected}")
        return ""

    return check
