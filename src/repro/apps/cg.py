"""Conjugate Gradient on an unstructured sparse system (paper's NAS CG
stand-in, Sections 5.1).

The matrix is a deterministic diagonally dominant symmetric sparse
matrix stored in Dyn-MPI's vector-of-lists format; the solver follows
the classic CG recurrence.  Each phase cycle = one CG iteration:

* ring-allgather of the search direction ``p`` (every rank needs the
  full vector for its SpMV rows),
* ``q = A p`` over the owned rows (the dominant compute),
* two scalar global reductions (``p.q`` and ``r.r``) — which use the
  runtime's send-in/send-out global reduce, so physically removed
  nodes still receive the values that keep their state consistent.

Between redistributions the owned rows are traversed through a CSR
snapshot (``SparseMatrix.csr_rows``) — exactly the custom-format
escape hatch the paper describes at the end of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..core import AccessMode, RingAllgather, ScalarAllreduce
from .kernels import CG_WORK_PER_NNZ, CG_WORK_PER_ROW, make_cg_rows

__all__ = ["CGConfig", "cg_program"]


@dataclass(frozen=True)
class CGConfig:
    n: int = 14000
    iters: int = 75
    nnz_target: int = 12
    materialized: bool = True  # the sparse format always stores data
    exact_math: bool = True    # do the real vector math (small n tests)
    seed: int = 1234


def cg_program(ctx, cfg: CGConfig) -> Generator:
    n = cfg.n
    A = ctx.register_sparse("A", (n, n))
    x = ctx.register_dense("x", (n,), materialized=cfg.exact_math)
    r = ctx.register_dense("r", (n,), materialized=cfg.exact_math)
    p = ctx.register_dense("p", (n,), materialized=cfg.exact_math)
    q = ctx.register_dense("q", (n,), materialized=cfg.exact_math)
    ctx.init_phase(1, n, RingAllgather(total_nbytes=n * 8))
    ctx.add_array_access(1, "A", AccessMode.READ)
    for name in ("x", "r", "p", "q"):
        ctx.add_array_access(1, name, AccessMode.READWRITE)
    # the two dot-product reductions per iteration
    ctx.init_phase(2, n, ScalarAllreduce(count=2))
    ctx.add_array_access(2, "r", AccessMode.READ)
    ctx.commit()

    # build the owned matrix rows (deterministic, so any rank can
    # generate any row without communication)
    def fill_rows(rows) -> None:
        for g in rows:
            cols, vals = make_cg_rows(n, g, nnz_target=cfg.nnz_target, seed=cfg.seed)
            A.set_row_items(g, cols, vals)

    fill_rows(A.held_rows())

    # b = 1: x0 = 0, r0 = b, p0 = r0
    if cfg.exact_math:
        for g in x.held_rows():
            x.row(g)[:] = 0.0
            r.row(g)[:] = 1.0
            p.row(g)[:] = 1.0
    s, e = ctx.my_bounds()
    rho = float(n)  # r.r with r = ones

    csr_cache: dict = {"key": None}

    def get_csr(s: int, e: int):
        key = (A.csr_version, s, e)
        if csr_cache["key"] != key:
            indptr, cols, vals = A.csr_rows(list(range(s, e + 1)))
            csr_cache.update(key=key, indptr=indptr, cols=cols, vals=vals)
        return csr_cache["indptr"], csr_cache["cols"], csr_cache["vals"]

    def work_of(s: int, e: int) -> np.ndarray:
        nnz = np.array([A.row_nnz(g) for g in range(s, e + 1)], dtype=float)
        return nnz * CG_WORK_PER_NNZ + CG_WORK_PER_ROW

    full_p: Optional[np.ndarray] = None

    residual = float("nan")
    for _t in range(cfg.iters):
        yield from ctx.begin_cycle()
        participating = ctx.participating()
        s, e = ctx.my_bounds()
        if participating:
            # 1. allgather p
            if e >= s:
                block = (
                    np.array([p.row(g)[0] for g in range(s, e + 1)])
                    if cfg.exact_math else np.zeros(e - s + 1)
                )
            else:
                block = np.zeros(0)
            gathered = yield from ctx.allgather_active((s, e, block))
            if cfg.exact_math:
                full_p = np.zeros(n)
                for lo, hi, blk in gathered:
                    if hi >= lo:
                        full_p[lo:hi + 1] = blk

            # 2. q = A p over owned rows
            if e >= s:
                def exec_rows(lo: int, hi: int) -> None:
                    if not cfg.exact_math:
                        return
                    indptr, cols, vals = get_csr(*ctx.my_bounds())
                    base = ctx.my_bounds()[0]
                    for g in range(lo, hi + 1):
                        i = g - base
                        seg = slice(int(indptr[i]), int(indptr[i + 1]))
                        q.hold([g])
                        q.row(g)[0] = float(vals[seg] @ full_p[cols[seg]])

                yield from ctx.compute(1, work_of, exec_rows)

        # 3. the two global reductions + vector updates.  Every rank —
        # removed ones included — enters global_reduce: a removed rank
        # contributes nothing but still *receives* the send-out values
        # (4.4), keeping its alpha/beta/rho recurrence consistent for
        # when it rejoins.
        if participating and cfg.exact_math and e >= s:
            pq_local = float(sum(p.row(g)[0] * q.row(g)[0] for g in range(s, e + 1)))
        else:
            pq_local = 0.0
        pq = yield from ctx.global_reduce(pq_local)
        alpha = rho / pq if (cfg.exact_math and pq != 0.0) else 0.0
        if participating and cfg.exact_math and e >= s:
            for g in range(s, e + 1):
                x.row(g)[0] += alpha * p.row(g)[0]
                r.row(g)[0] -= alpha * q.row(g)[0]
            rr_local = float(sum(r.row(g)[0] ** 2 for g in range(s, e + 1)))
        else:
            rr_local = 0.0
        rr = yield from ctx.global_reduce(rr_local)
        if cfg.exact_math:
            beta = rr / rho if rho > 0 else 0.0
            if participating and e >= s:
                for g in range(s, e + 1):
                    p.row(g)[0] = r.row(g)[0] + beta * p.row(g)[0]
            rho = rr
            residual = float(np.sqrt(rr))
        yield from ctx.end_cycle()

    return {
        "bounds": ctx.my_bounds(),
        "cycles": len(ctx.cycle_times),
        "residual": residual,
        "x_local": (
            {g: float(x.row(g)[0]) for g in range(*_inc(ctx.my_bounds()))}
            if cfg.exact_math and ctx.participating() else {}
        ),
    }


def _inc(bounds: tuple[int, int]) -> tuple[int, int]:
    s, e = bounds
    return (s, e + 1) if e >= s else (0, 0)
