"""Jacobi iteration (paper Sections 5.1, 5.2).

Two n x n arrays; each phase cycle computes ``dst = 5-point-average
(src)`` over the partitioned rows, exchanges boundary rows with the
nearest neighbors, and swaps the arrays.  This is the paper's Figure 1
program written against the Dyn-MPI API of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..core import AccessMode, NearestNeighbor
from .base import exchange_halo
from .kernels import JACOBI_WORK_PER_CELL, jacobi_row_update

__all__ = ["JacobiConfig", "jacobi_program", "initial_grid"]


@dataclass(frozen=True)
class JacobiConfig:
    n: int = 2048
    iters: int = 250
    materialized: bool = False
    collect: bool = False  # return the assembled final grid (tests)
    seed: int = 7


def initial_grid(cfg: JacobiConfig) -> np.ndarray:
    """Deterministic initial condition (any rank can build any row)."""
    # seeded straight from the config, identical on every rank —
    # the initial condition is content-addressed, not a draw
    rng = np.random.default_rng(cfg.seed)  # dynrace: ok
    return rng.random((cfg.n, cfg.n))


def initial_row(cfg: JacobiConfig, g: int) -> np.ndarray:
    # row-addressable variant of initial_grid (same values)
    return initial_grid(cfg)[g]


def jacobi_program(ctx, cfg: JacobiConfig) -> Generator:
    n = cfg.n
    A = ctx.register_dense("A", (n, n), materialized=cfg.materialized)
    B = ctx.register_dense("B", (n, n), materialized=cfg.materialized)
    ctx.init_phase(1, n, NearestNeighbor(row_nbytes=n * 8))
    for name in ("A", "B"):
        ctx.add_array_access(1, name, AccessMode.READWRITE, lo_off=-1, hi_off=1)
    ctx.commit()

    if cfg.materialized:
        init = initial_grid(cfg)
        for g in B.held_rows():
            B.row(g)[:] = init[g]

    def work_of(s: int, e: int) -> np.ndarray:
        return np.full(e - s + 1, n * JACOBI_WORK_PER_CELL)

    src, dst = B, A
    for _t in range(cfg.iters):
        yield from ctx.begin_cycle()
        if ctx.participating():
            s, e = ctx.my_bounds()
            if e >= s:
                yield from exchange_halo(ctx, src, materialized=cfg.materialized)

                def exec_rows(lo: int, hi: int, src=src, dst=dst) -> None:
                    for g in range(lo, hi + 1):
                        up = src.row(g - 1) if g > 0 else None
                        down = src.row(g + 1) if g < n - 1 else None
                        dst.hold([g])
                        dst.row(g)[:] = jacobi_row_update(src.row(g), up, down)

                yield from ctx.compute(
                    1, work_of, exec_rows if cfg.materialized else None
                )
        yield from ctx.end_cycle()
        src, dst = dst, src

    result = {"bounds": ctx.my_bounds(), "cycles": len(ctx.cycle_times)}
    if cfg.materialized and ctx.participating():
        s, e = ctx.my_bounds()
        result["checksum"] = float(
            sum(src.row(g).sum() for g in range(s, e + 1))
        ) if e >= s else 0.0
    if cfg.collect and cfg.materialized:
        from .base import collect_rows

        if ctx.participating():
            result["grid"] = yield from collect_rows(ctx, src)
    return result
