"""The canonical observed run: a small, fast Jacobi node-removal
scenario (the Figure 6 recipe shrunk to smoke-test size).

Four Ultra-Sparc nodes run Jacobi; competing processes land on node 0
partway in, the runtime measures through a grace period, redistributes,
and — under a forcing ``drop_margin`` — physically removes the loaded
node after the post-redistribution window.  One short run therefore
exercises every instrumented code path: cycles, grace-mode compute,
halo traffic, collectives, redistribution, the drop decision with its
predicted-vs-measured inputs, and (optionally) replayed CPU slices.

The run is fully deterministic, so its exported traces are
byte-identical across invocations — the property the CLI's ``export``
and the CI obs-smoke job lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..apps.base import AppResult, run_program
from ..apps.jacobi import JacobiConfig, jacobi_program
from ..config import ResilienceSpec, RuntimeSpec, ultrasparc_cluster
from ..simcluster import Cluster, single_competitor
from ..simcluster.trace import Tracer
from .simadapter import replay_tracer

__all__ = ["RemovalScenario", "run_removal"]


@dataclass(frozen=True)
class RemovalScenario:
    """Knobs of the canonical removal run (defaults are smoke-sized)."""

    n_nodes: int = 4
    n: int = 160          # grid size (n x n)
    iters: int = 36       # phase cycles
    seed: int = 0
    load_cycle: int = 8   # cycle at which the competitors appear
    n_cp: int = 2         # competing processes on node 0
    #: runtime daemon sampling period; the default matches the
    #: historical hard-coded value, so existing traces stay
    #: byte-identical.  Large-scale benches raise it — daemon beats are
    #: O(n log n) events each, and a 1024-node cell at the smoke
    #: cadence would be nothing but daemon traffic.
    daemon_interval: float = 0.002


def run_removal(
    scenario: RemovalScenario = RemovalScenario(),
    *,
    observe: Optional[bool] = True,
    trace_cpu: bool = False,
) -> tuple[AppResult, Cluster]:
    """Run the canonical removal scenario; returns ``(result, cluster)``
    with ``cluster.obs`` holding the recording when ``observe`` is on.

    ``observe=None`` defers to ``DYNMPI_OBS`` (like every cluster);
    ``trace_cpu`` additionally attaches a :class:`Tracer` and replays
    its CPU slices and wire messages into the recording.
    """
    cspec = replace(
        ultrasparc_cluster(scenario.n_nodes, seed=scenario.seed),
        observe=observe,
    )
    cluster = Cluster(cspec)
    tracer = Tracer(cluster).attach() if trace_cpu else None
    # the Figure 6 forcing recipe: evaluate the drop branch as soon as
    # the shortened post-redistribution window closes.  The daemon
    # samples far below the paper's 1 Hz because a smoke-sized run's
    # cycles are milliseconds (same adjustment as scaled_spec).
    spec = RuntimeSpec(
        allow_removal=True, drop_margin=1e-9, post_redist_period=5,
        daemon_interval=scenario.daemon_interval,
        # sparse buddy checkpoints: enough to put the checkpoint tax in
        # the trace without drowning the run in resilience traffic
        resilience=ResilienceSpec(checkpoint_interval=6),
    )
    try:
        result = run_program(
            cluster,
            jacobi_program,
            JacobiConfig(n=scenario.n, iters=scenario.iters,
                         materialized=False),
            spec=spec,
            adaptive=True,
            load_script=single_competitor(
                0, start_cycle=scenario.load_cycle, count=scenario.n_cp
            ),
        )
    finally:
        if tracer is not None:
            tracer.detach()
    if tracer is not None and cluster.obs is not None:
        replay_tracer(tracer, cluster.obs)
    return result, cluster
