"""Chrome Trace Event schema validation.

:func:`validate_chrome` checks the structural contract Perfetto and
``chrome://tracing`` rely on — required fields with the right types per
phase (``ph``), non-negative times, and *well-formed nesting*: on any
one ``(pid, tid)`` track, complete ("X") spans must be properly nested
(a span either contains another or is disjoint from it; partial
overlap means the emitting instrumentation lost track of a stack).

Returns a list of error strings (empty = valid) rather than raising,
so the CLI and the CI smoke job can print every problem at once.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

__all__ = ["validate_chrome", "validate_chrome_file"]

#: phases this exporter may legitimately produce
_KNOWN_PH = {"X", "i", "M", "B", "E", "C", "b", "e", "n"}

#: nesting tolerance in microseconds (floating-point slack)
_TOL = 1e-6


def _check_event(i: int, ev: object, errors: list[str]) -> bool:
    """Field/type checks for one event; True when usable for nesting."""
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        errors.append(f"{where}: not an object")
        return False
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing/empty 'name'")
        return False
    where = f"{where} ({name})"
    ph = ev.get("ph")
    if ph not in _KNOWN_PH:
        errors.append(f"{where}: bad 'ph' {ph!r}")
        return False
    for field in ("pid", "tid"):
        v = ev.get(field)
        if not isinstance(v, int) or isinstance(v, bool):
            errors.append(f"{where}: '{field}' must be an integer, got {v!r}")
            return False
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        errors.append(f"{where}: 'ts' must be a number, got {ts!r}")
        return False
    if ts < 0:
        errors.append(f"{where}: negative ts {ts}")
        return False
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool):
            errors.append(f"{where}: 'X' event needs numeric 'dur'")
            return False
        if dur < 0:
            errors.append(f"{where}: negative dur {dur}")
            return False
    if "args" in ev and not isinstance(ev["args"], dict):
        errors.append(f"{where}: 'args' must be an object")
        return False
    return True


def _check_nesting(trace_events: list[dict], errors: list[str]) -> None:
    tracks: dict[tuple[int, int], list[dict]] = {}
    for ev in trace_events:
        if ev.get("ph") == "X":
            tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), spans in sorted(tracks.items()):
        # same start: longer span first, so it becomes the parent
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []  # open ancestors, innermost last
        for ev in spans:
            ts, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and stack[-1]["ts"] + stack[-1]["dur"] <= ts + _TOL:
                stack.pop()
            if stack:
                top = stack[-1]
                top_end = top["ts"] + top["dur"]
                if end > top_end + _TOL:
                    errors.append(
                        f"track pid={pid} tid={tid}: span "
                        f"'{ev['name']}' [{ts}, {end}] partially overlaps "
                        f"'{top['name']}' [{top['ts']}, {top_end}]"
                    )
                    continue
            stack.append(ev)


def validate_chrome(trace: object) -> list[str]:
    """Validate a parsed Chrome trace; returns error strings."""
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["top level: expected an object with 'traceEvents'"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: 'traceEvents' must be a list"]
    if not events:
        errors.append("top level: empty 'traceEvents'")
    usable = [ev for i, ev in enumerate(events) if _check_event(i, ev, errors)]
    _check_nesting([ev for ev in usable if ev.get("ph") == "X"], errors)
    return errors


def validate_chrome_file(path: Union[str, pathlib.Path]) -> list[str]:
    try:
        trace = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    return validate_chrome(trace)
