"""dynscope — unified observability for the Dyn-MPI reproduction.

One recording, many views: every layer (runtime adaptation, the
redistribution data plane, the MPI layer, resilience, the simulator's
tracer) emits spans/instants/metrics into an :class:`ObsRecorder`;
exporters turn the recording into a Perfetto-loadable Chrome trace, a
flat JSONL log, or a per-phase cost-attribution report.  See
docs/OBSERVABILITY.md.

Enablement mirrors the dynsan sanitizer: ``ClusterSpec(observe=True)``
or ``DYNMPI_OBS=1`` attaches an enabled recorder as ``cluster.obs``;
otherwise ``cluster.obs`` is ``None`` and every instrumentation hook is
one ``is not None`` test (zero recording overhead, and — because the
hooks never add simulated cost — identical simulation results either
way).

CLI: ``python -m repro.obs {summarize,export,diff,validate}``.

This package root stays light (recorder + registry + exporters); the
canonical scenario and the report/CLI layers import application code
and are loaded lazily by ``__main__``.
"""

from .recorder import (
    CPU_TID,
    JOB_PID,
    NET_PID,
    ObsEvent,
    ObsRecorder,
    RuntimeEvent,
    obs_enabled,
    session_recorders,
)
from .registry import Histogram, MetricsRegistry
from .export import chrome_json, chrome_trace, jsonl_text, load_trace, write_trace
from .schema import validate_chrome, validate_chrome_file
from .simadapter import replay_tracer

__all__ = [
    "CPU_TID",
    "JOB_PID",
    "NET_PID",
    "Histogram",
    "MetricsRegistry",
    "ObsEvent",
    "ObsRecorder",
    "RuntimeEvent",
    "chrome_json",
    "chrome_trace",
    "jsonl_text",
    "load_trace",
    "obs_enabled",
    "replay_tracer",
    "session_recorders",
    "validate_chrome",
    "validate_chrome_file",
    "write_trace",
]
