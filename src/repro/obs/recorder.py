"""dynscope event recording: structured spans and instants.

An :class:`ObsRecorder` is the single sink every layer emits into —
the runtime's adaptation decisions, the redistribution data plane, the
MPI layer's message latencies, the resilience layer's checkpoint tax.
Events carry the *simulated* clock (``sim.now``), so a trace of a
seeded run is bitwise reproducible and loads into Perfetto with the
same timeline every time.

Tracks follow the Chrome trace convention: ``pid`` is the node (with
two reserved virtual processes, :data:`JOB_PID` for job-level
adaptation events and :data:`NET_PID` for wire activity), ``tid`` is
the world rank (with :data:`CPU_TID` reserved for replayed CPU
slices — see :mod:`repro.obs.simadapter`).

Zero overhead when disabled: layers hold ``cluster.obs`` which is
``None`` unless observability was opted into, so hot paths pay one
``is not None`` test.  The runtime additionally keeps a *disabled*
recorder for its adaptation-event list (the ``job.events``
back-compatibility view), whose span/instant methods return
immediately.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .registry import MetricsRegistry

__all__ = [
    "CPU_TID",
    "JOB_PID",
    "NET_PID",
    "ObsEvent",
    "ObsRecorder",
    "RuntimeEvent",
    "obs_enabled",
]

#: virtual Chrome-trace process for job-level (rank-agnostic) events
JOB_PID = -1
#: virtual Chrome-trace process for network wire activity
NET_PID = -2
#: virtual thread for per-node CPU slices replayed from a Tracer
CPU_TID = -1

#: enabled recorders created this interpreter session (weakly held);
#: the bench emitter summarizes them into every ``BENCH_*.json``
_SESSION_RECORDERS: "weakref.WeakSet[ObsRecorder]" = weakref.WeakSet()


def obs_enabled(spec: Any) -> bool:
    """Resolve the opt-in: explicit ``spec.observe`` wins, the
    ``DYNMPI_OBS`` environment variable fills in for ``None``."""
    import os

    explicit = getattr(spec, "observe", None)
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("DYNMPI_OBS", "0") not in ("", "0")


@dataclass
class RuntimeEvent:
    """One adaptation event, for experiment reporting.

    Historically defined in :mod:`repro.core.runtime`; it lives here
    now because the obs event API is the primary emission path and the
    job's ``events`` list is a view over the recorder's
    :attr:`~ObsRecorder.adaptations`.  ``repro.core.runtime`` re-exports
    it unchanged.
    """

    kind: str  # "redistribute" | "drop" | "logical_drop" | "rejoin" | "crash_recovery"
    cycle: int
    time: float
    duration: float = 0.0
    detail: dict = field(default_factory=dict)


class ObsEvent:
    """One trace event (Chrome Trace Event semantics).

    ``ph`` is ``"X"`` (complete span: ``ts`` + ``dur``), ``"i"``
    (instant) or ``"C"`` (counter sample).  Times are simulated
    seconds; the exporters convert to microseconds.
    """

    __slots__ = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args", "seq")

    def __init__(self, name: str, cat: str, ph: str, ts: float, dur: float,
                 pid: int, tid: int, args: Optional[dict], seq: int):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.args = args
        self.seq = seq

    def to_dict(self) -> dict:
        d = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts, "pid": self.pid, "tid": self.tid,
        }
        if self.ph == "X":
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ObsEvent {self.ph} {self.name} ts={self.ts:.6f} "
                f"pid={self.pid} tid={self.tid}>")


def _scalar(value: Any) -> Any:
    """Coerce an args value to something JSON-stable (numpy scalars
    and arrays would otherwise leak nondeterministic reprs)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return item()
    if isinstance(value, (list, tuple)):
        return [_scalar(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _scalar(v) for k, v in value.items()}
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    return str(value)


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_rec", "_name", "_cat", "_pid", "_tid", "_args", "_t0")

    def __init__(self, rec: "ObsRecorder", name: str, cat: str,
                 pid: int, tid: int, args: Optional[dict]):
        self._rec = rec
        self._name = name
        self._cat = cat
        self._pid = pid
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._rec.now()
        return self

    def __exit__(self, *exc) -> None:
        self._rec.complete(self._name, self._t0, cat=self._cat,
                           pid=self._pid, tid=self._tid,
                           **(self._args or {}))


class _NullSpan:
    """Shared no-op span for disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class ObsRecorder:
    """The event sink.  Bind a clock (``bind_clock``), emit spans and
    instants, read back :attr:`events`; per-rank metric registries
    merge into one view for reporting."""

    def __init__(self, *, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self.events: list[ObsEvent] = []
        #: adaptation events (RuntimeEvent view) — recorded even when
        #: disabled, preserving the historical ``job.events`` contract
        self.adaptations: list[RuntimeEvent] = []
        self._registries: dict[int, MetricsRegistry] = {}
        self._seq = 0
        if enabled:
            _SESSION_RECORDERS.add(self)

    # -- wiring ---------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> "ObsRecorder":
        self._clock = clock
        return self

    def now(self) -> float:
        return self._clock()

    # -- emission -------------------------------------------------------
    def _push(self, name: str, cat: str, ph: str, ts: float, dur: float,
              pid: int, tid: int, args: dict) -> None:
        self._seq += 1
        clean = {k: _scalar(v) for k, v in args.items()} if args else None
        self.events.append(
            ObsEvent(name, cat, ph, ts, dur, pid, tid, clean, self._seq)
        )

    def span(self, name: str, *, cat: str = "app", pid: int = JOB_PID,
             tid: int = 0, **args):
        """``with obs.span("redistribute.pack", pid=n, tid=r, nbytes=b):``
        — records a complete event covering the with-block (simulated
        time elapses only across the yields inside it)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, pid, tid, args or None)

    def complete(self, name: str, t0: float, *, cat: str = "app",
                 pid: int = JOB_PID, tid: int = 0,
                 t1: Optional[float] = None, **args) -> None:
        """Record a complete ("X") event from an explicit start time —
        the try/finally-friendly form for generator code where a
        ``with`` block cannot straddle early returns."""
        if not self.enabled:
            return
        end = self.now() if t1 is None else t1
        self._push(name, cat, "X", t0, max(0.0, end - t0), pid, tid, args)

    def instant(self, name: str, *, cat: str = "app", pid: int = JOB_PID,
                tid: int = 0, ts: Optional[float] = None, **args) -> None:
        if not self.enabled:
            return
        self._push(name, cat, "i", self.now() if ts is None else ts,
                   0.0, pid, tid, args)

    def adaptation(self, kind: str, *, cycle: int, time: float,
                   duration: float = 0.0,
                   detail: Optional[dict] = None) -> RuntimeEvent:
        """Record one runtime adaptation event.  Always appends to the
        :attr:`adaptations` view (the ``job.events`` contract); when
        enabled, additionally emits a span on the job track covering
        ``[time - duration, time]``."""
        ev = RuntimeEvent(kind=kind, cycle=cycle, time=time,
                          duration=duration, detail=detail or {})
        self.adaptations.append(ev)
        if self.enabled:
            self._push(f"adapt.{kind}", "adapt", "X", time - duration,
                       duration, JOB_PID, 0,
                       {"cycle": cycle, **(detail or {})})
        return ev

    # -- metrics --------------------------------------------------------
    def rank_registry(self, rank: int) -> MetricsRegistry:
        """The per-rank metrics registry (created on first use)."""
        reg = self._registries.get(rank)
        if reg is None:
            reg = self._registries[rank] = MetricsRegistry()
        return reg

    def merged_registry(self) -> MetricsRegistry:
        """All ranks' registries merged into one (rank order, so gauge
        last-wins is deterministic)."""
        merged = MetricsRegistry()
        merged.merge(self._registries[r] for r in sorted(self._registries))
        return merged

    # -- reading --------------------------------------------------------
    def sorted_events(self) -> list[ObsEvent]:
        """Events in (timestamp, emission) order — the exporter order."""
        return sorted(self.events, key=lambda e: (e.ts, e.seq))

    def tracks(self) -> dict[int, list[int]]:
        """pid -> sorted tids present in the recording."""
        seen: dict[int, set[int]] = {}
        for ev in self.events:
            seen.setdefault(ev.pid, set()).add(ev.tid)
        return {pid: sorted(tids) for pid, tids in sorted(seen.items())}


def session_recorders() -> list[ObsRecorder]:
    """Enabled recorders still alive in this interpreter session (the
    bench emitter's source for BENCH_*.json obs summaries)."""
    return sorted(_SESSION_RECORDERS, key=id)
