"""dynscope CLI: ``python -m repro.obs <command>``.

=========  ========================================================
command    what it does
=========  ========================================================
export     run the canonical Jacobi removal scenario with tracing
           on and print (or ``--out``) the trace — Chrome Trace
           Event JSON by default, ``--format jsonl`` for the flat
           log.  Deterministic: identical invocations produce
           byte-identical files.
summarize  per-phase cost-attribution report of a trace file
           (either format); ``--json`` for machine-readable output
diff       compare two trace files, report per-phase deltas —
           the tool that makes a BENCH regression explainable
validate   run the Chrome-trace schema validator on a file; exit 1
           on any violation (the CI obs-smoke gate)
=========  ========================================================
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_export(args) -> int:
    from .export import chrome_json, jsonl_text
    from .scenario import RemovalScenario, run_removal

    scenario = RemovalScenario(
        n_nodes=args.nodes, n=args.grid, iters=args.iters, seed=args.seed,
    )
    _result, cluster = run_removal(
        scenario, observe=True, trace_cpu=args.cpu
    )
    text = (chrome_json(cluster.obs) if args.format == "chrome"
            else jsonl_text(cluster.obs))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(cluster.obs.events)} events to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_summarize(args) -> int:
    from .export import load_trace
    from .report import format_report, summarize

    try:
        meta, events = load_trace(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = summarize(meta, events)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report, title=f"cost attribution: {args.trace}"))
    return 0


def _cmd_diff(args) -> int:
    from .export import load_trace
    from .report import attribute, diff_reports, format_diff

    try:
        _, events_a = load_trace(args.a)
        _, events_b = load_trace(args.b)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_reports(attribute(events_a), attribute(events_b))
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(format_diff(diff, name_a=args.a, name_b=args.b))
    return 0


def _cmd_validate(args) -> int:
    from .schema import validate_chrome_file

    errors = validate_chrome_file(args.trace)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"{args.trace}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 1
    print(f"{args.trace}: valid Chrome trace")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="dynscope: trace export, cost attribution, trace diff",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export", help="run the canonical removal scenario "
                                      "and export its trace")
    p.add_argument("--format", choices=("chrome", "jsonl"), default="chrome")
    p.add_argument("--out", help="output path (default: stdout)")
    p.add_argument("--cpu", action="store_true",
                   help="also replay Tracer CPU slices / wire messages")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--grid", type=int, default=160)
    p.add_argument("--iters", type=int, default=36)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("summarize", help="per-phase cost attribution of a "
                                         "trace file")
    p.add_argument("trace")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_summarize)

    p = sub.add_parser("diff", help="per-phase deltas between two traces")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("validate", help="Chrome-trace schema validation")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
