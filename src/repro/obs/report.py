"""Cost attribution: where did the simulated seconds go?

Every rank's track is a properly nested stack of spans (cycle >
collective > send, redistribution > alltoallv > send, ...).  Charging
each span's full duration to its own category would double-count the
nesting, so the attribution walks each track with a stack and charges
every span's *exclusive* time (its duration minus its children's) to a
phase bucket:

========  =====================================================
bucket    meaning
========  =====================================================
compute   application row execution (normal/post cycles)
grace     row execution during a measurement grace period — the
          paper's Section 4.2 instrumentation overhead
comm      application message passing (sends, receives,
          collectives) outside redistribution
redist    Section 4.4 data redistribution (plan, pack, exchange,
          unpack) — *including* the messages it sends
ckpt      resilience checkpoint exchanges (the checkpoint tax)
recovery  crash recovery (checkpoint replay + repair exchange)
other     everything else on the track: cycle bookkeeping,
          control allgathers' slack, idle-in-span time
========  =====================================================

``redist``/``ckpt``/``recovery`` are *sticky*: spans nested under them
(e.g. the alltoallv inside a redistribution) charge to the enclosing
bucket, so "comm" is application communication only and the full price
of a redistribution is visible in one number — the attribution
ReSHAPE-style tooling needs.

All functions here operate on plain event dicts (times in seconds), so
they work identically on a live recorder and on a loaded trace file.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = [
    "PHASES",
    "attribute",
    "diff_reports",
    "format_diff",
    "format_report",
    "phase_shares",
    "span_bucket",
    "summarize",
]

PHASES = ("compute", "grace", "comm", "redist", "ckpt", "recovery", "other")

#: buckets whose nested spans charge to them, not to their own bucket
_STICKY = frozenset({"redist", "ckpt", "recovery"})

_TOL = 1e-12


def span_bucket(ev: dict) -> str:
    """The phase bucket a span charges to (before sticky ancestors)."""
    cat = ev.get("cat", "")
    if cat == "compute":
        args = ev.get("args") or {}
        return "grace" if args.get("mode") == "grace" else "compute"
    if cat in ("mpi", "coll"):
        return "comm"
    if cat == "redist":
        return "redist"
    if cat == "ckpt":
        return "ckpt"
    if cat == "recover":
        return "recovery"
    return "other"


def _attribute_track(spans: list[tuple[float, float, str]],
                     sums: dict[str, float]) -> None:
    """Charge each span's exclusive time to its (sticky-resolved)
    bucket.  ``spans`` are (ts, dur, bucket), any order."""
    spans = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack: list[list] = []  # [end, bucket, dur, child_time]

    def close(upto: float) -> None:
        while stack and stack[-1][0] <= upto + _TOL:
            end, bucket, dur, child = stack.pop()
            sums[bucket] += max(0.0, dur - child)
            if stack:
                stack[-1][3] += dur

    for ts, dur, bucket in spans:
        close(ts)
        if stack and stack[-1][1] in _STICKY:
            bucket = stack[-1][1]
        stack.append([ts + dur, bucket, dur, 0.0])
    close(float("inf"))


def attribute(events: Iterable[dict]) -> dict:
    """Per-phase cost attribution over plain event dicts.

    Only rank tracks (``pid >= 0 and tid >= 0``) enter the per-rank
    phase sums; job/network/cpu-slice tracks are reflected in the
    event counts and the wall clock.
    """
    per_track: dict[int, list[tuple[float, float, str]]] = {}
    counts: dict[str, int] = {}
    adaptations: dict[str, int] = {}
    wall = 0.0
    for ev in events:
        cat = ev.get("cat", "")
        counts[cat] = counts.get(cat, 0) + 1
        name = ev.get("name", "")
        if name.startswith("adapt."):
            kind = name[len("adapt."):]
            adaptations[kind] = adaptations.get(kind, 0) + 1
        ts = float(ev.get("ts", 0.0))
        dur = float(ev.get("dur", 0.0)) if ev.get("ph") == "X" else 0.0
        wall = max(wall, ts + dur)
        if ev.get("ph") != "X":
            continue
        pid, tid = ev.get("pid", 0), ev.get("tid", 0)
        if pid < 0 or tid < 0:
            continue
        per_track.setdefault(tid, []).append((ts, dur, span_bucket(ev)))

    per_rank: dict[str, dict[str, float]] = {}
    total = {phase: 0.0 for phase in PHASES}
    for tid in sorted(per_track):
        sums = {phase: 0.0 for phase in PHASES}
        _attribute_track(per_track[tid], sums)
        sums["total"] = sum(sums.values())
        per_rank[str(tid)] = sums
        for phase in PHASES:
            total[phase] += sums[phase]
    total["total"] = sum(total[phase] for phase in PHASES)
    return {
        "wall": wall,
        "per_rank": per_rank,
        "total": total,
        "counts": dict(sorted(counts.items())),
        "adaptations": dict(sorted(adaptations.items())),
    }


def phase_shares(report: dict) -> dict:
    """Each phase's fraction of total attributed time, from an
    :func:`attribute` report.  This is the join surface dynperf's
    ``--profile`` uses to re-rank static heat by measured exclusive
    time; all zeros (empty trace) yields an empty dict so callers can
    tell "no signal" from "signal says zero"."""
    total = report.get("total", {}).get("total", 0.0)
    if total <= 0.0:
        return {}
    return {
        phase: report["total"][phase] / total
        for phase in PHASES
        if report["total"].get(phase, 0.0) > 0.0
    }


def summarize(meta: Optional[dict], events: Iterable[dict]) -> dict:
    """Attribution + the metrics snapshot from a trace-meta record."""
    report = attribute(events)
    if meta and meta.get("metrics") is not None:
        report["metrics"] = meta["metrics"]
    return report


def _fmt(seconds: float) -> str:
    return f"{seconds * 1e3:10.3f}"


def format_report(report: dict, title: str = "cost attribution") -> str:
    ranks = sorted(report["per_rank"], key=int)
    lines = [f"{title} (milliseconds of simulated time)"]
    header = f"{'phase':<10} {'total':>10}" + "".join(
        f" {'r' + r:>10}" for r in ranks
    )
    lines.append(header)
    lines.append("-" * len(header))
    for phase in (*PHASES, "total"):
        row = f"{phase:<10} {_fmt(report['total'][phase])}"
        for r in ranks:
            row += f" {_fmt(report['per_rank'][r][phase])}"
        lines.append(row)
    lines.append(f"wall: {report['wall'] * 1e3:.3f} ms")
    if report.get("adaptations"):
        ad = ", ".join(f"{k}={v}" for k, v in report["adaptations"].items())
        lines.append(f"adaptations: {ad}")
    return "\n".join(lines)


def diff_reports(a: dict, b: dict) -> dict:
    """Per-phase deltas between two attribution reports (b - a)."""
    phases = {}
    for phase in (*PHASES, "total"):
        ta = a["total"][phase]
        tb = b["total"][phase]
        delta = tb - ta
        phases[phase] = {
            "a": ta, "b": tb, "delta": delta,
            "pct": (delta / ta * 100.0) if ta else None,
        }
    return {
        "phases": phases,
        "wall": {"a": a["wall"], "b": b["wall"], "delta": b["wall"] - a["wall"]},
    }


def format_diff(diff: dict, name_a: str = "A", name_b: str = "B") -> str:
    header = (f"{'phase':<10} {name_a[:10]:>10} {name_b[:10]:>10} "
              f"{'delta':>10} {'pct':>8}")
    lines = [
        "per-phase deltas (milliseconds of simulated time)",
        header,
        "-" * len(header),
    ]
    for phase, row in diff["phases"].items():
        pct = f"{row['pct']:+7.1f}%" if row["pct"] is not None else "     n/a"
        lines.append(
            f"{phase:<10} {_fmt(row['a'])} {_fmt(row['b'])} "
            f"{_fmt(row['delta'])} {pct}"
        )
    w = diff["wall"]
    lines.append(
        f"wall: {w['a'] * 1e3:.3f} -> {w['b'] * 1e3:.3f} ms "
        f"({w['delta'] * 1e3:+.3f})"
    )
    return "\n".join(lines)
