"""Replay a :class:`repro.simcluster.Tracer` recording into an obs trace.

The tracer hooks the scheduler and the network directly, so it sees
things the instrumented layers cannot: every CPU slice (application
ranks, competing processes, daemons) and every wire transmission.
Replaying its records into the same :class:`~repro.obs.recorder.
ObsRecorder` puts the old text timelines and the Chrome export on one
recording:

* each :class:`~repro.simcluster.trace.Slice` becomes a complete span
  on the owning node's ``pid`` under the reserved ``tid`` :data:`~repro
  .obs.recorder.CPU_TID` ("cpu" track), named after the process;
* each :class:`~repro.simcluster.trace.Message` becomes a complete
  span on the :data:`~repro.obs.recorder.NET_PID` ("network") process,
  covering send -> delivery, with ``src``/``dst``/``nbytes`` in args.

CPU slices of one node never overlap (the scheduler serializes them),
but in-flight messages do — so messages are laid out on the network
process in *lanes*: each message takes the lowest-numbered thread that
is free for its whole flight.  Tracks stay properly nested (disjoint,
in fact), which keeps the Chrome schema validator satisfied, and the
lane assignment is a pure function of the (deterministic) message
list.

Replay after the run (the tracer's lists are append-only), then export
as usual.
"""

from __future__ import annotations

from .recorder import CPU_TID, NET_PID, ObsRecorder

__all__ = ["replay_tracer"]


def replay_tracer(tracer, recorder: ObsRecorder) -> int:
    """Replay ``tracer``'s slices and messages into ``recorder``;
    returns the number of events added."""
    if not recorder.enabled:
        return 0
    added = 0
    for s in tracer.slices:
        recorder.complete(
            f"cpu.{s.proc}", s.start, t1=s.end, cat="sim",
            pid=s.node, tid=CPU_TID, proc=s.proc,
        )
        added += 1
    lanes: list[float] = []  # lane index -> end of its last message
    for m in sorted(tracer.messages,
                    key=lambda m: (m.sent, m.delivered, m.src, m.dst)):
        for lane, busy_until in enumerate(lanes):
            if busy_until <= m.sent:
                break
        else:
            lane = len(lanes)
            lanes.append(0.0)
        lanes[lane] = m.delivered
        recorder.complete(
            "net.msg", m.sent, t1=m.delivered, cat="sim",
            pid=NET_PID, tid=lane, src=m.src, dst=m.dst, nbytes=m.nbytes,
        )
        added += 1
    return added
