"""Trace exporters: Chrome Trace Event JSON and flat JSONL.

Both exporters are deterministic: events are emitted in ``(ts, seq)``
order, every JSON object is dumped with sorted keys and fixed
separators, and all timestamps are simulated time — so two identical
seeded runs export byte-identical files (the tests assert this).

Chrome format (one dict per event in ``traceEvents``):

* ``ph="X"`` complete events carry ``ts`` + ``dur`` in *microseconds*
  of simulated time (the Trace Event format's unit);
* ``ph="i"`` instants carry ``s="t"`` (thread scope);
* ``ph="M"`` metadata names the tracks: ``pid`` is a node (reserved
  ``-1`` = job, ``-2`` = network), ``tid`` is a world rank (reserved
  ``-1`` = replayed CPU slices).

Load the file straight into https://ui.perfetto.dev or
``chrome://tracing``.

The JSONL export is the machine-readable twin: line 1 is a
``trace-meta`` record (format version + merged metrics snapshot), then
one event object per line with times in simulated *seconds*.  The CLI's
``summarize``/``diff`` read either format back via :func:`load_trace`.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .recorder import CPU_TID, JOB_PID, NET_PID, ObsRecorder

__all__ = [
    "chrome_trace",
    "chrome_json",
    "jsonl_text",
    "load_trace",
    "write_trace",
]

#: simulated seconds -> Trace Event microseconds
_US = 1e6

#: JSONL format version (bump on incompatible record changes)
JSONL_VERSION = 1


def _pid_name(pid: int) -> str:
    if pid == JOB_PID:
        return "job"
    if pid == NET_PID:
        return "network"
    return f"node{pid}"


def _tid_name(tid: int) -> str:
    return "cpu" if tid == CPU_TID else f"rank{tid}"


def _dump(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def chrome_trace(recorder: ObsRecorder) -> dict:
    """The recording as a Chrome Trace Event dict (JSON-ready)."""
    events: list[dict] = []
    for pid, tids in recorder.tracks().items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"name": _pid_name(pid)},
        })
        events.append({
            "name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
            "ts": 0, "args": {"sort_index": pid},
        })
        for tid in tids:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": _tid_name(tid)},
            })
    for ev in recorder.sorted_events():
        d = {
            "name": ev.name, "cat": ev.cat, "ph": ev.ph,
            "ts": ev.ts * _US, "pid": ev.pid, "tid": ev.tid,
        }
        if ev.ph == "X":
            d["dur"] = ev.dur * _US
        elif ev.ph == "i":
            d["s"] = "t"
        if ev.args:
            d["args"] = ev.args
        events.append(d)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_json(recorder: ObsRecorder) -> str:
    return _dump(chrome_trace(recorder)) + "\n"


def jsonl_text(recorder: ObsRecorder) -> str:
    """The recording as JSONL: a ``trace-meta`` line (metrics snapshot
    included) followed by one event per line, times in seconds."""
    lines = [_dump({
        "kind": "trace-meta",
        "version": JSONL_VERSION,
        "metrics": recorder.merged_registry().snapshot(),
        "n_events": len(recorder.events),
    })]
    for ev in recorder.sorted_events():
        lines.append(_dump(ev.to_dict()))
    return "\n".join(lines) + "\n"


def write_trace(recorder: ObsRecorder, path: Union[str, pathlib.Path],
                fmt: str = "chrome") -> pathlib.Path:
    """Write the recording to ``path`` in ``fmt`` ("chrome" or "jsonl")."""
    path = pathlib.Path(path)
    if fmt == "chrome":
        text = chrome_json(recorder)
    elif fmt == "jsonl":
        text = jsonl_text(recorder)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    path.write_text(text, encoding="utf-8")
    return path


def load_trace(path: Union[str, pathlib.Path]) -> tuple[dict, list[dict]]:
    """Read a trace file back as ``(meta, events)`` with event times in
    simulated seconds.  Accepts both export formats: a Chrome trace
    (one JSON object with ``traceEvents``, metadata events dropped,
    microseconds converted back) or the JSONL event log."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    first = json.loads(stripped.splitlines()[0])
    if isinstance(first, dict) and "traceEvents" in first:
        trace = json.loads(text)
        events = []
        for d in trace["traceEvents"]:
            if d.get("ph") == "M":
                continue
            ev = dict(d)
            ev["ts"] = d.get("ts", 0) / _US
            if "dur" in d:
                ev["dur"] = d["dur"] / _US
            ev.pop("s", None)
            events.append(ev)
        return {"kind": "trace-meta", "version": JSONL_VERSION,
                "metrics": None, "n_events": len(events)}, events
    meta: dict = {"kind": "trace-meta", "version": JSONL_VERSION,
                  "metrics": None}
    events = []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if obj.get("kind") == "trace-meta":
            meta = obj
        else:
            events.append(obj)
    return meta, events
