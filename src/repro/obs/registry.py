"""Metrics registry: counters, gauges and histograms (the scalar side
of dynscope; spans and events live in :mod:`repro.obs.recorder`).

Metrics are keyed by ``(name, labels)`` where labels are sorted
``key=value`` pairs, so two ranks counting ``net.bytes`` with
``src=0, dst=1`` and ``src=1, dst=0`` produce distinct, mergeable
series — the per-edge byte accounting the redistribution layer emits.

Everything here is deterministic: histogram buckets are binary
exponents (``math.frexp``), snapshots sort every key, and merging is
order-independent for counters and histograms (gauges keep the value
with the newest sequence number, which is well defined because the
simulator is single-threaded).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Histogram", "MetricsRegistry"]

MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict) -> MetricKey:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _bucket(value: float) -> int:
    """Deterministic bucket index: the binary exponent of the value
    (``2**(b-1) <= value < 2**b``); 0 and negatives share a floor
    bucket so pathological inputs cannot crash recording."""
    if value <= 0.0:
        return -1075  # below the smallest positive double's exponent
    return math.frexp(value)[1]


@dataclass
class Histogram:
    """Fixed-shape histogram over binary-exponent buckets."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    #: binary exponent -> observation count
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(b): self.buckets[b] for b in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with labels.

    One registry per rank (or per recorder); :meth:`merge` folds the
    per-rank registries into a job-wide view for reporting — the
    "registry merge across ranks" step of the cost-attribution report.
    """

    def __init__(self) -> None:
        self.counters: dict[MetricKey, float] = {}
        self.gauges: dict[MetricKey, tuple[int, float]] = {}  # (seq, value)
        self.histograms: dict[MetricKey, Histogram] = {}
        self._seq = 0

    # -- recording ------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels) -> None:
        k = _key(name, labels)
        self.counters[k] = self.counters.get(k, 0.0) + float(amount)

    def gauge(self, name: str, value: float, **labels) -> None:
        self._seq += 1
        self.gauges[_key(name, labels)] = (self._seq, float(value))

    def observe(self, name: str, value: float, **labels) -> None:
        k = _key(name, labels)
        hist = self.histograms.get(k)
        if hist is None:
            hist = self.histograms[k] = Histogram()
        hist.observe(value)

    # -- reading --------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        entry = self.gauges.get(_key(name, labels))
        return None if entry is None else entry[1]

    def histogram(self, name: str, **labels) -> Optional[Histogram]:
        return self.histograms.get(_key(name, labels))

    def counter_total(self, name: str) -> float:
        """Sum of a counter over every label combination."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    # -- merge / export -------------------------------------------------
    def merge(self, others: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        for other in others:
            for k, v in other.counters.items():
                self.counters[k] = self.counters.get(k, 0.0) + v
            for k, (seq, v) in other.gauges.items():
                mine = self.gauges.get(k)
                if mine is None or seq >= mine[0]:
                    self.gauges[k] = (seq, v)
            for k, hist in other.histograms.items():
                mine_h = self.histograms.get(k)
                if mine_h is None:
                    mine_h = self.histograms[k] = Histogram()
                mine_h.merge(hist)
        return self

    @staticmethod
    def _render_key(k: MetricKey) -> str:
        name, labels = k
        if not labels:
            return name
        inner = ",".join(f"{lk}={lv}" for lk, lv in labels)
        return f"{name}{{{inner}}}"

    def snapshot(self) -> dict:
        """Deterministic JSON-able dump, keys sorted."""
        return {
            "counters": {
                self._render_key(k): self.counters[k]
                for k in sorted(self.counters)
            },
            "gauges": {
                self._render_key(k): self.gauges[k][1]
                for k in sorted(self.gauges)
            },
            "histograms": {
                self._render_key(k): self.histograms[k].snapshot()
                for k in sorted(self.histograms)
            },
        }
