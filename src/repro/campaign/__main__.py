"""dyncamp CLI: ``python -m repro.campaign <command>``.

Commands
--------

``run``     expand a campaign spec file into a directory and sweep it
``resume``  continue a (possibly killed) campaign from its directory
``status``  show sweep progress and the quarantine list
``report``  aggregate finished combos; writes ``BENCH_<name>.json``
``fuzz``    run seeded fuzz scenarios through the invariant checkers;
            ``--replay CORPUS`` re-runs a persisted failure corpus
            (JSONL, one failure per line) instead of generating new
            scenarios

Exit codes: 0 = success / all invariants clean; 1 = findings
(quarantined combos, fuzz failures); 2 = usage or campaign-spec error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

from ..errors import ConfigError
from .engine import Engine, default_workers
from .fuzz import run_fuzz, run_replay
from .report import render_status, render_summary
from .space import load_space
from .sweeper import DEFAULT_MAX_TRIES, ParamSweeper


def _engine(sweeper: ParamSweeper, args) -> Engine:
    return Engine(
        sweeper,
        workers=args.workers,
        progress=None if args.quiet else lambda msg: print(msg, flush=True),
    )


def _sweep(sweeper: ParamSweeper, args) -> int:
    """Shared tail of ``run`` and ``resume``."""
    with sweeper:
        engine = _engine(sweeper, args)
        stats = engine.run(max_combos=args.max_combos)
        if not stats.complete:
            print(f"stopped early: {stats.render()} "
                  f"(resume with: python -m repro.campaign resume "
                  f"--dir {sweeper.dir})")
            return 0
        agg = engine.aggregate(
            bench_name=args.bench,
            write_to=args.bench_dir or sweeper.dir,
        )
        print(render_summary(agg))
        if sweeper.skipped:
            print(render_status(sweeper))
            return 1
        return 0


def cmd_run(args) -> int:
    space = load_space(args.space)
    sweeper = ParamSweeper.create(args.dir, space, max_tries=args.max_tries)
    return _sweep(sweeper, args)


def cmd_resume(args) -> int:
    return _sweep(ParamSweeper.open_dir(args.dir), args)


def cmd_status(args) -> int:
    with ParamSweeper.open_dir(args.dir) as sweeper:
        print(render_status(sweeper))
        return 0


def cmd_report(args) -> int:
    with ParamSweeper.open_dir(args.dir) as sweeper:
        engine = Engine(sweeper, workers=1)
        agg = engine.aggregate(
            bench_name=args.bench,
            write_to=args.bench_dir or sweeper.dir,
        )
        print(render_summary(agg))
        if sweeper.skipped:
            print(render_status(sweeper))
            return 1
        return 0


def cmd_fuzz(args) -> int:
    if args.replay is not None:
        try:
            report = run_replay(
                args.replay, workers=args.workers or default_workers()
            )
        except OSError as exc:
            print(f"error: cannot read corpus {args.replay}: "
                  f"{exc.strerror}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: malformed corpus: {exc}", file=sys.stderr)
            return 2
        drifted = sum(1 for r in report.rows if r.get("drifted"))
        print(f"replay: {args.replay} ({report.n_scenarios} row(s)"
              + (f", {drifted} drifted" if drifted else "") + ")")
        print(report.render())
        return 0 if report.clean else 1
    report = run_fuzz(
        args.seed,
        args.iterations,
        workers=args.workers or default_workers(),
        out_dir=args.out,
        indices=args.index or None,
    )
    print(report.render())
    return 0 if report.clean else 1


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None,
                   help="pool size (default: one per host CPU, capped)")
    p.add_argument("--max-combos", type=int, default=None,
                   help="stop after this many combo attempts (for drills)")
    p.add_argument("--bench", default="campaign",
                   help="BENCH_<name>.json name (default: campaign)")
    p.add_argument("--bench-dir", type=pathlib.Path, default=None,
                   help="where to write the aggregate "
                        "(default: the campaign directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-pass progress lines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="dyncamp: parallel, resumable scenario campaigns",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="sweep a campaign spec file")
    p.add_argument("space", type=pathlib.Path,
                   help="campaign spec JSON ({name, params, fixed})")
    p.add_argument("--dir", type=pathlib.Path, required=True,
                   help="campaign state directory (journal + results)")
    p.add_argument("--max-tries", type=int, default=DEFAULT_MAX_TRIES,
                   help="attempts before a failing combo is quarantined")
    _add_exec_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("resume", help="continue a campaign directory")
    p.add_argument("--dir", type=pathlib.Path, required=True)
    _add_exec_args(p)
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser("status", help="show sweep progress")
    p.add_argument("--dir", type=pathlib.Path, required=True)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("report", help="aggregate finished combos")
    p.add_argument("--dir", type=pathlib.Path, required=True)
    p.add_argument("--bench", default="campaign")
    p.add_argument("--bench-dir", type=pathlib.Path, default=None)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("fuzz", help="run seeded fuzz scenarios")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--iterations", type=int, default=10,
                   help="number of scenarios (default 10)")
    p.add_argument("--index", type=int, action="append", default=None,
                   help="run exactly this iteration index (repeatable; "
                        "overrides --iterations) — the repro-line form")
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--out", type=pathlib.Path, default=None,
                   help="directory for failures.jsonl repro records")
    p.add_argument("--replay", type=pathlib.Path, default=None,
                   metavar="CORPUS",
                   help="replay a failures.jsonl corpus instead of "
                        "fuzzing; exit 0 only if every recorded "
                        "scenario is now clean")
    p.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
