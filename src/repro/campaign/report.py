"""Human-readable campaign reporting (tables, status, quarantine).

Everything here renders strings from the deterministic aggregate and
the sweeper's journal-derived state; the CLI prints them.  Kept apart
from the engine so tests can assert on report text without running a
sweep.
"""

from __future__ import annotations

from typing import Sequence

from .sweeper import ParamSweeper

__all__ = ["format_table", "render_summary", "render_status"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table (numbers right-aligned)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    numeric = [
        all(isinstance(r[i], (int, float)) for r in rows) if rows else False
        for i in range(len(headers))
    ]

    def fmt(line, head=False):
        out = []
        for i, cell in enumerate(line):
            pad = cell.rjust if (numeric[i] and not head) else cell.ljust
            out.append(pad(widths[i]))
        return "  ".join(out).rstrip()

    lines = [fmt(cells[0], head=True), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in cells[1:])
    return "\n".join(lines)


def render_summary(agg: dict) -> str:
    """The per-group summary table for a campaign aggregate."""
    header = (f"campaign {agg['campaign']}: {agg['n_done']}/{agg['n_combos']} "
              f"combos done, {len(agg['skipped'])} quarantined")
    # farm groups summarize throughput instead of redist/drop counts
    rows = [
        (g["app"], g["n_nodes"], g["count"],
         g["mean_wall_time"], g["min_wall_time"], g["max_wall_time"],
         g.get("mean_n_redistributions", g.get("mean_jobs_per_sec", 0.0)),
         g.get("mean_n_drops", g.get("mean_n_requeued", 0.0)))
        for g in agg["groups"]
    ]
    mixed_farm = any(g["app"] == "farm" for g in agg["groups"])
    table = format_table(
        ("app", "nodes", "combos", "mean_wall", "min_wall", "max_wall",
         "mean_redist/jps" if mixed_farm else "mean_redist",
         "mean_drops/req" if mixed_farm else "mean_drops"),
        rows,
    )
    return f"{header}\n{table}" if rows else header


def render_status(sweeper: ParamSweeper) -> str:
    """Sweep progress plus the quarantine list with last errors."""
    lines = [f"campaign {sweeper.space.name} in {sweeper.dir}",
             sweeper.stats().render()]
    quarantined = sweeper.quarantined()
    if quarantined:
        lines.append("quarantined combos (retry budget exhausted):")
        for slug, tries, error in quarantined:
            lines.append(f"  {slug}  [{tries} tries]")
            lines.append(f"    last error: {error}")
    return "\n".join(lines)
