"""Resumable on-disk sweep state (the execo ``ParamSweeper`` idiom).

The sweeper owns a campaign directory::

    <dir>/
      spec.json          # the parameter space (written once at create)
      journal.jsonl      # append-only combo state transitions
      results/<slug>.json  # one deterministic result row per done combo

State is *reconstructed* from the journal, never stored mutably: each
line is ``{"slug": ..., "event": "claim" | "done" | "error" | "skip"}``
(plus an ``error`` detail for error/skip lines).  Replaying the
journal yields, per combo:

* **done** — a ``done`` event was journaled (the result row exists);
* **skipped** — quarantined after exhausting its retry budget;
* **tries** — the number of failed attempts so far: ``error`` events
  plus *stale claims* (a ``claim`` with no matching ``done``/``error``
  means the previous campaign process died mid-combo — kill -9, OOM,
  power loss — and the combo is re-queued, with the lost attempt
  counted against its budget so a combo that kills the whole campaign
  cannot loop forever).

Everything else is pending.  ``journal.jsonl`` is append-only and
flushed per line, so a campaign killed at any instant loses at most
the in-flight combos' attempts — never completed work.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from ..errors import ConfigError
from .space import Combo, ParamSpace, expand

__all__ = ["ParamSweeper", "SweepStats"]

#: a combo is quarantined once it has failed this many attempts
DEFAULT_MAX_TRIES = 3


@dataclass(frozen=True)
class SweepStats:
    total: int
    done: int
    skipped: int
    in_progress: int

    @property
    def pending(self) -> int:
        return self.total - self.done - self.skipped - self.in_progress

    @property
    def complete(self) -> bool:
        """No work left: everything is either done or quarantined."""
        return self.done + self.skipped == self.total

    def render(self) -> str:
        return (f"{self.done}/{self.total} done, {self.pending} pending, "
                f"{self.in_progress} in progress, {self.skipped} quarantined")


class ParamSweeper:
    """Journaled sweep state over an expanded parameter space."""

    def __init__(self, directory: str | pathlib.Path, space: ParamSpace,
                 *, max_tries: int = DEFAULT_MAX_TRIES):
        if max_tries < 1:
            raise ConfigError("max_tries must be >= 1")
        self.dir = pathlib.Path(directory)
        self.space = space
        self.max_tries = max_tries
        self.combos: list[Combo] = expand(space)
        self._by_slug = {c.slug: c for c in self.combos}
        self.results_dir = self.dir / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._journal_path = self.dir / "journal.jsonl"
        self.done: set[str] = set()
        self.skipped: set[str] = set()
        self.tries: dict[str, int] = {}
        self.errors: dict[str, str] = {}
        #: slugs claimed by *this* process and not yet resolved
        self._live_claims: set[str] = set()
        #: quarantine decisions made during replay, journaled below
        self._deferred_skips: list[str] = []
        self._replay()
        self._journal = open(self._journal_path, "a", encoding="utf-8")
        for slug in self._deferred_skips:
            self._record({"slug": slug, "event": "skip",
                          "error": self.errors.get(slug, "")})
        self._deferred_skips = []

    # -- persistence -----------------------------------------------------
    @staticmethod
    def create(directory: str | pathlib.Path, space: ParamSpace,
               *, max_tries: int = DEFAULT_MAX_TRIES) -> "ParamSweeper":
        """Create a campaign directory (or re-open a matching one).

        The spec is persisted into the directory so ``resume`` and
        ``status`` need nothing but the path.  Re-creating with a
        *different* space is an error — silently mixing spaces would
        corrupt the journal's meaning.
        """
        directory = pathlib.Path(directory)
        spec_path = directory / "spec.json"
        spec = {"campaign": space.to_json(), "max_tries": max_tries}
        if spec_path.exists():
            existing = json.loads(spec_path.read_text(encoding="utf-8"))
            if existing != spec:
                raise ConfigError(
                    f"{directory} already holds a different campaign; "
                    f"use a fresh directory (or 'resume' to continue it)"
                )
        else:
            directory.mkdir(parents=True, exist_ok=True)
            spec_path.write_text(
                json.dumps(spec, indent=2, sort_keys=True) + "\n")
        return ParamSweeper(directory, space, max_tries=max_tries)

    @staticmethod
    def open_dir(directory: str | pathlib.Path) -> "ParamSweeper":
        """Re-open an existing campaign directory from its spec.json."""
        directory = pathlib.Path(directory)
        spec_path = directory / "spec.json"
        try:
            spec = json.loads(spec_path.read_text(encoding="utf-8"))
        except OSError:
            raise ConfigError(
                f"{directory} is not a campaign directory (no spec.json)")
        return ParamSweeper(
            directory,
            ParamSpace.from_json(spec["campaign"]),
            max_tries=int(spec.get("max_tries", DEFAULT_MAX_TRIES)),
        )

    def _replay(self) -> None:
        if not self._journal_path.exists():
            return
        open_claims: dict[str, int] = {}
        with open(self._journal_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                slug, event = rec["slug"], rec["event"]
                if slug not in self._by_slug:
                    raise ConfigError(
                        f"journal mentions unknown combo {slug!r} — the "
                        f"campaign directory does not match this space")
                if event == "claim":
                    open_claims[slug] = open_claims.get(slug, 0) + 1
                elif event == "done":
                    open_claims.pop(slug, None)
                    self.done.add(slug)
                elif event == "error":
                    open_claims.pop(slug, None)
                    self.tries[slug] = self.tries.get(slug, 0) + 1
                    self.errors[slug] = rec.get("error", "")
                elif event == "skip":
                    self.skipped.add(slug)
                else:
                    raise ConfigError(f"journal has unknown event {event!r}")
        # stale claims: the previous process died mid-combo
        for slug, n in open_claims.items():
            if slug not in self.done:
                self.tries[slug] = self.tries.get(slug, 0) + n
                self.errors.setdefault(
                    slug, "stale claim: previous campaign process died "
                          "while running this combo")
        # quarantine anything already over budget (including repeat
        # victims of mid-combo kills)
        for slug, tries in self.tries.items():
            if (tries >= self.max_tries and slug not in self.done
                    and slug not in self.skipped):
                # the journal handle is not open yet during replay;
                # __init__ journals these right after opening it
                self.skipped.add(slug)
                self._deferred_skips.append(slug)

    def _record(self, rec: dict) -> None:
        self._journal.write(json.dumps(rec, sort_keys=True) + "\n")
        self._journal.flush()

    # -- the sweep protocol ---------------------------------------------
    def pending(self) -> list[Combo]:
        """Combos still to run, in deterministic space order."""
        busy = self.done | self.skipped | self._live_claims
        return [c for c in self.combos if c.slug not in busy]

    def claim(self, combo: Combo) -> None:
        self._record({"slug": combo.slug, "event": "claim"})
        self._live_claims.add(combo.slug)

    def mark_done(self, combo_slug: str, result: dict) -> None:
        """Persist the deterministic result row, then journal success."""
        path = self.results_dir / f"{combo_slug}.json"
        path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n")
        self._record({"slug": combo_slug, "event": "done"})
        self._live_claims.discard(combo_slug)
        self.done.add(combo_slug)

    def mark_error(self, combo_slug: str, error: str) -> bool:
        """Journal a failed attempt; quarantines when the retry budget
        is exhausted.  Returns True when the combo stays retryable."""
        self._record({"slug": combo_slug, "event": "error", "error": error})
        self._live_claims.discard(combo_slug)
        self.tries[combo_slug] = self.tries.get(combo_slug, 0) + 1
        self.errors[combo_slug] = error
        if self.tries[combo_slug] >= self.max_tries:
            self._record({"slug": combo_slug, "event": "skip",
                          "error": error})
            self.skipped.add(combo_slug)
            return False
        return True

    def release_claims(self) -> None:
        """Forget this process's unresolved claims (end of a pass)."""
        self._live_claims.clear()

    # -- reads -----------------------------------------------------------
    def stats(self) -> SweepStats:
        return SweepStats(
            total=len(self.combos),
            done=len(self.done),
            skipped=len(self.skipped),
            in_progress=len(self._live_claims),
        )

    def load_results(self) -> list[dict]:
        """Every persisted result row, sorted by slug."""
        rows = []
        for slug in sorted(self.done):
            path = self.results_dir / f"{slug}.json"
            rows.append(json.loads(path.read_text(encoding="utf-8")))
        return rows

    def quarantined(self) -> list[tuple[str, int, str]]:
        """(slug, tries, last error) for every quarantined combo."""
        return [
            (slug, self.tries.get(slug, 0), self.errors.get(slug, ""))
            for slug in sorted(self.skipped)
        ]

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "ParamSweeper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
