"""Worker-side combo execution.

:func:`run_combo` is the unit of work the pool distributes: build the
scenario for one parameter assignment, run the (deterministic,
single-process) simulator, and return a plain-dict result row.  It is
a module-level function so it pickles across ``multiprocessing``
workers, and it touches no campaign state — journaling stays with the
parent's :class:`~repro.campaign.sweeper.ParamSweeper`.

:func:`safe_run_combo` is the pool wrapper: it converts any exception
into an error row instead of letting it tear down the map call, so
one poisoned combo cannot wedge the sweep (the engine retries it a
bounded number of times, then quarantines it).
"""

from __future__ import annotations

import traceback

from ..simcluster import Cluster
from .scenarios import build_scenario, resolve_params
from .space import combo_slug

__all__ = ["run_combo", "safe_run_combo"]


def run_combo(params: dict) -> dict:
    """Execute one combo; returns ``{slug, params, metrics}``.

    Metrics are simulated quantities only (wall time on the simulated
    clock, adaptation counts, mean cycle time) — never host wall-clock
    — so a result row is a pure function of its parameters and the
    aggregate stays byte-stable across runs, hosts, and interrupts.
    """
    from ..apps import run_program  # deferred: keep worker import light

    # identity = the declared combo, not the resolved assignment: the
    # sweeper journals the slug of what the space expanded to, and the
    # two differ when a spec leans on defaults
    slug = combo_slug(params)
    full = resolve_params(params)
    built = build_scenario(full)
    if built.farm_cfg is not None:
        return _run_farm_combo(slug, params, built)
    cluster = Cluster(built.cluster_spec)
    if built.failure_script is not None:
        cluster.install_failure_script(built.failure_script)
    result = run_program(
        cluster,
        built.program,
        built.cfg,
        spec=built.spec,
        adaptive=True,
        load_script=built.load_script,
    )
    metrics = {
        "wall_time": float(result.wall_time),
        "n_redistributions": int(result.n_redistributions),
        "n_drops": int(result.n_drops),
        "n_crash_recoveries": sum(
            1 for ev in result.events if ev.kind == "crash_recovery"
        ),
        "mean_cycle_time": float(result.mean_cycle_time()),
        "n_events": len(result.events),
    }
    checks = {}
    if built.oracle is not None:
        err = built.oracle(result.per_rank)
        checks["oracle"] = err or "ok"
        if err:
            raise AssertionError(f"oracle violation: {err}")
    return {"slug": slug, "params": dict(params),
            "metrics": metrics, "checks": checks}


def _run_farm_combo(slug: str, params: dict, built) -> dict:
    """Farm combos run through the elastic farm launcher; the oracle is
    the completed-result digest against the computed reference."""
    from ..apps.farm import run_farm_app  # deferred, like run_program

    cluster = Cluster(built.cluster_spec)
    result = run_farm_app(
        cluster,
        built.farm_cfg,
        load_script=built.load_script,
        failure_script=built.failure_script,
    )
    metrics = {
        "wall_time": float(result.wall_time),
        "jobs_done": int(result.jobs_done),
        "jobs_per_sec": float(result.jobs_per_sec),
        "n_requeued": int(result.n_requeued),
        "duplicates": int(result.duplicates),
        "park_events": int(result.park_events),
        "readmit_events": int(result.readmit_events),
        "dead_workers": len(result.dead_workers),
    }
    checks = {}
    if built.oracle is not None:
        err = built.oracle(result)
        checks["oracle"] = err or "ok"
        if err:
            raise AssertionError(f"oracle violation: {err}")
    return {"slug": slug, "params": dict(params),
            "metrics": metrics, "checks": checks}


def safe_run_combo(params: dict) -> dict:
    """Pool-safe wrapper: exceptions become error rows."""
    try:
        row = run_combo(params)
        row["ok"] = True
        return row
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 — worker boundary
        return {
            "slug": combo_slug(params),
            "params": dict(params),
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=8),
        }
