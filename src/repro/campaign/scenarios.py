"""Combo parameters -> executable simulator scenario.

The campaign's scenario vocabulary is deliberately compact so that a
full parameter assignment fits into a slug and a repro command line:

=============  ==========================================================
param          meaning (default)
=============  ==========================================================
``app``        ``jacobi`` | ``sor`` | ``cg`` | ``particle`` | ``farm``
               (jacobi)
``n_nodes``    cluster size (4)
``size``       linear problem dimension (24)
``cycles``     phase cycles / iterations (8)
``load``       load-script DSL, see below (``none``)
``failure``    failure-script DSL, see below (``none``)
``seed``       cluster + app seed (0)
``sanitize``   0/1 — force the PR-1 runtime sanitizer on (0)
``observe``    0/1 — record a dynscope trace (0)
``perturb``    0 = off, else a PR-6 schedule-perturbation seed (0)
``check``      0/1 — verify the run against its sequential
               reference oracle (1)
``policy``     farm only: loop-scheduling policy, one of
               :data:`repro.farm.POLICIES` (self)
``n_jobs``     farm only: jobs in the farm (200)
``skew``       farm only: job-cost profile,
               ``uniform`` | ``linear`` | ``hot`` (hot)
``chunk``      farm only: fixed chunk size for self/rma dispatch (8)
=============  ==========================================================

The ``farm`` app reuses the trigger DSL unchanged, with two extra
rules: the master lives on node 0, so faults and load targeting node 0
are rejected (the farm tolerates worker churn, not master loss), and a
``crash`` fault is lowered to a fail-stop ``kill`` of the node's
worker process — the farm requeues its in-flight jobs instead of going
through the buddy-checkpoint recovery recipe.

Load DSL — ``+``-separated triggers, each
``n<node>@c<cycle>[x<count>][-c<stop_cycle>]``:

* ``n0@c3``      one competing process on node 0 at cycle 3
* ``n1@c2x3``    three competitors on node 1 at cycle 2
* ``n0@c3x2-c6`` two competitors on node 0 at cycle 3, gone at cycle 6

Failure DSL — ``+``-separated faults, each
``<kind>:n<node>@c<cycle>[x<count>][-c<stop_cycle>]`` with kind
``slow`` (transient competing-load burst, stop via ``-c``) or
``crash`` (fail-stop node crash, recovered from buddy checkpoints).
A ``crash`` switches the runtime to the resilience recipe (checkpoint
interval 1, tight heartbeat), the regime PR 2 proved bitwise-exact
for the evaluated apps.

Everything here is pure construction — no multiprocessing, no I/O —
so :func:`build_scenario` is equally usable from the worker pool, the
fuzzer, and unit tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from ..apps import (
    CGConfig,
    JacobiConfig,
    ParticleConfig,
    SORConfig,
    cg_program,
    initial_counts,
    jacobi_program,
    particle_program,
    sor_program,
)
from ..apps import jacobi as jacobi_mod
from ..apps import sor as sor_mod
from ..apps.farm import SKEWS, FarmConfig, farm_oracle
from ..farm import POLICIES
from ..apps.reference import (
    cg_matrix_dense,
    cg_reference,
    jacobi_reference,
    particle_reference,
    sor_reference,
)
from ..config import (
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    ResilienceSpec,
    RuntimeSpec,
)
from ..errors import ConfigError
from ..resilience import CycleFault, FailureScript
from ..simcluster import CycleTrigger, LoadScript

__all__ = [
    "APP_NAMES",
    "SCENARIO_DEFAULTS",
    "BuiltScenario",
    "build_scenario",
    "parse_failure",
    "parse_load",
    "resolve_params",
]

APP_NAMES = ("jacobi", "sor", "cg", "particle", "farm")

SCENARIO_DEFAULTS = {
    "app": "jacobi",
    "n_nodes": 4,
    "size": 24,
    "cycles": 8,
    "load": "none",
    "failure": "none",
    "seed": 0,
    "sanitize": 0,
    "observe": 0,
    "perturb": 0,
    "check": 1,
    # farm-only axes (ignored by the grid apps)
    "policy": "self",
    "n_jobs": 200,
    "skew": "hot",
    "chunk": 8,
}

_TRIGGER_RE = re.compile(
    r"^n(?P<node>\d+)@c(?P<cycle>\d+)(?:x(?P<count>\d+))?"
    r"(?:-c(?P<stop>\d+))?$"
)


def _parse_trigger(text: str) -> tuple[int, int, int, Optional[int]]:
    m = _TRIGGER_RE.match(text)
    if m is None:
        raise ConfigError(
            f"bad trigger {text!r} (want n<node>@c<cycle>[x<count>][-c<stop>])"
        )
    stop = m.group("stop")
    return (
        int(m.group("node")),
        int(m.group("cycle")),
        int(m.group("count") or 1),
        None if stop is None else int(stop),
    )


def parse_load(spec: str) -> Optional[LoadScript]:
    """Parse the load DSL; ``"none"``/empty means no script."""
    if not spec or spec == "none":
        return None
    triggers = []
    for part in spec.split("+"):
        node, cycle, count, stop = _parse_trigger(part)
        triggers.append(
            CycleTrigger(cycle=cycle, node=node, action="start", count=count)
        )
        if stop is not None:
            triggers.append(
                CycleTrigger(cycle=stop, node=node, action="stop", count=count)
            )
    return LoadScript(cycle_triggers=triggers)


def parse_failure(spec: str) -> Optional[FailureScript]:
    """Parse the failure DSL; ``"none"``/empty means no script."""
    if not spec or spec == "none":
        return None
    faults = []
    for part in spec.split("+"):
        kind, _, trigger = part.partition(":")
        if kind not in ("slow", "crash"):
            raise ConfigError(
                f"bad fault kind {kind!r} in {part!r} (want slow|crash)"
            )
        node, cycle, count, stop = _parse_trigger(trigger)
        if stop is not None:
            raise ConfigError(
                f"fault {part!r}: stop cycles are a load-script notion; "
                f"faults are point events (slowdowns persist)"
            )
        if kind == "crash":
            faults.append(CycleFault(cycle=cycle, node=node, action="crash"))
        else:
            faults.append(CycleFault(
                cycle=cycle, node=node, action="slowdown", count=count,
            ))
    return FailureScript(cycle_faults=faults)


def has_crash(spec: str) -> bool:
    return bool(spec) and spec != "none" and "crash:" in spec


def resolve_params(params: dict) -> dict:
    """Fill defaults and validate types; returns a complete assignment."""
    full = dict(SCENARIO_DEFAULTS)
    unknown = set(params) - set(full)
    if unknown:
        raise ConfigError(f"unknown scenario parameters: {sorted(unknown)}")
    full.update(params)
    full["app"] = str(full["app"])
    for key in ("n_nodes", "size", "cycles", "seed",
                "sanitize", "observe", "perturb", "check",
                "n_jobs", "chunk"):
        full[key] = int(full[key])
    full["policy"] = str(full["policy"])
    full["skew"] = str(full["skew"])
    if full["app"] not in APP_NAMES:
        raise ConfigError(
            f"unknown app {full['app']!r} (one of {APP_NAMES})"
        )
    if full["n_nodes"] < 1:
        raise ConfigError("n_nodes must be >= 1")
    if full["size"] < 8 or full["cycles"] < 1:
        raise ConfigError("size must be >= 8 and cycles >= 1")
    if full["policy"] not in POLICIES:
        raise ConfigError(
            f"unknown farm policy {full['policy']!r} (one of {POLICIES})"
        )
    if full["skew"] not in SKEWS:
        raise ConfigError(
            f"unknown skew profile {full['skew']!r} (one of {SKEWS})"
        )
    if full["n_jobs"] < 1 or full["chunk"] < 1:
        raise ConfigError("n_jobs and chunk must be >= 1")
    if full["app"] == "farm":
        if full["n_nodes"] < 2:
            raise ConfigError("the farm needs n_nodes >= 2 (master + worker)")
        _reject_master_node(full)
    return full


def _reject_master_node(full: dict) -> None:
    """The farm master is rank 0 on node 0: churn there is not worker
    elasticity but master loss, which the farm (by design) does not
    survive — reject it at scenario-construction time."""
    for kind, spec in (("load", full["load"]), ("failure", full["failure"])):
        if not spec or spec == "none":
            continue
        for part in spec.split("+"):
            trigger = part.partition(":")[2] if kind == "failure" else part
            if _parse_trigger(trigger)[0] == 0:
                raise ConfigError(
                    f"farm scenarios cannot target node 0 ({kind} "
                    f"{part!r}): node 0 hosts the master"
                )


@dataclass
class BuiltScenario:
    """Everything run_combo needs to execute one combo."""

    cluster_spec: ClusterSpec
    program: Callable
    cfg: object
    spec: RuntimeSpec
    load_script: Optional[LoadScript]
    failure_script: Optional[FailureScript]
    #: sequential-reference check: (per_rank results) -> error string or ""
    oracle: Optional[Callable]
    #: set for ``app=farm``: the combo runs through
    #: :func:`repro.apps.farm.run_farm_app` instead of ``run_program``
    #: (and ``oracle`` then takes the :class:`~repro.farm.FarmResult`)
    farm_cfg: Optional[FarmConfig] = None


def _app_setup(full: dict, check: bool):
    """(program, cfg, oracle) for the resolved assignment."""
    app, size, cycles = full["app"], full["size"], full["cycles"]
    seed = full["seed"]
    if app == "jacobi":
        cfg = JacobiConfig(n=size, iters=cycles, materialized=check,
                           collect=check, seed=7 + seed)
        oracle = _grid_oracle(
            lambda: jacobi_reference(jacobi_mod.initial_grid(cfg), cfg.iters)
        ) if check else None
        return jacobi_program, cfg, oracle
    if app == "sor":
        cfg = SORConfig(n=size, iters=cycles, materialized=check,
                        collect=check, seed=11 + seed)
        oracle = _grid_oracle(
            lambda: sor_reference(sor_mod.initial_grid(cfg), cfg.iters,
                                  cfg.omega)
        ) if check else None
        return sor_program, cfg, oracle
    if app == "cg":
        # CG rows want ~12 nonzeros; keep n comfortably above that.
        # exact_math follows check: virtual math is enough for timing
        cfg = CGConfig(n=max(size, 24), iters=cycles, seed=1234 + seed,
                       exact_math=check)
        oracle = _cg_oracle(cfg) if check else None
        return cg_program, cfg, oracle
    # particle
    cfg = ParticleConfig(rows=size, cols=8, steps=cycles,
                         hot_rows=size // 4, hot_factor=2.0,
                         collect=check, seed=7 + seed)
    oracle = _grid_oracle(
        lambda: particle_reference(initial_counts(cfg), cfg.steps, cfg.seed),
        exact=True,
    ) if check else None
    return particle_program, cfg, oracle


def _grid_oracle(reference: Callable, *, exact: bool = False) -> Callable:
    def check(per_rank) -> str:
        expected = reference()
        for rank, out in enumerate(per_rank):
            if out is None:  # crashed rank (fail-stop victim)
                continue
            got = out["grid"]
            ok = (np.array_equal(got, expected) if exact
                  else np.allclose(got, expected, atol=1e-12))
            if not ok:
                worst = float(np.max(np.abs(np.asarray(got) - expected)))
                return (f"rank {rank} grid deviates from the sequential "
                        f"reference (max abs err {worst:.3e})")
        return ""
    return check


def _cg_oracle(cfg: CGConfig) -> Callable:
    def check(per_rank) -> str:
        A = cg_matrix_dense(cfg.n, nnz_target=cfg.nnz_target, seed=cfg.seed)
        x_ref, _ = cg_reference(A, np.ones(cfg.n), cfg.iters)
        x = np.zeros(cfg.n)
        for out in per_rank:
            if out is None:
                continue
            for g, v in out["x_local"].items():
                x[g] = v
        if not np.allclose(x, x_ref, atol=1e-8):
            worst = float(np.max(np.abs(x - x_ref)))
            return (f"CG solution deviates from the sequential reference "
                    f"(max abs err {worst:.3e})")
        return ""
    return check


def _farm_scenario(full: dict, check: bool) -> BuiltScenario:
    """Scenario construction for ``app=farm``: no DynMPIJob, no
    resilience recipe — churn flows through the farm's own requeue
    machinery, so a ``crash`` fault is lowered to a fail-stop ``kill``
    of the node's worker."""
    cfg = FarmConfig(
        n_jobs=full["n_jobs"], policy=full["policy"], chunk=full["chunk"],
        skew=full["skew"], seed=full["seed"], cycles=full["cycles"],
    )
    failure = parse_failure(full["failure"])
    if failure is not None:
        failure = FailureScript(cycle_faults=[
            replace(f, action="kill") if f.action == "crash" else f
            for f in failure.cycle_faults
        ])
    cluster_spec = ClusterSpec(
        n_nodes=full["n_nodes"],
        node=NodeSpec(speed=1e8),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                            cpu_per_byte=0.01, cpu_per_msg=50.0),
        seed=full["seed"],
        name="campaign-farm",
        sanitize=True if full["sanitize"] else None,
        observe=True if full["observe"] else None,
        perturb=full["perturb"] or None,
    )
    return BuiltScenario(
        cluster_spec=cluster_spec,
        program=None,
        cfg=cfg,
        spec=RuntimeSpec(),
        load_script=parse_load(full["load"]),
        failure_script=failure,
        oracle=farm_oracle(cfg) if check else None,
        farm_cfg=cfg,
    )


def build_scenario(params: dict) -> BuiltScenario:
    """Construct the full scenario for a (possibly partial) assignment."""
    full = resolve_params(params)
    check = bool(full["check"])
    if full["app"] == "farm":
        return _farm_scenario(full, check)
    crash = has_crash(full["failure"])
    program, cfg, oracle = _app_setup(full, check)

    if crash:
        # the PR-2 recovery recipe (tests/test_resilience.py): default
        # Ethernet overheads give cycles long enough that the stale
        # heartbeat crosses its timeout a deterministic two cycles
        # after the crash
        network = NetworkSpec()
        spec = RuntimeSpec(
            grace_period=2, post_redist_period=3,
            allow_removal=True, allow_rejoin=True,
            daemon_interval=0.001,
            resilience=ResilienceSpec(checkpoint_interval=1,
                                      heartbeat_timeout=0.004),
        )
    else:
        # tiny problems need the comm/comp ratio kept realistic
        # (tests/test_apps.py) and a daemon far faster than 1 Hz
        network = NetworkSpec(latency=75e-6, bandwidth=12.5e6,
                              cpu_per_byte=0.01, cpu_per_msg=50.0)
        spec = RuntimeSpec(grace_period=2, post_redist_period=3,
                           allow_removal=False, daemon_interval=0.002)

    cluster_spec = ClusterSpec(
        n_nodes=full["n_nodes"],
        node=NodeSpec(speed=1e8),
        network=network,
        seed=full["seed"],
        name=f"campaign-{full['app']}",
        sanitize=True if full["sanitize"] else None,
        observe=True if full["observe"] else None,
        perturb=full["perturb"] or None,
    )
    return BuiltScenario(
        cluster_spec=cluster_spec,
        program=program,
        cfg=cfg,
        spec=spec,
        load_script=parse_load(full["load"]),
        failure_script=parse_failure(full["failure"]),
        oracle=oracle,
    )
