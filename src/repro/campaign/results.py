"""The shared ``BENCH_*.json`` serializer and campaign aggregation.

This module is the one home of the machine-readable benchmark format:
the pytest benches (``benchmarks/conftest.py``) and the campaign
aggregator both serialize through :func:`render_bench_json`, so a
``BENCH_<name>.json`` file means the same thing no matter which tool
wrote it — ``{"name": ..., "data": ...}`` with sorted keys, two-space
indent, and a trailing newline, byte-for-byte.

Campaign aggregation is deterministic by construction: per-combo
result rows are sorted by slug and summarized with order-independent
statistics, so the aggregate of an interrupted-and-resumed sweep is
byte-identical to that of an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "jsonable",
    "bench_payload",
    "render_bench_json",
    "write_bench_json",
    "aggregate_results",
]


def jsonable(obj):
    """Best-effort conversion of bench payloads (dataclass rows, numpy
    scalars/arrays, nested containers) into JSON-serializable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    return str(obj)


def bench_payload(name: str, data, obs=None) -> dict:
    """The canonical BENCH payload: ``name`` + converted ``data``,
    plus the optional dynscope summary block."""
    payload = {"name": name, "data": jsonable(data)}
    if obs is not None:
        payload["obs"] = obs
    return payload


def render_bench_json(name: str, data, obs=None) -> str:
    """The exact bytes of a ``BENCH_<name>.json`` file."""
    return json.dumps(
        bench_payload(name, data, obs), indent=2, sort_keys=True
    ) + "\n"


def write_bench_json(
    directory: pathlib.Path, name: str, data, obs=None
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(render_bench_json(name, data, obs))
    return path


# ---------------------------------------------------------------------------
# campaign aggregation
# ---------------------------------------------------------------------------

#: metric fields summarized per group (must exist in every result row
#: of that group; farm rows carry a different metric set than the
#: phase-structured apps, and groups are keyed by app so never mix)
_SUMMARY_METRICS = ("wall_time", "n_redistributions", "n_drops")
_FARM_SUMMARY_METRICS = (
    "wall_time", "jobs_done", "jobs_per_sec", "n_requeued", "duplicates",
)


def _mean(values: Sequence[float]) -> float:
    # plain left-to-right sum over slug-sorted rows: deterministic
    return sum(values) / len(values) if values else float("nan")


def aggregate_results(
    campaign: str,
    results: Sequence[Mapping],
    skipped: Sequence[str] = (),
    *,
    n_combos: Optional[int] = None,
) -> dict:
    """Fold per-combo result rows into the campaign aggregate.

    ``results`` rows are dicts with at least ``slug``, ``params`` and
    ``metrics`` keys (what :func:`repro.campaign.runner.run_combo`
    returns).  Rows are re-sorted by slug so the output is independent
    of completion order; ``skipped`` (quarantined combo slugs) is
    sorted for the same reason.  Group summaries are keyed on
    ``app x n_nodes``.
    """
    rows = sorted(results, key=lambda r: r["slug"])
    groups: dict[tuple, list] = {}
    for row in rows:
        params = row["params"]
        key = (str(params.get("app", "?")), int(params.get("n_nodes", 0)))
        groups.setdefault(key, []).append(row["metrics"])
    group_rows = []
    for (app, n_nodes), metrics in sorted(groups.items()):
        summary = {"app": app, "n_nodes": n_nodes, "count": len(metrics)}
        fields = (_FARM_SUMMARY_METRICS if app == "farm"
                  else _SUMMARY_METRICS)
        for field in fields:
            values = [float(m[field]) for m in metrics]
            summary[f"mean_{field}"] = _mean(values)
            summary[f"min_{field}"] = min(values)
            summary[f"max_{field}"] = max(values)
        group_rows.append(summary)
    return {
        "campaign": campaign,
        "n_combos": len(rows) + len(skipped) if n_combos is None else n_combos,
        "n_done": len(rows),
        "skipped": sorted(skipped),
        "groups": group_rows,
        "combos": [
            {"slug": r["slug"], "params": jsonable(r["params"]),
             "metrics": jsonable(r["metrics"])}
            for r in rows
        ],
    }
