"""dyncamp — the campaign engine: thousands of seeded scenarios,
swept in parallel, resumable on disk.

Every perf and robustness claim in this repository used to rest on a
handful of hand-picked scenarios.  This package turns those one-off
benchmarks into *campaigns*: declare a parameter space (app x cluster
size x load script x failure script x seed x toggles), expand it into
scenario combos (:mod:`repro.campaign.space`), and execute the combos
across host CPU cores with a multiprocessing worker pool
(:mod:`repro.campaign.engine`).  The simulator is deterministic and
single-process, so the sweep is embarrassingly parallel; this package
is the one sanctioned home for process-level parallelism in the
library (lint rule DYN801 keeps it that way).

Sweep state is resumable: every combo transition (claim / done /
error / skip) is journaled to disk (:mod:`repro.campaign.sweeper`,
the execo ``ParamSweeper`` idiom), so a killed campaign restarts
without redoing finished work, and a crashing combo is retried a
bounded number of times before being quarantined instead of wedging
the pool.  Per-combo results are deterministic simulated metrics;
the aggregate (``BENCH_campaign.json``) is byte-identical no matter
how often the sweep was interrupted or in which order workers
finished (:mod:`repro.campaign.results`).

A fuzzer mode (:mod:`repro.campaign.fuzz`) generates
randomized-but-seeded load/failure scenarios and checks three
invariants on each: the sequential reference oracle (PR 3), the
runtime communication sanitizer (PR 1), and schedule-perturbation
trace invariance (PR 6).  Failing scenarios are persisted with a
minimal repro command line.

CLI: ``python -m repro.campaign {run,resume,status,fuzz,report}``;
see docs/CAMPAIGNS.md.
"""

from .space import Combo, ParamSpace, combo_slug, expand
from .results import (
    aggregate_results,
    bench_payload,
    jsonable,
    render_bench_json,
    write_bench_json,
)
from .sweeper import ParamSweeper, SweepStats
from .scenarios import (
    APP_NAMES,
    SCENARIO_DEFAULTS,
    build_scenario,
    parse_failure,
    parse_load,
)
from .runner import run_combo, safe_run_combo
from .engine import Engine
from .fuzz import FuzzReport, fuzz_params, run_fuzz

__all__ = [
    "APP_NAMES",
    "Combo",
    "Engine",
    "FuzzReport",
    "ParamSpace",
    "ParamSweeper",
    "SCENARIO_DEFAULTS",
    "SweepStats",
    "aggregate_results",
    "bench_payload",
    "build_scenario",
    "combo_slug",
    "expand",
    "fuzz_params",
    "jsonable",
    "parse_failure",
    "parse_load",
    "render_bench_json",
    "run_combo",
    "run_fuzz",
    "safe_run_combo",
    "write_bench_json",
]
