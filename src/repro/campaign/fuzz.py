"""Scenario fuzzer: randomized-but-seeded load/failure schedules with
three independent invariant checkers.

Each fuzz iteration derives a scenario from ``(campaign_seed, index)``
through a self-contained SplitMix64 generator — no ``random`` module,
no numpy Generator, so the draw sequence is bit-stable across Python
and numpy versions and the dynrace DYN704 rule stays clean.  The
scenario is then executed up to three times:

1. **oracle** (PR 3): the distributed run must compute exactly what
   its sequential reference computes, redistribution or not;
2. **sanitize** (PR 1): the run must survive the runtime communication
   sanitizer (deadlock diagnosis, finalize accounting, collective
   checks) without a finding;
3. **perturb** (PR 6): with dynscope recording on, the exported trace
   must be byte-identical under schedule-perturbation seeds — the
   adaptation machinery must not leak MPI-undefined match order into
   results.

A violated invariant persists the scenario to ``failures.jsonl`` with
a minimal repro command line (``python -m repro.campaign fuzz --seed S
--index I``) so a failure found in a thousand-scenario sweep is one
copy-paste away from a debugger.

``failures.jsonl`` is also a **regression corpus**: ``python -m
repro.campaign fuzz --replay failures.jsonl`` re-runs every recorded
scenario through all three invariants and exits 0 only when the whole
corpus is clean — the check that a fixed bug stays fixed.  Replay
re-derives the scenario from ``(seed, index)``; if the derived slug no
longer matches the recorded one (the generator changed since the row
was written), it falls back to the recorded ``params`` verbatim and
marks the row ``drifted`` — corpus entries outlive fuzzer tweaks.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .runner import run_combo
from .scenarios import build_scenario, resolve_params
from .space import combo_slug

__all__ = [
    "SplitMix64",
    "FuzzReport",
    "fuzz_params",
    "fuzz_one",
    "load_corpus",
    "replay_one",
    "run_fuzz",
    "run_replay",
]

_MASK = (1 << 64) - 1
#: perturbation seeds each scenario's trace must be invariant under
PERTURB_SEEDS = (1, 2)


class SplitMix64:
    """Tiny deterministic PRNG (SplitMix64), seeded from integers.

    The campaign's randomness must be reproducible from ``(seed,
    index)`` alone, forever — library RNGs can change their draw
    streams between versions, this cannot.
    """

    def __init__(self, *seed_parts: int):
        acc = 0xCBF29CE484222325  # FNV-1a offset basis, folds the parts
        for part in seed_parts:
            acc ^= part & _MASK
            acc = (acc * 0x100000001B3) & _MASK
        self._state = acc

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive)."""
        return lo + self.next_u64() % (hi - lo + 1)

    def choice(self, seq):
        return seq[self.next_u64() % len(seq)]

    def chance(self, num: int, den: int) -> bool:
        """True with probability num/den."""
        return self.next_u64() % den < num


def fuzz_params(seed: int, index: int) -> dict:
    """The scenario for fuzz iteration ``index`` of campaign ``seed``."""
    rng = SplitMix64(seed, index)
    app = rng.choice(("jacobi", "sor", "cg", "particle"))
    crash = app == "jacobi" and rng.chance(3, 20)
    if crash:
        # stay inside the envelope PR 2 proved bitwise-exact: 4 nodes,
        # default-Ethernet cycle lengths, crash well before the end
        n_nodes = 4
        size = 64
        cycles = rng.randint(36, 48)
        failure = f"crash:n{rng.randint(1, 3)}@c{rng.randint(8, 18)}"
    else:
        n_nodes = rng.randint(2, 5)
        size = rng.randint(24, 40) if app == "cg" else rng.randint(16, 32)
        cycles = rng.randint(6, 14)
        failure = "none"
        if rng.chance(1, 4):
            failure = (f"slow:n{rng.randint(0, n_nodes - 1)}"
                       f"@c{rng.randint(2, 5)}x{rng.randint(1, 2)}")
    triggers = []
    for _ in range(rng.randint(0, 2)):
        node = rng.randint(0, n_nodes - 1)
        start = rng.randint(2, max(2, cycles // 2))
        frag = f"n{node}@c{start}x{rng.randint(1, 3)}"
        if rng.chance(1, 3):
            frag += f"-c{start + rng.randint(2, 6)}"
        triggers.append(frag)
    return {
        "app": app,
        "n_nodes": n_nodes,
        "size": size,
        "cycles": cycles,
        "load": "+".join(triggers) or "none",
        "failure": failure,
        "seed": rng.randint(0, 10_000),
        "check": 1,
    }


# ---------------------------------------------------------------------------
# invariant checkers
# ---------------------------------------------------------------------------

def _oracle_invariant(params: dict) -> str:
    """Run with the sequential-reference check armed; '' when clean."""
    try:
        row = run_combo(dict(params))
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
    return "" if row["checks"].get("oracle", "ok") == "ok" else \
        row["checks"]["oracle"]


def _sanitize_invariant(params: dict) -> str:
    """Re-run under the PR-1 runtime sanitizer; '' when clean."""
    sanitized = dict(params)
    sanitized["sanitize"] = 1
    sanitized["check"] = 0  # the oracle already ran; keep this run lean
    try:
        run_combo(sanitized)
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
    return ""


def _traced_export(params: dict, perturb: int) -> str:
    from ..apps import run_program
    from ..obs.export import jsonl_text
    from ..simcluster import Cluster

    traced = dict(params)
    traced["observe"] = 1
    traced["perturb"] = perturb
    traced["check"] = 0
    built = build_scenario(resolve_params(traced))
    cluster = Cluster(built.cluster_spec)
    if built.failure_script is not None:
        cluster.install_failure_script(built.failure_script)
    run_program(cluster, built.program, built.cfg, spec=built.spec,
                adaptive=True, load_script=built.load_script)
    return jsonl_text(cluster.obs)


def _perturb_invariant(params: dict) -> str:
    """PR-6 cross-check: the dynscope export must not move under
    schedule-perturbation seeds; '' when invariant."""
    try:
        base = _traced_export(params, 0)
        for seed in PERTURB_SEEDS:
            if _traced_export(params, seed) != base:
                return (f"trace differs under DYNMPI_PERTURB={seed} — "
                        f"a schedule-dependent outcome leaked into the run")
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
    return ""


_INVARIANTS = (
    ("oracle", _oracle_invariant),
    ("sanitize", _sanitize_invariant),
    ("perturb", _perturb_invariant),
)


def fuzz_one(args: tuple) -> dict:
    """Run all invariants for one iteration (pool-safe unit of work)."""
    seed, index = args
    params = fuzz_params(seed, index)
    verdicts = {}
    for name, checker in _INVARIANTS:
        verdicts[name] = checker(params) or "ok"
    ok = all(v == "ok" for v in verdicts.values())
    row = {
        "index": index,
        "seed": seed,
        "slug": combo_slug(params),
        "params": params,
        "invariants": verdicts,
        "ok": ok,
    }
    if not ok:
        row["repro"] = (f"python -m repro.campaign fuzz "
                        f"--seed {seed} --index {index}")
    return row


def replay_one(row: dict) -> dict:
    """Re-check one corpus row (pool-safe).  Prefers re-deriving the
    scenario from ``(seed, index)``; falls back to the recorded params
    when the derived slug no longer matches (generator drift)."""
    seed, index = int(row["seed"]), int(row["index"])
    params = fuzz_params(seed, index)
    drifted = combo_slug(params) != row.get("slug", combo_slug(params))
    if drifted:
        params = dict(row["params"])
    verdicts = {}
    for name, checker in _INVARIANTS:
        verdicts[name] = checker(dict(params)) or "ok"
    ok = all(v == "ok" for v in verdicts.values())
    out = {
        "index": index,
        "seed": seed,
        "slug": row.get("slug") or combo_slug(params),
        "params": params,
        "invariants": verdicts,
        "ok": ok,
    }
    if drifted:
        out["drifted"] = True
    if not ok:
        out["repro"] = row.get("repro") or (
            f"python -m repro.campaign fuzz --seed {seed} --index {index}"
        )
    return out


def load_corpus(path) -> list:
    """Parse a ``failures.jsonl`` corpus.  Raises ValueError for rows
    missing the replay keys (the CLI maps that to exit 2)."""
    rows = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for n, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        row = json.loads(line)
        missing = {"seed", "index", "params"} - set(row)
        if missing:
            raise ValueError(
                f"{path}:{n}: corpus row missing {sorted(missing)}"
            )
        rows.append(row)
    if not rows:
        raise ValueError(f"{path}: empty corpus")
    return rows


def run_replay(corpus_path, *, workers: int = 1) -> "FuzzReport":
    """Replay every row of a failure corpus; the report is clean only
    when every recorded scenario now passes all invariants."""
    rows = load_corpus(corpus_path)
    if workers > 1 and len(rows) > 1:
        with multiprocessing.Pool(min(workers, len(rows))) as pool:
            out = pool.map(replay_one, rows)
    else:
        out = [replay_one(row) for row in rows]
    seeds = sorted({r["seed"] for r in out})
    return FuzzReport(seed=seeds[0] if len(seeds) == 1 else -1, rows=out)


@dataclass
class FuzzReport:
    seed: int
    rows: list = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        return len(self.rows)

    @property
    def failures(self) -> list:
        return [r for r in self.rows if not r["ok"]]

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        out = [f"fuzz: seed={self.seed} {self.n_scenarios} scenario(s), "
               f"{len(self.failures)} failure(s)"]
        for row in self.rows:
            if row["ok"]:
                continue
            bad = {k: v for k, v in row["invariants"].items() if v != "ok"}
            out.append(f"  FAIL index={row['index']} {row['slug']}")
            for name, verdict in sorted(bad.items()):
                out.append(f"    {name}: {verdict}")
            out.append(f"    repro: {row['repro']}")
        if self.clean:
            out.append("fuzz: all invariants clean")
        return "\n".join(out)


def run_fuzz(
    seed: int,
    iterations: int,
    *,
    workers: int = 1,
    out_dir: Optional[pathlib.Path] = None,
    indices: Optional[Sequence[int]] = None,
) -> FuzzReport:
    """Fuzz ``iterations`` scenarios (or exactly ``indices``); persists
    failing scenarios with repro lines when ``out_dir`` is given."""
    todo = list(indices) if indices is not None else list(range(iterations))
    jobs = [(seed, i) for i in todo]
    if workers > 1 and len(jobs) > 1:
        with multiprocessing.Pool(min(workers, len(jobs))) as pool:
            rows = pool.map(fuzz_one, jobs)
    else:
        rows = [fuzz_one(job) for job in jobs]
    report = FuzzReport(seed=seed, rows=rows)
    if out_dir is not None:
        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        with open(out_dir / "failures.jsonl", "a", encoding="utf-8") as fh:
            for row in report.failures:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
    return report
