"""Parameter-space declaration and deterministic expansion.

A campaign declares its space as ``{param_name: [values...]}`` (the
execo ``sweep()`` idiom).  :func:`expand` takes the cartesian product
in a deterministic order — parameters sorted by name, values in
declaration order — so the combo list, the slugs, and therefore the
sweep journal and the aggregate are stable across hosts and runs.

Each combo is identified by its *slug*, a filesystem-safe
``key=value`` rendering of the full parameter assignment.  The slug is
the combo's identity everywhere: in the journal, in per-combo result
files, and in repro command lines.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from ..errors import ConfigError

__all__ = ["ParamSpace", "Combo", "combo_slug", "expand", "load_space"]

#: parameter values are scalars so combos stay JSON- and slug-safe
Scalar = Union[str, int, float, bool]

#: characters that may not appear in slug fragments (path separators,
#: whitespace, shell metacharacters that would break repro lines)
_SLUG_BAD = set(" /\\\n\t\r'\"`$;|&<>")


def _slug_fragment(value: Scalar) -> str:
    text = str(value)
    if not text or any(c in _SLUG_BAD for c in text):
        raise ConfigError(f"parameter value {value!r} is not slug-safe")
    return text


def combo_slug(params: Mapping[str, Scalar]) -> str:
    """Canonical identity of a parameter assignment: ``k=v`` pairs,
    sorted by key, joined with ``,``."""
    return ",".join(
        f"{k}={_slug_fragment(v)}" for k, v in sorted(params.items())
    )


@dataclass(frozen=True)
class Combo:
    """One point of the parameter space."""

    params: tuple  # sorted ((key, value), ...) pairs — hashable

    @property
    def slug(self) -> str:
        return combo_slug(dict(self.params))

    def as_dict(self) -> dict:
        return dict(self.params)

    @staticmethod
    def from_dict(params: Mapping[str, Scalar]) -> "Combo":
        return Combo(tuple(sorted(params.items())))


class ParamSpace:
    """A declared parameter space plus fixed (non-swept) defaults.

    ``params`` maps parameter names to the list of values to sweep;
    ``fixed`` holds single-valued parameters every combo shares (a
    convenience so specs stay short).  Parameter names must not
    collide between the two.
    """

    def __init__(
        self,
        params: Mapping[str, Sequence[Scalar]],
        fixed: Mapping[str, Scalar] | None = None,
        *,
        name: str = "campaign",
    ):
        self.name = str(name)
        self.params = {str(k): list(v) for k, v in params.items()}
        self.fixed = {str(k): v for k, v in (fixed or {}).items()}
        overlap = set(self.params) & set(self.fixed)
        if overlap:
            raise ConfigError(
                f"parameters declared both swept and fixed: {sorted(overlap)}"
            )
        for key, values in self.params.items():
            if not values:
                raise ConfigError(f"parameter {key!r} has no values")
            for v in values:
                _slug_fragment(v)  # validate early
        for v in self.fixed.values():
            _slug_fragment(v)

    def __len__(self) -> int:
        n = 1
        for values in self.params.values():
            n *= len(values)
        return n

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "params": self.params,
            "fixed": self.fixed,
        }

    @staticmethod
    def from_json(spec: Mapping) -> "ParamSpace":
        try:
            params = spec["params"]
        except KeyError:
            raise ConfigError("campaign spec has no 'params' object")
        if not isinstance(params, Mapping) or not params:
            raise ConfigError("'params' must be a non-empty object")
        return ParamSpace(
            params,
            spec.get("fixed"),
            name=spec.get("name", "campaign"),
        )


def expand(space: ParamSpace) -> list[Combo]:
    """The full cartesian product, in deterministic order.

    Keys are iterated sorted; within a key, values keep declaration
    order.  Duplicate combos (possible when a value list repeats an
    entry) are rejected — they would collide in the journal.
    """
    keys = sorted(space.params)
    combos: list[Combo] = []
    seen: set[str] = set()
    for values in itertools.product(*(space.params[k] for k in keys)):
        params = dict(space.fixed)
        params.update(zip(keys, values))
        combo = Combo.from_dict(params)
        if combo.slug in seen:
            raise ConfigError(f"duplicate combo in space: {combo.slug}")
        seen.add(combo.slug)
        combos.append(combo)
    return combos


def load_space(path: Union[str, pathlib.Path]) -> ParamSpace:
    """Load a campaign spec file (JSON: ``{name, params, fixed}``)."""
    p = pathlib.Path(path)
    try:
        spec = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read campaign spec {p}: {exc.strerror}")
    except json.JSONDecodeError as exc:
        raise ConfigError(f"campaign spec {p} is not valid JSON: {exc}")
    return ParamSpace.from_json(spec)
