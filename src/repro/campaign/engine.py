"""The campaign engine: sweep the pending combos across CPU cores.

The engine is deliberately thin — all durable state lives in the
:class:`~repro.campaign.sweeper.ParamSweeper` journal, all scenario
logic in :mod:`repro.campaign.runner` — so that killing the engine at
any instant (SIGINT, SIGKILL, OOM) loses nothing but the in-flight
attempts.  A run proceeds in *passes*: claim a batch of pending
combos, journal the claims, execute the batch (inline, or on a
``multiprocessing`` pool when ``workers > 1``), journal each outcome,
repeat until nothing is pending.  Failed combos re-enter the pending
set until the sweeper quarantines them (bounded retry), so one
poisoned combo can neither wedge the pool nor spin forever.

The simulator is deterministic and single-process, which makes the
sweep embarrassingly parallel and the per-combo results independent
of scheduling: after any sequence of runs/kills/resumes the final
aggregate is byte-identical to an uninterrupted sweep's.

This module is (with the pool plumbing below) the reason lint rule
DYN801 exists: process-level parallelism in library code is allowed
*only* under ``repro.campaign`` — the simulator itself must stay
single-process.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Optional

from .results import aggregate_results, write_bench_json
from .runner import safe_run_combo
from .space import Combo
from .sweeper import ParamSweeper, SweepStats

__all__ = ["Engine", "default_workers"]


def default_workers() -> int:
    """One worker per host CPU, capped — sweep combos are sub-second,
    so more pool processes than cores only adds fork/IPC overhead."""
    return min(os.cpu_count() or 1, 16)


class Engine:
    """Execute a sweep to completion (or until ``max_combos``)."""

    def __init__(
        self,
        sweeper: ParamSweeper,
        *,
        workers: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.sweeper = sweeper
        self.workers = default_workers() if workers is None else max(1, workers)
        self._progress = progress or (lambda msg: None)

    # -- execution -------------------------------------------------------
    def _run_batch(self, batch: list[Combo]) -> list[dict]:
        params = [c.as_dict() for c in batch]
        if self.workers == 1 or len(batch) == 1:
            return [safe_run_combo(p) for p in params]
        with multiprocessing.Pool(min(self.workers, len(batch))) as pool:
            return pool.map(safe_run_combo, params)

    def run(self, max_combos: Optional[int] = None) -> SweepStats:
        """Sweep until complete; resumable at every journal line.

        ``max_combos`` caps the number of combo *attempts* this call
        makes (used by tests and the CI interrupt drill); the sweep is
        then resumed by simply calling :meth:`run` again (possibly
        from a fresh process via ``python -m repro.campaign resume``).
        """
        sweeper = self.sweeper
        attempts = 0
        # batches span all workers a few times over: big enough to keep
        # the pool busy, small enough that a kill re-queues little
        batch_size = max(1, self.workers * 4)
        while True:
            pending = sweeper.pending()
            if not pending:
                break
            if max_combos is not None:
                if attempts >= max_combos:
                    break
                pending = pending[: max_combos - attempts]
            batch = pending[:batch_size]
            for combo in batch:
                sweeper.claim(combo)
            try:
                rows = self._run_batch(batch)
            except KeyboardInterrupt:
                # claims stay in the journal as stale → re-queued (and
                # counted against the retry budget) on resume
                raise
            attempts += len(batch)
            for combo, row in zip(batch, rows):
                if row.get("ok"):
                    row = dict(row)
                    row.pop("ok")
                    sweeper.mark_done(combo.slug, row)
                else:
                    sweeper.mark_error(combo.slug, row.get("error", "?"))
            sweeper.release_claims()
            self._progress(sweeper.stats().render())
        return sweeper.stats()

    # -- aggregation -----------------------------------------------------
    def aggregate(self, *, bench_name: str = "campaign",
                  write_to=None) -> dict:
        """Fold the persisted result rows into the campaign aggregate;
        when ``write_to`` is given, also emit ``BENCH_<name>.json``
        there via the shared serializer."""
        agg = aggregate_results(
            self.sweeper.space.name,
            self.sweeper.load_results(),
            skipped=sorted(self.sweeper.skipped),
            n_combos=len(self.sweeper.combos),
        )
        if write_to is not None:
            write_bench_json(write_to, bench_name, agg)
        return agg
