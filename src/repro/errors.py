"""Exception hierarchy for the Dyn-MPI reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    This is the simulated analogue of an MPI job hanging: every live
    process is waiting on a message or event that can never arrive.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        names = ", ".join(blocked) or "<none>"
        super().__init__(f"simulation deadlock; blocked processes: {names}")


class MPIError(ReproError):
    """Misuse of the simulated MPI layer (bad rank, tag, truncation...)."""


class TruncationError(MPIError):
    """A received message was larger than the posted receive buffer."""


class RegistrationError(ReproError):
    """Invalid Dyn-MPI array/phase registration."""


class DistributionError(ReproError):
    """An invalid data distribution was constructed or requested."""


class RedistributionError(ReproError):
    """Data redistribution could not be scheduled or applied."""


class AllocationError(ReproError):
    """Invalid operation on a managed (dense/sparse) matrix."""


class ConfigError(ReproError):
    """Invalid cluster/network/runtime configuration."""
