"""Exception hierarchy for the Dyn-MPI reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    This is the simulated analogue of an MPI job hanging: every live
    process is waiting on a message or event that can never arrive.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        names = ", ".join(blocked) or "<none>"
        super().__init__(f"simulation deadlock; blocked processes: {names}")


class SanitizerError(ReproError):
    """The communication sanitizer (``repro.analysis``) found a
    correctness violation: an unmatched send/recv, a mismatched
    collective, or an inconsistent redistribution plan."""


class CommDeadlockError(DeadlockError):
    """The runtime sanitizer found a wait-for cycle among blocked ranks.

    Unlike :class:`DeadlockError` (raised only when the event heap
    drains), this fires the moment the cycle closes, so simulations
    with periodic daemons fail fast instead of hanging.
    """

    def __init__(self, cycle: list[int], ops: dict[int, str]):
        self.cycle = list(cycle)
        self.ops = dict(ops)
        parts = "; ".join(f"rank {r} {ops.get(r, 'blocked')}" for r in self.cycle)
        # bypass DeadlockError.__init__ message formatting but keep its API
        self.blocked = [f"rank{r}" for r in self.cycle]
        Exception.__init__(
            self, f"communication deadlock among ranks "
            f"{self.cycle}: {parts}"
        )


class PlanCheckError(ReproError):
    """A redistribution plan failed static verification."""

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"redistribution plan failed verification "
            f"({len(self.violations)} violation(s)):\n  {lines}"
        )


class MPIError(ReproError):
    """Misuse of the simulated MPI layer (bad rank, tag, truncation...)."""


class RankFailedError(MPIError):
    """A point-to-point operation involved a rank whose process has died.

    Raised by the comm layer's dead-endpoint poisoning (repro.resilience):
    instead of blocking forever on a message a failed rank will never
    send — or accept — the survivor gets an immediate diagnostic.
    """

    def __init__(self, rank: int, op: str = "communicate with"):
        self.rank = rank
        super().__init__(f"cannot {op} rank {rank}: its process has failed")


class CheckpointLostError(ReproError):
    """A crashed rank's rows cannot be replayed: every buddy holding a
    replica of its checkpoint has failed too.  Raising replication in
    :class:`~repro.config.ResilienceSpec` tolerates more simultaneous
    failures at the cost of more checkpoint traffic."""


class TruncationError(MPIError):
    """A received message was larger than the posted receive buffer."""


class RegistrationError(ReproError):
    """Invalid Dyn-MPI array/phase registration."""


class DistributionError(ReproError):
    """An invalid data distribution was constructed or requested."""


class RedistributionError(ReproError):
    """Data redistribution could not be scheduled or applied."""


class AllocationError(ReproError):
    """Invalid operation on a managed (dense/sparse) matrix."""


class ConfigError(ReproError):
    """Invalid cluster/network/runtime configuration."""


class FarmError(ReproError):
    """The task farm cannot make progress (e.g. every worker died
    with jobs outstanding)."""
