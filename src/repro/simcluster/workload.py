"""Competing-process workload scripts.

The paper's experiments introduce competing processes ("programs that
execute an infinite loop") on specific nodes at specific points of the
run — usually *at iteration k* of the application, sometimes for a
fixed stretch of iterations.  Two trigger styles are therefore
provided:

* :class:`TimeTrigger` — fire at an absolute simulated time (applied at
  cluster start-up via the event queue);
* :class:`CycleTrigger` — fire when the application reaches a given
  phase-cycle number (the Dyn-MPI runtime reports cycle boundaries to
  the script through :meth:`LoadScript.on_cycle`).

A :class:`LoadScript` is a collection of triggers; the experiment
harness attaches it to the cluster so that both styles work together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster

__all__ = ["TimeTrigger", "CycleTrigger", "LoadScript", "single_competitor"]


@dataclass(frozen=True)
class TimeTrigger:
    """Start/stop ``count`` competing processes on ``node`` at ``time``."""

    time: float
    node: int
    action: str  # "start" | "stop"
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in ("start", "stop"):
            raise ConfigError(f"bad action {self.action!r}")
        if self.count < 1:
            raise ConfigError("count must be >= 1")
        if self.time < 0:
            raise ConfigError("trigger time must be >= 0")


@dataclass(frozen=True)
class CycleTrigger:
    """Start/stop ``count`` competing processes when the application
    begins phase cycle ``cycle`` (0-based)."""

    cycle: int
    node: int
    action: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in ("start", "stop"):
            raise ConfigError(f"bad action {self.action!r}")
        if self.count < 1:
            raise ConfigError("count must be >= 1")
        if self.cycle < 0:
            raise ConfigError("cycle must be >= 0")


class LoadScript:
    """An ordered set of load triggers applied to a cluster."""

    def __init__(
        self,
        time_triggers: Iterable[TimeTrigger] = (),
        cycle_triggers: Iterable[CycleTrigger] = (),
    ):
        self.time_triggers = sorted(time_triggers, key=lambda t: t.time)
        self.cycle_triggers = sorted(cycle_triggers, key=lambda t: t.cycle)
        self._handles: dict[int, list[str]] = {}
        self._fired_cycles: set[int] = set()
        self._cluster: Optional["Cluster"] = None

    # -- lifecycle ---------------------------------------------------------
    def install(self, cluster: "Cluster") -> None:
        """Bind to a cluster and schedule the time-based triggers."""
        self._cluster = cluster
        for trig in self.time_triggers:
            cluster.sim.schedule(
                trig.time - cluster.sim.now,
                lambda trig=trig: self._apply(trig),
            )

    def on_cycle(self, cycle: int) -> None:
        """Called by the runtime (rank 0) at each phase-cycle start."""
        if cycle in self._fired_cycles:
            return
        self._fired_cycles.add(cycle)
        for trig in self.cycle_triggers:
            if trig.cycle == cycle:
                self._apply(trig)

    # -- internals -----------------------------------------------------------
    def _apply(self, trig) -> None:
        if self._cluster is None:
            raise ConfigError("LoadScript not installed on a cluster")
        node = self._cluster.nodes[trig.node]
        handles = self._handles.setdefault(trig.node, [])
        if trig.action == "start":
            for _ in range(trig.count):
                handles.append(node.start_competing())
        else:
            for _ in range(min(trig.count, len(handles))):
                node.stop_competing(handles.pop())
        self._cluster.recorder.mark(
            self._cluster.sim.now,
            f"{trig.action}:{trig.count}cp@n{trig.node}",
        )


def single_competitor(
    node: int,
    *,
    start_cycle: int,
    stop_cycle: Optional[int] = None,
    count: int = 1,
) -> LoadScript:
    """The paper's canonical scenario: ``count`` competing processes
    appear on ``node`` at ``start_cycle`` (e.g. the 10th iteration) and
    optionally disappear at ``stop_cycle``."""

    triggers = [CycleTrigger(cycle=start_cycle, node=node, action="start", count=count)]
    if stop_cycle is not None:
        triggers.append(CycleTrigger(cycle=stop_cycle, node=node, action="stop", count=count))
    return LoadScript(cycle_triggers=triggers)
