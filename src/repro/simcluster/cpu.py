"""CPU scheduling disciplines for simulated nodes.

Two disciplines are provided:

* :class:`RoundRobinCPU` — quantized time slicing (default, quantum =
  10 ms).  This is the faithful model: it produces the wallclock-timer
  artifacts the paper's Section 4.2 is about (an iteration shorter than
  a quantum either completes unpreempted, giving its true time, or
  spans a context switch and absorbs a competing process's slice).
* :class:`ProcessorSharingCPU` — an idealized fluid model in which all
  runnable jobs progress simultaneously at ``speed / n``.  It generates
  far fewer events and no timing noise; the Dyn-MPI *predictor* uses
  the same fluid arithmetic, and tests use it when noise-free times are
  wanted.

Both disciplines support *background jobs* — the competing processes of
a non dedicated cluster — which are CPU-bound forever until removed.

Fast path: when a round-robin queue holds a single job, the slice runs
to the job's completion in one event; the arrival of another job
preempts the long slice and falls back to quantized slicing.  This
keeps dedicated-node simulations cheap without changing semantics.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..errors import SimulationError
from .kernel import ProcState, Simulator, Timer

__all__ = ["Job", "BackgroundJob", "RoundRobinCPU", "ProcessorSharingCPU", "make_cpu"]

_EPS = 1e-12


class BackgroundJob:
    """A competing process: CPU-bound, never finishes until removed.

    It is not a :class:`SimProcess` — it has no program — but it
    occupies the run queue and therefore shows up in the node's process
    table (and in ``dmpi_ps`` samples).
    """

    __slots__ = ("name", "state", "cpu_time", "node")

    def __init__(self, name: str):
        self.name = name
        self.state = ProcState.READY
        self.cpu_time = 0.0
        self.node = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BackgroundJob {self.name} {self.state}>"


class Job:
    """One outstanding compute request on a CPU.

    ``allowed`` is the quantum budget left for a *continuation* job — a
    request submitted by the process that was running at this very
    instant with quantum to spare.  ``used_before`` carries the quantum
    already consumed in that unexpired slice, and ``slice_count``
    tracks whether the job ever got requeued (which breaks the
    continuation chain).
    """

    __slots__ = ("proc", "remaining", "callback", "cb_arg", "cancelled",
                 "allowed", "used_before", "slice_count", "boost_time")

    def __init__(self, proc, remaining: float,
                 callback: Optional[Callable[..., None]], cb_arg=None):
        self.proc = proc
        self.remaining = remaining
        self.callback = callback
        self.cb_arg = cb_arg  # posted with the callback when not None
        self.cancelled = False
        self.allowed: Optional[float] = None
        self.used_before = 0.0
        self.slice_count = 0
        self.boost_time: Optional[float] = None  # instant this job was boosted


class _CPUBase:
    def __init__(self, sim: Simulator, speed: float, quantum: float):
        if speed <= 0:
            raise SimulationError("CPU speed must be positive")
        self.sim = sim
        self.speed = speed
        self.quantum = quantum
        self.busy_time = 0.0  # total CPU-seconds delivered to any job
        self._bg_jobs: dict[BackgroundJob, Job] = {}

    # -- background (competing) processes --------------------------------
    def add_background(self, bg: BackgroundJob) -> None:
        if bg in self._bg_jobs:
            raise SimulationError(f"background job {bg.name} already running")
        job = self.submit(bg, math.inf, None)
        self._bg_jobs[bg] = job

    def remove_background(self, bg: BackgroundJob) -> None:
        job = self._bg_jobs.pop(bg, None)
        if job is None:
            raise SimulationError(f"background job {bg.name} is not running")
        self.cancel(job)
        bg.state = ProcState.DONE

    @property
    def n_background(self) -> int:
        return len(self._bg_jobs)

    # -- interface --------------------------------------------------------
    def submit(self, proc, work: float, callback, cb_arg=None) -> Job:  # pragma: no cover
        raise NotImplementedError

    def cancel(self, job: Job) -> None:  # pragma: no cover
        raise NotImplementedError

    def runnable_jobs(self) -> list[Job]:  # pragma: no cover
        raise NotImplementedError

    def runnable_count(self) -> int:
        return len(self.runnable_jobs())


class RoundRobinCPU(_CPUBase):
    """Quantized round-robin scheduling (see module docstring).

    Quantum continuation: when a job completes mid-quantum and its
    process immediately (at the same simulated instant) submits another
    compute request — the common pattern of an application timing
    individual iterations — the new request continues in the unexpired
    quantum at the head of the queue instead of going to the tail.
    Without this, a loaded node would charge every sub-quantum
    iteration a full competing time slice, which no real OS does, and
    the paper's min-over-cycles filter (Figure 7) could never recover
    true iteration times.
    """

    def __init__(self, sim: Simulator, speed: float, quantum: float = 0.010,
                 rng=None):
        super().__init__(sim, speed, quantum)
        if quantum <= 0:
            raise SimulationError("quantum must be positive")
        self._queue: list[Job] = []
        self._current: Optional[Job] = None
        self._slice_timer: Optional[Timer] = None
        self._slice_start = 0.0
        self._slice_long = False  # True when running the single-job fast path
        # (proc, time, quantum_used) of the most recent mid-quantum completion
        self._cont: Optional[tuple] = None
        # (proc, time) of the most recent completion of any kind: a
        # process resubmitting at that instant is CPU-bound, not waking
        self._last_done: Optional[tuple] = None
        # per-process EMA of CPU usage (id(proc) -> [t_last, score]);
        # share over the recent window is score / _EMA_TAU
        self._ema: dict[int, list] = {}
        self._rng = rng
        self.n_context_switches = 0
        self.n_wake_boosts = 0

    # -- public -----------------------------------------------------------
    def submit(self, proc, work: float, callback, cb_arg=None) -> Job:
        job = Job(proc, work, callback, cb_arg)
        proc.state = ProcState.READY
        cont = self._cont
        now = self.sim.now
        if (
            cont is not None
            and cont[0] is proc
            and cont[1] == now
            and cont[2] < self.quantum - _EPS
        ):
            # continuation within the unexpired quantum: head of queue
            job.allowed = self.quantum - cont[2]
            job.used_before = cont[2]
            self._queue.insert(0, job)
            self._cont = None  # consumed
            if self._current is None:
                self._start_next()
            elif self._slice_long:
                self._preempt_current()
            return job
        # NOTE: an unmatched continuation record is left in place — a
        # same-instant submit by another process (e.g. an isend shadow)
        # must not destroy the running process's quantum credit; the
        # timestamp check invalidates it as soon as time advances.

        # wakeup boost: a process that was blocked (I/O, message wait)
        # and becomes runnable preempts CPU-bound work — the standard
        # interactivity boost of classic UNIX schedulers — but only
        # while its recent CPU share is below its fair share.  Without
        # the boost, every tiny post-receive CPU burst on a loaded node
        # would wait k full competing quanta (no real OS does that);
        # without the fair-share governor, a compute-heavy app would
        # dodge competing processes entirely (no real OS does that
        # either — a process that keeps consuming CPU loses priority).
        was_blocked = not (
            self._last_done is not None
            and self._last_done[0] is proc
            and self._last_done[1] == now
        )
        if was_blocked and not isinstance(proc, BackgroundJob):
            if not self._below_fair_share(proc):
                # above fair share: the wakeup still preempts (so
                # message handling is prompt) but only for a short
                # interactive slice — long computation cannot use the
                # boost to dodge competing processes.  The slice is
                # jittered so its expiry never pins the same
                # application iteration cycle after cycle (which would
                # defeat the grace period's min-filter).
                slice_budget = self.quantum * self._INTERACTIVE_FRAC
                if self._rng is not None:
                    slice_budget *= 0.5 + float(self._rng.random())
                job.allowed = slice_budget
                job.used_before = max(0.0, self.quantum - slice_budget)
            self.n_wake_boosts += 1
            job.boost_time = now
            # FIFO among jobs boosted at this same instant — otherwise
            # two back-to-back isends would have their wire order
            # reversed, violating MPI's non-overtaking guarantee
            idx = 0
            while (idx < len(self._queue)
                   and self._queue[idx].boost_time == now):
                idx += 1
            cur = self._current
            if cur is not None and cur.boost_time == now:
                self._queue.insert(idx, job)  # queue behind the peer boost
            elif cur is not None:
                self._queue.insert(idx, job)
                if idx == 0:
                    self._preempt_current(insert_pos=1)
            else:
                self._queue.insert(idx, job)
                self._start_next()
            return job

        self._queue.append(job)
        if self._current is None:
            self._start_next()
        elif self._slice_long:
            # A long (unbounded) slice is in flight; preempt it so the
            # newcomer gets quantized service.
            self._preempt_current()
        return job

    def cancel(self, job: Job) -> None:
        job.cancelled = True
        if job is self._current:
            self._account_current()
            self._current = None
            if self._slice_timer is not None:
                self._slice_timer.cancel()
                self._slice_timer = None
            self._start_next()
        else:
            try:
                self._queue.remove(job)
            except ValueError:
                pass  # already finished

    def runnable_jobs(self) -> list[Job]:
        jobs = list(self._queue)
        if self._current is not None:
            jobs.append(self._current)
        return jobs

    # -- internals ----------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            self._current = None
            return
        job = self._queue.pop(0)
        job.slice_count += 1
        self._current = job
        self._slice_start = self.sim.now
        job.proc.state = ProcState.RUNNING
        if not self._queue and math.isfinite(job.remaining):
            # fast path: run to completion unless preempted
            self._slice_long = True
            duration = job.remaining / self.speed
        else:
            self._slice_long = False
            budget = self.quantum if job.allowed is None else job.allowed
            if self._rng is not None and job.allowed is None:
                # real schedulers do not slice with zero variance; the
                # jitter decorrelates quantum boundaries from iteration
                # boundaries so the grace period's min-filter sees an
                # occasionally-unpreempted run of every iteration
                budget *= 1.0 + 0.1 * (float(self._rng.random()) - 0.5)
            duration = min(budget, job.remaining / self.speed)
        self._slice_timer = self.sim.schedule(duration, self._on_slice_end)

    # EMA window for the fair-share governor (seconds); several quanta
    # long, so sustained compute loses its boost within a few tens of
    # milliseconds — roughly the reaction time of a UNIX TS scheduler's
    # priority decay
    _EMA_TAU = 0.04
    # hysteresis: full-quantum boost only while share < fair * this
    _BOOST_HEADROOM = 0.9
    # fraction of a quantum granted to an above-fair-share wakeup
    _INTERACTIVE_FRAC = 0.1

    def _ema_share(self, proc) -> float:
        """Recent CPU share of ``proc`` (0..1)."""
        rec = self._ema.get(id(proc))
        if rec is None:
            return 0.0
        dt = self.sim.now - rec[0]
        if dt > 0:
            rec[1] *= math.exp(-dt / self._EMA_TAU)
            rec[0] = self.sim.now
        return rec[1] / self._EMA_TAU

    def _ema_add(self, proc, elapsed: float) -> None:
        rec = self._ema.setdefault(id(proc), [self.sim.now, 0.0])
        dt = self.sim.now - rec[0]
        if dt > 0:
            rec[1] *= math.exp(-dt / self._EMA_TAU)
        rec[0] = self.sim.now
        rec[1] += elapsed

    def _below_fair_share(self, proc) -> bool:
        runnable = len(self._queue) + (1 if self._current is not None else 0) + 1
        fair = 1.0 / runnable
        return self._ema_share(proc) < fair * self._BOOST_HEADROOM

    def _account_current(self) -> float:
        """Credit the elapsed part of the in-flight slice to its job;
        returns the elapsed slice time."""
        job = self._current
        if job is None:
            return 0.0
        now = self.sim.now
        elapsed = now - self._slice_start
        if elapsed > 0:
            done = elapsed * self.speed
            job.remaining = max(0.0, job.remaining - done)
            job.proc.cpu_time += elapsed
            self._ema_add(job.proc, elapsed)
            self.busy_time += elapsed
            if job.allowed is not None:
                job.allowed = max(0.0, job.allowed - elapsed)
        self._slice_start = now
        return elapsed

    def _preempt_current(self, insert_pos: int = 0) -> None:
        job = self._current
        if job is None:
            return
        if self._slice_timer is not None:
            self._slice_timer.cancel()
            self._slice_timer = None
        elapsed = self._account_current()
        self.n_context_switches += 1
        self._current = None
        if job.remaining <= _EPS * self.speed:
            self._complete(job, elapsed)
        else:
            job.proc.state = ProcState.READY
            job.allowed = None  # fresh quantum on its next dispatch
            # preempted job keeps its turn (or yields to a waking one)
            self._queue.insert(min(insert_pos, len(self._queue)), job)
        self._start_next()

    def _on_slice_end(self) -> None:
        job = self._current
        if job is None:
            return
        self._slice_timer = None
        elapsed = self._account_current()
        self._current = None
        if job.cancelled:
            self._start_next()
            return
        if job.remaining <= _EPS * self.speed:
            self._complete(job, elapsed)
            # Defer the next dispatch one event so the completing
            # process can resubmit at this instant and claim its
            # quantum continuation before anyone else is dispatched.
            self.sim.call_soon(self._deferred_start)
            return
        self.n_context_switches += 1
        job.proc.state = ProcState.READY
        job.allowed = None  # fresh quantum on its next dispatch
        self._queue.append(job)
        self._start_next()

    def _deferred_start(self) -> None:
        if self._current is None:
            self._start_next()

    def _complete(self, job: Job, last_slice_elapsed: float) -> None:
        job.proc.state = ProcState.BLOCKED
        self._last_done = (job.proc, self.sim.now)
        used = last_slice_elapsed
        if job.slice_count == 1:
            used += job.used_before
        if used < self.quantum - _EPS:
            self._cont = (job.proc, self.sim.now, used)
        else:
            self._cont = None
        if job.callback is not None:
            # Defer so completion ordering matches event ordering.
            if job.cb_arg is None:
                self.sim.call_soon(job.callback)
            else:
                self.sim._post1(job.callback, job.cb_arg)


class ProcessorSharingCPU(_CPUBase):
    """Idealized fluid sharing: n runnable jobs each progress at speed/n."""

    def __init__(self, sim: Simulator, speed: float, quantum: float = 0.010):
        super().__init__(sim, speed, quantum)
        self._jobs: list[Job] = []
        self._timer: Optional[Timer] = None
        self._last = 0.0

    def submit(self, proc, work: float, callback, cb_arg=None) -> Job:
        self._advance()
        job = Job(proc, work, callback, cb_arg)
        proc.state = ProcState.RUNNING
        self._jobs.append(job)
        self._reschedule()
        return job

    def cancel(self, job: Job) -> None:
        self._advance()
        job.cancelled = True
        if job in self._jobs:
            self._jobs.remove(job)
        self._reschedule()

    def runnable_jobs(self) -> list[Job]:
        return list(self._jobs)

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last
        self._last = now
        n = len(self._jobs)
        if elapsed <= 0 or n == 0:
            return
        rate = self.speed / n
        share = elapsed / n
        for job in self._jobs:
            job.remaining = max(0.0, job.remaining - rate * elapsed)
            job.proc.cpu_time += share
        self.busy_time += elapsed

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        finite = [j for j in self._jobs if math.isfinite(j.remaining)]
        if not finite:
            return
        n = len(self._jobs)
        rate = self.speed / n
        nxt = min(finite, key=lambda j: j.remaining)
        self._timer = self.sim.schedule(nxt.remaining / rate, self._on_completion)

    def _on_completion(self) -> None:
        self._timer = None
        self._advance()
        done = [j for j in self._jobs if j.remaining <= _EPS * self.speed]
        for job in done:
            self._jobs.remove(job)
            job.proc.state = ProcState.BLOCKED
            if job.callback is not None:
                if job.cb_arg is None:
                    self.sim.call_soon(job.callback)
                else:
                    self.sim._post1(job.callback, job.cb_arg)
        self._reschedule()


def make_cpu(sim: Simulator, discipline: str, speed: float, quantum: float, rng=None):
    """Factory used by :class:`~repro.simcluster.node.Node`."""
    if discipline == "rr":
        return RoundRobinCPU(sim, speed, quantum, rng=rng)
    if discipline == "ps":
        return ProcessorSharingCPU(sim, speed, quantum)
    raise SimulationError(f"unknown CPU discipline {discipline!r}")
