"""Switched-Ethernet network model.

Message cost decomposes exactly the way the paper's Section 4.3
argues it must:

* **wire time** — ``latency + nbytes / bandwidth``, serialized on the
  sender's and receiver's NIC links (a switched network forwards at
  link rate, so concurrent senders to one receiver queue on the
  receiver's link);
* **CPU time** — ``cpu_per_msg + nbytes * cpu_per_byte`` work units
  charged *by the MPI layer* on each side.  The CPU component is what
  makes naive relative-power distributions suboptimal, because a
  loaded node pays for communication with CPU it does not have.

The network object itself only models wire time and delivery ordering;
CPU charging happens in :mod:`repro.mpi.comm` so that the overlap of
computation and communication follows from process scheduling.

Accounting contract: ``n_messages``/``n_bytes`` count each *logical*
message exactly once, at first submission — a message held across a
partition is already counted and is **not** recounted when
:meth:`Network.heal` reinjects it.

Fan-out batches go through :meth:`Network.transmit_many`, which
vectorizes the per-message transmission-time division with numpy and
then applies the per-NIC serialization chain sequentially.  The chain
itself (max/add per NIC) is order-dependent and stays scalar — that is
what makes ``transmit_many`` bit-for-bit equal to a loop of
:meth:`Network.transmit` calls (``float64`` elementwise division is
IEEE-exact either way; a vectorized prefix reduction would not be).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..config import NetworkSpec
from ..errors import SimulationError
from .kernel import Simulator

__all__ = ["Network"]

#: local (same-node) copies run at this multiple of the link bandwidth
_LOCAL_SPEEDUP = 20.0
_LOCAL_LATENCY = 1e-6

#: batch size below which transmit_many skips the numpy round-trip
_BULK_MIN = 8

#: one queued message: (src, dst, nbytes, on_delivered)
_Message = tuple[int, int, int, Callable[[], None]]


class Network:
    """Star topology through a single non-blocking switch."""

    def __init__(self, sim: Simulator, spec: NetworkSpec, n_nodes: int):
        if n_nodes < 1:
            raise SimulationError("network needs at least one node")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        self._out_free = [0.0] * n_nodes
        self._in_free = [0.0] * n_nodes
        self.n_messages = 0
        self.n_bytes = 0
        #: isolated island of a network partition (empty = fully
        #: connected); messages crossing the cut are *held*, not
        #: dropped, and retransmitted on heal
        self._island: frozenset[int] = frozenset()
        self._held: list[_Message] = []

    def cpu_cost(self, nbytes: int) -> float:
        """CPU work units one endpoint spends handling a message."""
        return self.spec.cpu_per_msg + nbytes * self.spec.cpu_per_byte

    def wire_time(self, nbytes: int) -> float:
        """Uncontended one-way wire time for a message of ``nbytes``."""
        return self.spec.latency + nbytes / self.spec.bandwidth

    def _check(self, src: int, dst: int, nbytes: int) -> None:
        if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
            raise SimulationError(f"bad endpoints {src}->{dst}")
        if nbytes < 0:
            raise SimulationError(f"negative message size {nbytes}")

    def transmit(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
    ) -> float:
        """Schedule delivery of a message; returns the delivery time.

        ``on_delivered`` fires when the last byte reaches ``dst``.
        Counts the message (once, here — see the module docstring) even
        when a partition holds it.
        """
        self._check(src, dst, nbytes)
        self.n_messages += 1
        self.n_bytes += nbytes
        if self._crosses_cut(src, dst):
            # hold until heal(); a partition delays traffic, it never
            # loses it, so the layers above need no retransmission
            self._held.append((src, dst, nbytes, on_delivered))
            return float("inf")
        return self._inject(src, dst, nbytes, nbytes / self.spec.bandwidth,
                            on_delivered)

    def transmit_many(self, messages: Sequence[_Message]) -> list[float]:
        """Bulk :meth:`transmit`: same counting, same delivery times,
        same callback order as the equivalent loop — one call per
        fan-out keeps the per-message Python overhead off the hot path
        and lets the tx-time division vectorize."""
        flowing: list[_Message] = []
        for src, dst, nbytes, cb in messages:
            self._check(src, dst, nbytes)
            self.n_messages += 1
            self.n_bytes += nbytes
            if self._crosses_cut(src, dst):
                self._held.append((src, dst, nbytes, cb))
            else:
                flowing.append((src, dst, nbytes, cb))
        delivered = self._inject_many(flowing)
        if len(flowing) == len(messages):
            return delivered
        # splice inf placeholders back in for the held messages
        out: list[float] = []
        it = iter(delivered)
        for src, dst, nbytes, cb in messages:
            out.append(float("inf") if self._crosses_cut(src, dst) else next(it))
        return out

    def _inject(self, src: int, dst: int, nbytes: int, tx: float,
                on_delivered: Callable[[], None]) -> float:
        """Serialize one counted, non-held message onto the NICs."""
        now = self.sim.now
        if src == dst:
            deliver = now + _LOCAL_LATENCY + nbytes / (self.spec.bandwidth * _LOCAL_SPEEDUP)
            self.sim.schedule(deliver - now, on_delivered)
            return deliver

        send_start = max(now, self._out_free[src])
        send_end = send_start + tx
        self._out_free[src] = send_end
        arrive_start = send_start + self.spec.latency
        recv_start = max(arrive_start, self._in_free[dst])
        deliver = recv_start + tx
        self._in_free[dst] = deliver
        self.sim.schedule(deliver - now, on_delivered)
        return deliver

    def _inject_many(self, messages: Sequence[_Message]) -> list[float]:
        bw = self.spec.bandwidth
        n = len(messages)
        if n >= _BULK_MIN:
            sizes = np.fromiter((m[2] for m in messages), dtype=np.float64,
                                count=n)
            # .tolist() hands back plain Python floats with the same
            # bits, so no np.float64 ever leaks into simulated time
            txs = (sizes / bw).tolist()
        else:
            txs = [m[2] / bw for m in messages]
        return [
            self._inject(src, dst, nbytes, txs[i], cb)
            for i, (src, dst, nbytes, cb) in enumerate(messages)
        ]

    # -- partitions ----------------------------------------------------
    def partition(self, island: set[int]) -> None:
        """Cut the switch between ``island`` and the remaining nodes.

        Traffic inside the island and traffic entirely outside it still
        flows; anything crossing the cut is held until :meth:`heal`.
        """
        for n in island:
            if not (0 <= n < self.n_nodes):
                raise SimulationError(f"bad partition node {n}")
        self._island = frozenset(island)

    def heal(self) -> None:
        """Reconnect the island and reinject every held message.

        Held messages were counted when first submitted, so this path
        must not touch ``n_messages``/``n_bytes`` — it goes straight to
        the injection layer."""
        self._island = frozenset()
        held, self._held = self._held, []
        self._inject_many(held)

    @property
    def partitioned(self) -> bool:
        return bool(self._island)

    @property
    def n_held(self) -> int:
        return len(self._held)

    def _crosses_cut(self, src: int, dst: int) -> bool:
        return bool(self._island) and (src in self._island) != (dst in self._island)

    def sender_free_time(self, src: int, nbytes: int) -> float:
        """Time at which ``src``'s NIC would finish injecting a message
        sent now (used for eager-send completion semantics)."""
        tx = nbytes / self.spec.bandwidth
        return max(self.sim.now, self._out_free[src]) + tx
