"""Execution tracing: what ran where, when.

A :class:`Tracer` attaches to a cluster and records CPU slices (which
process held which CPU over which interval) and message transmissions.
It is the debugging instrument used while developing the scheduler and
the figure experiments, and renders per-node timelines as text::

    n0 |app=======|cp0=====|app==|cp0=====| ...

Attach *before* running; detach to stop recording (the hooks are
monkeypatch-style wrappers, so tracing costs nothing when unused).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from .cluster import Cluster
from .cpu import RoundRobinCPU

__all__ = ["Slice", "Message", "Tracer"]


@dataclass(frozen=True)
class Slice:
    node: int
    proc: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    nbytes: int
    sent: float
    delivered: float


class Tracer:
    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.slices: list[Slice] = []
        self.messages: list[Message] = []
        self._attached = False
        self._saved = {}

    # ------------------------------------------------------------------
    def attach(self) -> "Tracer":
        if self._attached:
            raise SimulationError("tracer already attached")
        self._attached = True
        sim = self.cluster.sim

        for node in self.cluster.nodes:
            cpu = node.cpu
            if not isinstance(cpu, RoundRobinCPU):
                continue
            orig_account = cpu._account_current
            state = {"start": None, "proc": None}

            def account(cpu=cpu, node=node, orig=orig_account, state=state):
                job = cpu._current
                start = cpu._slice_start
                elapsed = orig()
                if job is not None and elapsed > 0:
                    self.slices.append(Slice(
                        node.node_id, getattr(job.proc, "name", "?"),
                        start, start + elapsed,
                    ))
                return elapsed

            self._saved[id(cpu)] = orig_account
            cpu._account_current = account

        net = self.cluster.network
        orig_transmit = net.transmit
        self._saved["net"] = orig_transmit

        def transmit(src, dst, nbytes, cb, orig=orig_transmit):
            sent = sim.now
            deliver = orig(src, dst, nbytes, cb)
            self.messages.append(Message(src, dst, nbytes, sent, deliver))
            return deliver

        net.transmit = transmit
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        for node in self.cluster.nodes:
            cpu = node.cpu
            orig = self._saved.pop(id(cpu), None)
            if orig is not None:
                cpu._account_current = orig
        net_orig = self._saved.pop("net", None)
        if net_orig is not None:
            self.cluster.network.transmit = net_orig

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def busy_time(self, node: int, proc_prefix: str = "") -> float:
        """Total CPU seconds on ``node`` for processes whose name
        starts with ``proc_prefix`` ('' = everything)."""
        return sum(
            s.duration for s in self.slices
            if s.node == node and s.proc.startswith(proc_prefix)
        )

    def bytes_between(self, src: int, dst: int) -> int:
        return sum(m.nbytes for m in self.messages
                   if m.src == src and m.dst == dst)

    def timeline(self, node: int, t0: float = 0.0,
                 t1: Optional[float] = None, width: int = 72) -> str:
        """Render node ``node``'s CPU occupancy in ``[t0, t1]`` as one
        text line, one character per time bucket (first letter of the
        running process, '.' for idle)."""
        if t1 is None:
            t1 = self.cluster.sim.now
        if t1 <= t0:
            raise SimulationError("empty timeline window")
        step = (t1 - t0) / width
        chars = ["."] * width
        for s in self.slices:
            if s.node != node or s.end <= t0 or s.start >= t1:
                continue
            a = max(0, int((s.start - t0) / step))
            b = min(width - 1, int((s.end - t0) / step))
            for i in range(a, b + 1):
                chars[i] = s.proc[0] if s.proc else "?"
        return f"n{node} |" + "".join(chars) + "|"
