"""Discrete-event simulation kernel.

The kernel owns virtual time and the event queue.  Simulated processes
are Python generators that yield :mod:`~repro.simcluster.syscalls`
request objects; the kernel services each request and resumes the
generator with the result.  CPU scheduling itself lives in
:mod:`~repro.simcluster.cpu` — the kernel only knows how to park a
process and wake it later.

Design notes
------------
* Events are ``(time, seq)``-ordered callbacks; ``seq`` is a global
  monotone counter so simultaneous events run in schedule order and the
  simulation is fully deterministic.
* **Two-lane scheduling** (dynkern): most events are zero-delay resumes
  — deferred completions, signal wakeups, spawn kicks — so the default
  :class:`Simulator` keeps two structures: an O(1) FIFO *ready lane*
  (a deque) for events scheduled at the current instant, and a heap for
  timed events.  The lanes merge by exact ``(time, seq)`` comparison,
  so the execution order is identical to a single global heap (the
  original single-heap engine is preserved verbatim as
  :class:`~repro.simcluster.kernel_reference.ReferenceSimulator` and
  the equivalence is property-tested byte-for-byte on exported traces).
  Internal hot paths post pre-bound callbacks (:meth:`Simulator._post1`
  /``_post2``) instead of allocating a closure per event.
* Cancellation is done with tombstones (:class:`Timer` handles), the
  standard heapq idiom, so cancelling is O(1).  The simulator counts
  tombstones still sitting in the heap and **compacts** — filters and
  re-heapifies in place — when more than half the heap is cancelled
  (and it is past a small size floor), so heartbeat-style
  schedule/cancel churn can no longer grow the heap without bound.
* Deadlock detection: if the queue drains while registered processes
  are still blocked, :class:`~repro.errors.DeadlockError` is raised
  listing them — the simulated analogue of a hung MPI job.
* Engine selection: :func:`make_simulator` picks the engine from an
  explicit argument, else ``DYNMPI_KERNEL`` (``calendar`` |
  ``reference``), defaulting to ``calendar``; clusters thread
  :attr:`repro.config.ClusterSpec.kernel` through it.
* Schedule perturbation (:class:`Perturb`, ``DYNMPI_PERTURB=<seed>``)
  flips tie-breaks that real MPI leaves *undefined* — today the choice
  among queued wildcard-receive candidates from distinct sources
  (see :meth:`repro.mpi.comm.SimComm._try_match`).  The queue's
  ``(time, seq)`` order is deliberately **not** perturbed: same-time
  event order is part of this kernel's determinism contract (the trace
  exporters break timestamp ties by emission seq), not an ordering the
  MPI standard leaves open.  A program is schedule-clean exactly when
  its exported trace is byte-identical under every perturbation seed.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import DeadlockError, SimulationError
from .syscalls import Compute, Fork, Sleep, Syscall, Wait, WaitAny

__all__ = [
    "Perturb", "ProcState", "Signal", "SimProcess", "Simulator", "Timer",
    "make_simulator", "perturb_from_env",
]

#: sentinel for "no bound argument" on a Timer (cheaper than None,
#: which is a legitimate argument value)
_NO_ARG = object()

#: tombstone compaction floor: no compaction below this many cancelled
#: heap entries, so tiny simulations never pay a heapify
_COMPACT_MIN_CANCELLED = 64


class Perturb:
    """Deterministic schedule-perturbation state (dynrace's dynamic
    cross-check, ``docs/ANALYSIS.md`` §5).

    ``choose(n, key)`` is a pure function of ``(seed, key)`` — an
    FNV-1a hash, the same stable-hash idiom as
    :func:`repro.simcluster.rng._stable_hash` — so a perturbed run is
    itself fully reproducible: the property being tested is *trace
    invariance across seeds*, not determinism of a single seed.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed)

    def choose(self, n: int, key: tuple) -> int:
        """Pick an index in ``[0, n)`` from the perturbation seed and a
        tuple identifying the tie (envelope seqs, rank, tag...)."""
        h = (2166136261 ^ (self.seed & 0xFFFFFFFF)) * 16777619 & 0xFFFFFFFF
        for part in key:
            for byte in repr(part).encode("utf-8"):
                h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h % n


def perturb_from_env() -> Optional[Perturb]:
    """Read ``DYNMPI_PERTURB``: unset/empty means off, any integer
    (including 0) arms perturbation with that seed."""
    raw = os.environ.get("DYNMPI_PERTURB", "").strip()
    if not raw:
        return None
    try:
        seed = int(raw)
    except ValueError:
        raise SimulationError(
            f"DYNMPI_PERTURB must be an integer seed, got {raw!r}"
        ) from None
    return Perturb(seed)


class ProcState:
    """Process lifecycle states (string constants, cheap to compare)."""

    NEW = "new"
    READY = "ready"      # runnable: on a CPU run queue
    RUNNING = "running"  # currently holding the CPU slice
    BLOCKED = "blocked"  # waiting on a signal or sleeping
    DONE = "done"
    FAILED = "failed"


class Timer:
    """Handle to a scheduled callback; ``cancel()`` tombstones it.

    ``a``/``b`` are optional pre-bound call arguments (the internal
    no-closure posting fast path); ``seq`` is the event's global order
    stamp (stored on the Timer only for ready-lane events — timed
    events carry it in their heap triple), and a non-None ``sim``
    marks a timer currently sitting in that simulator's heap, so a
    cancel feeds its tombstone accounting.
    """

    __slots__ = ("fn", "a", "b", "seq", "cancelled", "sim")

    def __init__(self, fn: Callable[..., None]):
        self.fn = fn
        self.a = _NO_ARG
        self.b = _NO_ARG
        self.cancelled = False
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_heap_cancel()


class Signal:
    """A one-shot waitable condition carrying a value.

    Processes block on a signal with the :class:`~.syscalls.Wait`
    syscall; :meth:`fire` wakes all waiters at the current time.  A
    signal may be re-armed with :meth:`reset` (used by mailboxes).
    """

    __slots__ = ("sim", "fired", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        sim = self.sim
        for fn, a in waiters:
            if a is _NO_ARG:
                sim._post1(fn, value)
            else:
                sim._post2(fn, a, value)

    def reset(self) -> None:
        self.fired = False
        self.value = None

    def add_waiter(self, cb: Callable[[Any], None]) -> None:
        if self.fired:
            self.sim._post1(cb, self.value)
        else:
            self._waiters.append((cb, _NO_ARG))

    def _add_waiter2(self, fn: Callable[[Any, Any], None], a: Any) -> None:
        """``add_waiter(lambda v: fn(a, v))`` without the closure."""
        if self.fired:
            self.sim._post2(fn, a, self.value)
        else:
            self._waiters.append((fn, a))

    def discard_waiter(self, cb: Callable[[Any], None]) -> None:
        for i, (fn, a) in enumerate(self._waiters):
            if fn == cb and a is _NO_ARG:
                del self._waiters[i]
                return


class SimProcess:
    """A simulated process: a generator plus scheduling bookkeeping.

    ``node`` is assigned when the process is registered with a node
    (see :class:`~repro.simcluster.node.Node`); processes that never
    compute (pure bookkeeping daemons) may run detached with
    ``node=None`` but must not yield :class:`Compute`.
    """

    __slots__ = (
        "name", "gen", "node", "state", "cpu_time", "result", "error",
        "done_signal", "sim", "daemon", "_wait_cbs", "cpu_job",
    )

    def __init__(self, name: str, gen: Generator[Syscall, Any, Any], *, daemon: bool = False):
        self.name = name
        self.gen = gen
        self.node = None  # set by Node.attach / launcher
        self.state = ProcState.NEW
        self.cpu_time = 0.0  # CPU seconds consumed (the /PROC counter)
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_signal: Optional[Signal] = None
        self.sim: Optional[Simulator] = None
        self.daemon = daemon
        self._wait_cbs: list[tuple[Signal, Callable]] = []
        self.cpu_job = None  # in-flight CPU Job while a Compute is outstanding

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name} {self.state}>"


class Simulator:
    """The event loop (two-lane calendar engine; see module docstring).

    Typical use::

        sim = Simulator()
        sim.spawn(my_process_generator(), name="p0")
        sim.run()
    """

    engine = "calendar"

    def __init__(self, *, perturb: Optional[int] = None) -> None:
        self.now = 0.0
        #: timed events: (time, seq, Timer) triples, heap-ordered
        self._heap: list[tuple[float, int, Timer]] = []
        #: zero-delay events at the current instant, FIFO (seq order)
        self._ready: deque[Timer] = deque()
        #: cancelled entries still sitting in ``_heap`` (tombstones);
        #: drives compaction
        self._heap_cancels = 0
        self._seq = 0
        self.processes: list[SimProcess] = []
        self.n_events = 0
        self._stopped = False
        self._watchdogs: list[Callable[[SimProcess, Syscall], None]] = []
        #: schedule-perturbation state, or None when off.  An explicit
        #: seed wins; ``None`` defers to ``DYNMPI_PERTURB`` (the same
        #: explicit-beats-environment convention as ClusterSpec.sanitize
        #: and .observe).  Consumers (the MPI match loop) flip their
        #: MPI-undefined tie-breaks through ``self.perturb.choose``.
        self.perturb: Optional[Perturb] = (
            Perturb(perturb) if perturb is not None else perturb_from_env()
        )

    def add_watchdog(self, cb: Callable[[SimProcess, Syscall], None]) -> None:
        """Register ``cb(proc, request)`` to run every time a process
        blocks on a Wait/WaitAny.  Watchdogs may raise (e.g. the
        communication sanitizer's wait-for-graph deadlock check turns a
        would-be hang into an immediate diagnostic); the exception
        propagates out of :meth:`run`.
        """
        self._watchdogs.append(cb)

    def _notify_block(self, proc: SimProcess, request: Syscall) -> None:
        for cb in self._watchdogs:
            cb(proc, request)

    # ------------------------------------------------------------------
    # event scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at ``now + delay``; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        t = Timer(fn)
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            t.seq = seq
            self._ready.append(t)
        else:
            t.sim = self
            heapq.heappush(self._heap, (self.now + delay, seq, t))
        return t

    def call_soon(self, fn: Callable[[], None]) -> Timer:
        """O(1) same-instant scheduling: the ready-lane fast path."""
        t = Timer(fn)
        self._seq = seq = self._seq + 1
        t.seq = seq
        self._ready.append(t)
        return t

    # -- internal no-closure posting (the per-event hot path) ----------
    def _post1(self, fn: Callable[[Any], None], a: Any) -> Timer:
        """``call_soon(lambda: fn(a))`` without the closure."""
        t = Timer(fn)
        t.a = a
        self._seq = seq = self._seq + 1
        t.seq = seq
        self._ready.append(t)
        return t

    def _post2(self, fn: Callable[[Any, Any], None], a: Any, b: Any) -> Timer:
        """``call_soon(lambda: fn(a, b))`` without the closure."""
        t = Timer(fn)
        t.a = a
        t.b = b
        self._seq = seq = self._seq + 1
        t.seq = seq
        self._ready.append(t)
        return t

    def _post_at(self, delay: float, fn: Callable[[Any, Any], None],
                 a: Any, b: Any) -> Timer:
        """``schedule(delay, lambda: fn(a, b))`` without the closure."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        t = Timer(fn)
        t.a = a
        t.b = b
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            t.seq = seq
            self._ready.append(t)
        else:
            t.sim = self
            heapq.heappush(self._heap, (self.now + delay, seq, t))
        return t

    def _note_heap_cancel(self) -> None:
        """A timed event was tombstoned; compact the heap in place when
        more than half of it is dead (and it is past the size floor)."""
        self._heap_cancels = c = self._heap_cancels + 1
        heap = self._heap
        if c > _COMPACT_MIN_CANCELLED and 2 * c > len(heap):
            # in-place so a running event loop's local alias stays valid
            heap[:] = [e for e in heap if not e[2].cancelled]
            heapq.heapify(heap)
            self._heap_cancels = 0

    def signal(self, name: str = "") -> Signal:
        return Signal(self, name)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(
        self,
        gen: Generator[Syscall, Any, Any],
        *,
        name: str = "proc",
        node=None,
        daemon: bool = False,
    ) -> SimProcess:
        """Register and start a process at the current time."""
        proc = SimProcess(name, gen, daemon=daemon)
        proc.sim = self
        proc.done_signal = self.signal(f"done:{name}")
        if node is not None:
            node.attach(proc)
        self.processes.append(proc)
        proc.state = ProcState.READY
        self._post2(self._resume, proc, None)
        return proc

    def _resume(self, proc: SimProcess, value: Any) -> None:
        """Advance ``proc`` by one syscall."""
        if proc.state in (ProcState.DONE, ProcState.FAILED):
            return
        try:
            request = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # propagate app bugs loudly
            self._finish(proc, None, exc)
            raise
        self._dispatch(proc, request)

    def _abandon_cpu_job(self, proc: SimProcess) -> None:
        """Cancel ``proc``'s outstanding compute, if any.

        A process killed (or thrown into) mid-``Compute`` leaves a live
        job on its node's CPU; without cancellation that job completes
        later, clobbers the terminal state back to BLOCKED and resumes a
        closed generator — firing ``done_signal`` a second time.
        """
        job = proc.cpu_job
        if job is not None:
            proc.cpu_job = None
            if not job.cancelled and proc.node is not None:
                proc.node.cpu.cancel(job)

    def _throw(self, proc: SimProcess, exc: BaseException) -> None:
        """Inject an exception into ``proc`` (used for fault injection)."""
        if proc.state in (ProcState.DONE, ProcState.FAILED):
            return
        self._abandon_cpu_job(proc)
        try:
            request = proc.gen.throw(exc)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:
            self._finish(proc, None, err)
            return
        self._dispatch(proc, request)

    def inject(self, proc: SimProcess, exc: BaseException) -> None:
        """Fault injection: raise ``exc`` inside ``proc`` at the current
        simulated time.  The process may catch it (and keep running) or
        die with it (state FAILED, error recorded) — the simulated
        equivalent of delivering a fatal signal.

        Note: a process whose current syscall is still outstanding (a
        pending compute, a message wait) receives the exception
        immediately; the abandoned syscall's completion is ignored.
        """
        self._post2(self._throw, proc, exc)

    def kill(self, proc: SimProcess) -> None:
        """Terminate ``proc`` immediately (uncatchable)."""
        def do_kill() -> None:
            if proc.state in (ProcState.DONE, ProcState.FAILED):
                return
            proc.gen.close()
            self._finish(proc, None, SimulationError(f"{proc.name} killed"))
        self.call_soon(do_kill)

    def _finish(self, proc: SimProcess, result: Any, error: Optional[BaseException]) -> None:
        self._abandon_cpu_job(proc)
        proc.result = result
        proc.error = error
        proc.state = ProcState.FAILED if error is not None else ProcState.DONE
        if proc.node is not None:
            proc.node.detach(proc)
        proc.done_signal.fire(result)

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, proc: SimProcess, request: Syscall) -> None:
        if isinstance(request, Compute):
            if proc.node is None:
                raise SimulationError(
                    f"process {proc.name} is not attached to a node but asked to compute"
                )
            proc.state = ProcState.READY
            proc.cpu_job = proc.node.cpu.submit(
                proc, request.work, self._resume_done, proc
            )
        elif isinstance(request, Wait):
            proc.state = ProcState.BLOCKED
            request.signal._add_waiter2(self._wake, proc)
            if self._watchdogs:
                self._notify_block(proc, request)
        elif isinstance(request, Sleep):
            proc.state = ProcState.BLOCKED
            self._post_at(request.duration, self._wake, proc, None)
        elif isinstance(request, WaitAny):
            proc.state = ProcState.BLOCKED
            self._wait_any(proc, list(request.signals))
            if self._watchdogs:
                self._notify_block(proc, request)
        elif isinstance(request, Fork):
            child = request.process
            child.sim = self
            child.done_signal = self.signal(f"done:{child.name}")
            self.processes.append(child)
            child.state = ProcState.READY
            self._post2(self._resume, child, None)
            self._post2(self._resume, proc, child)
        else:
            raise SimulationError(
                f"process {proc.name} yielded a non-syscall: {request!r}"
            )

    def _wait_any(self, proc: SimProcess, signals: list[Signal]) -> None:
        done = {"hit": False}

        def make_cb(idx: int):
            def cb(value: Any) -> None:
                if done["hit"]:
                    return
                done["hit"] = True
                self._wake(proc, (idx, value))
            return cb

        for idx, sig in enumerate(signals):
            sig.add_waiter(make_cb(idx))

    def _wake(self, proc: SimProcess, value: Any) -> None:
        if proc.state in (ProcState.DONE, ProcState.FAILED):
            return
        proc.state = ProcState.READY
        self._resume(proc, value)

    def _resume_done(self, proc: SimProcess) -> None:
        """Compute-completion callback (pre-bound, no per-submit closure)."""
        proc.cpu_job = None
        self._resume(proc, None)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float = float("inf"), max_events: int = 200_000_000) -> float:
        """Run until the queue drains or ``until`` is reached.

        Returns the final simulated time.  Raises
        :class:`~repro.errors.DeadlockError` if non-daemon processes
        remain blocked when no events are left.

        Note that a cluster with competing (infinite-loop) background
        processes or periodic daemons never drains its queue; use
        :meth:`run_all` or :meth:`stop` to bound such runs.
        """
        self._stopped = False
        ready = self._ready
        heap = self._heap      # mutated only in place (see compaction)
        heappop = heapq.heappop
        no_arg = _NO_ARG
        while not self._stopped:
            # merge the two lanes by exact (time, seq) order: ready
            # events run at self.now, so a heap event goes first only
            # when it lands at this very instant with an earlier seq
            timer = None
            if ready:
                if heap:
                    t, s, ht = heap[0]
                    if t == self.now and s < ready[0].seq:
                        heappop(heap)
                        ht.sim = None
                        if ht.cancelled:
                            self._heap_cancels -= 1
                            continue
                        timer = ht
                if timer is None:
                    if self.now > until:
                        self.now = until
                        return self.now
                    timer = ready.popleft()
                    if timer.cancelled:
                        continue
            elif heap:
                t = heap[0][0]
                if t > until:
                    self.now = until
                    return self.now
                ht = heappop(heap)[2]
                ht.sim = None
                if ht.cancelled:
                    self._heap_cancels -= 1
                    continue
                if t < self.now - 1e-12:
                    raise SimulationError("time went backwards")
                self.now = t
                timer = ht
            else:
                break
            self.n_events += 1
            if self.n_events > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
            fn = timer.fn
            a = timer.a
            if a is no_arg:
                fn()
            elif timer.b is no_arg:
                fn(a)
            else:
                fn(a, timer.b)
        if not self._stopped:
            self._check_deadlock()
        return self.now

    def stop(self) -> None:
        """Make :meth:`run` return after the current event."""
        self._stopped = True

    def _check_deadlock(self) -> None:
        blocked = [
            p.name
            for p in self.processes
            if not p.daemon and p.state not in (ProcState.DONE, ProcState.FAILED)
        ]
        if blocked:
            raise DeadlockError(blocked)

    def run_all(self, procs: Iterable[SimProcess], until: float = float("inf"),
                tolerate=None) -> None:
        """Run until every process in ``procs`` has finished.

        Stops the event loop as soon as the last target process
        completes, so clusters with competing background processes or
        periodic daemons terminate cleanly.

        ``tolerate``, when given, is a predicate over a failed process:
        returning True accepts the death (an injected fault the caller
        expected) instead of re-raising its error.
        """
        procs = list(procs)
        pending = {id(p) for p in procs if p.state not in (ProcState.DONE, ProcState.FAILED)}

        def make_cb(proc: SimProcess):
            def cb(_value) -> None:
                pending.discard(id(proc))
                if not pending:
                    self.stop()
            return cb

        for p in procs:
            if id(p) in pending:
                p.done_signal.add_waiter(make_cb(p))
        if pending:
            self.run(until=until)
        for p in procs:
            if tolerate is not None and p.state == ProcState.FAILED and tolerate(p):
                continue
            if p.error is not None:
                raise p.error
            if p.state != ProcState.DONE:
                raise SimulationError(f"process {p.name} did not finish (state={p.state})")


def make_simulator(engine: Optional[str] = None, *,
                   perturb: Optional[int] = None) -> Simulator:
    """Build a simulator with the requested engine.

    ``engine`` may be ``"calendar"`` (the two-lane scheduler above),
    ``"reference"`` (the original single-heap loop, kept verbatim as
    the equivalence oracle) or None, which defers to the
    ``DYNMPI_KERNEL`` environment variable and defaults to calendar —
    the same explicit-beats-environment convention as the sanitizer
    and observability switches.
    """
    if engine is None:
        engine = os.environ.get("DYNMPI_KERNEL", "").strip() or "calendar"
    if engine == "calendar":
        return Simulator(perturb=perturb)
    if engine == "reference":
        from .kernel_reference import ReferenceSimulator
        return ReferenceSimulator(perturb=perturb)
    raise SimulationError(
        f"unknown kernel engine {engine!r} (expected 'calendar' or 'reference')"
    )
