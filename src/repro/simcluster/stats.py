"""Lightweight metric recording for simulations.

A :class:`Recorder` collects named counters and (time, value) series.
It is intentionally dumb — analysis happens in the experiment harness —
but it is the single place all layers report to, which keeps the
instrumentation consistent across benches.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

__all__ = ["Recorder"]


class Recorder:
    def __init__(self) -> None:
        self.counters: dict[str, float] = defaultdict(float)
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self.events: list[tuple[float, str]] = []

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def sample(self, name: str, t: float, value: float) -> None:
        self.series[name].append((t, value))

    def mark(self, t: float, label: str) -> None:
        self.events.append((t, label))

    # -- analysis helpers -------------------------------------------------
    def values(self, name: str) -> np.ndarray:
        return np.array([v for _, v in self.series.get(name, [])], dtype=float)

    def times(self, name: str) -> np.ndarray:
        return np.array([t for t, _ in self.series.get(name, [])], dtype=float)

    def mean(self, name: str) -> float:
        vals = self.values(name)
        return float(vals.mean()) if vals.size else float("nan")

    def total(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def merge(self, others: Iterable["Recorder"]) -> "Recorder":
        for other in others:
            for k, v in other.counters.items():
                self.counters[k] += v
            for k, pts in other.series.items():
                self.series[k].extend(pts)
            self.events.extend(other.events)
        return self
