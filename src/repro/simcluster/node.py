"""A simulated cluster node: one CPU plus a process table.

The process table is what the monitoring substrate (``dmpi_ps``,
``vmstat``) inspects.  It contains every attached
:class:`~repro.simcluster.kernel.SimProcess` and every
:class:`~repro.simcluster.cpu.BackgroundJob` (competing process), each
with a live scheduling state.
"""

from __future__ import annotations

from typing import Optional

from ..config import NodeSpec
from ..errors import SimulationError
from .cpu import BackgroundJob, make_cpu
from .kernel import ProcState, Simulator, SimProcess

__all__ = ["Node"]


class Node:
    """One node of the simulated cluster."""

    def __init__(self, sim: Simulator, node_id: int, spec: NodeSpec, rng=None):
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.cpu = make_cpu(sim, spec.discipline, spec.speed, spec.quantum, rng=rng)
        self.procs: list[SimProcess] = []
        self.background: dict[str, BackgroundJob] = {}

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def attach(self, proc: SimProcess) -> None:
        if proc.node is not None:
            raise SimulationError(f"process {proc.name} already attached to a node")
        proc.node = self
        self.procs.append(proc)

    def detach(self, proc: SimProcess) -> None:
        if proc in self.procs:
            self.procs.remove(proc)

    # ------------------------------------------------------------------
    # competing processes
    # ------------------------------------------------------------------
    def start_competing(self, name: Optional[str] = None) -> str:
        """Start a CPU-bound competing process; returns its name."""
        if name is None:
            name = f"cp{len(self.background)}@n{self.node_id}"
        if name in self.background:
            raise SimulationError(f"competing process {name!r} already exists")
        bg = BackgroundJob(name)
        bg.node = self
        self.background[name] = bg
        self.cpu.add_background(bg)
        return name

    def stop_competing(self, name: str) -> None:
        bg = self.background.pop(name, None)
        if bg is None:
            raise SimulationError(f"no competing process {name!r} on node {self.node_id}")
        self.cpu.remove_background(bg)

    def stop_all_competing(self) -> None:
        for name in list(self.background):
            self.stop_competing(name)

    @property
    def n_competing(self) -> int:
        return len(self.background)

    # ------------------------------------------------------------------
    # process table (what ps / vmstat see)
    # ------------------------------------------------------------------
    def process_table(self) -> list[tuple[str, str, float]]:
        """Return ``(name, state, cpu_time)`` for every live process."""
        rows = [(p.name, p.state, p.cpu_time) for p in self.procs]
        rows.extend((b.name, b.state, b.cpu_time) for b in self.background.values())
        return rows

    def runnable_count(self) -> int:
        """Number of processes in RUNNING or READY state."""
        return sum(
            1
            for _, state, _ in self.process_table()
            if state in (ProcState.RUNNING, ProcState.READY)
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.node_id} procs={len(self.procs)} cp={self.n_competing}>"
