"""Simulated non dedicated cluster substrate.

This package replaces the paper's physical testbeds (Section 5) with a
deterministic discrete-event simulation: nodes with round-robin or
processor-sharing CPUs, competing background processes, and a
switched-Ethernet network.  See DESIGN.md Section 2 for the
substitution argument.
"""

from .cluster import Cluster
from .cpu import BackgroundJob, ProcessorSharingCPU, RoundRobinCPU
from .kernel import ProcState, Signal, Simulator, SimProcess, make_simulator
from .network import Network
from .node import Node
from .rng import StreamRegistry
from .stats import Recorder
from .syscalls import Compute, Fork, Sleep, Wait, WaitAny
from .trace import Message, Slice, Tracer
from .workload import CycleTrigger, LoadScript, TimeTrigger, single_competitor

__all__ = [
    "Cluster",
    "Node",
    "Network",
    "Simulator",
    "make_simulator",
    "SimProcess",
    "Signal",
    "ProcState",
    "Recorder",
    "StreamRegistry",
    "RoundRobinCPU",
    "ProcessorSharingCPU",
    "BackgroundJob",
    "Compute",
    "Sleep",
    "Wait",
    "WaitAny",
    "Fork",
    "LoadScript",
    "TimeTrigger",
    "CycleTrigger",
    "single_competitor",
    "Tracer",
    "Slice",
    "Message",
]
