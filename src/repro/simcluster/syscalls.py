"""Syscall objects yielded by simulated processes.

A simulated process is a Python generator.  It interacts with the
kernel by yielding one of the request objects below; the kernel
performs the request and resumes the generator with the result (if
any).  Higher layers (the MPI library, the Dyn-MPI runtime) are built
from these five primitives:

* :class:`Compute` — consume CPU work units on the owning node.  The
  time this takes depends on the node's speed *and* on competing
  processes sharing the CPU — this is the essence of the non dedicated
  cluster model.
* :class:`Sleep` — advance simulated time without using CPU.
* :class:`Wait` — block until a :class:`~repro.simcluster.kernel.Signal`
  fires; resumes with the fired value.
* :class:`WaitAny` — block until the first of several signals fires;
  resumes with ``(index, value)``.
* :class:`Fork` — start another process (used by daemons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Signal, SimProcess

__all__ = ["Compute", "Sleep", "Wait", "WaitAny", "Fork", "Syscall"]


class Syscall:
    """Marker base class for kernel requests."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Syscall):
    """Consume ``work`` CPU work units on the calling process's node."""

    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"negative work: {self.work}")


@dataclass(frozen=True)
class Sleep(Syscall):
    """Suspend for ``duration`` simulated seconds (no CPU use)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative sleep: {self.duration}")


@dataclass(frozen=True)
class Wait(Syscall):
    """Block until ``signal`` fires; resume with its value."""

    signal: "Signal"


@dataclass(frozen=True)
class WaitAny(Syscall):
    """Block until the first of ``signals`` fires; resume with
    ``(index, value)``."""

    signals: Sequence["Signal"]


@dataclass(frozen=True)
class Fork(Syscall):
    """Schedule ``process`` to start immediately; resume with it."""

    process: "SimProcess"
