"""Reference DES engine: the original single-heap event loop.

This preserves the pre-dynkern scheduler **verbatim** — one global
``heapq`` of ``(time, seq, Timer)`` triples, every ``call_soon`` a
zero-delay heap push, closures for argument binding, no tombstone
compaction.  It exists as an equivalence oracle (the PR-3
``core.reference`` idiom): the property suite runs whole scenarios on
both engines and asserts byte-identical dynscope exports and equal
``n_events``, which pins the calendar engine to the exact
``(time, seq)`` total order this loop defines.

Select it with ``ClusterSpec(kernel="reference")`` or
``DYNMPI_KERNEL=reference`` (see
:func:`repro.simcluster.kernel.make_simulator`).  It is intentionally
slow — do not "optimise" it; any behavioural change here silently
weakens the oracle.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .kernel import Simulator, Timer

__all__ = ["ReferenceSimulator"]


class ReferenceSimulator(Simulator):
    """Single-heap engine; see module docstring."""

    engine = "reference"

    def __init__(self, *, perturb: Optional[int] = None) -> None:
        super().__init__(perturb=perturb)
        # the ready lane stays permanently empty: every scheduling path
        # below pushes onto the heap, as the original engine did

    # ------------------------------------------------------------------
    # event scheduling (original single-heap form)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at ``now + delay``; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        t = Timer(fn)
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, t))
        return t

    def call_soon(self, fn: Callable[[], None]) -> Timer:
        return self.schedule(0.0, fn)

    # the internal no-closure posts collapse back to the original
    # closure-per-event idiom so the heap sees plain thunks
    def _post1(self, fn: Callable[[Any], None], a: Any) -> Timer:
        return self.schedule(0.0, lambda: fn(a))

    def _post2(self, fn: Callable[[Any, Any], None], a: Any, b: Any) -> Timer:
        return self.schedule(0.0, lambda: fn(a, b))

    def _post_at(self, delay: float, fn: Callable[[Any, Any], None],
                 a: Any, b: Any) -> Timer:
        return self.schedule(delay, lambda: fn(a, b))

    # ------------------------------------------------------------------
    # main loop (original form)
    # ------------------------------------------------------------------
    def run(self, until: float = float("inf"), max_events: int = 200_000_000) -> float:
        """Run until the heap drains or ``until`` is reached."""
        self._stopped = False
        while self._heap and not self._stopped:
            t, _, timer = self._heap[0]
            if t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            if t < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = t
            self.n_events += 1
            if self.n_events > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
            timer.fn()
        if not self._stopped:
            self._check_deadlock()
        return self.now
