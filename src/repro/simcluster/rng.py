"""Deterministic named random streams.

Every stochastic element of the simulation (scheduler arrival jitter,
workload traces, application initial conditions) draws from its own
named stream derived from the cluster seed, so results are reproducible
and independent of the order in which subsystems consume randomness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Hands out independent :class:`numpy.random.Generator` streams.

    Streams are keyed by name; the same (seed, name) pair always yields
    the same sequence regardless of creation order.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the stream for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(self._seed, spawn_key=(_stable_hash(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams


def _stable_hash(name: str) -> int:
    """A hash of ``name`` stable across processes (unlike ``hash``)."""
    h = 2166136261
    for byte in name.encode("utf-8"):
        h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
    return h
