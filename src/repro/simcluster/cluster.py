"""Cluster assembly: simulator + nodes + network + services.

A :class:`Cluster` is the top-level substrate object.  Everything else
— the MPI layer, the monitoring daemons, the Dyn-MPI runtime — hangs
off it.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.sanitizer import CommSanitizer, sanitizer_enabled
from ..config import ClusterSpec
from ..obs.recorder import ObsRecorder, obs_enabled
from ..resilience.board import FailureBoard
from .kernel import SimProcess, Simulator, make_simulator
from .network import Network
from .node import Node
from .rng import StreamRegistry
from .stats import Recorder
from .workload import LoadScript

__all__ = ["Cluster"]


class Cluster:
    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.sim = make_simulator(spec.kernel, perturb=spec.perturb)
        self.rng = StreamRegistry(spec.seed)
        self.nodes = [
            Node(self.sim, i, spec.node, rng=self.rng.stream(f"cpu{i}"))
            for i in range(spec.n_nodes)
        ]
        self.network = Network(self.sim, spec.network, spec.n_nodes)
        self.recorder = Recorder()
        self.load_script: Optional[LoadScript] = None
        #: ground-truth node-failure state; always present (and empty)
        #: so readers need no None checks
        self.failure_board = FailureBoard(spec.n_nodes)
        self.failure_script = None
        #: node_id -> application (rank) processes launched there, the
        #: kill/inject fault targets; populated by DynMPIJob.launch
        self.app_procs: dict[int, list[SimProcess]] = {}
        self.sanitizer: Optional[CommSanitizer] = None
        if sanitizer_enabled(spec):
            self.sanitizer = CommSanitizer()
            self.sim.add_watchdog(self.sanitizer.kernel_block_hook)
        #: dynscope trace recorder (``repro.obs``), or None when off —
        #: instrumented layers guard every hook with one None test
        self.obs: Optional[ObsRecorder] = None
        if obs_enabled(spec):
            self.obs = ObsRecorder(clock=lambda: self.sim.now)

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    def install_load_script(self, script: LoadScript) -> None:
        self.load_script = script
        script.install(self)

    def install_failure_script(self, script) -> None:
        self.failure_script = script
        script.install(self)

    def register_app_proc(self, node_id: int, proc: SimProcess) -> None:
        self.app_procs.setdefault(node_id, []).append(proc)

    def notify_cycle(self, cycle: int) -> None:
        """Called by the runtime at phase-cycle boundaries so that
        cycle-triggered load and failure scripts can fire."""
        if self.load_script is not None:
            self.load_script.on_cycle(cycle)
        if self.failure_script is not None:
            self.failure_script.on_cycle(cycle)

    def competing_counts(self) -> list[int]:
        return [node.n_competing for node in self.nodes]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cluster {self.spec.name} n={self.n_nodes} t={self.sim.now:.3f}>"
