"""Dyn-MPI reproduction (Weatherly, Lowenthal, Nakazawa, Lowenthal — SC'03).

Layers, bottom to top:

* :mod:`repro.simcluster` — discrete-event non dedicated cluster.
* :mod:`repro.mpi`        — MPI-like message passing over the simulator.
* :mod:`repro.sysmon`     — dmpi_ps / vmstat / /PROC / gethrtime models.
* :mod:`repro.dmem`       — redistribution-friendly dense & sparse arrays.
* :mod:`repro.core`       — the Dyn-MPI runtime (the paper's contribution).
* :mod:`repro.resilience` — fault injection, checkpointing, crash recovery.
* :mod:`repro.apps`       — Jacobi, SOR, CG, particle simulation.
* :mod:`repro.experiments`— figure/table regeneration harness.
"""

__version__ = "1.0.0"

from .config import (
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    ResilienceSpec,
    RuntimeSpec,
    pentium_cluster,
    ultrasparc_cluster,
)

__all__ = [
    "ClusterSpec",
    "NetworkSpec",
    "NodeSpec",
    "ResilienceSpec",
    "RuntimeSpec",
    "pentium_cluster",
    "ultrasparc_cluster",
    "__version__",
]
