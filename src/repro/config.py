"""Configuration dataclasses shared across the library.

The specs below describe the three layers of the reproduction:

* :class:`NodeSpec` / :class:`NetworkSpec` / :class:`ClusterSpec` — the
  simulated, non dedicated cluster (the paper's testbed substitute).
* :class:`RuntimeSpec` — tunables of the Dyn-MPI runtime itself (grace
  period lengths, monitoring cadence, drop policy), with defaults taken
  straight from the paper (5-cycle measurement grace period, 10-cycle
  post-redistribution grace period, 1 Hz ``dmpi_ps`` sampling, 10 ms
  /PROC granularity).

Two named cluster presets mirror the paper's testbeds:
:func:`pentium_cluster` (550 MHz P-III Xeon + switched 100 Mb/s
Ethernet, Sections 5.1/5.2/5.4) and :func:`ultrasparc_cluster`
(360 MHz Ultra-Sparc 5, Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "ClusterSpec",
    "ResilienceSpec",
    "RuntimeSpec",
    "pentium_cluster",
    "ultrasparc_cluster",
]


@dataclass(frozen=True)
class NodeSpec:
    """A single simulated node.

    ``speed`` is in abstract *work units per second*.  Application cost
    models express per-row work in the same units, so one node
    executing ``speed`` units takes exactly one simulated second when
    it is alone on the CPU.

    ``quantum`` is the OS scheduler time slice.  The 10 ms default
    matches classic Linux/Solaris round-robin slices and is what makes
    ``gethrtime`` readings of sub-quantum iterations noisy (paper
    Section 4.2 / Figure 7).
    """

    speed: float = 1.0e8
    quantum: float = 0.010
    memory_bytes: int = 512 * 1024 * 1024
    discipline: str = "rr"  # "rr" (round robin) or "ps" (processor sharing)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ConfigError(f"node speed must be positive, got {self.speed}")
        if self.quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {self.quantum}")
        if self.discipline not in ("rr", "ps"):
            raise ConfigError(f"unknown CPU discipline {self.discipline!r}")


@dataclass(frozen=True)
class NetworkSpec:
    """Switched-Ethernet model parameters.

    * ``latency`` — one-way wire+switch latency per message (s).
    * ``bandwidth`` — link bandwidth in bytes/s (100 Mb/s => 12.5e6).
    * ``cpu_per_byte`` — CPU work units consumed per payload byte on
      each side of a transfer (memory copies, checksums, TCP stack).
      This term is why communication "requires *some* use of the CPU"
      (paper Section 4.3) and why relative-power distributions are
      suboptimal.
    * ``cpu_per_msg`` — fixed CPU work units per message on each side.
    * ``eager_threshold`` — messages at or below this many bytes
      complete at the sender as soon as they are injected; larger
      messages use a rendezvous and block the sender until the receiver
      has posted a matching receive.
    """

    latency: float = 75e-6
    bandwidth: float = 12.5e6
    cpu_per_byte: float = 0.40
    cpu_per_msg: float = 3000.0
    eager_threshold: int = 16 * 1024
    #: "blocking" — a waiting receiver sleeps and is woken on delivery;
    #: "polling" — the receiver busy-waits (2003-era MPICH ch_p4
    #: style), consuming CPU while waiting and noticing messages only
    #: when it holds the CPU.  Polling is what makes a loaded node
    #: poison fine-grained communication (paper Section 5.3).
    recv_mode: str = "blocking"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.cpu_per_byte < 0 or self.cpu_per_msg < 0:
            raise ConfigError("CPU overheads must be non-negative")
        if self.eager_threshold < 0:
            raise ConfigError("eager threshold must be non-negative")
        if self.recv_mode not in ("blocking", "polling"):
            raise ConfigError(f"unknown recv_mode {self.recv_mode!r}")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous (by default) cluster of ``n_nodes`` nodes."""

    n_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    seed: int = 0
    name: str = "cluster"
    #: communication sanitizer (``repro.analysis``): True/False force it
    #: on/off; None (the default) defers to the ``DYNMPI_SANITIZE``
    #: environment variable.  Keep it off for benchmarks — the hooks
    #: add per-message bookkeeping.
    sanitize: bool | None = None
    #: dynscope observability (``repro.obs``): True/False force the
    #: trace recorder on/off; None (the default) defers to the
    #: ``DYNMPI_OBS`` environment variable.  Recording never adds
    #: simulated cost, but the Python-side bookkeeping is real — keep
    #: it off for wall-clock benchmarks.
    observe: bool | None = None
    #: schedule perturbation (``repro.analysis.race``): an integer seed
    #: arms the kernel's :class:`~repro.simcluster.kernel.Perturb`
    #: tie-break flipping; None (the default) defers to the
    #: ``DYNMPI_PERTURB`` environment variable.  A schedule-clean run
    #: exports byte-identical traces under every seed.
    perturb: int | None = None
    #: DES engine (``repro.simcluster.kernel``): ``"calendar"`` (the
    #: two-lane scheduler) or ``"reference"`` (the original single-heap
    #: loop, kept as the equivalence oracle); None (the default) defers
    #: to the ``DYNMPI_KERNEL`` environment variable and falls back to
    #: calendar.  Both engines execute the identical event order —
    #: reference exists for cross-checking, not for results.
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"need at least one node, got {self.n_nodes}")
        if self.kernel not in (None, "calendar", "reference"):
            raise ConfigError(
                f"kernel must be 'calendar', 'reference' or None, got {self.kernel!r}"
            )
        if self.sanitize not in (None, True, False):
            raise ConfigError(f"sanitize must be True/False/None, got {self.sanitize!r}")
        if self.observe not in (None, True, False):
            raise ConfigError(f"observe must be True/False/None, got {self.observe!r}")
        if self.perturb is not None and (
            isinstance(self.perturb, bool) or not isinstance(self.perturb, int)
        ):
            raise ConfigError(
                f"perturb must be an integer seed or None, got {self.perturb!r}"
            )

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        return replace(self, n_nodes=n_nodes)

    def with_seed(self, seed: int) -> "ClusterSpec":
        """The same cluster with a different RNG seed — how campaign
        sweeps and ``--seed`` CLI flags derive per-run variants."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ResilienceSpec:
    """In-memory neighbor checkpointing + crash recovery knobs
    (``repro.resilience``, see docs/RESILIENCE.md).

    Attach to :class:`RuntimeSpec` via ``resilience=ResilienceSpec()``;
    the default ``RuntimeSpec.resilience = None`` keeps every
    resilience code path disabled (zero overhead).
    """

    #: phase cycles between buddy checkpoints.  1 (the default) makes
    #: recovery exact: the checkpoint a buddy replays is precisely the
    #: crashed rank's state at the failure cycle's boundary.  Larger
    #: intervals cut checkpoint traffic but replay rows up to
    #: ``checkpoint_interval - 1`` cycles stale (only safe for
    #: applications that re-converge, e.g. iterative solvers).
    checkpoint_interval: int = 1
    #: number of successive ring buddies that hold a replica of each
    #: rank's checkpoint; recovery survives up to ``replication``
    #: simultaneous failures of adjacent ranks.
    replication: int = 1
    #: seconds without a ``dmpi_ps`` heartbeat before a node is
    #: suspected dead; 0 (the default) resolves to
    #: ``3 * RuntimeSpec.daemon_interval``.
    heartbeat_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")
        if self.heartbeat_timeout < 0:
            raise ConfigError("heartbeat_timeout must be >= 0")

    def resolve_timeout(self, daemon_interval: float) -> float:
        return self.heartbeat_timeout or 3.0 * daemon_interval


@dataclass(frozen=True)
class RuntimeSpec:
    """Dyn-MPI runtime tunables (paper defaults)."""

    #: phase cycles of measurement after a load change (paper: 5)
    grace_period: int = 5
    #: phase cycles of monitoring after a redistribution (paper: 10)
    post_redist_period: int = 10
    #: dmpi_ps daemon sampling interval in seconds (paper: 1 s)
    daemon_interval: float = 1.0
    #: /PROC CPU-time accounting granularity in seconds (paper: 10 ms)
    proc_granularity: float = 0.010
    #: iteration-time threshold below which gethrtime is used instead
    #: of /PROC (paper: 10 ms)
    hrtimer_threshold: float = 0.010
    #: successive-balancing convergence tolerance on unloaded shares
    balance_tol: float = 1e-3
    #: maximum successive-balancing rounds
    balance_max_rounds: int = 50
    #: "block" or "cyclic" default distribution
    distribution: str = "block"
    #: whether node removal is considered at all
    allow_removal: bool = True
    #: "physical" (paper default) or "logical" dropping
    drop_mode: str = "physical"
    #: minimum rows assigned to a logically dropped node
    logical_min_rows: int = 1
    #: consider re-adding removed nodes when their load clears
    allow_rejoin: bool = False
    #: consider dropping subsets of loaded nodes (paper future work)
    partial_removal: bool = False
    #: safety margin: predicted unloaded-config time must beat the
    #: measured time by this factor before nodes are dropped (tiny
    #: values force dropping, huge values forbid it — used by the
    #: Figure 6 experiment to measure both branches)
    drop_margin: float = 1.0
    #: cap on the number of redistributions (0 = unlimited); the
    #: Figure 5 "Redist Once" configuration uses 1
    max_redistributions: int = 0
    #: checkpointing + crash recovery (``repro.resilience``); None
    #: disables every resilience code path
    resilience: Optional[ResilienceSpec] = None

    def __post_init__(self) -> None:
        if self.grace_period < 1:
            raise ConfigError("grace_period must be >= 1")
        if self.post_redist_period < 1:
            raise ConfigError("post_redist_period must be >= 1")
        if self.daemon_interval <= 0:
            raise ConfigError("daemon_interval must be positive")
        if self.distribution not in ("block", "cyclic"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if self.drop_mode not in ("physical", "logical"):
            raise ConfigError(f"unknown drop_mode {self.drop_mode!r}")
        if self.drop_margin <= 0:
            raise ConfigError("drop_margin must be positive")


def pentium_cluster(n_nodes: int, *, seed: int = 0) -> ClusterSpec:
    """The paper's primary testbed: 550 MHz P-III Xeon, 100 Mb/s switch.

    Speed is calibrated (see ``repro.experiments.calibrate``) so the
    4-node dedicated CG run lands near the paper's 37.5 s.
    """

    return ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(speed=1.10e8, quantum=0.010),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6),
        seed=seed,
        name="pentium",
    )


def ultrasparc_cluster(n_nodes: int, *, seed: int = 0) -> ClusterSpec:
    """The Section 5.3 testbed: 360 MHz Ultra-Sparc 5 + 100 Mb/s.

    Its MPI busy-polls for messages (ch_p4 style), so message handling
    on a loaded node waits for the CPU — the effect behind the
    node-removal results.
    """

    return ClusterSpec(
        n_nodes=n_nodes,
        node=NodeSpec(speed=0.30e8, quantum=0.010),
        network=NetworkSpec(latency=75e-6, bandwidth=12.5e6, recv_mode="polling"),
        seed=seed,
        name="ultrasparc",
    )
