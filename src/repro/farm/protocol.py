"""Wire protocol of the task farm: the reserved tag band.

The farm reserves user-tag band ``[210, 220)``; lint rule DYN1101
flags raw literals from this band used as message tags outside the
farm runtime, so application code cannot accidentally splice into the
master/worker conversation.

Message flow (PDSA-RTS ``slave.py`` idiom):

========  =================  =====================================
tag       direction          meaning
========  =================  =====================================
READY     worker -> master   idle and willing to take a chunk; in
                             RMA mode also "my counter phase is
                             over, feed me requeues"
START     master -> worker   payload: list of job ids to run
DONE      worker -> master   payload: list of ``(job, result)``
                             pairs; in master-dispatch policies it
                             doubles as the next READY
EXIT      master -> worker   farm drained; terminate
PARK      master -> worker   node is loaded (or draining): stop
                             claiming counter chunks; a no-op for a
                             worker already in the dispatch loop
========  =================  =====================================
"""

from __future__ import annotations

__all__ = [
    "FARM_TAG_BASE", "FARM_TAG_LIMIT",
    "TAG_READY", "TAG_START", "TAG_DONE", "TAG_EXIT", "TAG_PARK",
    "start_nbytes", "done_nbytes",
]

#: reserved user-tag band for the farm protocol (DYN1101-guarded)
FARM_TAG_BASE = 210
FARM_TAG_LIMIT = 220

TAG_READY = FARM_TAG_BASE + 1
TAG_START = FARM_TAG_BASE + 2
TAG_DONE = FARM_TAG_BASE + 3
TAG_EXIT = FARM_TAG_BASE + 4
TAG_PARK = FARM_TAG_BASE + 5

#: message header + 8 bytes per job id
def start_nbytes(n_jobs: int) -> int:
    return 64 + 8 * n_jobs


#: message header + (job id, result) word pair per job
def done_nbytes(n_jobs: int) -> int:
    return 64 + 16 * n_jobs
