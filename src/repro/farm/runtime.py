"""The elastic task-farm runtime: master, workers, and the driver.

One master (rank 0) and ``size - 1`` workers run the protocol from
:mod:`repro.farm.protocol`.  Master-dispatch policies round-trip every
chunk through the master; the ``rma`` policy instead lets workers
claim chunks off a shared loop counter in the master's
:class:`~repro.mpi.rma.Window` with one-sided ``fetch_and_op`` — the
master only *consumes* results, it never sits on the dispatch path.

Elasticity model (how churn maps onto the farm):

* **crash** — a worker killed by a ``FailureScript`` is detected via
  the communicator's dead-rank poisoning; its in-flight chunk is
  requeued once (jobs already completed are skipped; a DONE still in
  flight at requeue time is deduplicated by the completed set).
* **park** — a worker whose node a ``LoadScript`` loads is parked:
  the master stops dispatching to it (RMA workers get a ``PARK``
  message and fall back to the dispatch loop) and its in-flight chunk
  is requeued once.  The worker still finishes that chunk — slowly,
  sharing its CPU — and the duplicate completions are deduplicated.
* **re-admit** — when the load clears, the worker is unparked and
  served chunks again.

The master never blocks in ``recv``: it probes its mailbox, consumes
what is there, and sleeps ``poll_dt`` otherwise — so it always notices
deaths, load changes, and phase transitions.  The completed-result set
is bitwise-identical across policies, perturbation seeds, and churn
because job results are pure functions of the job id (see
:mod:`repro.farm.jobs`); the tests and the campaign oracle hold the
digest to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, FarmError
from ..mpi import ANY_TAG, make_comm
from ..mpi.rma import Window
from ..simcluster import Compute, Sleep
from .jobs import JobQueue, farm_digest, job_cost, job_result
from .policies import make_policy
from .protocol import (
    TAG_DONE,
    TAG_EXIT,
    TAG_PARK,
    TAG_READY,
    TAG_START,
    done_nbytes,
    start_nbytes,
)

__all__ = ["FarmSpec", "FarmResult", "run_farm"]

#: window layout for the rma policy: slot 0 is the shared loop counter
_COUNTER_SLOT = 0
_WIN_SLOTS = 2


@dataclass(frozen=True)
class FarmSpec:
    """Parameters of one farm run."""

    n_jobs: int = 1000
    policy: str = "self"        # static | self | guided | factoring | rma
    chunk: int = 8              # chunk size for self/rma dispatch
    skew: str = "hot"           # uniform | linear | hot (see jobs.job_cost)
    base_cost: float = 1e4      # work units per job before skew
    seed: int = 0               # result seed (job_result values)
    cycles: int = 8             # notify_cycle boundaries across the run
    poll_dt: float = 2e-4       # master poll interval, simulated seconds
    min_workers: int = 1        # never park below this many active workers
    name: str = "farm"

    def validate(self) -> None:
        if self.n_jobs <= 0:
            raise ConfigError(f"farm needs at least one job ({self.n_jobs})")
        if self.chunk <= 0:
            raise ConfigError(f"farm chunk must be positive ({self.chunk})")
        if self.cycles <= 0:
            raise ConfigError(f"farm cycles must be positive ({self.cycles})")
        if self.skew not in ("uniform", "linear", "hot"):
            raise ConfigError(f"unknown skew profile {self.skew!r}")


@dataclass
class FarmResult:
    """Everything a run produced, plus the accounting churn leaves."""

    spec: FarmSpec
    completed: dict[int, int]
    digest: str
    wall_time: float
    per_worker: dict[int, int] = field(default_factory=dict)
    duplicates: int = 0
    n_requeued: int = 0
    requeued: dict[int, int] = field(default_factory=dict)
    park_events: int = 0
    readmit_events: int = 0
    dead_workers: list[int] = field(default_factory=list)

    @property
    def jobs_done(self) -> int:
        return len(self.completed)

    @property
    def jobs_per_sec(self) -> float:
        """Simulated throughput: completed jobs per simulated second."""
        return self.jobs_done / self.wall_time if self.wall_time > 0 else 0.0


class _MasterState:
    """Mutable farm bookkeeping shared between master and driver."""

    def __init__(self, spec: FarmSpec, workers: list[int]):
        self.completed: dict[int, int] = {}
        self.per_worker: dict[int, int] = {r: 0 for r in workers}
        self.duplicates = 0
        self.park_events = 0
        self.readmit_events = 0
        self.dead: set[int] = set()
        rma = spec.policy == "rma"
        self.queue = JobQueue(() if rma else range(spec.n_jobs))


def _chunk_work(jobs: list[int], spec: FarmSpec) -> float:
    total = 0.0
    for j in jobs:
        total += job_cost(j, spec.n_jobs, spec.base_cost, spec.skew)
    return total


def _chunk_results(jobs: list[int], spec: FarmSpec) -> list[tuple[int, int]]:
    return [(j, job_result(j, spec.seed)) for j in jobs]


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _farm_worker(ep, win, spec: FarmSpec):
    """Worker body: RMA counter phase (policy ``rma``), then the
    classic dispatch loop until EXIT."""
    obs = ep.comm.obs
    master = 0
    stats = {"jobs": 0, "chunks": 0}

    if spec.policy == "rma":
        yield from _rma_phase(ep, win, spec, stats)
        yield from ep.send(master, TAG_READY, None)
    else:
        yield from ep.send(master, TAG_READY, None)

    while True:
        payload, status = yield from ep.recv(master, ANY_TAG)
        if status.tag == TAG_EXIT:
            break
        if status.tag == TAG_PARK:
            continue  # already out of the counter phase: nothing to stop
        jobs = payload
        t0 = obs.now() if obs is not None else 0.0
        yield Compute(_chunk_work(jobs, spec))
        results = _chunk_results(jobs, spec)
        if obs is not None:
            obs.complete("farm.chunk", t0, cat="farm", pid=ep.node_id,
                         tid=ep.rank, jobs=len(jobs))
        yield from ep.send(master, TAG_DONE, results,
                           nbytes=done_nbytes(len(results)))
        stats["jobs"] += len(jobs)
        stats["chunks"] += 1
    return stats


def _rma_phase(ep, win, spec: FarmSpec, stats: dict):
    """Decentralized self-scheduling: claim fixed chunks off the
    master's loop counter with one-sided fetch_and_op; report each
    chunk with a fire-and-forget DONE.  Leaves on counter exhaustion
    or a PARK message."""
    obs = ep.comm.obs
    master = 0
    h = win.origin(ep.rank)
    yield from h.lock(master, shared=True)
    n = spec.n_jobs
    while True:
        if ep.iprobe(master, TAG_PARK) is not None:
            yield from ep.recv(master, TAG_PARK)
            break
        start = yield from h.fetch_and_op(master, _COUNTER_SLOT, spec.chunk)
        if start >= n:
            break
        jobs = list(range(start, min(n, start + spec.chunk)))
        t0 = obs.now() if obs is not None else 0.0
        yield Compute(_chunk_work(jobs, spec))
        results = _chunk_results(jobs, spec)
        if obs is not None:
            obs.complete("farm.chunk", t0, cat="farm", pid=ep.node_id,
                         tid=ep.rank, jobs=len(jobs))
        # fire-and-forget: the master consumes this without replying,
        # so the worker goes straight back to the counter
        ep.isend(master, TAG_DONE, results, nbytes=done_nbytes(len(results)))
        stats["jobs"] += len(jobs)
        stats["chunks"] += 1
    yield from h.unlock(master)


# ---------------------------------------------------------------------------
# master side
# ---------------------------------------------------------------------------

def _farm_master(ep, win, cluster, spec: FarmSpec, state: _MasterState):
    comm = ep.comm
    obs = comm.obs
    workers = list(range(1, comm.size))
    rma_mode = spec.policy == "rma"
    n_jobs = spec.n_jobs
    queue = state.queue
    completed = state.completed
    policy = make_policy(spec.policy, n_jobs, len(workers), spec.chunk)

    ready: set[int] = set()
    inflight: dict[int, list[int]] = {}
    parked: set[int] = set()
    #: rma: workers still claiming off the counter (none in classic)
    counter_live: set[int] = set(workers) if rma_mode else set()
    rma_drained = not rma_mode

    jobs_per_cycle = max(1, n_jobs // spec.cycles)
    next_cycle = 1

    def merge(src: int, results) -> None:
        for j, r in results:
            if j in completed:
                state.duplicates += 1
            else:
                completed[j] = r
                state.per_worker[src] = state.per_worker.get(src, 0) + 1
        if obs is not None and results:
            obs.rank_registry(0).count("farm.jobs_done", len(results))

    while True:
        progressed = False

        # -- consume everything queued at the master -------------------
        while ep.iprobe() is not None:
            # wildcard receive: messages from since-dead workers stay
            # consumable, and multi-source ties take the perturbable
            # path — the consumer keys everything by status.source and
            # dedups by the completed set, so the pick cannot change
            # the result (test_perturb_invariance_across_seeds)
            payload, status = yield from ep.recv()  # dynrace: ok
            src, tag = status.source, status.tag
            progressed = True
            if tag == TAG_READY:
                ready.add(src)
                counter_live.discard(src)
            elif tag == TAG_DONE:
                merge(src, payload)
                inflight.pop(src, None)
                # counter-phase DONEs are fire-and-forget chunk reports;
                # a dispatched worker's DONE doubles as its next READY
                if src not in counter_live:
                    ready.add(src)

        # -- deaths ----------------------------------------------------
        for r in comm.dead_ranks():
            if r in state.dead or r == 0:
                continue
            state.dead.add(r)
            ready.discard(r)
            parked.discard(r)
            counter_live.discard(r)
            lost = [j for j in inflight.pop(r, []) if j not in completed]
            if lost:
                queue.requeue(lost)
            if obs is not None:
                obs.instant("farm.crash_requeue", cat="farm", pid=-1, tid=0,
                            worker=r, requeued=len(lost))
            progressed = True

        live = [r for r in workers if r not in state.dead]
        if not live and len(completed) < n_jobs:
            raise FarmError(
                f"farm '{spec.name}': every worker died with "
                f"{n_jobs - len(completed)} job(s) outstanding"
            )

        # -- load-driven parking / re-admission ------------------------
        counts = cluster.competing_counts()
        desired = {r for r in live if counts[comm.node_of(r)] > 0}
        excess = len(live) - len(desired)
        if excess < spec.min_workers:
            for r in sorted(desired)[:spec.min_workers - excess]:
                desired.discard(r)
        for r in sorted(desired - parked):
            parked.add(r)
            state.park_events += 1
            if r in counter_live and not comm.rank_failed(r):
                yield from ep.send(r, TAG_PARK, None)
            lost = [j for j in inflight.pop(r, []) if j not in completed]
            if lost:
                queue.requeue(lost)
            if obs is not None:
                obs.instant("farm.park", cat="farm", pid=-1, tid=0, worker=r,
                            requeued=len(lost))
            progressed = True
        for r in sorted(parked - desired):
            parked.discard(r)
            state.readmit_events += 1
            if obs is not None:
                obs.instant("farm.readmit", cat="farm", pid=-1, tid=0, worker=r)
            progressed = True

        # -- rma phase end: account for jobs lost to dead claimants ----
        if not rma_drained and not counter_live:
            rma_drained = True
            claimed = min(n_jobs, int(win.local(0)[_COUNTER_SLOT]))
            lost = [j for j in range(claimed) if j not in completed]
            if lost:
                queue.requeue(lost)
            if claimed < n_jobs:
                queue.extend(range(claimed, n_jobs))
            if obs is not None:
                obs.instant("farm.drain", cat="farm", pid=-1, tid=0,
                            claimed=claimed, requeued=len(lost))
            progressed = True

        # -- cycle boundaries (drive Load/Failure cycle triggers) ------
        while (next_cycle <= spec.cycles
               and len(completed) >= next_cycle * jobs_per_cycle):
            cluster.notify_cycle(next_cycle)
            next_cycle += 1

        # -- dispatch --------------------------------------------------
        if len(queue):
            active = max(1, len([r for r in live if r not in parked]))
            for r in sorted(ready):
                # the snapshot in state.dead can go stale mid-loop: a
                # deferred kill may land during a previous dispatch's
                # send, so re-check liveness right before each send
                if (r in parked or r in state.dead
                        or comm.rank_failed(r) or not len(queue)):
                    continue
                jobs = queue.take(policy.next_chunk(len(queue), active))
                if not jobs:
                    break
                inflight[r] = jobs
                ready.discard(r)
                yield from ep.send(r, TAG_START, jobs,
                                   nbytes=start_nbytes(len(jobs)))
                if obs is not None:
                    obs.rank_registry(0).count("farm.dispatches", 1)
                progressed = True

        # -- done? -----------------------------------------------------
        if (len(completed) >= n_jobs and rma_drained
                and all(r in ready for r in live)):
            break
        if not progressed:
            yield Sleep(spec.poll_dt)

    # late cycle boundaries (tiny farms may complete inside cycle 1)
    while next_cycle <= spec.cycles:
        cluster.notify_cycle(next_cycle)
        next_cycle += 1

    for r in sorted(set(workers) - state.dead):
        if not comm.rank_failed(r):
            yield from ep.send(r, TAG_EXIT, None)
    return len(completed)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_farm(cluster, spec: FarmSpec, *, load_script=None,
             failure_script=None, rank_to_node=None) -> FarmResult:
    """Run one farm on ``cluster``; returns the :class:`FarmResult`.

    Rank 0 (the master) lives on node 0 by default; every other node
    hosts one worker.  ``load_script``/``failure_script`` are
    installed before the run when given — their cycle triggers fire at
    the farm's completion-count boundaries (``spec.cycles`` per run),
    their time triggers at the scheduled simulated times.
    """
    spec.validate()
    comm = make_comm(cluster, rank_to_node)
    if comm.size < 2:
        raise ConfigError("a farm needs a master and at least one worker")
    if load_script is not None:
        cluster.install_load_script(load_script)
    if failure_script is not None:
        cluster.install_failure_script(failure_script)

    win = Window(comm, _WIN_SLOTS, name=spec.name)
    state = _MasterState(spec, list(range(1, comm.size)))

    procs = []
    for rank in range(comm.size):
        ep = comm.endpoint(rank)
        if rank == 0:
            gen = _farm_master(ep, win, cluster, spec, state)
        else:
            gen = _farm_worker(ep, win, spec)
        node = cluster.nodes[comm.node_of(rank)]
        proc = cluster.sim.spawn(gen, name=f"farm{rank}", node=node)
        comm.watch_rank(rank, proc)
        cluster.register_app_proc(node.node_id, proc)
        procs.append(proc)

    board = cluster.failure_board

    def expected_death(proc) -> bool:
        rank = procs.index(proc)
        return board.failed(comm.node_of(rank))

    t0 = cluster.sim.now
    cluster.sim.run_all(procs, tolerate=expected_death)
    if cluster.sanitizer is not None:
        cluster.sanitizer.finalize()

    return FarmResult(
        spec=spec,
        completed=state.completed,
        digest=farm_digest(state.completed),
        wall_time=cluster.sim.now - t0,
        per_worker=dict(sorted(state.per_worker.items())),
        duplicates=state.duplicates,
        n_requeued=state.queue.n_requeued,
        requeued=dict(sorted(state.queue.requeued.items())),
        park_events=state.park_events,
        readmit_events=state.readmit_events,
        dead_workers=sorted(state.dead),
    )
