"""Elastic task-farm runtime (dynfarm).

A master/worker job farm over the simulated cluster: a
:class:`~repro.farm.jobs.JobQueue` of independent jobs with skewed
deterministic costs, dispatched to workers through the tag-based
READY/START/DONE/EXIT protocol (:mod:`repro.farm.protocol`) under a
pluggable loop-scheduling policy (:mod:`repro.farm.policies`) —
including decentralized self-scheduling where workers advance a shared
loop counter with one-sided :meth:`~repro.mpi.rma.RmaHandle.fetch_and_op`
instead of round-tripping through the master.

Elasticity rides the existing load/removal machinery: workers on nodes
loaded by a ``LoadScript`` are parked (their in-flight chunk requeued
once, duplicates deduplicated by the completed set), crashed workers'
jobs are requeued, and re-admitted workers rejoin the dispatch pool.
The completed-result set is bitwise-identical regardless of policy,
perturbation seed, or mid-run churn — see docs/FARM.md.
"""

from .jobs import JobQueue, farm_digest, job_cost, job_result, reference_results
from .policies import POLICIES, make_policy
from .protocol import (
    FARM_TAG_BASE,
    FARM_TAG_LIMIT,
    TAG_DONE,
    TAG_EXIT,
    TAG_PARK,
    TAG_READY,
    TAG_START,
)
from .runtime import FarmResult, FarmSpec, run_farm

__all__ = [
    "FarmSpec",
    "FarmResult",
    "run_farm",
    "JobQueue",
    "job_cost",
    "job_result",
    "reference_results",
    "farm_digest",
    "POLICIES",
    "make_policy",
    "FARM_TAG_BASE",
    "FARM_TAG_LIMIT",
    "TAG_READY",
    "TAG_START",
    "TAG_DONE",
    "TAG_EXIT",
    "TAG_PARK",
]
