"""Jobs: deterministic skewed costs, pure results, and the queue.

Both the cost and the result of a job are *pure functions* of the job
id (and the farm seed) — no state, no RNG.  That single design choice
is what makes the farm's headline guarantee cheap to state and easy to
verify: the completed-result set ``{job: result}`` is bitwise-identical
across scheduling policies, perturbation seeds, and mid-run churn,
because every execution of job ``j`` computes the same
``job_result(j, seed)`` no matter where or when it runs.  Schedules
may differ; the *set* cannot.

Costs are skewed through a stable 64-bit mix (SplitMix64 finalizer) so
load imbalance is reproducible without touching any RNG stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "job_cost", "job_result", "reference_results", "farm_digest", "JobQueue",
]

_MASK = (1 << 64) - 1

#: domain separators so cost and result draws never correlate
_COST_SALT = 0x9E3779B97F4A7C15
_RESULT_SALT = 0xD1B54A32D192ED03


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a stable, well-mixed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def job_cost(job: int, n_jobs: int, base: float, skew: str) -> float:
    """Work units job ``job`` costs under the ``skew`` profile.

    * ``uniform`` — every job costs ``base``;
    * ``linear``  — cost ramps from ``0.5*base`` to ``1.5*base`` by id
      (sorted imbalance: static chunking gives some workers all the
      heavy jobs);
    * ``hot``     — 1 job in 16 costs ``8*base``, the rest are drawn
      in ``[0.5, 1.5)*base`` by hash (heavy-tailed imbalance, the case
      dynamic policies exist for).
    """
    if skew == "uniform":
        return base
    if skew == "linear":
        return base * (0.5 + job / max(1, n_jobs - 1))
    if skew == "hot":
        h = _mix64(job ^ _COST_SALT)
        if h % 16 == 0:
            return base * 8.0
        return base * (0.5 + (h % 1024) / 1024.0)
    raise ValueError(f"unknown skew profile {skew!r}")


def job_result(job: int, seed: int) -> int:
    """The (pure, deterministic) result of running job ``job``."""
    return _mix64((seed << 32) ^ job ^ _RESULT_SALT)


def reference_results(n_jobs: int, seed: int) -> dict[int, int]:
    """What a farm run must produce — computed without running one."""
    return {j: job_result(j, seed) for j in range(n_jobs)}


def farm_digest(completed: dict[int, int]) -> str:
    """SHA-1 over the sorted ``(job, result)`` pairs: the byte-level
    identity the acceptance tests compare across policies/seeds/churn."""
    if not completed:
        return hashlib.sha1(b"").hexdigest()
    jobs = np.fromiter(completed.keys(), dtype=np.uint64, count=len(completed))
    order = np.argsort(jobs, kind="stable")
    vals = np.fromiter(completed.values(), dtype=np.uint64, count=len(completed))
    packed = np.empty(2 * len(completed), dtype=np.uint64)
    packed[0::2] = jobs[order]
    packed[1::2] = vals[order]
    return hashlib.sha1(packed.tobytes()).hexdigest()


class JobQueue:
    """The master's pool of unscheduled jobs.

    ``take`` serves from the head; ``requeue`` appends lost chunks to
    the tail and counts each job's requeue.  O(1) amortized take via a
    head cursor (the backing list is compacted when the dead prefix
    outgrows the live remainder).
    """

    def __init__(self, jobs=()):
        self._items: list[int] = list(jobs)
        self._head = 0
        self.requeued: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._items) - self._head

    def take(self, k: int) -> list[int]:
        k = min(k, len(self))
        if k <= 0:
            return []
        out = self._items[self._head:self._head + k]
        self._head += k
        if self._head > 4096 and self._head * 2 > len(self._items):
            del self._items[:self._head]
            self._head = 0
        return out

    def extend(self, jobs) -> None:
        """Append never-dispatched jobs (no requeue accounting)."""
        self._items.extend(jobs)

    def requeue(self, jobs) -> int:
        """Append lost jobs; returns how many were added."""
        added = 0
        for j in jobs:
            self._items.append(j)
            self.requeued[j] = self.requeued.get(j, 0) + 1
            added += 1
        return added

    @property
    def n_requeued(self) -> int:
        return sum(self.requeued.values())
