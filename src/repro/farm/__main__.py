"""dynfarm CLI: ``python -m repro.farm``.

Runs one farm scenario end to end and prints a one-line summary, or —
with ``--trace FILE`` — a dynscope trace of the run (Chrome Trace
Event JSON by default, ``--format jsonl`` for the flat log).
Deterministic: identical invocations produce byte-identical traces,
which is what the CI farm-smoke job's double-export ``cmp`` checks.

Examples::

    python -m repro.farm --policy rma --jobs 2000 --nodes 16
    python -m repro.farm --policy self --crash 3@2 --perturb 7
    python -m repro.farm --policy guided --trace farm.json
"""

from __future__ import annotations

import argparse
import sys


def _parse_crash(text: str):
    """``<node>@<cycle>`` -> a kill CycleFault."""
    from ..resilience import CycleFault

    node, _, cycle = text.partition("@")
    return CycleFault(cycle=int(cycle), node=int(node), action="kill")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="run one elastic task-farm scenario on the simulator",
    )
    parser.add_argument("--policy", default="self",
                        help="loop-scheduling policy (default: self)")
    parser.add_argument("--jobs", type=int, default=500,
                        help="number of jobs (default: 500)")
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (default: 8)")
    parser.add_argument("--chunk", type=int, default=8,
                        help="chunk size for self/rma dispatch (default: 8)")
    parser.add_argument("--skew", default="hot",
                        choices=("uniform", "linear", "hot"),
                        help="job-cost profile (default: hot)")
    parser.add_argument("--seed", type=int, default=0,
                        help="farm + cluster seed (default: 0)")
    parser.add_argument("--crash", action="append", default=[],
                        metavar="NODE@CYCLE",
                        help="kill the worker on NODE at CYCLE (repeatable)")
    parser.add_argument("--perturb", type=int, default=0,
                        help="schedule-perturbation seed (0 = off)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the communication sanitizer")
    parser.add_argument("--trace", metavar="FILE",
                        help="record a dynscope trace and write it to FILE")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        default="chrome", help="trace format (default: chrome)")
    args = parser.parse_args(argv)

    from ..config import ClusterSpec
    from ..resilience import FailureScript
    from ..simcluster import Cluster
    from .jobs import farm_digest, reference_results
    from .runtime import FarmSpec, run_farm

    spec = FarmSpec(
        n_jobs=args.jobs, policy=args.policy, chunk=args.chunk,
        skew=args.skew, seed=args.seed,
    )
    cluster = Cluster(ClusterSpec(
        n_nodes=args.nodes,
        seed=args.seed,
        name=f"farm-{args.policy}",
        sanitize=True if args.sanitize else None,
        observe=True if args.trace else None,
        perturb=args.perturb or None,
    ))
    failure = None
    if args.crash:
        failure = FailureScript(
            cycle_faults=[_parse_crash(c) for c in args.crash]
        )
    result = run_farm(cluster, spec, failure_script=failure)

    expected = farm_digest(reference_results(args.jobs, args.seed))
    ok = result.digest == expected and result.jobs_done == args.jobs
    print(
        f"farm policy={args.policy} jobs={result.jobs_done}/{args.jobs} "
        f"wall={result.wall_time:.6f}s jobs/sec={result.jobs_per_sec:.0f} "
        f"requeued={result.n_requeued} duplicates={result.duplicates} "
        f"dead={len(result.dead_workers)} "
        f"digest={'ok' if ok else 'MISMATCH'}"
    )
    if args.trace:
        from ..obs.export import chrome_json, jsonl_text

        text = (chrome_json(cluster.obs) if args.format == "chrome"
                else jsonl_text(cluster.obs))
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(cluster.obs.events)} events to {args.trace}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
