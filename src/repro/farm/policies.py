"""Loop-scheduling policies: how big the next dispatched chunk is.

The classic dynamic-loop-scheduling ladder (static chunking,
self-scheduling, guided self-scheduling, factoring), plus ``rma`` —
decentralized self-scheduling where workers claim fixed chunks off a
shared loop counter with one-sided ``fetch_and_op`` and the master's
process stays off the dispatch path entirely.

A policy only answers ``next_chunk(queued, active)``; the farm master
owns everything else (who is ready, parked, dead).  For ``rma`` the
same answer sizes the *drain phase* (requeued jobs after churn); the
counter phase uses ``FarmSpec.chunk`` directly at the workers.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["POLICIES", "make_policy", "ChunkPolicy"]

#: every shipped policy, in bench/campaign axis order
POLICIES = ("static", "self", "guided", "factoring", "rma")


class ChunkPolicy:
    """Base: fixed-size chunks (plain self-scheduling)."""

    name = "self"

    def __init__(self, n_jobs: int, n_workers: int, chunk: int):
        self.n_jobs = n_jobs
        self.n_workers = max(1, n_workers)
        self.chunk = max(1, chunk)

    def next_chunk(self, queued: int, active: int) -> int:
        return min(self.chunk, queued)


class StaticChunking(ChunkPolicy):
    """One ``n_jobs / n_workers`` block per worker, sized up front.
    Requeued work is re-served in the same block size."""

    name = "static"

    def __init__(self, n_jobs: int, n_workers: int, chunk: int):
        super().__init__(n_jobs, n_workers, chunk)
        self.block = max(1, -(-n_jobs // self.n_workers))

    def next_chunk(self, queued: int, active: int) -> int:
        return min(self.block, queued)


class GuidedSelfScheduling(ChunkPolicy):
    """Chunk = remaining / (2 * active workers), floored at 1: big
    chunks early (low dispatch overhead), small chunks late (balance)."""

    name = "guided"

    def next_chunk(self, queued: int, active: int) -> int:
        return min(queued, max(1, queued // (2 * max(1, active))))


class Factoring(ChunkPolicy):
    """Factoring: schedule rounds of half the remaining iterations,
    split evenly over the workers; chunk size stays fixed within a
    round (more robust than guided under high cost variance)."""

    name = "factoring"

    def __init__(self, n_jobs: int, n_workers: int, chunk: int):
        super().__init__(n_jobs, n_workers, chunk)
        self._round_left = 0
        self._round_chunk = 1

    def next_chunk(self, queued: int, active: int) -> int:
        if self._round_left <= 0:
            batch = max(1, -(-queued // 2))
            self._round_chunk = max(1, -(-batch // max(1, active)))
            self._round_left = batch
        c = min(self._round_chunk, queued)
        self._round_left -= c
        return c


class RmaDrain(ChunkPolicy):
    """Drain-phase sizing for the ``rma`` policy: the counter phase
    happens at the workers; only post-churn requeues flow through the
    master, in plain fixed chunks."""

    name = "rma"


_POLICY_CLASSES = {
    "static": StaticChunking,
    "self": ChunkPolicy,
    "guided": GuidedSelfScheduling,
    "factoring": Factoring,
    "rma": RmaDrain,
}


def make_policy(name: str, n_jobs: int, n_workers: int,
                chunk: int) -> ChunkPolicy:
    try:
        cls = _POLICY_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown farm policy {name!r}; shipped policies: "
            f"{', '.join(POLICIES)}"
        ) from None
    return cls(n_jobs, n_workers, chunk)
