"""Fault-injection scripts (the failure-side mirror of
:class:`~repro.simcluster.workload.LoadScript`).

A :class:`FailureScript` is an ordered set of time- or cycle-triggered
faults applied to a cluster.  Five fault kinds are supported:

``crash``
    Fail-stop node failure, recoverable when
    :class:`~repro.config.ResilienceSpec` is enabled.  The node is
    marked on the :class:`~repro.resilience.board.FailureBoard`, its
    ``dmpi_ps`` daemon stops publishing (so the heartbeat goes stale —
    the detectable signature), its competing processes stop, and the
    Dyn-MPI runtime excises the node at the next phase-cycle boundary,
    replaying its rows from the buddy checkpoint.  The fail-stop unit
    is the phase cycle: a crash injected mid-cycle takes effect at the
    boundary, which is what lets the survivors recover in lockstep
    without a full ULFM-style communicator-shrink protocol.

``kill`` / ``inject``
    Hard, *immediate* process death (``Simulator.kill`` /
    ``Simulator.inject``) with no recovery guarantee: survivors blocked
    on the dead rank get :class:`~repro.errors.RankFailedError` from
    the comm layer's dead-endpoint poisoning instead of hanging.

``slowdown``
    A transient load burst: ``count`` competing processes appear on the
    node and (optionally) disappear ``duration`` seconds later.

``partition`` / ``heal``
    Cut the network between a node island and the rest of the cluster;
    in-flight and new messages across the cut are *delayed until heal*,
    never dropped (a healed partition delivers everything, so protocols
    above need no retransmission logic).

All direct ``Simulator.kill``/``inject`` use in the library lives in
this package — elsewhere in ``src/`` the dynsan lint rule DYN301 flags
bare calls, because ad-hoc fault injection bypasses the board and the
runtime's crash accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Iterable, Optional

from ..errors import ConfigError, ReproError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcluster.cluster import Cluster

__all__ = [
    "TimeFault",
    "CycleFault",
    "FailureScript",
    "InjectedFault",
    "node_crash",
    "terminate_rank",
]

_ACTIONS = ("crash", "kill", "inject", "slowdown", "partition", "heal")


class InjectedFault(ReproError):
    """The exception delivered into a process by an ``inject`` fault."""


def _validate(action: str, count: int, duration: float, peers: tuple) -> None:
    if action not in _ACTIONS:
        raise ConfigError(f"bad fault action {action!r} (one of {_ACTIONS})")
    if count < 1:
        raise ConfigError("count must be >= 1")
    if duration < 0:
        raise ConfigError("duration must be >= 0")
    if action in ("partition", "heal") and not all(
        isinstance(p, int) and p >= 0 for p in peers
    ):
        raise ConfigError("peers must be non-negative node ids")


@dataclass(frozen=True)
class TimeFault:
    """Apply ``action`` to ``node`` at absolute simulated ``time``.

    ``count``/``duration`` parameterize ``slowdown``; ``peers`` extends
    the isolated island for ``partition`` (the island is ``{node} |
    set(peers)``).
    """

    time: float
    node: int
    action: str
    count: int = 1
    duration: float = 0.0
    peers: tuple = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("fault time must be >= 0")
        _validate(self.action, self.count, self.duration, self.peers)


@dataclass(frozen=True)
class CycleFault:
    """Apply ``action`` to ``node`` when the application begins phase
    cycle ``cycle`` (0-based)."""

    cycle: int
    node: int
    action: str
    count: int = 1
    duration: float = 0.0
    peers: tuple = ()

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigError("fault cycle must be >= 0")
        _validate(self.action, self.count, self.duration, self.peers)


class FailureScript:
    """An ordered set of fault triggers applied to a cluster."""

    def __init__(
        self,
        time_faults: Iterable[TimeFault] = (),
        cycle_faults: Iterable[CycleFault] = (),
    ):
        self.time_faults = sorted(time_faults, key=lambda f: f.time)
        self.cycle_faults = sorted(cycle_faults, key=lambda f: f.cycle)
        self._fired_cycles: set[int] = set()
        self._slow_handles: dict[int, list[str]] = {}
        self._cluster: Optional["Cluster"] = None

    # -- lifecycle -----------------------------------------------------
    def install(self, cluster: "Cluster") -> None:
        """Bind to a cluster and schedule the time-based faults."""
        self._cluster = cluster
        for fault in self.time_faults:
            cluster.sim.schedule(
                fault.time - cluster.sim.now,
                lambda fault=fault: self._apply(fault),
            )

    def on_cycle(self, cycle: int) -> None:
        """Called by the runtime at each phase-cycle start."""
        if cycle in self._fired_cycles:
            return
        self._fired_cycles.add(cycle)
        for fault in self.cycle_faults:
            if fault.cycle == cycle:
                self._apply(fault)

    # -- internals -----------------------------------------------------
    def _apply(self, fault) -> None:
        cluster = self._cluster
        if cluster is None:
            raise ConfigError("FailureScript not installed on a cluster")
        apply = getattr(self, f"_apply_{fault.action}")
        apply(cluster, fault)
        cluster.recorder.mark(
            cluster.sim.now, f"fault:{fault.action}@n{fault.node}"
        )

    def _apply_crash(self, cluster: "Cluster", fault) -> None:
        cluster.failure_board.mark_crashed(fault.node, cluster.sim.now)
        # a dead node runs nothing: its competing load disappears with it
        node = cluster.nodes[fault.node]
        for handle in list(node.background):
            node.stop_competing(handle)

    def _apply_kill(self, cluster: "Cluster", fault) -> None:
        cluster.failure_board.mark_killed(fault.node, cluster.sim.now)
        for proc in self._app_procs(cluster, fault.node):
            cluster.sim.kill(proc)

    def _apply_inject(self, cluster: "Cluster", fault) -> None:
        cluster.failure_board.mark_killed(fault.node, cluster.sim.now)
        for proc in self._app_procs(cluster, fault.node):
            cluster.sim.inject(
                proc, InjectedFault(f"fault injected into {proc.name}")
            )

    def _apply_slowdown(self, cluster: "Cluster", fault) -> None:
        node = cluster.nodes[fault.node]
        handles = self._slow_handles.setdefault(fault.node, [])
        started = [node.start_competing() for _ in range(fault.count)]
        handles.extend(started)
        if fault.duration > 0:
            def stop(started=started, node=node, handles=handles) -> None:
                for h in started:
                    if h in handles:
                        handles.remove(h)
                        node.stop_competing(h)
            cluster.sim.schedule(fault.duration, stop)

    def _apply_partition(self, cluster: "Cluster", fault) -> None:
        cluster.network.partition({fault.node, *fault.peers})

    def _apply_heal(self, cluster: "Cluster", fault) -> None:
        cluster.network.heal()

    @staticmethod
    def _app_procs(cluster: "Cluster", node_id: int) -> list:
        procs = cluster.app_procs.get(node_id, [])
        if not procs:
            raise SimulationError(
                f"fault targets node {node_id} but no application process "
                f"is registered there (launch the job first)"
            )
        return procs


def node_crash(node: int, *, at_cycle: Optional[int] = None,
               at_time: Optional[float] = None) -> FailureScript:
    """The canonical recoverable-failure scenario: one node crashes at
    a given cycle (or absolute time)."""
    if (at_cycle is None) == (at_time is None):
        raise ConfigError("give exactly one of at_cycle / at_time")
    if at_cycle is not None:
        return FailureScript(cycle_faults=[
            CycleFault(cycle=at_cycle, node=node, action="crash")
        ])
    return FailureScript(time_faults=[
        TimeFault(time=at_time, node=node, action="crash")
    ])


def terminate_rank(ctx, reason: str = "node crash") -> Generator:
    """Fail-stop self-termination of a Dyn-MPI rank (the victim side of
    the crash protocol in :meth:`repro.core.runtime.DynMPI.begin_cycle`).

    Marks the context crashed so the launcher can tell this expected
    death from an application bug, schedules an uncatchable kill, and
    parks the generator on a signal that never fires — the kill closes
    the generator right there, so no further application code runs.
    """
    from ..simcluster.syscalls import Wait

    ctx.crashed = True
    ctx.active = False
    sim = ctx.job.cluster.sim
    sim.kill(ctx.proc)
    yield Wait(sim.signal(f"crashed:rank{ctx.world_rank}:{reason}"))
    raise SimulationError(
        f"rank {ctx.world_rank} survived termination ({reason})"
    )  # pragma: no cover - the kill always lands first
