"""In-memory neighbor checkpointing (the data side of crash recovery).

The paper's Section 4.1 projection layout makes a checkpoint cheap to
express: a rank's state *is* its owned extended rows, so a checkpoint
is one :meth:`pack` per registered array — the same serialization the
redistribution path uses — plus the owning bounds and cycle number.

Every ``checkpoint_interval`` cycles each active rank exchanges its
snapshot with its *ring buddies*: relative rank ``r`` sends to ``r+1,
..., r+replication`` (mod group size) and symmetrically receives from
``r-1, ..., r-replication``.  Replicas live in the buddies' memory
(:class:`CheckpointStore`), not on disk — surviving ``replication``
simultaneous failures of adjacent ranks, which is the classic
diskless-checkpointing trade-off.

On a crash, the surviving buddy *replays* the dead rank's rows from
its stored snapshot: it unpacks them into its own arrays and stands in
as the old owner during the recovery redistribution (see
``DynMPI._recover_from_crash``), replacing the send-out phase the dead
rank can no longer perform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Mapping, Optional, Sequence

from .._intervals import IntervalSet  # leaf import: keeps repro.core acyclic
from ..errors import CheckpointLostError

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ring_buddies",
    "holder_for",
    "snapshot",
    "checkpoint_exchange",
]

#: wire overhead of a checkpoint message (headers + bounds + cycle)
_HEADER_BYTES = 64


@dataclass
class Checkpoint:
    """One rank's serialized state at a phase-cycle boundary."""

    owner_world: int
    cycle: int
    bounds: Optional[tuple[int, int]]
    #: array name -> (row IntervalSet, packed payload); payload is None
    #: for virtual arrays (sizes were still charged on the wire)
    arrays: dict = field(default_factory=dict)
    nbytes: int = _HEADER_BYTES

    def owned_rows(self) -> IntervalSet:
        """The owner's row interval (compares equal to the equivalent
        plain set)."""
        return IntervalSet.from_bounds(self.bounds)

    def n_rows(self) -> int:
        return len(self.owned_rows())

    def restore(self, arrays: Mapping[str, object]) -> int:
        """Unpack every checkpointed row into ``arrays`` (the holder's
        own array objects); returns the number of row-installs."""
        installed = 0
        for name, (rows, payload) in self.arrays.items():
            arrays[name].unpack(rows, payload)
            installed += len(rows)
        return installed


class CheckpointStore:
    """The replicas one rank holds for its ring neighbors (newest only
    per owner — neighbor checkpointing keeps a single generation)."""

    def __init__(self) -> None:
        self._by_owner: dict[int, Checkpoint] = {}

    def put(self, ckpt: Checkpoint) -> None:
        self._by_owner[ckpt.owner_world] = ckpt

    def get(self, owner_world: int) -> Optional[Checkpoint]:
        return self._by_owner.get(owner_world)

    def discard(self, owner_world: int) -> None:
        self._by_owner.pop(owner_world, None)

    def owners(self) -> list[int]:
        return sorted(self._by_owner)

    @property
    def held_nbytes(self) -> int:
        return sum(c.nbytes for c in self._by_owner.values())


def ring_buddies(rel: int, size: int, replication: int) -> list[int]:
    """The relative ranks holding replicas of ``rel``'s checkpoint."""
    return [(rel + k) % size for k in range(1, min(replication, size - 1) + 1)]


def holder_for(dead_rel: int, size: int, replication: int,
               alive_rels: set[int]) -> int:
    """The surviving buddy that replays ``dead_rel``'s checkpoint: the
    nearest ring buddy still alive.  Raises
    :class:`~repro.errors.CheckpointLostError` when every replica died
    with its holder."""
    for buddy in ring_buddies(dead_rel, size, replication):
        if buddy in alive_rels:
            return buddy
    raise CheckpointLostError(
        f"rank rel={dead_rel} and all {replication} of its checkpoint "
        f"buddies failed in the same window; raise "
        f"ResilienceSpec.replication to tolerate this"
    )


def snapshot(arrays: Mapping[str, object],
             bounds: Optional[tuple[int, int]],
             owner_world: int, cycle: int) -> Checkpoint:
    """Serialize ``owner_world``'s owned rows of every registered array."""
    ckpt = Checkpoint(owner_world=owner_world, cycle=cycle, bounds=bounds)
    if bounds is None:
        return ckpt
    s, e = bounds
    for name, arr in arrays.items():
        # clip the owned range against the array height up front: one
        # interval op, and the pack below moves whole slabs per array
        rows = IntervalSet.span(s, min(e, arr.n_rows - 1))
        if not rows:
            continue
        payload, nb = arr.pack(rows)
        ckpt.arrays[name] = (rows, payload)
        ckpt.nbytes += nb
    return ckpt


def checkpoint_exchange(ep, group, store: CheckpointStore,
                        ckpt: Checkpoint, replication: int,
                        rows_getter=None) -> Generator:
    """Exchange checkpoints around the ring (a collective: every member
    of ``group`` must enter, in lockstep, with its own snapshot).

    ``rel r`` sends its snapshot to ``r+k`` and receives ``r-k``'s, for
    ``k = 1..replication``; each incoming snapshot replaces the stored
    replica for that owner.  Returns the number of replicas received.
    """
    me = group.rel(ep.rank)
    n = group.size
    obs = getattr(ep.comm, "obs", None)
    if obs is not None:
        reg = obs.rank_registry(ep.rank)
        reg.count("ckpt.snapshots", 1)
        reg.count("ckpt.bytes", ckpt.nbytes)
    if n == 1:
        store.put(ckpt)  # degenerate ring: self-replica
        return 1
    received = 0
    for k in range(1, min(replication, n - 1) + 1):
        dst = group.world((me + k) % n)
        src = group.world((me - k) % n)
        tag = group.next_tag(me)
        incoming, _ = yield from ep.sendrecv(
            dst, tag, ckpt, src, tag, nbytes=ckpt.nbytes,
        )
        store.put(incoming)
        received += 1
    if obs is not None:
        reg.count("ckpt.replicas_received", received)
        reg.gauge("ckpt.held_bytes", store.held_nbytes)
    return received
