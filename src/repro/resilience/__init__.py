"""repro.resilience — fault injection, checkpointing, crash recovery.

The subsystem has three cooperating parts (docs/RESILIENCE.md):

* **Failure injection** (:mod:`.failures`, :mod:`.board`): a
  :class:`FailureScript` mirrors the workload
  :class:`~repro.simcluster.workload.LoadScript`, triggering node
  crashes, hard process kills, exception injection, transient
  slowdowns, and network partitions at simulated times or phase-cycle
  boundaries.  Ground-truth failure state lives on the cluster's
  :class:`FailureBoard`.

* **In-memory neighbor checkpointing** (:mod:`.checkpoint`): each rank
  periodically packs its owned extended rows (the same serialization
  redistribution uses) and ships the snapshot to its ring buddies.

* **Crash recovery** (in :class:`repro.core.runtime.DynMPI`): a stale
  ``dmpi_ps`` heartbeat makes relative-rank-0 suspect the node; the
  suspicion rides the per-cycle control allgather so every rank sees
  one consistent verdict; survivors excise the dead rank like an
  involuntary Section 4.4 removal, with the buddy replaying the lost
  rows from its stored checkpoint.
"""

from .board import FailureBoard
from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    checkpoint_exchange,
    holder_for,
    ring_buddies,
    snapshot,
)
from .failures import (
    CycleFault,
    FailureScript,
    InjectedFault,
    TimeFault,
    node_crash,
    terminate_rank,
)

__all__ = [
    "FailureBoard",
    "Checkpoint",
    "CheckpointStore",
    "checkpoint_exchange",
    "holder_for",
    "ring_buddies",
    "snapshot",
    "CycleFault",
    "FailureScript",
    "InjectedFault",
    "TimeFault",
    "node_crash",
    "terminate_rank",
]
