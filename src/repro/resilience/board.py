"""The failure board: ground-truth node-failure state.

A :class:`FailureBoard` is the simulation's record of which nodes have
failed and how.  It is *substrate* state — the analogue of the power
light on a rack — written only by fault-injection events
(:class:`~repro.resilience.failures.FailureScript`) and read by:

* the ``dmpi_ps`` daemons, which stop sampling on a failed node (this
  is what makes failures *detectable*: the heartbeat goes stale);
* the Dyn-MPI runtime's crash protocol, where the authoritative
  relative-rank-0 folds its local reading into the per-cycle control
  allgather so every rank acts on one consistent view;
* the job launcher, to tell an expected fault-induced death from an
  application bug when the run ends.

The board deliberately imports nothing, so any layer may depend on it.
"""

from __future__ import annotations

__all__ = ["FailureBoard"]


class FailureBoard:
    """Per-node failure flags for one cluster."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        #: node_id -> sim time of the crash mark ("crash" faults:
        #: fail-stop at the next phase-cycle boundary)
        self._crashed: dict[int, float] = {}
        #: node_id -> sim time of a hard process kill ("kill"/"inject"
        #: faults: immediate, no recovery guarantee)
        self._killed: dict[int, float] = {}

    # -- writes (fault injection only) ---------------------------------
    def mark_crashed(self, node_id: int, time: float) -> None:
        self._crashed.setdefault(node_id, time)

    def mark_killed(self, node_id: int, time: float) -> None:
        self._killed.setdefault(node_id, time)

    # -- reads ---------------------------------------------------------
    def crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def killed(self, node_id: int) -> bool:
        return node_id in self._killed

    def failed(self, node_id: int) -> bool:
        """Any kind of injected failure (crash or hard kill)."""
        return node_id in self._crashed or node_id in self._killed

    def crash_time(self, node_id: int) -> float:
        """Sim time the node's crash was injected (KeyError if alive)."""
        if node_id in self._crashed:
            return self._crashed[node_id]
        return self._killed[node_id]

    def failed_nodes(self) -> list[int]:
        return sorted(set(self._crashed) | set(self._killed))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FailureBoard failed={self.failed_nodes()}>"
