"""Row-interval algebra: the data plane's unit of account.

Every distribution this runtime manipulates is made of contiguous row
ranges — loop bounds are ``(lo, hi)`` blocks, DRSDs extend them by
constant halo offsets, and checkpoints snapshot owned blocks — so the
sets the data plane juggles (needed rows, owned rows, transfer rows)
are unions of a handful of intervals, never arbitrary scatters.
Sudarsan & Ribbens ("Efficient Multidimensional Data Redistribution
for Resizable Parallel Computations", PAPERS.md) make the same
observation: redistribution planning is processor-count work, not
element-count work, once sets are represented as intervals.

:class:`IntervalSet` is that representation: an immutable, canonical
(sorted, disjoint, maximally merged) tuple of inclusive ``(lo, hi)``
spans with union / intersection / difference / clip in
``O(spans)`` merge passes.  A plan step like
``(needed[dst] - dst_old) & my_old`` therefore costs a few span
comparisons where the old set-based plane paid one Python-level
hash-set operation per row.

Stride-aware path: a ``step > 1`` DRSD touches an arithmetic
progression, which the canonical form represents exactly as
single-row spans (:meth:`IntervalSet.from_strided` builds them without
materializing a Python set).  Unit-stride accesses — every access the
paper's applications make — stay O(1) single spans, which is what the
complexity claim rests on; strided accesses degrade gracefully to
O(rows/step) spans while remaining row-for-row exact.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, Optional, Tuple

__all__ = ["IntervalSet", "Span"]

Span = Tuple[int, int]  # inclusive (lo, hi)


def _normalize(spans: Iterable[Span]) -> tuple:
    """Sort, drop empties, and merge overlapping/adjacent spans."""
    spans = sorted((int(lo), int(hi)) for lo, hi in spans if lo <= hi)
    if not spans:
        return ()
    merged = [spans[0]]
    for lo, hi in spans[1:]:
        mlo, mhi = merged[-1]
        if lo <= mhi + 1:  # overlap or adjacency: coalesce
            if hi > mhi:
                merged[-1] = (mlo, hi)
        else:
            merged.append((lo, hi))
    return tuple(merged)


class IntervalSet:
    """An immutable set of integers stored as sorted disjoint inclusive
    ``(lo, hi)`` spans.

    Supports the set operators the redistribution plane needs
    (``|``, ``&``, ``-``), containment, iteration in ascending order,
    and equality against plain ``set``/``frozenset`` objects (so
    interval-based results compare directly against set-based
    reference oracles in tests).
    """

    __slots__ = ("_spans", "_count", "_los")

    def __init__(self, spans: Iterable[Span] = ()):
        object.__setattr__(self, "_spans", _normalize(spans))
        object.__setattr__(
            self, "_count", sum(hi - lo + 1 for lo, hi in self._spans)
        )
        object.__setattr__(self, "_los", [lo for lo, _ in self._spans])

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("IntervalSet is immutable")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    _EMPTY: Optional["IntervalSet"] = None

    @classmethod
    def empty(cls) -> "IntervalSet":
        if cls._EMPTY is None:
            cls._EMPTY = cls()
        return cls._EMPTY

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalSet":
        """The single inclusive span ``[lo, hi]`` (empty when hi < lo)."""
        return cls(((lo, hi),))

    @classmethod
    def from_rows(cls, rows: Iterable[int]) -> "IntervalSet":
        """Coalesce an arbitrary iterable of row ids into spans."""
        rows = sorted(set(int(g) for g in rows))
        if not rows:
            return cls.empty()
        spans = []
        lo = prev = rows[0]
        for g in rows[1:]:
            if g == prev + 1:
                prev = g
                continue
            spans.append((lo, prev))
            lo = prev = g
        spans.append((lo, prev))
        return cls(spans)

    @classmethod
    def from_range(cls, r: range) -> "IntervalSet":
        if len(r) == 0:
            return cls.empty()
        if r.step == 1:
            return cls.span(r.start, r.stop - 1)
        if r.step == -1:
            return cls.span(r.stop + 1, r.start)
        return cls(tuple((g, g) for g in r))

    @classmethod
    def from_strided(cls, lo: int, hi: int, step: int) -> "IntervalSet":
        """The arithmetic progression ``lo, lo+step, ... <= hi`` — the
        stride-aware path for ``step > 1`` regular sections."""
        if step == 1:
            return cls.span(lo, hi)
        return cls.from_range(range(lo, hi + 1, step))

    @classmethod
    def coerce(cls, rows) -> "IntervalSet":
        """Accept an :class:`IntervalSet`, a ``range``, or any iterable
        of row ids."""
        if isinstance(rows, cls):
            return rows
        if isinstance(rows, range):
            return cls.from_range(rows)
        return cls.from_rows(rows)

    @classmethod
    def from_bounds(cls, b) -> "IntervalSet":
        """Interpret one distribution-bounds entry: ``None`` (no rows),
        an inclusive ``(lo, hi)`` pair, an explicit row set (crash
        recovery hands the checkpoint holder non-contiguous ownership),
        or an :class:`IntervalSet`."""
        if b is None:
            return cls.empty()
        if isinstance(b, cls):
            return b
        if isinstance(b, (set, frozenset)):
            return cls.from_rows(b)
        lo, hi = b
        return cls.span(lo, hi)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def spans(self) -> tuple:
        return self._spans

    @property
    def n_spans(self) -> int:
        return len(self._spans)

    @property
    def min_row(self) -> int:
        if not self._spans:
            raise ValueError("empty IntervalSet has no min_row")
        return self._spans[0][0]

    @property
    def max_row(self) -> int:
        if not self._spans:
            raise ValueError("empty IntervalSet has no max_row")
        return self._spans[-1][1]

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __contains__(self, g: int) -> bool:
        i = bisect_right(self._los, g) - 1
        return i >= 0 and g <= self._spans[i][1]

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self._spans:
            yield from range(lo, hi + 1)

    def to_rows(self) -> list:
        return list(self)

    def __eq__(self, other) -> bool:
        if isinstance(other, IntervalSet):
            return self._spans == other._spans
        if isinstance(other, (set, frozenset)):
            return self._count == len(other) and all(g in self for g in other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._spans)

    def __repr__(self) -> str:  # pragma: no cover
        body = ", ".join(
            f"{lo}" if lo == hi else f"{lo}..{hi}" for lo, hi in self._spans
        )
        return f"IntervalSet({{{body}}})"

    # ------------------------------------------------------------------
    # algebra (merge passes, O(spans of both operands))
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        if not other:
            return self
        if not self:
            return other
        return IntervalSet(self._spans + other._spans)

    __or__ = union

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        if not self or not other:
            return IntervalSet.empty()
        out = []
        a, b = self._spans, other._spans
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    __and__ = intersect

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        if not self or not other:
            return self
        out = []
        j = 0
        b = other._spans
        for lo, hi in self._spans:
            cur = lo
            while j < len(b) and b[j][1] < cur:
                j += 1
            k = j  # j only advances past spans entirely below this span
            while k < len(b) and b[k][0] <= hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, blo - 1))
                cur = max(cur, bhi + 1)
                if cur > hi:
                    break
                k += 1
            if cur <= hi:
                out.append((cur, hi))
        return IntervalSet(out)

    __sub__ = subtract

    def clip(self, lo: int, hi: int) -> "IntervalSet":
        """Rows of this set inside the inclusive window ``[lo, hi]``."""
        if not self._spans or hi < lo:
            return IntervalSet.empty()
        if lo <= self._spans[0][0] and self._spans[-1][1] <= hi:
            return self
        return self.intersect(IntervalSet.span(lo, hi))

    def isdisjoint(self, other: "IntervalSet") -> bool:
        return not self.intersect(other)

    def issuperset(self, other: "IntervalSet") -> bool:
        return not other.subtract(self)
