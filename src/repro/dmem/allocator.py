"""Allocation accounting and memory-operation cost model.

The paper's Figure 3 argument is quantitative: contiguous allocation
forces a *complete reallocation* (alloc new block + copy every
surviving byte + free) whenever a node's row range changes, while the
2-d projection method touches only the top-level pointer vector and
the rows actually gained/lost.  Every managed array records its
traffic in an :class:`AllocStats`, and :class:`MemCostModel` converts
that traffic into CPU work units so redistribution time in the
simulation reflects the allocation scheme in use — including the
paging penalty ("excessive disk accesses") when a reallocation's
footprint exceeds node memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationError

__all__ = ["AllocStats", "MemCostModel"]


@dataclass
class AllocStats:
    n_allocs: int = 0
    n_frees: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0
    bytes_copied: int = 0
    pointer_moves: int = 0  # top-level vector entries rewritten

    def record_alloc(self, nbytes: int) -> None:
        self.record_allocs(1, nbytes)

    def record_allocs(self, count: int, total_nbytes: int) -> None:
        """Record ``count`` allocations totalling ``total_nbytes`` in
        one bookkeeping step.  The slab-backed layouts account per
        extended row (Figure 3 charges one malloc per row) while doing
        O(spans) Python work."""
        if total_nbytes < 0:
            raise AllocationError(f"negative allocation: {total_nbytes}")
        if count < 0:
            raise AllocationError(f"negative allocation count: {count}")
        self.n_allocs += count
        self.bytes_allocated += total_nbytes

    def record_free(self, nbytes: int) -> None:
        self.record_frees(1, nbytes)

    def record_frees(self, count: int, total_nbytes: int) -> None:
        """Bulk counterpart of :meth:`record_free`."""
        if total_nbytes < 0:
            raise AllocationError(f"negative free: {total_nbytes}")
        if count < 0:
            raise AllocationError(f"negative free count: {count}")
        self.n_frees += count
        self.bytes_freed += total_nbytes

    def record_copy(self, nbytes: int) -> None:
        if nbytes < 0:
            raise AllocationError(f"negative copy: {nbytes}")
        self.bytes_copied += nbytes

    def record_pointer_moves(self, count: int) -> None:
        if count < 0:
            raise AllocationError(f"negative pointer move count: {count}")
        self.pointer_moves += count

    def merge(self, other: "AllocStats") -> "AllocStats":
        self.n_allocs += other.n_allocs
        self.n_frees += other.n_frees
        self.bytes_allocated += other.bytes_allocated
        self.bytes_freed += other.bytes_freed
        self.bytes_copied += other.bytes_copied
        self.pointer_moves += other.pointer_moves
        return self

    def snapshot(self) -> "AllocStats":
        return AllocStats(
            self.n_allocs, self.n_frees, self.bytes_allocated,
            self.bytes_freed, self.bytes_copied, self.pointer_moves,
        )

    def delta(self, earlier: "AllocStats") -> "AllocStats":
        return AllocStats(
            self.n_allocs - earlier.n_allocs,
            self.n_frees - earlier.n_frees,
            self.bytes_allocated - earlier.bytes_allocated,
            self.bytes_freed - earlier.bytes_freed,
            self.bytes_copied - earlier.bytes_copied,
            self.pointer_moves - earlier.pointer_moves,
        )


@dataclass(frozen=True)
class MemCostModel:
    """Converts allocation traffic to CPU work units.

    Defaults are calibrated against the cluster node speed convention
    (~1e8 work units/second ≈ one 550 MHz P-III): copying a byte costs
    about one work unit (~10 ns), a malloc/free call costs ~1 µs, and
    touching a top-level pointer costs one word copy.  When the bytes
    allocated by one operation exceed ``paging_threshold`` of node
    memory, every byte beyond it costs ``paging_factor`` more — the
    disk-access blow-up the paper observed for contiguous reallocation
    of large arrays.
    """

    work_per_byte_copied: float = 1.0
    work_per_byte_alloced: float = 0.1
    work_per_call: float = 100.0
    work_per_pointer: float = 1.0
    paging_threshold: float = 0.5
    paging_factor: float = 40.0

    def work(self, stats: AllocStats, memory_bytes: int = 0) -> float:
        """Work units for the traffic in ``stats`` on a node with
        ``memory_bytes`` of RAM (0 = never page)."""
        w = (
            stats.bytes_copied * self.work_per_byte_copied
            + stats.bytes_allocated * self.work_per_byte_alloced
            + (stats.n_allocs + stats.n_frees) * self.work_per_call
            + stats.pointer_moves * self.work_per_pointer
        )
        if memory_bytes > 0:
            limit = self.paging_threshold * memory_bytes
            footprint = stats.bytes_allocated + stats.bytes_copied
            if footprint > limit:
                w += (footprint - limit) * self.paging_factor
        return w
