"""Sparse matrices in the paper's vector-of-lists format (Section 4.1.2).

Each local row is a list of ``(column id, value)`` pairs — data *and*
metadata together, which is what lets Dyn-MPI redistribute sparse
matrices automatically.  The layout mirrors the dense 2-d projection:
the extended row is a linked list instead of a vector, so rows move
between nodes whole, get *packed into a vector* for the wire, and are
*unpacked back into a list* on receipt (paper Section 4.4).

For user convenience the paper provides an iterator API (get next
element / set next element / advance row / move to first element);
:class:`SparseIterator` reproduces it.  The paper also notes the
efficiency remedy for list traversal — copy into a custom format
between redistributions; :meth:`SparseMatrix.csr_rows` provides that
conversion (a CSR snapshot of a row range) and the CG application uses
it exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .._intervals import IntervalSet
from ..errors import AllocationError
from .allocator import AllocStats

__all__ = ["SparseMatrix", "SparseIterator"]

#: accounting bytes per stored element: 8B value + 4B column id +
#: list-node overhead (next pointer + allocator slack)
ELEM_STORE_BYTES = 8 + 4 + 20
#: wire bytes per element: value + column id only
ELEM_WIRE_BYTES = 8 + 4
#: wire bytes per packed row header (row id + count)
ROW_WIRE_BYTES = 8


#: shared read-only stand-in for a held row with no elements yet; rows
#: are materialized as real lists only when they gain an element
_EMPTY_ROW: list = []


class SparseMatrix:
    """A distributed sparse matrix, vector of lists of (col, val).

    Row *membership* is interval-indexed (an :class:`IntervalSet` of
    held global rows), so hold/drop/retarget cost O(intervals); the
    per-row element lists — the layout the paper's iterator API and
    automatic redistribution rely on — are materialized lazily, only
    for rows that actually carry elements."""

    def __init__(self, name: str, shape: tuple[int, int], dtype=np.float64):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows <= 0 or n_cols <= 0:
            raise AllocationError(f"invalid sparse shape {shape}")
        self.name = name
        self.shape = (n_rows, n_cols)
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.dtype = np.dtype(dtype)
        self.stats = AllocStats()
        self._held = IntervalSet.empty()
        #: materialized rows only (held rows absent here are empty)
        self._rows: dict[int, list[list]] = {}  # g -> [[col, val], ...]
        self._csr_version = 0

    # ------------------------------------------------------------------
    # row lifecycle
    # ------------------------------------------------------------------
    def _check_row(self, g: int) -> None:
        if not (0 <= g < self.n_rows):
            raise AllocationError(f"{self.name}: row {g} out of range [0,{self.n_rows})")

    def _check_col(self, c: int) -> None:
        if not (0 <= c < self.n_cols):
            raise AllocationError(f"{self.name}: column {c} out of range [0,{self.n_cols})")

    def hold(self, rows: Iterable[int]) -> int:
        ivl = IntervalSet.coerce(rows)
        if ivl:
            if ivl.min_row < 0:
                self._check_row(ivl.min_row)
            if ivl.max_row >= self.n_rows:
                self._check_row(ivl.max_row)
        new = ivl - self._held
        if not new:
            return 0
        self._held = self._held | new
        self.stats.record_allocs(len(new), 0)
        self._csr_version += 1
        return len(new)

    def drop(self, rows: Iterable[int]) -> int:
        gone = IntervalSet.coerce(rows) & self._held
        if not gone:
            return 0
        freed = 0
        # element bytes live only in materialized rows; visit whichever
        # side is smaller
        if len(self._rows) <= len(gone):
            hit = [g for g in self._rows if g in gone]
        else:
            hit = [g for g in gone if g in self._rows]
        for g in hit:
            freed += len(self._rows.pop(g)) * ELEM_STORE_BYTES
        self._held = self._held - gone
        self.stats.record_frees(len(gone), freed)
        self._csr_version += 1
        return len(gone)

    def holds(self, g: int) -> bool:
        return g in self._held

    def held_rows(self) -> list[int]:
        return self._held.to_rows()

    def held_intervals(self) -> IntervalSet:
        return self._held

    @property
    def n_held(self) -> int:
        return len(self._held)

    @property
    def held_nbytes(self) -> int:
        return sum(len(r) for r in self._rows.values()) * ELEM_STORE_BYTES

    def row_nnz(self, g: int) -> int:
        return len(self._peek(g))

    def row_wire_nbytes(self, g: int) -> int:
        return ROW_WIRE_BYTES + self.row_nnz(g) * ELEM_WIRE_BYTES

    def _peek(self, g: int) -> list[list]:
        """Read-only view of row ``g``'s element list (the shared empty
        list for held-but-empty rows — never mutate the result)."""
        self._check_row(g)
        if g not in self._held:
            raise AllocationError(f"{self.name}: row {g} is not held locally")
        return self._rows.get(g, _EMPTY_ROW)

    def _row(self, g: int) -> list[list]:
        """Mutable element list of row ``g``, materializing it."""
        self._check_row(g)
        if g not in self._held:
            raise AllocationError(f"{self.name}: row {g} is not held locally")
        return self._rows.setdefault(g, [])

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, g: int, col: int) -> float:
        self._check_col(col)
        for c, v in self._peek(g):
            if c == col:
                return v
        return 0.0

    def set(self, g: int, col: int, value) -> None:
        """Set element (g, col); appends if absent, removes on 0.0."""
        self._check_col(col)
        row = self._peek(g)
        for item in row:
            if item[0] == col:
                if value == 0.0:
                    row.remove(item)
                    self.stats.record_free(ELEM_STORE_BYTES)
                else:
                    item[1] = value
                self._csr_version += 1
                return
        if value != 0.0:
            self._row(g).append([col, value])
            self.stats.record_alloc(ELEM_STORE_BYTES)
            self._csr_version += 1

    def set_row_items(self, g: int, cols: Sequence[int], vals: Sequence[float]) -> None:
        """Replace row ``g`` wholesale (bulk build)."""
        if len(cols) != len(vals):
            raise AllocationError("cols/vals length mismatch")
        for c in cols:
            self._check_col(int(c))
        row = self._row(g)
        self.stats.record_free(len(row) * ELEM_STORE_BYTES)
        row.clear()
        for c, v in zip(cols, vals):
            row.append([int(c), float(v)])
        self.stats.record_alloc(len(row) * ELEM_STORE_BYTES)
        self._csr_version += 1

    def row_items(self, g: int) -> list[tuple[int, float]]:
        return [(c, v) for c, v in self._peek(g)]

    def iterator(self, g: Optional[int] = None) -> "SparseIterator":
        """The paper's row iterator; starts at row ``g`` (default:
        first held row)."""
        return SparseIterator(self, g)

    # ------------------------------------------------------------------
    # redistribution support
    # ------------------------------------------------------------------
    def pack(self, rows: Sequence[int]):
        """Pack ``rows`` into vectors for a single message.

        Returns ``(payload, nbytes)`` where payload is a dict of numpy
        arrays: ``row_ptr`` (len k+1), ``cols``, ``vals`` — the
        list-to-vector conversion of paper Section 4.4.
        """
        rows = list(rows)
        k = len(rows)
        row_ptr = np.zeros(k + 1, dtype=np.int64)
        lists = [self._peek(g) for g in rows]
        total = 0
        for i, row in enumerate(lists):
            total += len(row)
            row_ptr[i + 1] = total
        cols = np.empty(total, dtype=np.int32)
        vals = np.empty(total, dtype=self.dtype)
        pos = 0
        for row in lists:
            for c, v in row:
                cols[pos] = c
                vals[pos] = v
                pos += 1
        nbytes = k * ROW_WIRE_BYTES + total * ELEM_WIRE_BYTES
        self.stats.record_copy(total * ELEM_WIRE_BYTES)
        return {"row_ptr": row_ptr, "cols": cols, "vals": vals}, nbytes

    def unpack(self, rows: Sequence[int], payload) -> None:
        """Install a packed payload, converting vectors back to lists."""
        if payload is None:
            raise AllocationError(f"{self.name}: sparse unpack needs a payload")
        row_ptr = payload["row_ptr"]
        cols = payload["cols"]
        vals = payload["vals"]
        rows = list(rows)
        if len(row_ptr) != len(rows) + 1:
            raise AllocationError(f"{self.name}: row_ptr/rows mismatch")
        self.hold(rows)
        for i, g in enumerate(rows):
            lo, hi = int(row_ptr[i]), int(row_ptr[i + 1])
            if lo == hi:
                # incoming row is empty: clear any stale content but do
                # not materialize an element list for it
                stale = self._rows.pop(g, None)
                if stale:
                    self.stats.record_free(len(stale) * ELEM_STORE_BYTES)
                continue
            self.set_row_items(g, cols[lo:hi], vals[lo:hi])
        self._csr_version += 1

    def retarget(self, keep: Iterable[int]) -> None:
        """Drop rows outside ``keep``; pointer-vector rewrite, matching
        :meth:`ProjectedArray.retarget`."""
        keep = IntervalSet.coerce(keep)
        if keep:
            if keep.min_row < 0:
                self._check_row(keep.min_row)
            if keep.max_row >= self.n_rows:
                self._check_row(keep.max_row)
        self.drop(self._held - keep)
        self.stats.record_pointer_moves(self.n_rows)

    # ------------------------------------------------------------------
    # custom-format escape hatch (paper Section 4.4, last paragraph)
    # ------------------------------------------------------------------
    def csr_rows(self, rows: Sequence[int]):
        """A CSR snapshot (indptr, cols, vals) of ``rows``, for fast
        traversal between redistributions.  Check
        :attr:`csr_version` to know when a snapshot is stale."""
        payload, _ = self.pack(rows)
        return payload["row_ptr"], payload["cols"], payload["vals"]

    @property
    def csr_version(self) -> int:
        return self._csr_version

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SparseMatrix {self.name} {self.shape} held={self.n_held}>"


class SparseIterator:
    """The paper's sparse accessor: get-next / set-next / advance-row /
    move-to-first."""

    def __init__(self, matrix: SparseMatrix, row: Optional[int] = None):
        self.matrix = matrix
        held = matrix.held_rows()
        if not held:
            raise AllocationError(f"{matrix.name}: no held rows to iterate")
        self._held = held
        if row is None:
            row = held[0]
        if not matrix.holds(row):
            raise AllocationError(f"{matrix.name}: row {row} is not held locally")
        self._row_pos = held.index(row)
        self._elem_pos = 0

    @property
    def row(self) -> int:
        return self._held[self._row_pos]

    def has_next(self) -> bool:
        """True if the current row has another element."""
        return self._elem_pos < len(self.matrix._peek(self.row))

    def next(self) -> tuple[int, float]:
        """Return the next (col, value) of the current row and advance."""
        row = self.matrix._peek(self.row)
        if self._elem_pos >= len(row):
            raise AllocationError("iterator exhausted; advance_row or rewind")
        c, v = row[self._elem_pos]
        self._elem_pos += 1
        return c, v

    def set_next(self, value: float) -> None:
        """Overwrite the value of the element ``next()`` would return,
        without advancing."""
        row = self.matrix._peek(self.row)
        if self._elem_pos >= len(row):
            raise AllocationError("iterator exhausted; nothing to set")
        row[self._elem_pos][1] = float(value)
        self.matrix._csr_version += 1

    def advance_row(self) -> bool:
        """Move to the start of the next held row; False at the end."""
        if self._row_pos + 1 >= len(self._held):
            return False
        self._row_pos += 1
        self._elem_pos = 0
        return True

    def rewind(self) -> None:
        """Back to the first element of the first held row."""
        self._row_pos = 0
        self._elem_pos = 0
