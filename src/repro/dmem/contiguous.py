"""Contiguous allocation baseline (paper Figure 3, left).

A node's local partition is a single contiguous buffer covering one
global row range.  Any change to the range — even gaining one row at
the top — forces a *complete reallocation*: allocate the new block,
copy every surviving row into its new position, free the old block.
The accounting (and the paging penalty in
:class:`~repro.dmem.allocator.MemCostModel`) makes the cost difference
against :class:`~repro.dmem.dense.ProjectedArray` measurable; the
Figure 3 bench regenerates exactly that comparison.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .._intervals import IntervalSet
from ..errors import AllocationError
from .allocator import AllocStats

__all__ = ["ContiguousArray"]


class ContiguousArray:
    """A distributed dense array in single-block contiguous layout."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        materialized: bool = True,
    ):
        shape = tuple(int(s) for s in shape)
        if len(shape) < 1 or any(s <= 0 for s in shape):
            raise AllocationError(f"invalid shape {shape}")
        self.name = name
        self.shape = shape
        self.n_rows = shape[0]
        self.row_elems = int(math.prod(shape[1:])) if len(shape) > 1 else 1
        self.dtype = np.dtype(dtype)
        self.row_nbytes = self.row_elems * self.dtype.itemsize
        self.materialized = materialized
        self.stats = AllocStats()
        self._lo: Optional[int] = None  # inclusive
        self._hi: Optional[int] = None  # inclusive
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def bounds(self) -> Optional[tuple[int, int]]:
        if self._lo is None:
            return None
        return (self._lo, self._hi)

    def holds(self, g: int) -> bool:
        return self._lo is not None and self._lo <= g <= self._hi

    @property
    def n_held(self) -> int:
        return 0 if self._lo is None else self._hi - self._lo + 1

    @property
    def held_nbytes(self) -> int:
        return self.n_held * self.row_nbytes

    def held_rows(self) -> list[int]:
        if self._lo is None:
            return []
        return list(range(self._lo, self._hi + 1))

    # ------------------------------------------------------------------
    def resize(self, lo: int, hi: int) -> None:
        """Switch the local partition to rows ``lo..hi`` inclusive.

        Performs the complete reallocation: new block, copy of the
        overlap, free of the old block.
        """
        if not (0 <= lo <= hi < self.n_rows):
            raise AllocationError(f"{self.name}: bad range [{lo},{hi}]")
        n_new = hi - lo + 1
        new_nbytes = n_new * self.row_nbytes
        self.stats.record_alloc(new_nbytes)
        new_data = (
            np.zeros((n_new, self.row_elems), dtype=self.dtype)
            if self.materialized else None
        )
        if self._lo is not None:
            olo, ohi = self._lo, self._hi
            overlap_lo, overlap_hi = max(lo, olo), min(hi, ohi)
            if overlap_lo <= overlap_hi:
                n_copy = overlap_hi - overlap_lo + 1
                if self.materialized:
                    new_data[overlap_lo - lo: overlap_lo - lo + n_copy] = \
                        self._data[overlap_lo - olo: overlap_lo - olo + n_copy]
                self.stats.record_copy(n_copy * self.row_nbytes)
            self.stats.record_free((ohi - olo + 1) * self.row_nbytes)
        self._lo, self._hi = lo, hi
        self._data = new_data

    def release(self) -> None:
        """Free the local partition entirely."""
        if self._lo is not None:
            self.stats.record_free(self.held_nbytes)
        self._lo = self._hi = None
        self._data = None

    # ------------------------------------------------------------------
    def row(self, g: int) -> np.ndarray:
        if not self.holds(g):
            raise AllocationError(f"{self.name}: row {g} is not held locally")
        if not self.materialized:
            raise AllocationError(f"{self.name} is virtual; row data unavailable")
        return self._data[g - self._lo]

    def set_row(self, g: int, data) -> None:
        buf = self.row(g)
        buf[:] = np.asarray(data, dtype=self.dtype).reshape(self.row_elems)
        self.stats.record_copy(self.row_nbytes)

    def pack(self, rows):
        """Same wire format as :meth:`ProjectedArray.pack`; with an
        :class:`IntervalSet` the payload is one slice copy per span."""
        if isinstance(rows, (IntervalSet, range)):
            ivl = IntervalSet.coerce(rows)
            nbytes = len(ivl) * self.row_nbytes
            held = (IntervalSet.empty() if self._lo is None
                    else IntervalSet.span(self._lo, self._hi))
            missing = ivl - held
            if missing:
                raise AllocationError(
                    f"{self.name}: packing unheld row {missing.min_row}")
            if not self.materialized:
                return None, nbytes
            out = np.empty((len(ivl), self.row_elems), dtype=self.dtype)
            pos = 0
            for lo, hi in ivl.spans:
                n = hi - lo + 1
                out[pos: pos + n] = self._data[lo - self._lo: hi - self._lo + 1]
                pos += n
            self.stats.record_copy(nbytes)
            return out, nbytes
        nbytes = len(rows) * self.row_nbytes
        if not self.materialized:
            for g in rows:
                if not self.holds(g):
                    raise AllocationError(f"{self.name}: packing unheld row {g}")
            return None, nbytes
        out = np.empty((len(rows), self.row_elems), dtype=self.dtype)
        for i, g in enumerate(rows):
            out[i] = self.row(g)
        self.stats.record_copy(nbytes)
        return out, nbytes

    def unpack(self, rows, payload) -> None:
        if isinstance(rows, (IntervalSet, range)):
            ivl = IntervalSet.coerce(rows)
            held = (IntervalSet.empty() if self._lo is None
                    else IntervalSet.span(self._lo, self._hi))
            outside = ivl - held
            if outside:
                raise AllocationError(
                    f"{self.name}: contiguous layout cannot accept row "
                    f"{outside.min_row} outside its range {self.bounds}; "
                    f"resize first"
                )
            if not self.materialized:
                return
            payload = np.asarray(payload, dtype=self.dtype)
            pos = 0
            for lo, hi in ivl.spans:
                n = hi - lo + 1
                self._data[lo - self._lo: hi - self._lo + 1] = \
                    payload[pos: pos + n]
                pos += n
            self.stats.record_copy(len(ivl) * self.row_nbytes)
            return
        for g in rows:
            if not self.holds(g):
                raise AllocationError(
                    f"{self.name}: contiguous layout cannot accept row {g} "
                    f"outside its range {self.bounds}; resize first"
                )
        if not self.materialized:
            return
        payload = np.asarray(payload, dtype=self.dtype)
        for i, g in enumerate(rows):
            self._data[g - self._lo] = payload[i]
        self.stats.record_copy(len(rows) * self.row_nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ContiguousArray {self.name} {self.shape} range={self.bounds}>"
