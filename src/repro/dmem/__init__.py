"""Redistribution-friendly memory layouts (paper Section 4.1).

* :class:`ProjectedArray` — the paper's 2-d projection scheme for
  dense N-d arrays (vector of independently allocated extended rows).
* :class:`ContiguousArray` — the complete-reallocation baseline it is
  compared against (Figure 3).
* :class:`SparseMatrix` — vector-of-lists sparse storage with the
  paper's iterator API and pack/unpack for the wire.
* :class:`AllocStats` / :class:`MemCostModel` — allocation traffic
  accounting and its conversion to CPU work.
"""

from .allocator import AllocStats, MemCostModel
from .contiguous import ContiguousArray
from .dense import ProjectedArray, VirtualRow
from .sparse import SparseIterator, SparseMatrix

__all__ = [
    "AllocStats",
    "MemCostModel",
    "ProjectedArray",
    "ContiguousArray",
    "VirtualRow",
    "SparseMatrix",
    "SparseIterator",
]
