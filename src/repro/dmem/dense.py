"""Dense matrices in the paper's 2-d projection layout (Section 4.1.1).

An N-dimensional array is projected onto two dimensions: the first
axis stays, and each *extended row* holds the product of the remaining
N-1 dimensions.  Locally, a node keeps one independently allocated
buffer per extended row, addressed by **global** row index.  This is
exactly the property redistribution needs:

* a whole extended row travels in a single message,
* rows that stay local are *reused* — only the top-level pointer
  vector is rewritten (``pointer_moves``), never the data.

Arrays can be *materialized* (real numpy buffers — used by tests,
examples, and small benches, so numerical correctness is checkable) or
*virtual* (only byte sizes tracked — used by paper-scale benches where
only timing matters; both modes drive identical runtime code paths).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..errors import AllocationError
from .allocator import AllocStats

__all__ = ["ProjectedArray", "VirtualRow"]


class VirtualRow:
    """Placeholder for a row in an unmaterialized array."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualRow {self.nbytes}B>"


class ProjectedArray:
    """A distributed dense array in 2-d projection layout."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        materialized: bool = True,
    ):
        shape = tuple(int(s) for s in shape)
        if len(shape) < 1 or any(s <= 0 for s in shape):
            raise AllocationError(f"invalid shape {shape}")
        self.name = name
        self.shape = shape
        self.n_rows = shape[0]
        self.row_elems = int(math.prod(shape[1:])) if len(shape) > 1 else 1
        self.dtype = np.dtype(dtype)
        self.row_nbytes = self.row_elems * self.dtype.itemsize
        self.materialized = materialized
        self.stats = AllocStats()
        self._rows: dict[int, object] = {}

    # ------------------------------------------------------------------
    # row lifecycle
    # ------------------------------------------------------------------
    def _check_row(self, g: int) -> None:
        if not (0 <= g < self.n_rows):
            raise AllocationError(f"{self.name}: row {g} out of range [0,{self.n_rows})")

    def hold(self, rows: Iterable[int]) -> int:
        """Allocate buffers for ``rows`` (no-op for rows already held).
        Returns the number of rows newly allocated."""
        added = 0
        for g in rows:
            self._check_row(g)
            if g in self._rows:
                continue
            if self.materialized:
                self._rows[g] = np.zeros(self.row_elems, dtype=self.dtype)
            else:
                self._rows[g] = VirtualRow(self.row_nbytes)
            self.stats.record_alloc(self.row_nbytes)
            added += 1
        return added

    def drop(self, rows: Iterable[int]) -> int:
        """Free buffers for ``rows``; returns the number dropped."""
        dropped = 0
        for g in rows:
            if self._rows.pop(g, None) is not None:
                self.stats.record_free(self.row_nbytes)
                dropped += 1
        return dropped

    def held_rows(self) -> list[int]:
        return sorted(self._rows)

    def holds(self, g: int) -> bool:
        return g in self._rows

    @property
    def n_held(self) -> int:
        return len(self._rows)

    @property
    def held_nbytes(self) -> int:
        return len(self._rows) * self.row_nbytes

    # ------------------------------------------------------------------
    # element access (materialized only)
    # ------------------------------------------------------------------
    def row(self, g: int) -> np.ndarray:
        """The buffer of global row ``g`` (a live view, writable)."""
        self._check_row(g)
        try:
            buf = self._rows[g]
        except KeyError:
            raise AllocationError(f"{self.name}: row {g} is not held locally") from None
        if isinstance(buf, VirtualRow):
            raise AllocationError(f"{self.name} is virtual; row data unavailable")
        return buf

    def set_row(self, g: int, data: np.ndarray) -> None:
        buf = self.row(g)
        data = np.asarray(data, dtype=self.dtype).reshape(self.row_elems)
        buf[:] = data
        self.stats.record_copy(self.row_nbytes)

    def block(self, lo: int, hi: int) -> np.ndarray:
        """Copy rows ``lo..hi`` inclusive into a contiguous 2-d array
        (row-major), shaped (hi-lo+1, row_elems)."""
        if hi < lo:
            raise AllocationError(f"empty block [{lo},{hi}]")
        out = np.empty((hi - lo + 1, self.row_elems), dtype=self.dtype)
        for i, g in enumerate(range(lo, hi + 1)):
            out[i] = self.row(g)
        return out

    def set_block(self, lo: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=self.dtype)
        for i in range(data.shape[0]):
            self.set_row(lo + i, data[i])

    # ------------------------------------------------------------------
    # redistribution support
    # ------------------------------------------------------------------
    def pack(self, rows: Sequence[int]):
        """Pack ``rows`` for the wire.  Returns ``(payload, nbytes)``:
        a (k, row_elems) array for materialized arrays, None for
        virtual ones (sizes still charged)."""
        nbytes = len(rows) * self.row_nbytes
        if not self.materialized:
            for g in rows:
                if g not in self._rows:
                    raise AllocationError(f"{self.name}: packing unheld row {g}")
            return None, nbytes
        out = np.empty((len(rows), self.row_elems), dtype=self.dtype)
        for i, g in enumerate(rows):
            out[i] = self.row(g)
        self.stats.record_copy(nbytes)
        return out, nbytes

    def unpack(self, rows: Sequence[int], payload) -> None:
        """Install received ``payload`` into ``rows`` (allocating them)."""
        self.hold(rows)
        if not self.materialized:
            return
        if payload is None:
            raise AllocationError(f"{self.name}: materialized array received no data")
        payload = np.asarray(payload, dtype=self.dtype)
        if payload.shape != (len(rows), self.row_elems):
            raise AllocationError(
                f"{self.name}: bad unpack shape {payload.shape}, "
                f"expected {(len(rows), self.row_elems)}"
            )
        for i, g in enumerate(rows):
            self._rows[g][:] = payload[i]
        self.stats.record_copy(len(rows) * self.row_nbytes)

    def retarget(self, keep: Iterable[int]) -> None:
        """Rewrite the top-level pointer vector for a new local set:
        drop rows not in ``keep``; surviving rows are reused (pointer
        copy only, the projection method's selling point)."""
        keep = set(keep)
        for g in keep:
            self._check_row(g)
        to_drop = [g for g in self._rows if g not in keep]
        self.drop(to_drop)
        # the top-level vector (size = first dimension) is copied
        self.stats.record_pointer_moves(self.n_rows)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "mat" if self.materialized else "virt"
        return f"<ProjectedArray {self.name} {self.shape} {kind} held={self.n_held}>"
