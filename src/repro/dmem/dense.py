"""Dense matrices in the paper's 2-d projection layout (Section 4.1.1).

An N-dimensional array is projected onto two dimensions: the first
axis stays, and each *extended row* holds the product of the remaining
N-1 dimensions.  Locally a node holds a set of global row intervals;
each interval is backed by one contiguous numpy **slab** (rows are
views sliced out of the slab on demand).  This preserves exactly the
properties redistribution needs:

* a whole extended row — or a whole interval of rows — travels in a
  single message, packed with a handful of slice copies;
* rows that stay local are *reused* — dropping neighbors splits a slab
  into sub-views of the same buffer, so surviving rows are never
  copied and only the top-level pointer vector is rewritten
  (``pointer_moves``).

Accounting stays per extended row (the paper's Figure 3 charges one
malloc/free per row) via the bulk :meth:`AllocStats.record_allocs` /
:meth:`~AllocStats.record_frees` hooks, so the cost model is unchanged
while the Python-level bookkeeping is O(intervals).

Arrays can be *materialized* (real numpy buffers — used by tests,
examples, and small benches, so numerical correctness is checkable) or
*virtual* (only byte sizes tracked — used by paper-scale benches where
only timing matters; both modes drive identical runtime code paths).
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from typing import Iterable, Sequence

import numpy as np

from .._intervals import IntervalSet
from ..errors import AllocationError
from .allocator import AllocStats

__all__ = ["ProjectedArray", "VirtualRow"]


class VirtualRow:
    """Placeholder for a row in an unmaterialized array."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualRow {self.nbytes}B>"


class _Slab:
    """One contiguous block of extended rows ``lo..hi`` (inclusive).

    ``block`` is a (hi-lo+1, row_elems) numpy buffer for materialized
    arrays, None for virtual ones.  Splitting a slab produces views of
    the same buffer — never a copy."""

    __slots__ = ("lo", "hi", "block")

    def __init__(self, lo: int, hi: int, block):
        self.lo = lo
        self.hi = hi
        self.block = block

    def __lt__(self, other) -> bool:  # insort ordering
        return self.lo < other.lo

    def view(self, lo: int, hi: int) -> "_Slab":
        block = None
        if self.block is not None:
            block = self.block[lo - self.lo: hi - self.lo + 1]
        return _Slab(lo, hi, block)


class ProjectedArray:
    """A distributed dense array in 2-d projection layout."""

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype=np.float64,
        *,
        materialized: bool = True,
    ):
        shape = tuple(int(s) for s in shape)
        if len(shape) < 1 or any(s <= 0 for s in shape):
            raise AllocationError(f"invalid shape {shape}")
        self.name = name
        self.shape = shape
        self.n_rows = shape[0]
        self.row_elems = int(math.prod(shape[1:])) if len(shape) > 1 else 1
        self.dtype = np.dtype(dtype)
        self.row_nbytes = self.row_elems * self.dtype.itemsize
        self.materialized = materialized
        self.stats = AllocStats()
        self._held = IntervalSet.empty()
        self._slabs: list[_Slab] = []   # sorted by lo, disjoint
        self._los: list[int] = []       # parallel bisect index

    # ------------------------------------------------------------------
    # row lifecycle
    # ------------------------------------------------------------------
    def _check_row(self, g: int) -> None:
        if not (0 <= g < self.n_rows):
            raise AllocationError(f"{self.name}: row {g} out of range [0,{self.n_rows})")

    def _check_interval(self, ivl: IntervalSet) -> None:
        if ivl:
            if ivl.min_row < 0:
                self._check_row(ivl.min_row)
            if ivl.max_row >= self.n_rows:
                self._check_row(ivl.max_row)

    def _insert_slab(self, slab: _Slab) -> None:
        i = bisect_right(self._los, slab.lo)
        self._los.insert(i, slab.lo)
        self._slabs.insert(i, slab)

    def _slab_of(self, g: int) -> _Slab:
        i = bisect_right(self._los, g) - 1
        if i >= 0:
            slab = self._slabs[i]
            if g <= slab.hi:
                return slab
        raise AllocationError(f"{self.name}: row {g} is not held locally")

    def hold(self, rows: Iterable[int]) -> int:
        """Allocate slabs for ``rows`` (no-op for rows already held).
        Accepts an :class:`IntervalSet`, a range, or any iterable of
        global rows.  Returns the number of rows newly allocated."""
        ivl = IntervalSet.coerce(rows)
        self._check_interval(ivl)
        new = ivl - self._held
        if not new:
            return 0
        for lo, hi in new.spans:
            block = None
            if self.materialized:
                block = np.zeros((hi - lo + 1, self.row_elems), dtype=self.dtype)
            self._insert_slab(_Slab(lo, hi, block))
        self._held = self._held | new
        n = len(new)
        self.stats.record_allocs(n, n * self.row_nbytes)
        return n

    def drop(self, rows: Iterable[int]) -> int:
        """Free ``rows``; returns the number dropped.  Surviving rows
        of a split slab stay as views of the original buffer (no
        copies)."""
        gone = IntervalSet.coerce(rows) & self._held
        if not gone:
            return 0
        new_slabs: list[_Slab] = []
        for slab in self._slabs:
            if gone.isdisjoint(IntervalSet.span(slab.lo, slab.hi)):
                new_slabs.append(slab)
                continue
            keep = IntervalSet.span(slab.lo, slab.hi) - gone
            for lo, hi in keep.spans:
                new_slabs.append(slab.view(lo, hi))
        self._slabs = new_slabs
        self._los = [s.lo for s in new_slabs]
        self._held = self._held - gone
        n = len(gone)
        self.stats.record_frees(n, n * self.row_nbytes)
        return n

    def held_rows(self) -> list[int]:
        return self._held.to_rows()

    def held_intervals(self) -> IntervalSet:
        return self._held

    def holds(self, g: int) -> bool:
        return g in self._held

    @property
    def n_held(self) -> int:
        return len(self._held)

    @property
    def n_slabs(self) -> int:
        return len(self._slabs)

    @property
    def held_nbytes(self) -> int:
        return len(self._held) * self.row_nbytes

    # ------------------------------------------------------------------
    # element access (materialized only)
    # ------------------------------------------------------------------
    def _materialized_slab(self, g: int) -> _Slab:
        slab = self._slab_of(g)
        if slab.block is None:
            raise AllocationError(f"{self.name} is virtual; row data unavailable")
        return slab

    def row(self, g: int) -> np.ndarray:
        """The buffer of global row ``g`` (a live view into its slab,
        writable)."""
        self._check_row(g)
        slab = self._materialized_slab(g)
        return slab.block[g - slab.lo]

    def set_row(self, g: int, data: np.ndarray) -> None:
        buf = self.row(g)
        data = np.asarray(data, dtype=self.dtype).reshape(self.row_elems)
        buf[:] = data
        self.stats.record_copy(self.row_nbytes)

    def _runs(self, ivl: IntervalSet):
        """Yield ``(g_lo, g_hi, slab)`` for maximal contiguous runs of
        ``ivl`` inside single slabs; raises if any row is unheld."""
        for lo, hi in ivl.spans:
            g = lo
            while g <= hi:
                slab = self._slab_of(g)
                run_hi = min(hi, slab.hi)
                yield g, run_hi, slab
                g = run_hi + 1

    def block(self, lo: int, hi: int) -> np.ndarray:
        """Copy rows ``lo..hi`` inclusive into a contiguous 2-d array
        (row-major), shaped (hi-lo+1, row_elems)."""
        if hi < lo:
            raise AllocationError(f"empty block [{lo},{hi}]")
        self._check_row(lo)
        self._check_row(hi)
        out = np.empty((hi - lo + 1, self.row_elems), dtype=self.dtype)
        for g_lo, g_hi, slab in self._runs(IntervalSet.span(lo, hi)):
            if slab.block is None:
                raise AllocationError(
                    f"{self.name} is virtual; row data unavailable")
            out[g_lo - lo: g_hi - lo + 1] = \
                slab.block[g_lo - slab.lo: g_hi - slab.lo + 1]
        return out

    def set_block(self, lo: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=self.dtype)
        k = data.shape[0]
        if k == 0:
            return
        data = data.reshape(k, self.row_elems)
        self._check_row(lo)
        self._check_row(lo + k - 1)
        for g_lo, g_hi, slab in self._runs(IntervalSet.span(lo, lo + k - 1)):
            if slab.block is None:
                raise AllocationError(
                    f"{self.name} is virtual; row data unavailable")
            slab.block[g_lo - slab.lo: g_hi - slab.lo + 1] = \
                data[g_lo - lo: g_hi - lo + 1]
        self.stats.record_copy(k * self.row_nbytes)

    # ------------------------------------------------------------------
    # redistribution support
    # ------------------------------------------------------------------
    def pack(self, rows):
        """Pack ``rows`` for the wire.  Returns ``(payload, nbytes)``:
        a (k, row_elems) array for materialized arrays, None for
        virtual ones (sizes still charged).

        With an :class:`IntervalSet` (or any sorted iterable) the
        payload is built with one slice copy per slab run.  An
        explicitly ordered sequence keeps its order (payload row ``i``
        is global row ``rows[i]``)."""
        if isinstance(rows, IntervalSet) or isinstance(rows, range):
            ivl = IntervalSet.coerce(rows)
            k = len(ivl)
            nbytes = k * self.row_nbytes
            if not self.materialized:
                missing = ivl - self._held
                if missing:
                    raise AllocationError(
                        f"{self.name}: packing unheld row {missing.min_row}")
                return None, nbytes
            out = np.empty((k, self.row_elems), dtype=self.dtype)
            pos = 0
            for g_lo, g_hi, slab in self._runs(ivl):
                n = g_hi - g_lo + 1
                out[pos: pos + n] = \
                    slab.block[g_lo - slab.lo: g_hi - slab.lo + 1]
                pos += n
            self.stats.record_copy(nbytes)
            return out, nbytes
        # legacy path: arbitrary row order preserved
        rows = list(rows)
        nbytes = len(rows) * self.row_nbytes
        if not self.materialized:
            for g in rows:
                if g not in self._held:
                    raise AllocationError(f"{self.name}: packing unheld row {g}")
            return None, nbytes
        out = np.empty((len(rows), self.row_elems), dtype=self.dtype)
        for i, g in enumerate(rows):
            out[i] = self.row(g)
        self.stats.record_copy(nbytes)
        return out, nbytes

    def unpack(self, rows, payload) -> None:
        """Install received ``payload`` into ``rows`` (allocating them).
        Row ``i`` of the payload is global row ``i`` of ``rows`` in
        iteration order (ascending for an :class:`IntervalSet`)."""
        interval_input = isinstance(rows, (IntervalSet, range))
        ivl = IntervalSet.coerce(rows)
        k = len(ivl) if interval_input else len(list(rows))
        self.hold(ivl)
        if not self.materialized:
            return
        if payload is None:
            raise AllocationError(f"{self.name}: materialized array received no data")
        payload = np.asarray(payload, dtype=self.dtype)
        if interval_input:
            if payload.shape != (len(ivl), self.row_elems):
                raise AllocationError(
                    f"{self.name}: bad unpack shape {payload.shape}, "
                    f"expected {(len(ivl), self.row_elems)}"
                )
            pos = 0
            for g_lo, g_hi, slab in self._runs(ivl):
                n = g_hi - g_lo + 1
                slab.block[g_lo - slab.lo: g_hi - slab.lo + 1] = \
                    payload[pos: pos + n]
                pos += n
            self.stats.record_copy(len(ivl) * self.row_nbytes)
            return
        rows = list(rows)
        if payload.shape != (len(rows), self.row_elems):
            raise AllocationError(
                f"{self.name}: bad unpack shape {payload.shape}, "
                f"expected {(len(rows), self.row_elems)}"
            )
        for i, g in enumerate(rows):
            slab = self._materialized_slab(g)
            slab.block[g - slab.lo] = payload[i]
        self.stats.record_copy(len(rows) * self.row_nbytes)

    def retarget(self, keep) -> None:
        """Rewrite the top-level pointer vector for a new local set:
        drop rows not in ``keep``; surviving rows are reused (pointer
        copy only, the projection method's selling point)."""
        keep = IntervalSet.coerce(keep)
        self._check_interval(keep)
        self.drop(self._held - keep)
        # the top-level vector (size = first dimension) is copied
        self.stats.record_pointer_moves(self.n_rows)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "mat" if self.materialized else "virt"
        return f"<ProjectedArray {self.name} {self.shape} {kind} held={self.n_held}>"
