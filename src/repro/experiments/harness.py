"""Experiment harness: scenario runners shared by the figure modules.

Scaling: every experiment accepts ``scale`` (default from the
``DYNMPI_BENCH_SCALE`` environment variable, 1.0 = paper sizes).
Linear problem dimensions and iteration counts are scaled so quick
regression runs preserve the figures' *shape*; EXPERIMENTS.md records
results at scale 1.0.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from ..apps import AppResult, run_program
from ..config import ClusterSpec, RuntimeSpec
from ..simcluster import Cluster, LoadScript

__all__ = [
    "bench_scale",
    "scaled",
    "scaled_spec",
    "Scenario",
    "run_scenario",
    "steady_state_cycle_time",
]


def bench_scale(default: float = 1.0) -> float:
    """The global bench scale from ``DYNMPI_BENCH_SCALE``."""
    raw = os.environ.get("DYNMPI_BENCH_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if not (0.0 < value <= 1.0):
        raise ValueError(f"DYNMPI_BENCH_SCALE must be in (0, 1], got {value}")
    return value


def scaled(value: int, scale: float, minimum: int = 4) -> int:
    """Scale a linear dimension / iteration count, with a floor."""
    return max(minimum, int(round(value * scale)))


def scaled_spec(base: RuntimeSpec, scale: float) -> RuntimeSpec:
    """Adapt runtime cadences to a scaled-down problem.

    Phase-cycle time shrinks roughly with the square of the linear
    scale (fewer rows x shorter rows), so the 1 Hz daemon of the paper
    would sleep through an entire scaled run; its interval is scaled
    accordingly (floored at 1 ms).  Grace periods are counted in
    cycles and need no adjustment.
    """
    if scale >= 1.0:
        return base
    interval = max(0.001, base.daemon_interval * scale * scale)
    return replace(base, daemon_interval=interval)


@dataclass(frozen=True)
class Scenario:
    """One application run: cluster + load + runtime policy."""

    name: str
    cluster_spec: ClusterSpec
    program: Callable
    cfg: object
    spec: RuntimeSpec = field(default_factory=RuntimeSpec)
    adaptive: bool = True
    load_script: Optional[LoadScript] = None
    #: override for the cluster RNG seed (``--seed`` on the CLI and the
    #: campaign engine thread through here); None keeps the spec's seed
    seed: Optional[int] = None

    def run(self) -> AppResult:
        cluster_spec = self.cluster_spec
        if self.seed is not None and self.seed != cluster_spec.seed:
            cluster_spec = cluster_spec.with_seed(self.seed)
        cluster = Cluster(cluster_spec)
        return run_program(
            cluster,
            self.program,
            self.cfg,
            spec=self.spec,
            adaptive=self.adaptive,
            load_script=self.load_script,
        )


def run_scenario(scenario: Scenario) -> AppResult:
    return scenario.run()


def steady_state_cycle_time(result: AppResult, *, tail_frac: float = 0.25) -> float:
    """Mean cycle time over the last ``tail_frac`` of the run (after
    all adaptation events), averaged over the ranks that are still
    participating (non-empty cycle time lists)."""
    means = []
    for ct in result.cycle_times:
        if not ct:
            continue
        k = max(1, int(len(ct) * tail_frac))
        means.append(float(np.mean(ct[-k:])))
    return float(np.mean(means)) if means else float("nan")
