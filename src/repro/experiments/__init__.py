"""Figure/table regeneration harness.

One module per paper figure (see DESIGN.md Section 4 for the index):

* :mod:`.figure4` — overall results, 4 apps x {2,4,8} nodes.
* :mod:`.figure5` — Jacobi, multiple redistribution points.
* :mod:`.figure6` — SOR node removal, {8,16,32} nodes, 1-3 CPs.
* :mod:`.figure7` — particle simulation, grace period 1 vs 5.
* :mod:`.memalloc` — Figure 3's allocation-method comparison.
* :mod:`.synthetic` — tech-report ablations (balancing, monitoring).
"""

from .figure4 import Figure4Row, cg_4node_narrative, format_figure4, run_figure4
from .figure5 import Figure5Cell, format_figure5, run_figure5
from .figure6 import Figure6Cell, format_figure6, run_figure6
from .figure7 import Figure7Cell, format_figure7, run_figure7
from .harness import (
    Scenario,
    bench_scale,
    scaled,
    scaled_spec,
    steady_state_cycle_time,
)
from .memalloc import MemAllocRow, format_memalloc, run_memalloc
from .report import format_table, print_table
from .synthetic import (
    BalanceAblationRow,
    MonitorAblationRow,
    format_balance_ablation,
    format_monitor_ablation,
    run_balance_ablation,
    run_monitor_ablation,
)

__all__ = [
    "run_figure4", "format_figure4", "Figure4Row", "cg_4node_narrative",
    "run_figure5", "format_figure5", "Figure5Cell",
    "run_figure6", "format_figure6", "Figure6Cell",
    "run_figure7", "format_figure7", "Figure7Cell",
    "run_memalloc", "format_memalloc", "MemAllocRow",
    "run_balance_ablation", "format_balance_ablation", "BalanceAblationRow",
    "run_monitor_ablation", "format_monitor_ablation", "MonitorAblationRow",
    "Scenario", "bench_scale", "scaled", "scaled_spec",
    "steady_state_cycle_time", "format_table", "print_table",
]
