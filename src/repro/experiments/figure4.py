"""Figure 4 — overall results (paper Section 5.1).

Four applications (Jacobi, SOR, CG, particle) on 2/4/8 nodes, three
variants each:

* **dedicated** — no competing processes (the normalization baseline),
* **no adapt**  — one competing process on node 0 at the 10th
  iteration, the program never adapts,
* **Dyn-MPI**   — same load, the runtime adapts.

The paper's shape: Dyn-MPI lands well under no-adapt (up to ~3x) and
within tens of percent of dedicated; the particle run can even beat
dedicated because adaptation fixes its built-in imbalance early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from ..apps import (
    CGConfig,
    JacobiConfig,
    ParticleConfig,
    SORConfig,
    cg_program,
    jacobi_program,
    particle_program,
    sor_program,
)
from ..config import RuntimeSpec, pentium_cluster
from ..simcluster import single_competitor
from .harness import Scenario, bench_scale, scaled, scaled_spec
from .report import format_table

__all__ = ["Figure4Row", "run_figure4", "cg_4node_narrative", "APP_NAMES"]

APP_NAMES = ("jacobi", "sor", "cg", "particle")

#: the paper disables removal for the overall experiment (Section 5.3
#: studies removal separately)
_SPEC = RuntimeSpec(allow_removal=False)


@dataclass(frozen=True)
class Figure4Row:
    app: str
    n_nodes: int
    t_dedicated: float
    t_noadapt: float
    t_dynmpi: float

    @property
    def norm_noadapt(self) -> float:
        return self.t_noadapt / self.t_dedicated

    @property
    def norm_dynmpi(self) -> float:
        return self.t_dynmpi / self.t_dedicated

    @property
    def improvement(self) -> float:
        """no-adapt time over Dyn-MPI time (paper: up to ~3x)."""
        return self.t_noadapt / self.t_dynmpi


def _app_config(app: str, scale: float, n_nodes: int):
    if app == "jacobi":
        return jacobi_program, JacobiConfig(
            n=scaled(2048, scale, 64), iters=scaled(250, scale, 30),
            materialized=False,
        )
    if app == "sor":
        return sor_program, SORConfig(
            n=scaled(2048, scale, 64), iters=scaled(250, scale, 30),
            materialized=False,
        )
    if app == "cg":
        return cg_program, CGConfig(
            n=scaled(14000, scale, 128), iters=scaled(75, scale, 20),
            exact_math=False,
        )
    if app == "particle":
        return particle_program, ParticleConfig(
            rows=scaled(256, scale, 32), cols=scaled(256, scale, 32),
            steps=scaled(200, scale, 30),
            base_density=1.5,
            # "one node had twice as many particles" (node 0's rows)
            hot_factor=2.0, hot_rows=scaled(256, scale, 32) // n_nodes,
        )
    raise ValueError(f"unknown app {app!r}")


def run_figure4(
    *,
    nodes: Sequence[int] = (2, 4, 8),
    apps: Sequence[str] = APP_NAMES,
    scale: Optional[float] = None,
    seed: int = 0,
) -> list[Figure4Row]:
    scale = bench_scale() if scale is None else scale
    rows = []
    for app in apps:
        for n in nodes:
            program, cfg = _app_config(app, scale, n)
            times = {}
            for variant in ("dedicated", "noadapt", "dynmpi"):
                script = (
                    None if variant == "dedicated"
                    else single_competitor(0, start_cycle=10)
                )
                scenario = Scenario(
                    name=f"fig4:{app}:{n}:{variant}",
                    cluster_spec=pentium_cluster(n, seed=seed),
                    program=program,
                    cfg=cfg,
                    spec=scaled_spec(_SPEC, scale),
                    adaptive=(variant == "dynmpi"),
                    load_script=script,
                )
                times[variant] = scenario.run().wall_time
            rows.append(Figure4Row(
                app, n, times["dedicated"], times["noadapt"], times["dynmpi"]
            ))
    return rows


def format_figure4(rows: Sequence[Figure4Row]) -> str:
    return format_table(
        ["app", "nodes", "dedicated(s)", "no-adapt(s)", "dyn-mpi(s)",
         "no-adapt/ded", "dyn-mpi/ded", "improvement"],
        [
            (r.app, r.n_nodes, r.t_dedicated, r.t_noadapt, r.t_dynmpi,
             r.norm_noadapt, r.norm_dynmpi, r.improvement)
            for r in rows
        ],
        title="Figure 4 — execution time relative to all-nodes-dedicated",
    )


@dataclass(frozen=True)
class CGNarrative:
    """The Section 5.1 4-node CG walkthrough."""

    t_dedicated: float
    t_noadapt: float
    t_dynmpi: float
    shares: tuple
    redist_seconds: float


def cg_4node_narrative(*, scale: Optional[float] = None, seed: int = 0) -> CGNarrative:
    scale = bench_scale() if scale is None else scale
    program, cfg = _app_config("cg", scale, 4)
    results = {}
    for variant in ("dedicated", "noadapt", "dynmpi"):
        script = None if variant == "dedicated" else single_competitor(0, start_cycle=10)
        res = Scenario(
            name=f"cg4:{variant}",
            cluster_spec=pentium_cluster(4, seed=seed),
            program=program, cfg=cfg, spec=scaled_spec(_SPEC, scale),
            adaptive=(variant == "dynmpi"), load_script=script,
        ).run()
        results[variant] = res
    redists = [ev for ev in results["dynmpi"].events if ev.kind == "redistribute"]
    shares = tuple(redists[0].detail["shares"]) if redists else ()
    redist_s = sum(ev.duration for ev in redists)
    return CGNarrative(
        results["dedicated"].wall_time,
        results["noadapt"].wall_time,
        results["dynmpi"].wall_time,
        shares,
        redist_s,
    )
