"""Synthetic tuning experiments (the tech-report [27] material the
paper references from Sections 4.2/4.3): balancing-policy and
monitoring ablations.

* ``run_balance_ablation`` — for a sweep of computation:communication
  ratios, compare the *predicted and simulated* cycle times of the
  naive relative-power distribution against successive balancing.
  This is the quantitative backing for the paper's claim that naive
  distributions degrade because communication consumes CPU.
* ``run_monitor_ablation`` — detection latency of ``dmpi_ps`` vs
  ``vmstat`` for an application that blocks at receives: vmstat
  samples taken while the app is blocked miss it entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import pentium_cluster
from ..core import (
    CommCostModel,
    NearestNeighbor,
    closed_form_shares,
    naive_shares,
    predict_times,
)
from ..core.power import available_powers
from ..simcluster import Cluster, Compute, Sleep
from ..sysmon import DmpiPs, Vmstat
from .report import format_table

__all__ = [
    "BalanceAblationRow",
    "run_balance_ablation",
    "format_balance_ablation",
    "MonitorAblationRow",
    "run_monitor_ablation",
    "format_monitor_ablation",
]


@dataclass(frozen=True)
class BalanceAblationRow:
    comp_comm_ratio: float
    t_naive: float
    t_balanced: float

    @property
    def gain(self) -> float:
        return 1.0 - self.t_balanced / self.t_naive


def run_balance_ablation(
    *,
    ratios: Sequence[float] = (64.0, 16.0, 4.0, 1.0, 0.25),
    n_nodes: int = 4,
    loads: Optional[Sequence[int]] = None,
    scale: Optional[float] = None,
) -> list[BalanceAblationRow]:
    """Predicted cycle times, naive vs comm-aware, as the computation
    to communication ratio shrinks."""
    spec = pentium_cluster(n_nodes)
    model = CommCostModel.from_spec(spec.network, spec.node.speed)
    loads = list(loads) if loads is not None else [2] + [1] * (n_nodes - 1)
    avails = available_powers([spec.node.speed] * n_nodes, loads)
    n_rows = 2048
    rows = []
    for ratio in ratios:
        # fix the communication (one row each way) and set total work
        # to ratio x the per-node comm CPU work
        pattern = NearestNeighbor(row_nbytes=2048 * 8)
        comm_cpu = model.cpu_work(2048 * 8, 1) * 4  # a middle node's cycle
        total_work = ratio * comm_cpu * n_nodes
        t_naive = predict_times(
            naive_shares(avails), total_work, avails, [pattern], model, n_rows
        ).max()
        res = closed_form_shares(total_work, avails, [pattern], model, n_rows)
        rows.append(BalanceAblationRow(ratio, float(t_naive),
                                       res.predicted_cycle_time))
    return rows


def format_balance_ablation(rows: Sequence[BalanceAblationRow]) -> str:
    return format_table(
        ["comp:comm", "naive cycle(s)", "balanced cycle(s)", "gain(%)"],
        [(r.comp_comm_ratio, r.t_naive, r.t_balanced, r.gain * 100) for r in rows],
        title="Successive balancing vs naive relative power (predicted)",
    )


@dataclass(frozen=True)
class MonitorAblationRow:
    monitor: str
    detection_delay: float  # seconds from CP start to first sample >= 2
    missed_samples: int     # samples taken after CP start that read < 2


def run_monitor_ablation(
    *,
    blocked_fraction: float = 0.7,
    duration: float = 30.0,
    cp_start: float = 5.0,
    interval: float = 1.0,
) -> list[MonitorAblationRow]:
    """An app alternating compute and blocking waits; a CP arrives at
    ``cp_start``.  How quickly does each monitor report load >= 2?"""
    from ..config import ClusterSpec, NodeSpec

    results = []
    for name in ("dmpi_ps", "vmstat"):
        cluster = Cluster(ClusterSpec(n_nodes=1, node=NodeSpec(speed=1e8)))
        node = cluster.nodes[0]
        period = 0.050
        compute_work = 1e8 * period * (1 - blocked_fraction)

        def app():
            while cluster.sim.now < duration:
                yield Compute(compute_work)
                yield Sleep(period * blocked_fraction)

        proc = cluster.sim.spawn(app(), name="app", node=node)
        if name == "dmpi_ps":
            mon = DmpiPs(cluster, interval=interval, jitter=False)
            mon.register_monitored(0, proc)
        else:
            mon = Vmstat(cluster, interval=interval)
        mon.start()
        cluster.sim.schedule(cp_start, lambda n=node: n.start_competing())
        cluster.sim.run_all([proc])

        history = mon.history(0)
        detect = float("nan")
        missed = 0
        for t, load in history:
            if t < cp_start:
                continue
            if load >= 2 and detect != detect:
                detect = t - cp_start
            if load < 2:
                missed += 1
        results.append(MonitorAblationRow(name, detect, missed))
    return results


def format_monitor_ablation(rows: Sequence[MonitorAblationRow]) -> str:
    return format_table(
        ["monitor", "detection delay(s)", "missed samples"],
        [(r.monitor, r.detection_delay, r.missed_samples) for r in rows],
        title="Load monitor ablation — dmpi_ps vs vmstat",
    )
