"""Figure 5 — multiple redistribution points (paper Section 5.2).

Jacobi on 4 nodes, three equal periods:

* period 1: all nodes dedicated;
* a competing process appears on one node at the period-1/period-2
  boundary;
* it disappears at the period-2/period-3 boundary.

Three policies: **No Redist** (never adapt), **Redist Once** (adapt to
the load's arrival only), **Redist Twice** (also adapt back when it
leaves).  Two period lengths: *Short* (50 cycles) and *Long* (500).

Paper shape: redistributing after period 1 pays off (~17%); the second
redistribution only pays off for the Long run (the Short run's
remaining work cannot amortize the redistribution cost).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence


from ..apps import JacobiConfig, jacobi_program
from ..config import RuntimeSpec, pentium_cluster
from ..simcluster import CycleTrigger, LoadScript
from .harness import Scenario, bench_scale, scaled, scaled_spec
from .report import format_table

__all__ = ["Figure5Cell", "run_figure5", "format_figure5"]

POLICIES = ("no_redist", "redist_once", "redist_twice")


@dataclass(frozen=True)
class Figure5Cell:
    period_len: int
    policy: str
    total: float
    periods: tuple  # (t_period1, t_period2, t_period3)
    redist_seconds: float
    n_redists: int


def _period_times(result, period: int) -> tuple:
    """Wall time of each third of the run, from the cycle stamps of the
    longest-lived rank."""
    stamps = max(
        (ctx.cycle_stamps for ctx in result.job.contexts),
        key=len,
    )
    edges = [0, period, 2 * period, 3 * period]
    out = []
    for a, b in zip(edges[:-1], edges[1:]):
        chunk = stamps[a:b]
        if chunk:
            out.append(chunk[-1][1] - chunk[0][0])
        else:
            out.append(float("nan"))
    return tuple(out)


def run_figure5(
    *,
    periods: Sequence[int] = (50, 500),
    n_nodes: int = 4,
    scale: Optional[float] = None,
    seed: int = 0,
) -> list[Figure5Cell]:
    scale = bench_scale() if scale is None else scale
    cells = []
    for period in periods:
        p = scaled(period, scale, 20)
        cfg = JacobiConfig(n=scaled(2048, scale, 64), iters=3 * p,
                           materialized=False)
        script_triggers = [
            CycleTrigger(cycle=p, node=0, action="start"),
            CycleTrigger(cycle=2 * p, node=0, action="stop"),
        ]
        for policy in POLICIES:
            spec = scaled_spec(RuntimeSpec(allow_removal=False), scale)
            if policy == "redist_once":
                spec = replace(spec, max_redistributions=1)
            scenario = Scenario(
                name=f"fig5:{period}:{policy}",
                cluster_spec=pentium_cluster(n_nodes, seed=seed),
                program=jacobi_program,
                cfg=cfg,
                spec=spec,
                adaptive=(policy != "no_redist"),
                load_script=LoadScript(cycle_triggers=script_triggers),
            )
            res = scenario.run()
            redists = [ev for ev in res.events if ev.kind == "redistribute"]
            cells.append(Figure5Cell(
                period_len=p,
                policy=policy,
                total=res.wall_time,
                periods=_period_times(res, p),
                redist_seconds=sum(ev.duration for ev in redists),
                n_redists=len(redists),
            ))
    return cells


def format_figure5(cells: Sequence[Figure5Cell]) -> str:
    return format_table(
        ["period", "policy", "total(s)", "period1(s)", "period2(s)",
         "period3(s)", "redist(s)", "#redist"],
        [
            (c.period_len, c.policy, c.total, *c.periods,
             c.redist_seconds, c.n_redists)
            for c in cells
        ],
        title="Figure 5 — Jacobi with multiple redistribution points (4 nodes)",
    )
