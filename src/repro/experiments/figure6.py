"""Figure 6 — node removal (paper Section 5.3).

Red/Black SOR (low computation/communication ratio) on the Ultra-Sparc
cluster at 8/16/32 nodes, 1024x1024 arrays.  One node receives 1, 2 or
3 competing processes; we measure the average phase-cycle time after
redistribution when

* the loaded node stays in the computation (*k CP* series), vs.
* the loaded node is physically removed (*Drop*).

Paper shape: dropping is always worse on 8 nodes, moderately better on
16 (2/7/8% for 1/2/3 CPs), and significantly better on 32 (4/14/25%) —
the benefit of removal grows as the computation/communication ratio
shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence


from ..apps import SORConfig, sor_program
from ..config import RuntimeSpec, ultrasparc_cluster
from ..simcluster import single_competitor
from .harness import Scenario, bench_scale, scaled, scaled_spec, steady_state_cycle_time
from .report import format_table

__all__ = ["Figure6Cell", "run_figure6", "format_figure6"]


@dataclass(frozen=True)
class Figure6Cell:
    n_nodes: int
    n_cp: int
    keep_cycle_time: float   # avg cycle time, loaded node kept
    drop_cycle_time: float   # avg cycle time, loaded node removed
    dropped: bool            # did the forced-drop run actually drop

    @property
    def drop_gain(self) -> float:
        """Relative improvement of dropping (positive = drop wins)."""
        return 1.0 - self.drop_cycle_time / self.keep_cycle_time


def _run(n_nodes: int, n_cp: int, *, force: str, scale: float, seed: int,
         iters: int):
    cfg = SORConfig(n=scaled(1024, scale, 64), iters=iters, materialized=False)
    base = RuntimeSpec(allow_removal=(force == "drop"))
    if force == "drop":
        # evaluate the drop branch unconditionally: any finite predicted
        # time beats the measured one under a tiny margin
        base = replace(base, drop_margin=1e-9, post_redist_period=5)
    spec = scaled_spec(base, scale)
    scenario = Scenario(
        name=f"fig6:{n_nodes}n:{n_cp}cp:{force}",
        cluster_spec=ultrasparc_cluster(n_nodes, seed=seed),
        program=sor_program,
        cfg=cfg,
        spec=spec,
        adaptive=True,
        load_script=single_competitor(0, start_cycle=10, count=n_cp),
    )
    return scenario.run()


def run_figure6(
    *,
    nodes: Sequence[int] = (8, 16, 32),
    cps: Sequence[int] = (1, 2, 3),
    scale: Optional[float] = None,
    seed: int = 0,
    iters: int = 250,
) -> list[Figure6Cell]:
    scale = bench_scale() if scale is None else scale
    iters = scaled(iters, scale, 60)
    cells = []
    for n in nodes:
        for cp in cps:
            keep = _run(n, cp, force="keep", scale=scale, seed=seed, iters=iters)
            drop = _run(n, cp, force="drop", scale=scale, seed=seed, iters=iters)
            cells.append(Figure6Cell(
                n_nodes=n,
                n_cp=cp,
                keep_cycle_time=steady_state_cycle_time(keep),
                drop_cycle_time=steady_state_cycle_time(drop),
                dropped=any(ev.kind == "drop" for ev in drop.events),
            ))
    return cells


def format_figure6(cells: Sequence[Figure6Cell]) -> str:
    return format_table(
        ["nodes", "CPs", "keep cycle(ms)", "drop cycle(ms)", "drop gain(%)",
         "dropped"],
        [
            (c.n_nodes, c.n_cp, c.keep_cycle_time * 1e3,
             c.drop_cycle_time * 1e3, c.drop_gain * 100, c.dropped)
            for c in cells
        ],
        title="Figure 6 — SOR average cycle time: keep loaded node vs drop it",
    )
