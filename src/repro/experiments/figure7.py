"""Figure 7 — grace period length under sub-10 ms iterations
(paper Section 5.4).

Particle simulation on 8 nodes, 256x256 grid, with Part in {10, 50}
particles per cell in the top half of P0's rows.  Iterations are
shorter than 10 ms, so ``gethrtime`` (not /PROC) must time them, and
its readings absorb context-switch noise on the loaded node.  With a
grace period of 1 cycle there is nothing to min-filter and the
resulting distribution is skewed; with the paper's default of 5 the
filter recovers true iteration times.

Measured: average phase-cycle time after redistribution; paper shape:
GP=5 beats GP=1 by ~13% (Part=10) and ~16% (Part=50).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from ..apps import ParticleConfig, particle_program
from ..config import RuntimeSpec, pentium_cluster
from ..simcluster import single_competitor
from .harness import Scenario, bench_scale, scaled, scaled_spec, steady_state_cycle_time
from .report import format_table

__all__ = ["Figure7Cell", "run_figure7", "format_figure7"]


@dataclass(frozen=True)
class Figure7Cell:
    part: float
    grace_period: int
    cycle_time: float
    estimate_source: str

    @property
    def label(self) -> str:
        return f"Part={self.part:g} GP={self.grace_period}"


def run_figure7(
    *,
    parts: Sequence[float] = (10.0, 50.0),
    grace_periods: Sequence[int] = (1, 5),
    n_nodes: int = 8,
    scale: Optional[float] = None,
    seed: int = 0,
) -> list[Figure7Cell]:
    scale = bench_scale() if scale is None else scale
    cells = []
    for part in parts:
        grid = scaled(256, scale, 32)
        cfg = ParticleConfig(
            rows=grid, cols=grid, steps=scaled(200, scale, 60),
            base_density=1.0, part_top=part, n_nodes_hint=n_nodes,
        )
        for gp in grace_periods:
            spec = scaled_spec(
                RuntimeSpec(grace_period=gp, allow_removal=False), scale
            )
            scenario = Scenario(
                name=f"fig7:part{part:g}:gp{gp}",
                cluster_spec=pentium_cluster(n_nodes, seed=seed),
                program=particle_program,
                cfg=cfg,
                spec=spec,
                adaptive=True,
                load_script=single_competitor(0, start_cycle=10),
            )
            res = scenario.run()
            source = "none"
            for ctx in res.job.contexts:
                if ctx.last_estimate_source != "none":
                    source = ctx.last_estimate_source
                    break
            cells.append(Figure7Cell(
                part=part,
                grace_period=gp,
                cycle_time=steady_state_cycle_time(res),
                estimate_source=source,
            ))
    return cells


def format_figure7(cells: Sequence[Figure7Cell]) -> str:
    rows = []
    by_part: dict = {}
    for c in cells:
        by_part.setdefault(c.part, {})[c.grace_period] = c
    for part, entry in sorted(by_part.items()):
        gps = sorted(entry)
        for gp in gps:
            c = entry[gp]
            base = entry[gps[0]]
            gain = 1.0 - c.cycle_time / base.cycle_time if gp != gps[0] else 0.0
            rows.append((f"{part:g}", gp, c.cycle_time * 1e3,
                         gain * 100, c.estimate_source))
    return format_table(
        ["Part", "GP", "cycle(ms)", "gain vs GP=1(%)", "timer"],
        rows,
        title="Figure 7 — particle simulation, grace period 1 vs 5 (8 nodes)",
    )
