"""ASCII table rendering for experiment output, so each bench prints
the same rows/series the paper's figure reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table"]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100 or (cell == int(cell) and abs(cell) < 1e6):
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
