"""Figure 3 — memory allocation methods (paper Section 4.1).

The paper's figure is a diagram; its quantitative claim — contiguous
allocation forces a complete reallocation when a partition boundary
shifts, while the 2-d projection method touches only the pointer
vector and the rows actually moved — is measured here.  For a sweep of
boundary shifts we record, for each layout:

* bytes allocated / copied / freed,
* modeled memory work (including the paging blow-up for reallocations
  that exceed node memory — the "excessive disk accesses" the paper
  observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dmem import ContiguousArray, MemCostModel, ProjectedArray, SparseMatrix
from .harness import bench_scale, scaled
from .report import format_table

__all__ = ["MemAllocRow", "run_memalloc", "format_memalloc"]


@dataclass(frozen=True)
class MemAllocRow:
    kind: str         # dense | sparse
    shift_rows: int
    proj_bytes_alloc: int
    proj_bytes_copied: int
    cont_bytes_alloc: int
    cont_bytes_copied: int
    proj_work: float
    cont_work: float

    @property
    def work_ratio(self) -> float:
        return self.cont_work / max(self.proj_work, 1e-12)


def run_memalloc(
    *,
    n_rows: int = 2048,
    row_elems: int = 2048,
    shifts: Sequence[int] = (1, 16, 128, 512),
    memory_bytes: int = 256 * 1024 * 1024,
    scale: Optional[float] = None,
) -> list[MemAllocRow]:
    scale = bench_scale() if scale is None else scale
    n_rows = scaled(n_rows, scale, 64)
    row_elems = scaled(row_elems, scale, 64)
    model = MemCostModel()
    rows = []
    for shift in shifts:
        shift = min(shift, n_rows // 4)
        lo, hi = 0, n_rows // 2 - 1

        proj = ProjectedArray("p", (n_rows, row_elems), materialized=False)
        proj.hold(range(lo, hi + 1))
        cont = ContiguousArray("c", (n_rows, row_elems), materialized=False)
        cont.resize(lo, hi)
        p0, c0 = proj.stats.snapshot(), cont.stats.snapshot()

        # the partition boundary moves down by `shift` rows
        proj.retarget(range(lo + shift, hi + shift + 1))
        proj.hold(range(lo + shift, hi + shift + 1))
        cont.resize(lo + shift, hi + shift)

        pd, cd = proj.stats.delta(p0), cont.stats.delta(c0)
        rows.append(MemAllocRow(
            "dense", shift,
            pd.bytes_allocated, pd.bytes_copied,
            cd.bytes_allocated, cd.bytes_copied,
            model.work(pd, memory_bytes), model.work(cd, memory_bytes),
        ))

        # sparse: vector-of-lists vs (hypothetical) contiguous CSR-style
        nnz_per_row = 12
        sp = SparseMatrix("s", (n_rows, max(n_rows, 2)))
        sp.hold(range(lo, hi + 1))
        for g in range(lo, hi + 1):
            cols = [(g + k) % sp.n_cols for k in range(nnz_per_row)]
            sp.set_row_items(g, cols, [1.0] * nnz_per_row)
        s0 = sp.stats.snapshot()
        sp.retarget(range(lo + shift, hi + shift + 1))
        sp.hold(range(lo + shift, hi + shift + 1))
        for g in range(hi + 1, hi + shift + 1):
            cols = [(g + k) % sp.n_cols for k in range(nnz_per_row)]
            sp.set_row_items(g, cols, [1.0] * nnz_per_row)
        sd = sp.stats.delta(s0)
        # contiguous sparse baseline: full CSR reallocation + copy
        from ..dmem.sparse import ELEM_STORE_BYTES

        total_elems = (hi - lo + 1) * nnz_per_row
        cont_alloc = total_elems * ELEM_STORE_BYTES
        cont_copy = (hi - lo + 1 - shift) * nnz_per_row * ELEM_STORE_BYTES
        from ..dmem import AllocStats

        cstats = AllocStats()
        cstats.record_alloc(cont_alloc)
        cstats.record_copy(cont_copy)
        cstats.record_free(cont_alloc)
        rows.append(MemAllocRow(
            "sparse", shift,
            sd.bytes_allocated, sd.bytes_copied,
            cont_alloc, cont_copy,
            model.work(sd, memory_bytes), model.work(cstats, memory_bytes),
        ))
    return rows


def format_memalloc(rows: Sequence[MemAllocRow]) -> str:
    return format_table(
        ["kind", "shift", "proj alloc(B)", "proj copy(B)",
         "cont alloc(B)", "cont copy(B)", "cont/proj work"],
        [
            (r.kind, r.shift_rows, r.proj_bytes_alloc, r.proj_bytes_copied,
             r.cont_bytes_alloc, r.cont_bytes_copied, r.work_ratio)
            for r in rows
        ],
        title="Figure 3 — projection vs contiguous allocation on a boundary shift",
    )
