"""Command-line figure runner.

Usage::

    python -m repro.experiments fig4 [--scale 0.5] [--apps jacobi,cg]
    python -m repro.experiments fig5 | fig6 | fig7 | fig3 | ablations
    python -m repro.experiments all --scale 0.25

Prints the same tables the benches write to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    cg_4node_narrative,
    format_balance_ablation,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_memalloc,
    format_monitor_ablation,
    run_balance_ablation,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_memalloc,
    run_monitor_ablation,
)
from .figure4 import APP_NAMES


def _fig4(args) -> None:
    apps = tuple(args.apps.split(",")) if args.apps else APP_NAMES
    print(format_figure4(run_figure4(apps=apps, scale=args.scale,
                                     seed=args.seed)))
    if "cg" in apps and args.narrative:
        n = cg_4node_narrative(scale=args.scale, seed=args.seed)
        print(f"\n4-node CG narrative: dedicated={n.t_dedicated:.1f}s "
              f"no-adapt={n.t_noadapt:.1f}s dyn-mpi={n.t_dynmpi:.1f}s "
              f"shares={[round(s, 3) for s in n.shares]} "
              f"redist={n.redist_seconds:.2f}s")


def _fig5(args) -> None:
    print(format_figure5(run_figure5(scale=args.scale, seed=args.seed)))


def _fig6(args) -> None:
    print(format_figure6(run_figure6(scale=args.scale, iters=args.iters,
                                 seed=args.seed)))


def _fig7(args) -> None:
    print(format_figure7(run_figure7(scale=args.scale, seed=args.seed)))


def _fig3(args) -> None:
    print(format_memalloc(run_memalloc(scale=args.scale)))


def _ablations(args) -> None:
    print(format_balance_ablation(run_balance_ablation()))
    print()
    print(format_monitor_ablation(run_monitor_ablation()))


FIGURES = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the Dyn-MPI paper's figures.",
    )
    parser.add_argument("figure", choices=list(FIGURES) + ["all"])
    parser.add_argument("--scale", type=float, default=None,
                        help="linear problem scale in (0,1]; default: "
                             "DYNMPI_BENCH_SCALE or 1.0")
    parser.add_argument("--seed", type=int, default=0,
                        help="cluster RNG seed for the figure runs "
                             "(fig3/ablations are seed-free; default 0)")
    parser.add_argument("--apps", default="",
                        help="fig4 only: comma-separated app subset")
    parser.add_argument("--iters", type=int, default=120,
                        help="fig6 only: SOR iterations per run")
    parser.add_argument("--narrative", action="store_true",
                        help="fig4 only: also print the 4-node CG walkthrough")
    args = parser.parse_args(argv)

    if args.figure == "all":
        for name, fn in FIGURES.items():
            print(f"\n=== {name} ===")
            fn(args)
    else:
        FIGURES[args.figure](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
