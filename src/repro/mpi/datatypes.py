"""Datatype helpers and reduction operators for the simulated MPI.

Message sizes drive the network model, so every payload needs a byte
count.  NumPy arrays report exactly; other Python objects get a
conservative structural estimate (the simulated analogue of pickling).
"""

from __future__ import annotations

import numpy as np

from ..errors import MPIError

__all__ = ["payload_nbytes", "SUM", "MAX", "MIN", "PROD", "LAND", "LOR", "ReduceOp"]

#: bytes charged for a message's envelope/header
HEADER_BYTES = 64

#: plain Python scalar: header + one 8-byte word (the isinstance chain
#: below yields the same value; this just skips it on the hot path)
_SCALAR_NBYTES = HEADER_BYTES + 8


def payload_nbytes(payload) -> int:
    """Estimate the on-wire size of ``payload`` in bytes."""
    tp = type(payload)
    if tp is int or tp is float or tp is bool:
        return _SCALAR_NBYTES
    if tp is tuple or tp is list:
        # hot path for the runtime's (scalar, scalar, ...) load reports:
        # an explicit loop over exact-type elements sizes a flat tuple
        # without a generator frame per element (integer arithmetic, so
        # the total is identical to the generic branch below)
        total = HEADER_BYTES
        for x in payload:
            xt = type(x)
            if xt is int or xt is float or xt is bool:
                total += 16
            else:
                total += payload_nbytes(x) - HEADER_BYTES + 8
        return total
    if payload is None:
        return HEADER_BYTES
    if isinstance(payload, np.ndarray):
        return HEADER_BYTES + payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return HEADER_BYTES + len(payload)
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return HEADER_BYTES + 8
    if isinstance(payload, str):
        return HEADER_BYTES + len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return HEADER_BYTES + sum(payload_nbytes(x) - HEADER_BYTES + 8 for x in payload)
    if isinstance(payload, dict):
        return HEADER_BYTES + sum(
            payload_nbytes(k) + payload_nbytes(v) - 2 * HEADER_BYTES + 16
            for k, v in payload.items()
        )
    if hasattr(payload, "nbytes"):
        return HEADER_BYTES + int(payload.nbytes)
    # opaque object: charge a flat struct size
    return HEADER_BYTES + 128


class ReduceOp:
    """A named, associative reduction operator."""

    def __init__(self, name: str, fn):
        self.name = name
        self.fn = fn

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReduceOp {self.name}>"


def _sum(a, b):
    return a + b


def _max(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _prod(a, b):
    return a * b


def _land(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def _lor(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


SUM = ReduceOp("SUM", _sum)
MAX = ReduceOp("MAX", _max)
MIN = ReduceOp("MIN", _min)
PROD = ReduceOp("PROD", _prod)
LAND = ReduceOp("LAND", _land)
LOR = ReduceOp("LOR", _lor)


def check_op(op) -> ReduceOp:
    if not isinstance(op, ReduceOp):
        raise MPIError(f"reduction op must be a ReduceOp, got {op!r}")
    return op
