"""Rank groups for collectives over subsets of a communicator.

Dyn-MPI removes nodes from the computation, after which collectives
run over the *active* subset only, addressed by relative rank (paper
Section 2.2).  A :class:`Group` is an ordered subset of world ranks;
relative rank = position in the group.

Each group hands out collective sequence numbers per member.  Because
SPMD programs invoke collectives in the same order on every member,
the per-member counters agree, giving every logically-single collective
a common tag without any global coordination.
"""

from __future__ import annotations

import itertools

from ..errors import MPIError

__all__ = ["Group"]

_GID = itertools.count()

#: tag space reserved for collectives (user tags must stay below this)
COLL_TAG_BASE = 1 << 30
_SEQ_MASK = 0xFFFF
_GID_SHIFT = 16


class Group:
    def __init__(self, ranks: list[int]):
        ranks = list(ranks)
        if not ranks:
            raise MPIError("group must be non-empty")
        if len(set(ranks)) != len(ranks):
            raise MPIError(f"duplicate ranks in group: {ranks}")
        self.ranks = ranks
        self._index = {r: i for i, r in enumerate(ranks)}
        self._counters = [0] * len(ranks)
        self.gid = next(_GID)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rel(self, world_rank: int) -> int:
        """Relative rank of ``world_rank`` in this group."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise MPIError(f"rank {world_rank} is not in group {self.ranks}") from None

    def world(self, rel_rank: int) -> int:
        """World rank of relative rank ``rel_rank``."""
        if not (0 <= rel_rank < self.size):
            raise MPIError(f"bad relative rank {rel_rank} (group size {self.size})")
        return self.ranks[rel_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def next_tag(self, rel_rank: int) -> int:
        """Tag for this member's next collective operation."""
        seq = self._counters[rel_rank]
        self._counters[rel_rank] += 1
        return COLL_TAG_BASE + ((self.gid & 0x1FFF) << _GID_SHIFT) + (seq & _SEQ_MASK)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Group {self.ranks}>"
