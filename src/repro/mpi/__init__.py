"""MPI-like message passing over the simulated cluster.

Point-to-point semantics, tags with wildcards, non-blocking requests,
and the standard collective algorithms, with CPU + wire costs drawn
from the cluster's network model.
"""

from . import collectives
from .comm import Endpoint, Request, SimComm
from .datatypes import LAND, LOR, MAX, MIN, PROD, SUM, ReduceOp, payload_nbytes
from .group import Group
from .launcher import make_comm, run_spmd
from .rma import RmaHandle, Window
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "SimComm",
    "Endpoint",
    "Request",
    "Group",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "ReduceOp",
    "payload_nbytes",
    "collectives",
    "run_spmd",
    "make_comm",
    "Window",
    "RmaHandle",
]
