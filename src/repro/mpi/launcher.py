"""SPMD launcher — the simulated ``mpirun``.

``run_spmd(cluster, program, ...)`` spawns one process per rank (a
generator produced by ``program(endpoint, *args)``), places it on its
node, runs the simulation until every rank finishes, and returns the
per-rank results.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..errors import MPIError
from ..simcluster import Cluster
from .comm import SimComm

__all__ = ["run_spmd", "make_comm"]


def make_comm(cluster: Cluster, rank_to_node: Optional[Sequence[int]] = None) -> SimComm:
    """Build a world communicator; default is one rank per node."""
    if rank_to_node is None:
        rank_to_node = list(range(cluster.n_nodes))
    return SimComm(cluster, list(rank_to_node))


def run_spmd(
    cluster: Cluster,
    program: Callable[..., Any],
    *,
    rank_to_node: Optional[Sequence[int]] = None,
    args: tuple = (),
    until: float = float("inf"),
    name: str = "rank",
) -> list[Any]:
    """Run ``program(endpoint, *args)`` as one process per rank.

    Returns the list of per-rank return values.  Raises the first rank
    error encountered, or :class:`~repro.errors.DeadlockError` if the
    job hangs.
    """
    comm = make_comm(cluster, rank_to_node)
    procs = []
    for rank in range(comm.size):
        ep = comm.endpoint(rank)
        gen = program(ep, *args)
        if not hasattr(gen, "send"):
            raise MPIError(
                f"program must be a generator function (rank {rank} produced {type(gen)!r})"
            )
        node = cluster.nodes[comm.node_of(rank)]
        procs.append(cluster.sim.spawn(gen, name=f"{name}{rank}", node=node))
    cluster.sim.run_all(procs, until=until)
    if cluster.sanitizer is not None:
        cluster.sanitizer.finalize()
    return [p.result for p in procs]
