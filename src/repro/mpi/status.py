"""Receive status and wildcard matching constants."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Metadata of a completed receive."""

    source: int
    tag: int
    nbytes: int

    def matches(self, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, self.source)) and (tag in (ANY_TAG, self.tag))
