"""Collective operations over a rank :class:`~repro.mpi.group.Group`.

All collectives are generator functions driven with ``yield from`` and
must be called by *every* member of the group, in the same order
(SPMD).  Algorithms are the textbook ones used by real MPI libraries:

* ``barrier`` — dissemination;
* ``bcast`` / ``reduce`` — binomial trees;
* ``allreduce`` — reduce-to-0 + bcast (correct for non-powers-of-two);
* ``gather(v)`` / ``scatter(v)`` — linear with the root;
* ``allgather(v)`` — ring;
* ``alltoallv`` — pairwise exchange.

Message costs (CPU + wire) fall out of the point-to-point layer, so a
collective's simulated cost scales the way a real implementation's
does (e.g. bcast is O(log n) rounds).
"""

from __future__ import annotations

import functools
from typing import Any, Generator, Optional, Sequence

from ..errors import MPIError
from .comm import Endpoint
from .datatypes import HEADER_BYTES, ReduceOp, check_op, payload_nbytes
from .group import Group

__all__ = [
    "barrier",
    "bcast",
    "allgather_dissemination",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoallv",
]


def _check_member(ep: Endpoint, group: Group) -> int:
    if ep.rank not in group:
        raise MPIError(f"rank {ep.rank} is not in group {group.ranks}")
    return group.rel(ep.rank)



def _traced(func):
    """Record each call as a ``coll.<name>`` span on the member's own
    track (dynscope).  With observability off the undecorated generator
    is returned directly — zero extra frames on the hot path.  The span
    covers the whole collective, so the point-to-point spans it drives
    nest inside it; its args carry the fan-in (group size)."""
    name = func.__name__

    @functools.wraps(func)
    def wrapper(ep: Endpoint, group: Group, *args, **kwargs):
        gen = func(ep, group, *args, **kwargs)
        obs = ep.comm.obs
        if obs is None:
            return gen
        return _traced_drive(gen, obs, ep, group, name)

    return wrapper


def _traced_drive(gen, obs, ep: Endpoint, group: Group,
                  name: str) -> Generator:
    t0 = obs.now()
    try:
        result = yield from gen
    finally:
        obs.complete(
            f"coll.{name}", t0, cat="coll", pid=ep.node_id, tid=ep.rank,
            size=group.size,
        )
    return result


def _san_enter(ep: Endpoint, group: Group, tag: int, name: str,
               root: Optional[int] = None) -> None:
    """Report a collective entry to the communication sanitizer (when
    enabled): every member of ``group`` must enter the same collective,
    with the same root, under the same tag — the SPMD contract."""
    san = ep.comm.san
    if san is not None:
        san.on_collective(group.rel(ep.rank), group.gid, tag, name, root,
                          group.size)


@_traced
def barrier(ep: Endpoint, group: Group) -> Generator:
    """Dissemination barrier: ceil(log2 n) rounds of tiny messages."""
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "barrier")
    k = 1
    while k < n:
        dst = group.world((me + k) % n)
        src = group.world((me - k) % n)
        yield from ep.sendrecv(dst, tag, None, src, tag)
        k *= 2


@_traced
def bcast(ep: Endpoint, group: Group, value: Any = None, root: int = 0) -> Generator:
    """Binomial-tree broadcast of ``value`` from relative rank ``root``.

    Returns the broadcast value on every member.
    """
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "bcast", root)
    # rotate so the root is virtual rank 0 (MPICH-style binomial tree)
    vrank = (me - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = group.world(((vrank ^ mask) + root) % n)
            value, _ = yield from ep.recv(parent, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < n:
            child = group.world((vrank + mask + root) % n)
            yield from ep.send(child, tag, value)
        mask >>= 1
    return value


@_traced
def reduce(
    ep: Endpoint,
    group: Group,
    value: Any,
    op: ReduceOp,
    root: int = 0,
) -> Generator:
    """Binomial-tree reduction; the result lands on relative ``root``
    (other members get ``None``)."""
    check_op(op)
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "reduce", root)
    vrank = (me - root) % n
    acc = value
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = group.world(((vrank ^ mask) + root) % n)
            yield from ep.send(parent, tag, acc)
            return None
        partner = vrank | mask
        if partner < n:
            child = group.world((partner + root) % n)
            other, _ = yield from ep.recv(child, tag)
            acc = op(acc, other)
        mask <<= 1
    return acc


@_traced
def allreduce(ep: Endpoint, group: Group, value: Any, op: ReduceOp) -> Generator:
    """Reduce to relative rank 0, then broadcast the result."""
    acc = yield from reduce(ep, group, value, op, root=0)
    result = yield from bcast(ep, group, acc, root=0)
    return result


@_traced
def gather(
    ep: Endpoint,
    group: Group,
    value: Any,
    root: int = 0,
) -> Generator:
    """Linear gather; the root receives ``[v_0, ..., v_{n-1}]`` in
    relative-rank order, other members get ``None``."""
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "gather", root)
    if me != root:
        yield from ep.send(group.world(root), tag, value)
        return None
    out: list[Any] = [None] * n
    out[root] = value
    for _ in range(n - 1):
        payload, status = yield from ep.recv(tag=tag)
        out[group.rel(status.source)] = payload
    return out


@_traced
def scatter(
    ep: Endpoint,
    group: Group,
    values: Optional[Sequence[Any]] = None,
    root: int = 0,
) -> Generator:
    """Linear scatter of ``values[i]`` to relative rank ``i``."""
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "scatter", root)
    if me == root:
        if values is None or len(values) != n:
            raise MPIError(f"scatter root needs exactly {n} values")
        for rel in range(n):
            if rel != root:
                yield from ep.send(group.world(rel), tag, values[rel])
        return values[root]
    payload, _ = yield from ep.recv(group.world(root), tag)
    return payload


@_traced
def allgather(ep: Endpoint, group: Group, value: Any) -> Generator:
    """Ring allgather: n-1 steps, each member forwards the newest block.

    Returns ``[v_0, ..., v_{n-1}]`` in relative-rank order on every
    member.  Handles variable-size contributions (allgatherv) for free
    because payloads are objects.
    """
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "allgather")
    out: list[Any] = [None] * n
    out[me] = value
    right = group.world((me + 1) % n)
    left = group.world((me - 1) % n)
    carry_idx = me
    for _ in range(n - 1):
        sreq = ep.isend(right, tag, (carry_idx, out[carry_idx]))
        (idx, payload), _ = yield from ep.recv(left, tag)
        out[idx] = payload
        carry_idx = idx
        yield from sreq.wait()
    return out


@_traced
def allgather_dissemination(ep: Endpoint, group: Group, value: Any) -> Generator:
    """Dissemination (Bruck-style) allgather: ceil(log2 n) rounds, each
    exchanging everything gathered so far with a partner at doubling
    distance.  Latency O(log n) instead of the ring's O(n) — the right
    algorithm for the small control payloads the Dyn-MPI runtime
    exchanges every phase cycle.
    """
    me = _check_member(ep, group)
    n = group.size
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "allgather_dissemination")
    have: dict[int, Any] = {me: value}
    # wire size of dict(have), tracked incrementally: sizing the whole
    # dict with payload_nbytes every round costs O(n log n) recursive
    # calls across the group and dominated large-scale profiles.  A
    # dict item with an int key contributes exactly
    # payload_nbytes(v) + 24 - HEADER_BYTES (see datatypes.py), so the
    # running total stays byte-exact with the full recomputation.
    size = payload_nbytes(value) + 24
    k = 1
    while k < n:
        dst = group.world((me + k) % n)
        src = group.world((me - k) % n)
        incoming, _ = yield from ep.sendrecv(
            # wire snapshot: the receiver must not observe keys merged
            # into `have` after this yield, so the copy is semantic,
            # not waste  # dynperf: ok
            dst, tag, dict(have), src, tag, nbytes=size
        )
        for key, v in incoming.items():
            # overlaps happen for non-power-of-two n; a replayed key
            # carries the same origin value, so skipping keeps the
            # size total exact
            if key not in have:
                have[key] = v
                size += payload_nbytes(v) + 24 - HEADER_BYTES
        k *= 2
    if len(have) != n:
        raise MPIError(f"dissemination allgather incomplete: {len(have)}/{n}")
    return [have[i] for i in range(n)]


@_traced
def alltoallv(
    ep: Endpoint,
    group: Group,
    blocks: Sequence[Any],
    nbytes: Optional[Sequence[int]] = None,
) -> Generator:
    """Pairwise all-to-all: member ``i`` sends ``blocks[j]`` to member
    ``j`` and returns the blocks addressed to it, in relative-rank
    order.  ``blocks`` may contain ``None`` (nothing for that member —
    a tiny control message is still exchanged to keep the schedule
    symmetric, as real pairwise implementations do)."""
    me = _check_member(ep, group)
    n = group.size
    if len(blocks) != n:
        raise MPIError(f"alltoallv needs exactly {n} blocks, got {len(blocks)}")
    tag = group.next_tag(me)
    _san_enter(ep, group, tag, "alltoallv")
    out: list[Any] = [None] * n
    out[me] = blocks[me]
    for step in range(1, n):
        dst_rel = (me + step) % n
        src_rel = (me - step) % n
        dst = group.world(dst_rel)
        src = group.world(src_rel)
        size = None if nbytes is None else nbytes[dst_rel]
        payload, _ = yield from ep.sendrecv(
            dst, tag, blocks[dst_rel], src, tag, nbytes=size
        )
        out[src_rel] = payload
    return out
