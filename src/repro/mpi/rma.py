"""One-sided passive-target RMA over the simulated network.

A :class:`Window` exposes ``n_slots`` int64 words of every rank's
memory to every other rank.  Origins operate on a target's memory
without the target's process participating — the memory effect is
applied by the target node's NIC agent (a network delivery callback),
which is the whole point of passive-target RMA for task farms: the
master's loop counter can be advanced by 63 workers while the master's
*process* spends zero CPU on dispatch (Dynamic Loop Scheduling Using
MPI Passive-Target Remote Memory Access, PAPERS.md).

Cost model (per op):

* origin CPU: ``cpu_cost(request) + cpu_cost(response)`` work units,
  charged as ordinary :class:`Compute` on the origin's node;
* wire: request and response each ride :meth:`Network.transmit`, so
  they serialize through the per-NIC model like every other message;
* target CPU: **zero** — the NIC agent applies the effect in the
  delivery callback.  This asymmetry is what the farm benchmarks
  measure.

Epochs follow ``MPI_Win_lock``/``MPI_Win_unlock`` passive target:
``lock(target)`` opens an access epoch (exclusive by default,
``shared=True`` for concurrent readers/atomics), ``unlock(target)``
closes it.  Grants are FIFO at the target with shared-batch coalescing.
Every op must run inside an epoch on its target; the dynsan runtime
extension enforces this (DYN1111/DYN1112/DYN1113 — see
:mod:`repro.analysis.sanitizer`).

Atomicity of ``accumulate``/``fetch_and_op``/``compare_and_swap`` is
per-op and free: each request's memory effect happens inside a single
delivery callback, and the event kernel runs callbacks one at a time.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

import numpy as np

from ..errors import MPIError, RankFailedError
from ..simcluster import Compute, Signal, Wait

__all__ = ["Window", "RmaHandle", "RMA_CTRL_BYTES"]

#: wire size of an RMA packet header (lock/unlock control messages and
#: the fixed part of every request/response)
RMA_CTRL_BYTES = 32

_WID = itertools.count()

#: bytes per window slot (int64 words)
_SLOT_BYTES = 8


class _LockState:
    """Lock bookkeeping for one target rank of one window.

    Lives at the *target*: transitions run inside delivery callbacks,
    i.e. at the simulated time the control message reaches the target's
    NIC.  ``holders`` maps origin rank -> "sh"/"ex"; ``queue`` is FIFO
    of ``(origin, shared, grant_cb)``.
    """

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: dict[int, str] = {}
        self.queue: list[tuple[int, bool, object]] = []

    def _grantable(self, shared: bool) -> bool:
        if not self.holders:
            return True
        if shared:
            return all(m == "sh" for m in self.holders.values())
        return False

    def request(self, origin: int, shared: bool, grant_cb) -> None:
        if not self.queue and self._grantable(shared):
            self.holders[origin] = "sh" if shared else "ex"
            grant_cb()
        else:
            self.queue.append((origin, shared, grant_cb))

    def release(self, origin: int) -> list:
        """Drop ``origin``'s hold; return grant callbacks now runnable."""
        self.holders.pop(origin, None)
        return self._drain()

    def drop(self, origin: int) -> list:
        """Rank death: forget holds *and* queued requests from ``origin``."""
        self.holders.pop(origin, None)
        self.queue = [q for q in self.queue if q[0] != origin]
        return self._drain()

    def _drain(self) -> list:
        grants = []
        while self.queue:
            origin, shared, cb = self.queue[0]
            if not self._grantable(shared):
                break
            self.queue.pop(0)
            self.holders[origin] = "sh" if shared else "ex"
            grants.append(cb)
            if not shared:
                break
        return grants


class Window:
    """``n_slots`` int64 words of remotely-accessible memory per rank.

    Construct once per communicator (all ranks share the object — this
    is a simulation; the per-rank views come from :meth:`origin`).
    Construction outside ``repro.farm``/``repro.mpi.rma`` is flagged by
    lint rule DYN1101 — task-farm code should go through the farm
    runtime, which owns the one sanctioned window.
    """

    def __init__(self, comm, n_slots: int, *, fill: int = 0, name: str = "win"):
        if n_slots <= 0:
            raise MPIError(f"window needs at least one slot (got {n_slots})")
        self.comm = comm
        self.net = comm.net
        self.sim = comm.sim
        self.n_slots = int(n_slots)
        self.name = name
        self.wid = next(_WID)
        self.buffers = [
            np.full(self.n_slots, fill, dtype=np.int64)
            for _ in range(comm.size)
        ]
        self._locks = [_LockState() for _ in range(comm.size)]
        self._handles = [RmaHandle(self, r) for r in range(comm.size)]
        comm._windows.append(self)

    def origin(self, rank: int) -> "RmaHandle":
        """The handle rank ``rank`` drives its one-sided ops through."""
        if not (0 <= rank < self.comm.size):
            raise MPIError(f"bad rank {rank} (size {self.comm.size})")
        return self._handles[rank]

    def local(self, rank: int) -> np.ndarray:
        """Rank ``rank``'s own slots, as directly-addressable memory.

        Local loads/stores by the window's owner cost nothing and need
        no epoch (the simulation analogue of MPI_Win_allocate memory
        the owner also uses directly).
        """
        return self.buffers[rank]

    # ------------------------------------------------------------------
    # resilience (called from SimComm.mark_rank_dead)
    # ------------------------------------------------------------------
    def _on_rank_dead(self, rank: int) -> None:
        """Release the dead rank's holds and queued lock requests on
        every target, then hand the lock to the next FIFO waiter."""
        for state in self._locks:
            for cb in state.drop(rank):
                cb()

    def _check_slot(self, slot: int, count: int = 1) -> None:
        if not (0 <= slot and slot + count <= self.n_slots):
            raise MPIError(
                f"window '{self.name}' access [{slot}, {slot + count}) "
                f"outside [0, {self.n_slots})"
            )


class RmaHandle:
    """One origin rank's view of a :class:`Window`.

    All operations are generators driven with ``yield from`` and block
    the origin until the target's response arrives.  The target's
    process never runs.
    """

    def __init__(self, win: Window, rank: int):
        self.win = win
        self.rank = rank
        self.node_id = win.comm.node_of(rank)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _round_trip(self, target: int, req_bytes: int, resp_bytes: int,
                    at_target) -> Generator:
        """Request to ``target``'s NIC, apply ``at_target`` there, ride
        the response back.  Returns ``at_target``'s value.  Both legs
        serialize through the per-NIC network model; the origin is
        charged CPU for both packets, the target for neither."""
        win = self.win
        comm = win.comm
        if not (0 <= target < comm.size):
            raise MPIError(f"RMA op on invalid rank {target}")
        if target in comm._dead:
            raise RankFailedError(target, "RMA op on")
        yield Compute(win.net.cpu_cost(req_bytes))
        sig = comm.sim.signal("rma")
        t_node = comm.node_of(target)

        def on_request() -> None:
            value = at_target()
            win.net.transmit(t_node, self.node_id, resp_bytes,
                             lambda: sig.fire((True, value)))

        win.net.transmit(self.node_id, t_node, req_bytes, on_request)
        ok, value = yield Wait(sig)
        if not ok:
            raise RankFailedError(target, "RMA op on")
        yield Compute(win.net.cpu_cost(resp_bytes))
        return value

    def _op(self, name: str, target: int, req_bytes: int, resp_bytes: int,
            at_target) -> Generator:
        win = self.win
        comm = win.comm
        if comm.san is not None:
            comm.san.on_rma_op(self.rank, win.wid, win.name, target, name)
        obs = comm.obs
        if obs is None:
            value = yield from self._round_trip(
                target, req_bytes, resp_bytes, at_target)
            return value
        t0 = obs.now()
        value = yield from self._round_trip(
            target, req_bytes, resp_bytes, at_target)
        obs.complete(
            f"rma.{name}", t0, cat="rma", pid=self.node_id, tid=self.rank,
            target=target, nbytes=req_bytes + resp_bytes,
        )
        reg = obs.rank_registry(self.rank)
        reg.count("rma.ops", 1)
        reg.count("rma.bytes", req_bytes + resp_bytes)
        return value

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def lock(self, target: int, *, shared: bool = False) -> Generator:
        """Open a passive-target access epoch on ``target``.  Exclusive
        by default; ``shared=True`` epochs coexist with each other.
        Blocks until the target's NIC grants the lock (FIFO)."""
        win = self.win
        comm = win.comm
        if not (0 <= target < comm.size):
            raise MPIError(f"RMA lock on invalid rank {target}")
        if target in comm._dead:
            raise RankFailedError(target, "RMA lock on")
        if comm.san is not None:
            comm.san.on_rma_lock_request(
                self.rank, win.wid, win.name, target, shared)
        obs = comm.obs
        t0 = obs.now() if obs is not None else 0.0
        yield Compute(win.net.cpu_cost(RMA_CTRL_BYTES))
        sig = comm.sim.signal("rma-lock")
        t_node = comm.node_of(target)

        def on_request() -> None:
            win._locks[target].request(
                self.rank, shared,
                lambda: win.net.transmit(t_node, self.node_id,
                                         RMA_CTRL_BYTES, sig.fire),
            )

        win.net.transmit(self.node_id, t_node, RMA_CTRL_BYTES, on_request)
        yield Wait(sig)
        yield Compute(win.net.cpu_cost(RMA_CTRL_BYTES))
        if comm.san is not None:
            comm.san.on_rma_lock_granted(self.rank, win.wid, win.name, target)
        if obs is not None:
            obs.complete(
                "rma.lock", t0, cat="rma", pid=self.node_id, tid=self.rank,
                target=target, shared=shared,
            )
            obs.rank_registry(self.rank).observe(
                "rma.lock_wait_seconds", obs.now() - t0)
        return None

    def unlock(self, target: int) -> Generator:
        """Close the epoch on ``target``.  All of this origin's ops on
        the target already completed (each op blocks), so unlock is a
        control round trip that releases the lock at the target."""
        win = self.win
        comm = win.comm
        if comm.san is not None:
            comm.san.on_rma_unlock(self.rank, win.wid, win.name, target)
        if target in comm._dead:
            # target died mid-epoch: the lock state died with it
            return None
        yield Compute(win.net.cpu_cost(RMA_CTRL_BYTES))
        sig = comm.sim.signal("rma-unlock")
        t_node = comm.node_of(target)

        def on_request() -> None:
            for cb in win._locks[target].release(self.rank):
                cb()
            win.net.transmit(t_node, self.node_id, RMA_CTRL_BYTES, sig.fire)

        win.net.transmit(self.node_id, t_node, RMA_CTRL_BYTES, on_request)
        yield Wait(sig)
        yield Compute(win.net.cpu_cost(RMA_CTRL_BYTES))
        if comm.obs is not None:
            comm.obs.instant(
                "rma.unlock", cat="rma", pid=self.node_id, tid=self.rank,
                target=target,
            )
        return None

    # ------------------------------------------------------------------
    # one-sided operations
    # ------------------------------------------------------------------
    def put(self, target: int, slot: int, values) -> Generator:
        """Store ``values`` (int or int64 array) at ``target``'s slots
        ``[slot, slot+len)``."""
        win = self.win
        arr = np.atleast_1d(np.asarray(values, dtype=np.int64))
        win._check_slot(slot, arr.size)
        data = arr.copy()

        def at_target() -> None:
            win.buffers[target][slot:slot + data.size] = data

        yield from self._op(
            "put", target,
            RMA_CTRL_BYTES + data.size * _SLOT_BYTES, RMA_CTRL_BYTES,
            at_target,
        )
        return None

    def get(self, target: int, slot: int, count: int = 1) -> Generator:
        """Fetch ``count`` slots from ``target``; returns an int64
        array (or the scalar when ``count == 1``)."""
        win = self.win
        win._check_slot(slot, count)

        def at_target() -> np.ndarray:
            return win.buffers[target][slot:slot + count].copy()

        arr = yield from self._op(
            "get", target,
            RMA_CTRL_BYTES, RMA_CTRL_BYTES + count * _SLOT_BYTES,
            at_target,
        )
        return int(arr[0]) if count == 1 else arr

    def accumulate(self, target: int, slot: int, values) -> Generator:
        """Element-wise atomic ``target[slot:] += values``."""
        win = self.win
        arr = np.atleast_1d(np.asarray(values, dtype=np.int64))
        win._check_slot(slot, arr.size)
        data = arr.copy()

        def at_target() -> None:
            win.buffers[target][slot:slot + data.size] += data

        yield from self._op(
            "accumulate", target,
            RMA_CTRL_BYTES + data.size * _SLOT_BYTES, RMA_CTRL_BYTES,
            at_target,
        )
        return None

    def fetch_and_op(self, target: int, slot: int, value: int) -> Generator:
        """Atomic fetch-and-add on one slot; returns the *old* value.
        The farm's decentralized self-scheduling lives on this op."""
        win = self.win
        win._check_slot(slot)
        value = int(value)

        def at_target() -> int:
            old = int(win.buffers[target][slot])
            win.buffers[target][slot] = old + value
            return old

        old = yield from self._op(
            "fetch_and_op", target,
            RMA_CTRL_BYTES + _SLOT_BYTES, RMA_CTRL_BYTES + _SLOT_BYTES,
            at_target,
        )
        return old

    def compare_and_swap(self, target: int, slot: int, expect: int,
                         desired: int) -> Generator:
        """Atomic compare-and-swap on one slot; returns the old value
        (the swap happened iff it equals ``expect``)."""
        win = self.win
        win._check_slot(slot)
        expect, desired = int(expect), int(desired)

        def at_target() -> int:
            old = int(win.buffers[target][slot])
            if old == expect:
                win.buffers[target][slot] = desired
            return old

        old = yield from self._op(
            "compare_and_swap", target,
            RMA_CTRL_BYTES + 2 * _SLOT_BYTES, RMA_CTRL_BYTES + _SLOT_BYTES,
            at_target,
        )
        return old

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RmaHandle rank={self.rank} win='{self.win.name}' "
                f"slots={self.win.n_slots}>")
